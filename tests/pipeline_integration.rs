//! Cross-crate integration tests: drive the full simulator end-to-end and
//! check the system-level behaviours the paper's evaluation relies on.

use ucp_sim::core::{ConfKind, PrefetcherKind, SimConfig, Simulator, UopCacheModel};
use ucp_sim::frontend::UopCacheConfig;
use ucp_sim::workloads::WorkloadSpec;

const WARMUP: u64 = 30_000;
const MEASURE: u64 = 120_000;

/// A small-footprint, loopy workload (µ-op cache friendly).
fn loopy_spec() -> WorkloadSpec {
    let mut s = WorkloadSpec::tiny("it-loopy", 11);
    s.loop_milli = 300;
    s.loop_trip = (8, 40);
    s
}

/// A flat, larger-footprint workload (µ-op cache hostile) — a miniature of
/// the suite's server class.
fn flat_spec() -> WorkloadSpec {
    let mut s = WorkloadSpec::tiny("it-flat", 12);
    s.num_funcs = 160;
    s.stmts_per_func = (8, 16);
    s.dispatch_milli = 500;
    s.dispatch_fanout = (8, 14);
    s.loop_milli = 60;
    s.call_milli = 120;
    s
}

#[test]
fn runs_exactly_the_requested_instructions() {
    let s = Simulator::run_spec(&loopy_spec(), &SimConfig::baseline(), WARMUP, MEASURE);
    // The final cycle may overshoot by at most one commit width.
    assert!(
        (MEASURE..MEASURE + 16).contains(&s.instructions),
        "{}",
        s.instructions
    );
    assert!(s.cycles > 0);
}

#[test]
fn end_to_end_determinism() {
    let cfg = SimConfig::ucp();
    let a = Simulator::run_spec(&flat_spec(), &cfg, WARMUP, MEASURE);
    let b = Simulator::run_spec(&flat_spec(), &cfg, WARMUP, MEASURE);
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.cond_mispredicts, b.cond_mispredicts);
    assert_eq!(a.ucp.entries_inserted, b.ucp.entries_inserted);
}

#[test]
fn uop_cache_helps_a_loopy_workload() {
    let no_uc = Simulator::run_spec(&loopy_spec(), &SimConfig::no_uop_cache(), WARMUP, MEASURE);
    let base = Simulator::run_spec(&loopy_spec(), &SimConfig::baseline(), WARMUP, MEASURE);
    assert!(
        base.ipc() > no_uc.ipc(),
        "4Kops µ-op cache must help: {} vs {}",
        base.ipc(),
        no_uc.ipc()
    );
    assert!(
        base.uop_hit_rate_pct() > 90.0,
        "loopy code must stream: {}",
        base.uop_hit_rate_pct()
    );
}

#[test]
fn ideal_uop_cache_dominates_real() {
    let mut ideal = SimConfig::baseline();
    ideal.uop_cache = UopCacheModel::Ideal;
    let r = Simulator::run_spec(&flat_spec(), &SimConfig::baseline(), WARMUP, MEASURE);
    let i = Simulator::run_spec(&flat_spec(), &ideal, WARMUP, MEASURE);
    assert!(
        i.ipc() >= r.ipc() * 0.999,
        "ideal {} vs real {}",
        i.ipc(),
        r.ipc()
    );
    assert!((i.uop_hit_rate_pct() - 100.0).abs() < 1e-9);
}

#[test]
fn bigger_uop_cache_raises_hit_rate() {
    let base = Simulator::run_spec(&flat_spec(), &SimConfig::baseline(), WARMUP, MEASURE);
    let mut big = SimConfig::baseline();
    big.uop_cache = UopCacheModel::Real(UopCacheConfig::kops(32));
    let b = Simulator::run_spec(&flat_spec(), &big, WARMUP, MEASURE);
    assert!(
        b.uop_hit_rate_pct() > base.uop_hit_rate_pct() + 5.0,
        "32Kops {} vs 4Kops {}",
        b.uop_hit_rate_pct(),
        base.uop_hit_rate_pct()
    );
}

#[test]
fn flat_footprint_oversubscribes_the_uop_cache() {
    let s = Simulator::run_spec(&flat_spec(), &SimConfig::baseline(), WARMUP, MEASURE);
    assert!(
        s.uop_hit_rate_pct() < 90.0,
        "flat workload must thrash a 4Kops cache: {}",
        s.uop_hit_rate_pct()
    );
    assert!(s.mode_switches > 0, "stream/build mode must alternate");
}

#[test]
fn no_uop_cache_never_switches_modes() {
    let s = Simulator::run_spec(&flat_spec(), &SimConfig::no_uop_cache(), WARMUP, MEASURE);
    assert_eq!(s.mode_switches, 0);
    assert_eq!(s.uops_from_uop_cache, 0);
    assert!(s.uops_from_decode >= MEASURE);
}

#[test]
fn ucp_prefetches_and_entries_get_used() {
    let s = Simulator::run_spec(&flat_spec(), &SimConfig::ucp(), WARMUP, MEASURE);
    assert!(
        s.ucp.walks_started > 50,
        "H2P triggers expected: {}",
        s.ucp.walks_started
    );
    assert!(
        s.ucp.entries_inserted > 100,
        "prefetched entries: {}",
        s.ucp.entries_inserted
    );
    assert!(
        s.ucp.timely_used + s.ucp.late_used > 0,
        "some prefetched entries must be demanded"
    );
}

#[test]
fn ucp_till_l1i_never_fills_the_uop_cache() {
    let mut cfg = SimConfig::ucp();
    cfg.ucp.till_l1i = true;
    let s = Simulator::run_spec(&flat_spec(), &cfg, WARMUP, MEASURE);
    assert!(s.ucp.lines_prefetched > 0, "L1I prefetches must still flow");
    assert_eq!(s.ucp.entries_inserted, 0, "TillL1I must not decode/insert");
}

#[test]
fn ucp_without_alt_ind_stops_at_indirect_branches() {
    let s = Simulator::run_spec(&flat_spec(), &SimConfig::ucp_no_ind(), WARMUP, MEASURE);
    assert!(
        s.ucp.stopped_indirect > 0,
        "walks must stop at indirect branches without Alt-Ind"
    );
}

#[test]
fn tage_conf_triggers_are_a_different_population() {
    let mut tage = SimConfig::ucp();
    tage.ucp.conf = ConfKind::Tage;
    let a = Simulator::run_spec(&flat_spec(), &SimConfig::ucp(), WARMUP, MEASURE);
    let b = Simulator::run_spec(&flat_spec(), &tage, WARMUP, MEASURE);
    assert_ne!(a.ucp.walks_started, b.ucp.walks_started);
}

#[test]
fn h2p_coverage_and_accuracy_are_sane() {
    let s = Simulator::run_spec(&flat_spec(), &SimConfig::baseline(), WARMUP, MEASURE);
    for h in [&s.h2p_tage, &s.h2p_ucp] {
        assert!(h.mispredicted > 0);
        assert!(h.coverage_pct() >= 0.0 && h.coverage_pct() <= 100.0);
        assert!(h.accuracy_pct() >= 0.0 && h.accuracy_pct() <= 100.0);
    }
    // The UCP estimator tracks or exceeds the original's coverage (on the
    // full suite it exceeds it; tiny workloads leave a little noise).
    assert!(
        s.h2p_ucp.coverage_pct() >= s.h2p_tage.coverage_pct() - 5.0,
        "ucp {} vs tage {}",
        s.h2p_ucp.coverage_pct(),
        s.h2p_tage.coverage_pct()
    );
}

#[test]
fn ideal_brcond_idealization_helps() {
    let base = Simulator::run_spec(&flat_spec(), &SimConfig::baseline(), WARMUP, MEASURE);
    let mut cfg = SimConfig::baseline();
    cfg.ideal_brcond = Some(16);
    let i = Simulator::run_spec(&flat_spec(), &cfg, WARMUP, MEASURE);
    assert!(
        i.ipc() >= base.ipc(),
        "perfect post-mispredict refill cannot hurt: {} vs {}",
        i.ipc(),
        base.ipc()
    );
}

#[test]
fn l1i_hits_idealization_raises_uop_hit_rate() {
    let base = Simulator::run_spec(&flat_spec(), &SimConfig::baseline(), WARMUP, MEASURE);
    let mut cfg = SimConfig::baseline();
    cfg.l1i_hits_ideal = true;
    let i = Simulator::run_spec(&flat_spec(), &cfg, WARMUP, MEASURE);
    assert!(
        i.uop_hit_rate_pct() > base.uop_hit_rate_pct(),
        "{} vs {}",
        i.uop_hit_rate_pct(),
        base.uop_hit_rate_pct()
    );
}

/// A very large, flat workload whose code misses the L1I constantly.
fn huge_spec() -> WorkloadSpec {
    let mut s = flat_spec();
    s.num_funcs = 420;
    s.dispatch_fanout = (10, 16);
    s
}

#[test]
fn standalone_prefetcher_cuts_l1i_misses() {
    let base = Simulator::run_spec(&huge_spec(), &SimConfig::baseline(), WARMUP, MEASURE);
    assert!(
        base.l1i_miss_rate_pct() > 3.0,
        "premise: L1I must thrash, got {}",
        base.l1i_miss_rate_pct()
    );
    let mut cfg = SimConfig::baseline();
    cfg.prefetcher = PrefetcherKind::Ep;
    let p = Simulator::run_spec(&huge_spec(), &cfg, WARMUP, MEASURE);
    assert!(p.l1i_prefetches_issued > 0);
    assert!(
        p.l1i_miss_rate_pct() < base.l1i_miss_rate_pct(),
        "EP must reduce L1I misses: {} vs {}",
        p.l1i_miss_rate_pct(),
        base.l1i_miss_rate_pct()
    );
}

#[test]
fn mrc_streams_uops_on_mispredictions() {
    let mut cfg = SimConfig::baseline();
    cfg.mrc_entries = Some(256);
    let s = Simulator::run_spec(&flat_spec(), &cfg, WARMUP, MEASURE);
    assert!(
        s.mrc_streamed_uops > 0,
        "the MRC must hit on recurring mispredictions"
    );
}

#[test]
fn provider_attribution_covers_all_mispredictions() {
    let s = Simulator::run_spec(&flat_spec(), &SimConfig::baseline(), WARMUP, MEASURE);
    let misses: u64 = s.provider_totals.values().map(|b| b.misses).sum();
    let preds: u64 = s.provider_totals.values().map(|b| b.preds).sum();
    assert_eq!(misses, s.cond_mispredicts, "every miss must be attributed");
    assert_eq!(
        preds, s.cond_branches,
        "every prediction must be attributed"
    );
}

#[test]
fn uop_sources_account_for_all_committed_instructions() {
    let s = Simulator::run_spec(&flat_spec(), &SimConfig::baseline(), WARMUP, MEASURE);
    // Fetch delivers at least what commits (wrong-path µ-ops add more).
    assert!(s.uops_from_uop_cache + s.uops_from_decode >= s.instructions);
}

#[test]
fn ucp_storage_overheads_match_the_paper() {
    assert!((SimConfig::ucp().extra_storage_kb() - 12.95).abs() < 2.0);
    assert!((SimConfig::ucp_no_ind().extra_storage_kb() - 8.95).abs() < 2.0);
}
