//! Property-based tests over the cross-crate invariants: arbitrary
//! workload recipes must always produce valid programs, deterministic
//! streams, and a simulator that completes with exact accounting.

use proptest::prelude::*;
use std::collections::BTreeMap;
use ucp_sim::bpred::{FoldSpec, HistoryState};
use ucp_sim::core::{SimConfig, Simulator};
use ucp_sim::frontend::{EntryEnd, UopCache, UopCacheConfig, UopEntrySpec};
use ucp_sim::isa::Addr;
use ucp_sim::telemetry::{AccountingBreakdown, IntervalSampler, Telemetry};
use ucp_sim::workloads::{CondMix, Oracle, WorkloadSpec};

/// An arbitrary-but-small workload recipe.
fn arb_spec() -> impl Strategy<Value = WorkloadSpec> {
    (
        1u64..10_000,
        4usize..40,
        2u32..8,
        (2u32..5, 5u32..9),
        0u16..400,
        0u16..300,
        0u16..500,
    )
        .prop_map(|(seed, funcs, stmts, block, call, loop_m, if_m)| {
            let mut s = WorkloadSpec::tiny("prop", seed);
            s.num_funcs = funcs.max(2);
            s.stmts_per_func = (stmts, stmts + 4);
            s.block_len = block;
            s.call_milli = call;
            s.loop_milli = loop_m;
            s.if_milli = if_m;
            s.cond_mix = CondMix {
                easy_milli: 600,
                pattern_milli: 100,
                correlated_milli: 100,
            };
            s
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Every generated program is internally consistent and the oracle
    /// never leaves the code image.
    #[test]
    fn generated_programs_are_valid(spec in arb_spec()) {
        let p = spec.build();
        p.validate();
        let mut o = Oracle::new(&p, spec.seed);
        for _ in 0..5_000 {
            let d = o.next_inst();
            prop_assert!(p.inst_at(d.pc).is_some());
            prop_assert!(p.inst_at(d.next_pc).is_some());
        }
    }

    /// The oracle stream is a pure function of (spec, seed).
    #[test]
    fn oracle_streams_are_deterministic(spec in arb_spec()) {
        let p1 = spec.build();
        let p2 = spec.build();
        let mut a = Oracle::new(&p1, spec.seed);
        let mut b = Oracle::new(&p2, spec.seed);
        for _ in 0..2_000 {
            prop_assert_eq!(a.next_inst(), b.next_inst());
        }
    }

    /// The full pipeline commits exactly the requested instructions on any
    /// generated workload, under baseline and UCP configurations.
    #[test]
    fn simulator_completes_on_arbitrary_workloads(spec in arb_spec(), ucp in any::<bool>()) {
        let cfg = if ucp { SimConfig::ucp() } else { SimConfig::baseline() };
        let stats = Simulator::run_spec(&spec, &cfg, 2_000, 10_000);
        prop_assert!((10_000..10_016).contains(&stats.instructions), "{}", stats.instructions);
        prop_assert!(stats.cycles > 0);
        prop_assert!(stats.ipc() > 0.05, "IPC collapsed: {}", stats.ipc());
        prop_assert!(stats.ipc() < 10.0, "IPC impossible: {}", stats.ipc());
    }

    /// Cycle accounting holds on arbitrary workloads: every measured
    /// cycle is charged to exactly one category (categories sum to the
    /// independent total, which equals the measured cycle count), and the
    /// interval samples tile the window exactly (per-counter sums over
    /// intervals reproduce the end-of-run aggregate delta).
    #[test]
    fn cycle_accounting_tiles_arbitrary_runs(spec in arb_spec(), ucp in any::<bool>()) {
        let cfg = if ucp { SimConfig::ucp() } else { SimConfig::baseline() };
        let prog = spec.build();
        let mut sim = Simulator::with_telemetry(&prog, spec.seed, &cfg, Telemetry::disabled());
        // Short intervals so small runs still produce several records.
        sim.set_interval_sampling(Some(IntervalSampler::new(2_000, 1 << 16)));
        let out = sim.run_full(2_000, 10_000).expect("run completes");

        let breakdown = AccountingBreakdown::from_snapshot(&out.telemetry);
        prop_assert!(breakdown.verify().is_ok(), "{:?}", breakdown.verify());
        prop_assert_eq!(breakdown.total, out.stats.cycles);

        prop_assert!(!out.intervals.is_empty());
        let sampled_cycles: u64 = out.intervals.iter().map(|iv| iv.cycles()).sum();
        prop_assert_eq!(sampled_cycles, out.stats.cycles);
        let mut summed: BTreeMap<String, u64> = BTreeMap::new();
        for iv in &out.intervals {
            prop_assert!(iv.breakdown().verify().is_ok(), "interval {} broken", iv.index);
            for (path, v) in &iv.counters {
                *summed.entry(path.clone()).or_insert(0) += v;
            }
        }
        prop_assert_eq!(&summed, &out.telemetry.counters);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Folded histories survive arbitrary checkpoint/wrong-path/restore
    /// interleavings: the state after restore+replay equals never having
    /// speculated.
    #[test]
    fn history_restore_equals_no_speculation(
        prefix in proptest::collection::vec(any::<bool>(), 0..300),
        wrong in proptest::collection::vec(any::<bool>(), 1..80),
        suffix in proptest::collection::vec(any::<bool>(), 0..300),
    ) {
        let specs = [
            FoldSpec { olen: 5, clen: 5 },
            FoldSpec { olen: 31, clen: 10 },
            FoldSpec { olen: 130, clen: 11 },
        ];
        let mut a = HistoryState::new(&specs);
        let mut b = HistoryState::new(&specs);
        for &x in &prefix {
            a.push(x);
            b.push(x);
        }
        let cp = a.checkpoint();
        for &x in &wrong {
            a.push(x);
        }
        a.restore(&cp);
        for &x in &suffix {
            a.push(x);
            b.push(x);
        }
        for i in 0..specs.len() {
            prop_assert_eq!(a.folded(i), b.folded(i), "fold {} diverged", i);
        }
    }

    /// The µ-op cache never stores more entries than its geometry allows
    /// and every inserted entry is immediately findable.
    #[test]
    fn uop_cache_capacity_and_findability(
        starts in proptest::collection::vec(0u64..4096, 1..200),
    ) {
        let cfg = UopCacheConfig { sets: 4, ways: 2, uops_per_entry: 8 };
        let capacity = cfg.sets * cfg.ways;
        let mut uc = UopCache::new(cfg);
        for &s in &starts {
            let start = Addr::new(0x1000 + s * 4);
            uc.insert(UopEntrySpec {
                start,
                num_uops: 4,
                end: EntryEnd::WindowBoundary,
                prefetched: false,
                trigger: 0,
            });
            prop_assert!(uc.probe(start), "just-inserted entry must be present");
            prop_assert!(uc.occupancy() <= capacity);
        }
    }

    /// Address helpers partition addresses consistently.
    #[test]
    fn addr_window_partition(raw in 0u64..u64::MAX / 2) {
        let a = Addr::new(raw & !3);
        prop_assert_eq!(a.uop_window().raw() % 32, 0);
        prop_assert!(a.uop_window().raw() <= a.raw());
        prop_assert!(a.raw() - a.uop_window().raw() < 32);
        prop_assert_eq!(a.line().raw() % 64, 0);
        prop_assert!(a.same_line(a));
    }
}
