//! Datacenter frontend study: reproduce the paper's §III motivation on one
//! large-footprint workload — the µ-op cache is oversubscribed, bigger
//! µ-op caches barely help, and the headroom sits in pipeline refills.
//!
//! ```text
//! cargo run --release --example datacenter_frontend
//! ```

use ucp_sim::core::{SimConfig, Simulator, UopCacheModel};
use ucp_sim::frontend::UopCacheConfig;
use ucp_sim::workloads::suite;

fn main() {
    let spec = suite::by_name("srv08").expect("srv08 is in the suite");
    let program = spec.build();
    println!(
        "workload {}: {} KB static code vs 16 KB of 4Kops µ-op cache reach\n",
        spec.name,
        program.footprint_bytes() / 1024
    );
    let warmup = 200_000;
    let measure = 800_000;

    let no_uc = Simulator::run_spec(&spec, &SimConfig::no_uop_cache(), warmup, measure);
    println!("no µ-op cache:       IPC {:.3}", no_uc.ipc());

    // §III-B: growing the µ-op cache gives diminishing returns.
    for kops in [4usize, 8, 16, 32, 64] {
        let mut cfg = SimConfig::baseline();
        cfg.uop_cache = UopCacheModel::Real(UopCacheConfig::kops(kops));
        let s = Simulator::run_spec(&spec, &cfg, warmup, measure);
        println!(
            "{kops:>3}Kops µ-op cache:  IPC {:.3} ({:+.2}% vs none), hit {:.1}%, switches {:.2} PKI",
            s.ipc(),
            (s.ipc() / no_uc.ipc() - 1.0) * 100.0,
            s.uop_hit_rate_pct(),
            s.switch_pki()
        );
    }

    // The ideal µ-op cache bounds the achievable benefit.
    let mut ideal = SimConfig::baseline();
    ideal.uop_cache = UopCacheModel::Ideal;
    let s = Simulator::run_spec(&spec, &ideal, warmup, measure);
    println!(
        "ideal µ-op cache:    IPC {:.3} ({:+.2}% vs none)",
        s.ipc(),
        (s.ipc() / no_uc.ipc() - 1.0) * 100.0
    );

    // §III-C: perfect refill after mispredictions beats raw capacity.
    for n in [8u32, 16] {
        let mut cfg = SimConfig::baseline();
        cfg.ideal_brcond = Some(n);
        let s = Simulator::run_spec(&spec, &cfg, warmup, measure);
        println!(
            "IdealBRCond-{n:<2}:      IPC {:.3} ({:+.2}% vs none) — refill-focused idealization",
            s.ipc(),
            (s.ipc() / no_uc.ipc() - 1.0) * 100.0
        );
    }

    // And UCP captures a real fraction of that refill headroom.
    let s = Simulator::run_spec(&spec, &SimConfig::ucp(), warmup, measure);
    println!(
        "UCP:                 IPC {:.3} ({:+.2}% vs none)",
        s.ipc(),
        (s.ipc() / no_uc.ipc() - 1.0) * 100.0
    );
}
