//! Branch-prediction confidence study: drive the TAGE-SC-L predictor
//! standalone over a workload's branch stream and compare the two H2P
//! estimators (§IV-A / Fig. 9) plus the per-component miss rates (Fig. 6).
//!
//! This example uses the predictor API directly — no pipeline — showing
//! how the `ucp-bpred` crate works as an independent library.
//!
//! ```text
//! cargo run --release --example h2p_confidence
//! ```

use std::collections::BTreeMap;
use ucp_sim::bpred::{ConfidenceEstimator, Provider, SclPreset, TageConf, TageScL, UcpConf};
use ucp_sim::isa::InstKind;
use ucp_sim::workloads::{suite, Oracle};

fn main() {
    let spec = suite::by_name("int03").expect("int03 is in the suite");
    let program = spec.build();
    let mut oracle = Oracle::new(&program, spec.seed);

    let mut bp = TageScL::new(SclPreset::Main64K);
    let mut hist = bp.new_history();

    let mut per_provider: BTreeMap<Provider, (u64, u64)> = BTreeMap::new();
    let mut tage_conf = (0u64, 0u64, 0u64); // (marked, marked+mis, mis)
    let mut ucp_conf = (0u64, 0u64, 0u64);
    let mut branches = 0u64;

    for _ in 0..3_000_000u64 {
        let d = oracle.next_inst();
        if !matches!(d.inst.kind, InstKind::CondBranch { .. }) {
            continue;
        }
        branches += 1;
        let pred = bp.predict(&hist, d.pc);
        let mispredicted = pred.taken != d.taken;
        let e = per_provider.entry(pred.provider).or_default();
        e.0 += 1;
        e.1 += u64::from(mispredicted);
        for (est, acc) in [
            (&TageConf as &dyn ConfidenceEstimator, &mut tage_conf),
            (&UcpConf as &dyn ConfidenceEstimator, &mut ucp_conf),
        ] {
            let marked = est.is_h2p(&pred);
            acc.0 += u64::from(marked);
            acc.1 += u64::from(marked && mispredicted);
            acc.2 += u64::from(mispredicted);
        }
        bp.update(d.pc, &pred, d.taken);
        hist.push(d.taken);
    }

    println!(
        "{} conditional branches predicted on {}\n",
        branches, spec.name
    );
    println!("per-provider miss rates (paper Fig. 6/7):");
    let total_misses: u64 = per_provider.values().map(|v| v.1).sum();
    for (p, (n, m)) in &per_provider {
        println!(
            "  {p:<16} {:>6.2}% of predictions, {:>5.1}% miss rate, {:>5.1}% of all misses",
            100.0 * *n as f64 / branches as f64,
            100.0 * *m as f64 / (*n).max(1) as f64,
            100.0 * *m as f64 / total_misses.max(1) as f64,
        );
    }
    println!("\nH2P estimators (paper Fig. 9: TAGE-Conf 48.5%/12%, UCP-Conf 70%/14.66%):");
    for (name, (marked, mm, mis)) in [("TAGE-Conf", tage_conf), ("UCP-Conf", ucp_conf)] {
        println!(
            "  {name:<10} coverage {:>5.1}%  accuracy {:>5.1}%",
            100.0 * mm as f64 / mis.max(1) as f64,
            100.0 * mm as f64 / marked.max(1) as f64,
        );
    }
}
