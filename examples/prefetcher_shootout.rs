//! Prefetcher shoot-out: UCP against the IPC1 standalone L1I prefetchers
//! and the MRC on a datacenter workload, with their storage budgets —
//! a single-workload slice of the paper's Fig. 16 cost/benefit analysis.
//!
//! ```text
//! cargo run --release --example prefetcher_shootout
//! ```

use ucp_sim::core::{PrefetcherKind, SimConfig, Simulator};
use ucp_sim::workloads::suite;

fn main() {
    let spec = suite::by_name("srv06").expect("srv06 is in the suite");
    let warmup = 200_000;
    let measure = 800_000;
    let base = Simulator::run_spec(&spec, &SimConfig::baseline(), warmup, measure);
    println!(
        "workload {}: baseline IPC {:.3}, L1I miss rate {:.1}%\n",
        spec.name,
        base.ipc(),
        base.l1i_miss_rate_pct()
    );
    println!(
        "{:<22} {:>9} {:>9} {:>10} {:>9}",
        "config", "IPC", "speedup", "extra KB", "L1I miss"
    );

    let mut entries: Vec<(String, SimConfig)> = Vec::new();
    for pk in [
        PrefetcherKind::FnlMma,
        PrefetcherKind::FnlMmaPlusPlus,
        PrefetcherKind::DJolt,
        PrefetcherKind::Ep,
        PrefetcherKind::EpPlusPlus,
    ] {
        let mut cfg = SimConfig::baseline();
        cfg.prefetcher = pk;
        entries.push((pk.name().to_owned(), cfg));
    }
    {
        let mut cfg = SimConfig::baseline();
        cfg.mrc_entries = Some(256); // the paper's 66 KB point
        entries.push(("MRC-66KB".to_owned(), cfg));
    }
    entries.push(("UCP-NoIndirect".to_owned(), SimConfig::ucp_no_ind()));
    entries.push(("UCP".to_owned(), SimConfig::ucp()));

    for (name, cfg) in entries {
        let s = Simulator::run_spec(&spec, &cfg, warmup, measure);
        println!(
            "{name:<22} {:>9.3} {:>+8.2}% {:>10.2} {:>8.1}%",
            s.ipc(),
            (s.ipc() / base.ipc() - 1.0) * 100.0,
            cfg.extra_storage_kb(),
            s.l1i_miss_rate_pct()
        );
    }
    println!("\npaper Fig. 16: the UCP flavours sit on the storage/speedup Pareto front.");
}
