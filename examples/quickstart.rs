//! Quickstart: simulate one workload under the Table II baseline and under
//! UCP, and print the headline numbers.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use ucp_sim::core::{SimConfig, Simulator};
use ucp_sim::workloads::suite;

fn main() {
    // Pick a datacenter-class workload from the evaluation suite.
    let spec = suite::by_name("srv03").expect("srv03 is in the suite");
    let program = spec.build();
    println!(
        "workload {} — {} static instructions ({} KB of code)",
        spec.name,
        program.len(),
        program.footprint_bytes() / 1024
    );

    let warmup = 200_000;
    let measure = 800_000;

    // Table II baseline: 4Kops µ-op cache, 64 KB TAGE-SC-L, no prefetching.
    let base = Simulator::run_spec(&spec, &SimConfig::baseline(), warmup, measure);
    // The paper's proposal: alternate-path µ-op cache prefetching.
    let ucp = Simulator::run_spec(&spec, &SimConfig::ucp(), warmup, measure);

    println!("baseline: IPC {:.3}", base.ipc());
    println!("  uop cache hit rate {:.1}%", base.uop_hit_rate_pct());
    println!("  mode switches      {:.2} PKI", base.switch_pki());
    println!("  conditional MPKI   {:.2}", base.cond_mpki());
    println!(
        "UCP:      IPC {:.3} ({:+.2}%)",
        ucp.ipc(),
        (ucp.ipc() / base.ipc() - 1.0) * 100.0
    );
    println!("  uop cache hit rate {:.1}%", ucp.uop_hit_rate_pct());
    println!("  alternate paths    {}", ucp.ucp.walks_started);
    println!("  entries prefetched {}", ucp.ucp.entries_inserted);
    println!(
        "  prefetch accuracy  {:.1}%",
        ucp.ucp.prefetch_accuracy_pct()
    );
    println!(
        "  H2P detector       coverage {:.1}%, accuracy {:.1}%",
        ucp.h2p_ucp.coverage_pct(),
        ucp.h2p_ucp.accuracy_pct()
    );
    println!(
        "UCP hardware overhead: {:.2} KB (paper: 12.95 KB)",
        SimConfig::ucp().extra_storage_kb()
    );
}
