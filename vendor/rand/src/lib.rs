//! Offline shim for `rand` 0.8: the subset the workspace uses —
//! `SmallRng::seed_from_u64` plus `Rng::{gen, gen_range, gen_bool}` over
//! integer ranges.
//!
//! The generator is SplitMix64: 64-bit state, full-period, passes BigCrush
//! for this workload-generation use case, and — critically — deterministic
//! across platforms, so workload programs built from a seed are stable.
//! Range sampling uses the widening-multiply method (Lemire), which keeps
//! the bias below 2^-64 per draw without a rejection loop.

use std::ops::{Range, RangeInclusive};

pub mod rngs {
    //! Concrete generators (mirrors `rand::rngs`).
    pub use crate::SmallRng;
}

/// Minimal core-RNG interface: a source of 64 random bits.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction from a 64-bit seed (mirrors `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A small, fast, deterministic generator (SplitMix64).
#[derive(Clone, Debug)]
pub struct SmallRng {
    state: u64,
}

impl SeedableRng for SmallRng {
    fn seed_from_u64(seed: u64) -> Self {
        SmallRng { state: seed }
    }
}

impl RngCore for SmallRng {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Maps 64 random bits uniformly onto `[0, span)` (`span > 0`).
fn mul_shift(bits: u64, span: u64) -> u64 {
    ((u128::from(bits) * u128::from(span)) >> 64) as u64
}

/// Integer types `gen_range` can sample.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform sample from `[lo, hi)`. Caller guarantees `lo < hi`.
    fn sample_half_open(rng: &mut dyn RngCore, lo: Self, hi: Self) -> Self;
    /// Uniform sample from `[lo, hi]`. Caller guarantees `lo <= hi`.
    fn sample_inclusive(rng: &mut dyn RngCore, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_unsigned {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open(rng: &mut dyn RngCore, lo: Self, hi: Self) -> Self {
                let span = (hi as u64) - (lo as u64);
                lo + (mul_shift(rng.next_u64(), span) as $t)
            }
            fn sample_inclusive(rng: &mut dyn RngCore, lo: Self, hi: Self) -> Self {
                let span = ((hi as u64) - (lo as u64)).wrapping_add(1);
                if span == 0 {
                    // Full u64 domain: every 64-bit value is in range.
                    rng.next_u64() as $t
                } else {
                    lo + (mul_shift(rng.next_u64(), span) as $t)
                }
            }
        }
    )*};
}

impl_sample_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_signed {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open(rng: &mut dyn RngCore, lo: Self, hi: Self) -> Self {
                let span = (hi as i64).wrapping_sub(lo as i64) as u64;
                lo.wrapping_add(mul_shift(rng.next_u64(), span) as $t)
            }
            fn sample_inclusive(rng: &mut dyn RngCore, lo: Self, hi: Self) -> Self {
                let span = ((hi as i64).wrapping_sub(lo as i64) as u64).wrapping_add(1);
                if span == 0 {
                    rng.next_u64() as $t
                } else {
                    lo.wrapping_add(mul_shift(rng.next_u64(), span) as $t)
                }
            }
        }
    )*};
}

impl_sample_signed!(i8, i16, i32, i64, isize);

/// Range arguments accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_half_open(&mut Adapter(rng), self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "cannot sample empty range");
        T::sample_inclusive(&mut Adapter(rng), lo, hi)
    }
}

/// Adapts any `RngCore` (possibly unsized) to `&mut dyn RngCore`.
struct Adapter<'a, R: RngCore + ?Sized>(&'a mut R);

impl<R: RngCore + ?Sized> RngCore for Adapter<'_, R> {
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// Types producible by [`Rng::gen`] (mirrors the `Standard` distribution).
pub trait Standard: Sized {
    /// Draws one value from the full domain of `Self`.
    fn sample_standard(rng: &mut dyn RngCore) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard(rng: &mut dyn RngCore) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample_standard(rng: &mut dyn RngCore) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// User-facing RNG methods (mirrors `rand::Rng`).
pub trait Rng: RngCore {
    /// Uniform sample from `range` (half-open or inclusive).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p` (`0.0 ..= 1.0`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p={p} out of range");
        // 53 high-quality mantissa bits → uniform in [0, 1).
        let x = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        x < p
    }

    /// Draws a value from the full domain of `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(&mut Adapter(self))
    }
}

impl<R: RngCore> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        let mut c = SmallRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        assert!(xs.iter().any(|&x| x != c.next_u64()));
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..2000 {
            let x: u32 = rng.gen_range(10..20);
            assert!((10..20).contains(&x));
            let y: u8 = rng.gen_range(2..=6);
            assert!((2..=6).contains(&y));
            let z: usize = rng.gen_range(0..3);
            assert!(z < 3);
            let w: i32 = rng.gen_range(-5..5);
            assert!((-5..5).contains(&w));
        }
    }

    #[test]
    fn range_covers_all_values() {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.gen_range(0..4usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "{hits}");
        let mut rng = SmallRng::seed_from_u64(12);
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = SmallRng::seed_from_u64(1);
        let _: u32 = rng.gen_range(5..5);
    }
}
