//! Offline shim for `serde_derive`: generates impls of the value-based
//! `Serialize`/`Deserialize` traits defined by the vendored `serde` shim
//! crate (see `crates/shims/serde`).
//!
//! The container this repository builds in has no crates.io access, so the
//! real serde cannot be used. This derive supports exactly the shapes the
//! workspace uses: non-generic named structs, tuple structs, and enums with
//! unit / newtype / tuple / struct variants, plus the field attributes
//! `#[serde(with = "path")]` and `#[serde(default)]`.
//!
//! The JSON data model mirrors serde's externally-tagged representation so
//! cache files and golden traces look like what the real serde would emit.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// One parsed named field.
struct Field {
    name: String,
    with: Option<String>,
    default: bool,
}

/// One parsed enum variant.
struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Named(Vec<Field>),
}

enum Shape {
    NamedStruct(Vec<Field>),
    TupleStruct(usize),
    Enum(Vec<Variant>),
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let (name, shape) = parse_item(input);
    gen_serialize(&name, &shape)
        .parse()
        .expect("generated Serialize impl parses")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let (name, shape) = parse_item(input);
    gen_deserialize(&name, &shape)
        .parse()
        .expect("generated Deserialize impl parses")
}

// ----------------------------------------------------------------------
// Parsing
// ----------------------------------------------------------------------

fn parse_item(input: TokenStream) -> (String, Shape) {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    let mut is_struct = None;
    while i < toks.len() {
        match &toks[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => i += 2, // attribute
            TokenTree::Ident(id) if id.to_string() == "pub" => {
                i += 1;
                if matches!(&toks.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    i += 1; // pub(crate) etc.
                }
            }
            TokenTree::Ident(id) if id.to_string() == "struct" => {
                is_struct = Some(true);
                i += 1;
                break;
            }
            TokenTree::Ident(id) if id.to_string() == "enum" => {
                is_struct = Some(false);
                i += 1;
                break;
            }
            other => panic!("serde shim derive: unexpected token {other}"),
        }
    }
    let is_struct = is_struct.expect("struct or enum keyword");
    let name = match &toks[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde shim derive: expected type name, got {other}"),
    };
    i += 1;
    if matches!(&toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde shim derive: generic types are not supported ({name})");
    }
    match &toks.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            if is_struct {
                (name, Shape::NamedStruct(parse_fields(g.stream())))
            } else {
                (name, Shape::Enum(parse_variants(g.stream())))
            }
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis && is_struct => {
            (name, Shape::TupleStruct(count_top_level_fields(g.stream())))
        }
        other => panic!("serde shim derive: unsupported body for {name}: {other:?}"),
    }
}

/// Parses `#[serde(...)]` options out of one attribute's bracket content.
fn parse_serde_attr(attr: TokenStream, with: &mut Option<String>, default: &mut bool) {
    let toks: Vec<TokenTree> = attr.into_iter().collect();
    match toks.first() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return,
    }
    let Some(TokenTree::Group(g)) = toks.get(1) else {
        return;
    };
    let inner: Vec<TokenTree> = g.stream().into_iter().collect();
    let mut j = 0;
    while j < inner.len() {
        match &inner[j] {
            TokenTree::Ident(id) if id.to_string() == "with" => {
                if let Some(TokenTree::Literal(l)) = inner.get(j + 2) {
                    *with = Some(l.to_string().trim_matches('"').to_string());
                }
                j += 3;
            }
            TokenTree::Ident(id) if id.to_string() == "default" => {
                *default = true;
                j += 1;
            }
            _ => j += 1,
        }
    }
}

fn parse_fields(ts: TokenStream) -> Vec<Field> {
    let toks: Vec<TokenTree> = ts.into_iter().collect();
    let mut out = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        let mut with = None;
        let mut default = false;
        while matches!(&toks[i], TokenTree::Punct(p) if p.as_char() == '#') {
            if let Some(TokenTree::Group(g)) = toks.get(i + 1) {
                parse_serde_attr(g.stream(), &mut with, &mut default);
            }
            i += 2;
        }
        if matches!(&toks[i], TokenTree::Ident(id) if id.to_string() == "pub") {
            i += 1;
            if matches!(&toks.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
            {
                i += 1;
            }
        }
        let name = match &toks[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde shim derive: expected field name, got {other}"),
        };
        i += 2; // name + ':'
                // Skip the type: tokens until a comma at angle-bracket depth 0.
        let mut depth = 0i32;
        while i < toks.len() {
            match &toks[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        out.push(Field {
            name,
            with,
            default,
        });
    }
    out
}

fn parse_variants(ts: TokenStream) -> Vec<Variant> {
    let toks: Vec<TokenTree> = ts.into_iter().collect();
    let mut out = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        while matches!(&toks[i], TokenTree::Punct(p) if p.as_char() == '#') {
            i += 2;
        }
        let name = match &toks[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde shim derive: expected variant name, got {other}"),
        };
        i += 1;
        let kind = match &toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantKind::Tuple(count_top_level_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantKind::Named(parse_fields(g.stream()))
            }
            _ => VariantKind::Unit,
        };
        // Skip any discriminant up to the separating comma.
        while i < toks.len() && !matches!(&toks[i], TokenTree::Punct(p) if p.as_char() == ',') {
            i += 1;
        }
        i += 1;
        out.push(Variant { name, kind });
    }
    out
}

/// Counts comma-separated fields of a tuple struct/variant (commas inside
/// angle brackets belong to type parameters, not field boundaries).
fn count_top_level_fields(ts: TokenStream) -> usize {
    let toks: Vec<TokenTree> = ts.into_iter().collect();
    if toks.is_empty() {
        return 0;
    }
    let mut depth = 0i32;
    let mut commas = 0usize;
    for t in &toks {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => commas += 1,
            _ => {}
        }
    }
    let trailing = matches!(toks.last(), Some(TokenTree::Punct(p)) if p.as_char() == ',');
    commas + 1 - usize::from(trailing)
}

// ----------------------------------------------------------------------
// Codegen
// ----------------------------------------------------------------------

fn field_ser_expr(f: &Field, access: &str) -> String {
    match &f.with {
        Some(path) => format!("{path}::to_value({access})"),
        None => format!("::serde::Serialize::to_value({access})"),
    }
}

fn field_de_expr(f: &Field, ty: &str) -> String {
    let from = match &f.with {
        Some(path) => format!("{path}::from_value(x)?"),
        None => "::serde::Deserialize::from_value(x)?".to_string(),
    };
    let missing = if f.default {
        "::core::default::Default::default()".to_string()
    } else {
        format!(
            "return Err(::serde::DeError::missing_field(\"{ty}\", \"{n}\"))",
            n = f.name
        )
    };
    format!(
        "{n}: match ::serde::value_get(v, \"{n}\") {{ Some(x) => {from}, None => {missing} }},",
        n = f.name
    )
}

fn gen_serialize(name: &str, shape: &Shape) -> String {
    let body = match shape {
        Shape::NamedStruct(fields) => {
            let mut pushes = String::new();
            for f in fields {
                let expr = field_ser_expr(f, &format!("&self.{}", f.name));
                pushes.push_str(&format!(
                    "m.push((::std::string::String::from(\"{n}\"), {expr}));",
                    n = f.name
                ));
            }
            format!(
                "let mut m: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = \
                 ::std::vec::Vec::new(); {pushes} ::serde::Value::Map(m)"
            )
        }
        Shape::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Shape::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|k| format!("::serde::Serialize::to_value(&self.{k})"))
                .collect();
            format!("::serde::Value::Seq(vec![{}])", items.join(","))
        }
        Shape::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => arms.push_str(&format!(
                        "{name}::{vn} => ::serde::Value::Str(::std::string::String::from(\"{vn}\")),"
                    )),
                    VariantKind::Tuple(1) => arms.push_str(&format!(
                        "{name}::{vn}(x0) => ::serde::Value::Map(vec![(\
                         ::std::string::String::from(\"{vn}\"), \
                         ::serde::Serialize::to_value(x0))]),"
                    )),
                    VariantKind::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|k| format!("x{k}")).collect();
                        let items: Vec<String> = (0..*n)
                            .map(|k| format!("::serde::Serialize::to_value(x{k})"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vn}({b}) => ::serde::Value::Map(vec![(\
                             ::std::string::String::from(\"{vn}\"), \
                             ::serde::Value::Seq(vec![{i}]))]),",
                            b = binds.join(","),
                            i = items.join(",")
                        ));
                    }
                    VariantKind::Named(fields) => {
                        let binds: Vec<String> = fields.iter().map(|f| f.name.clone()).collect();
                        let mut pushes = String::new();
                        for f in fields {
                            let expr = field_ser_expr(f, &f.name);
                            pushes.push_str(&format!(
                                "fm.push((::std::string::String::from(\"{n}\"), {expr}));",
                                n = f.name
                            ));
                        }
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {b} }} => {{ \
                             let mut fm: ::std::vec::Vec<(::std::string::String, ::serde::Value)> \
                             = ::std::vec::Vec::new(); {pushes} \
                             ::serde::Value::Map(vec![(::std::string::String::from(\"{vn}\"), \
                             ::serde::Value::Map(fm))]) }},",
                            b = binds.join(",")
                        ));
                    }
                }
            }
            format!("match self {{ {arms} }}")
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{ \
         fn to_value(&self) -> ::serde::Value {{ {body} }} }}"
    )
}

fn gen_deserialize(name: &str, shape: &Shape) -> String {
    let body = match shape {
        Shape::NamedStruct(fields) => {
            let mut inits = String::new();
            for f in fields {
                inits.push_str(&field_de_expr(f, name));
            }
            format!("Ok({name} {{ {inits} }})")
        }
        Shape::TupleStruct(1) => {
            format!("Ok({name}(::serde::Deserialize::from_value(v)?))")
        }
        Shape::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|k| format!("::serde::Deserialize::from_value(&s[{k}])?"))
                .collect();
            format!(
                "let s = ::serde::as_seq(v, \"{name}\")?; \
                 if s.len() != {n} {{ return Err(::serde::DeError::new(\
                 \"wrong tuple arity for {name}\")); }} \
                 Ok({name}({items}))",
                items = items.join(",")
            )
        }
        Shape::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => {
                        unit_arms.push_str(&format!("\"{vn}\" => Ok({name}::{vn}),"));
                    }
                    VariantKind::Tuple(1) => data_arms.push_str(&format!(
                        "\"{vn}\" => Ok({name}::{vn}(::serde::Deserialize::from_value(inner)?)),"
                    )),
                    VariantKind::Tuple(n) => {
                        let items: Vec<String> = (0..*n)
                            .map(|k| format!("::serde::Deserialize::from_value(&s[{k}])?"))
                            .collect();
                        data_arms.push_str(&format!(
                            "\"{vn}\" => {{ let s = ::serde::as_seq(inner, \"{name}::{vn}\")?; \
                             if s.len() != {n} {{ return Err(::serde::DeError::new(\
                             \"wrong tuple arity for {name}::{vn}\")); }} \
                             Ok({name}::{vn}({items})) }},",
                            items = items.join(",")
                        ));
                    }
                    VariantKind::Named(fields) => {
                        let mut inits = String::new();
                        for f in fields {
                            inits.push_str(&field_de_expr(f, &format!("{name}::{vn}")));
                        }
                        data_arms.push_str(&format!(
                            "\"{vn}\" => {{ let v = inner; Ok({name}::{vn} {{ {inits} }}) }},"
                        ));
                    }
                }
            }
            format!(
                "match v {{ \
                 ::serde::Value::Str(s) => match s.as_str() {{ {unit_arms} \
                 _ => Err(::serde::DeError::unknown_variant(\"{name}\", s)) }}, \
                 ::serde::Value::Map(m) if m.len() == 1 => {{ \
                 let (tag, inner) = &m[0]; \
                 match tag.as_str() {{ {data_arms} \
                 _ => Err(::serde::DeError::unknown_variant(\"{name}\", tag)) }} }}, \
                 other => Err(::serde::DeError::expected(\"{name} variant\", other)) }}"
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{ \
         fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> \
         {{ {body} }} }}"
    )
}
