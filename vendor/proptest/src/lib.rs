//! Offline shim for `proptest`: randomized property testing with the same
//! macro surface the workspace tests use (`proptest!`, `prop_assert!`,
//! `prop_assert_eq!`, `any`, `Just`, `prop_map`, `collection::vec`,
//! `ProptestConfig::with_cases`).
//!
//! Differences from the real crate: no shrinking (a failing case reports
//! its case number; re-running is deterministic because every test derives
//! its RNG stream from the test's module path and case index), and
//! `.proptest-regressions` files are ignored.

pub mod test_runner {
    //! Test configuration, case errors, and the per-case RNG.

    use rand::rngs::SmallRng;
    use rand::{RngCore, SeedableRng};
    use std::fmt;

    /// Run configuration (aliased as `ProptestConfig` in the prelude).
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Number of random cases each property is checked against.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` random cases per property.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            // The real default (256) makes some heavyweight properties slow;
            // 64 keeps the suite quick while still exploring the space.
            Config { cases: 64 }
        }
    }

    /// A failed property case.
    #[derive(Clone, Debug)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        /// Creates a failure with the given message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError(msg.into())
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Per-case RNG: a deterministic function of (test name, case index).
    pub struct TestRng(SmallRng);

    impl TestRng {
        /// RNG for case `case` of the test named `name`.
        pub fn for_case(name: &str, case: u32) -> Self {
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng(SmallRng::seed_from_u64(
                h ^ (u64::from(case) << 32 | u64::from(case)),
            ))
        }
    }

    impl RngCore for TestRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// Generates values of type `Self::Value` from an RNG.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Transforms generated values with `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Strategy producing a single fixed value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident . $idx:tt),+);)*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A.0);
        (A.0, B.1);
        (A.0, B.1, C.2);
        (A.0, B.1, C.2, D.3);
        (A.0, B.1, C.2, D.3, E.4);
        (A.0, B.1, C.2, D.3, E.4, F.5);
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6);
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7);
    }

    /// Types with a canonical whole-domain strategy (`any::<T>()`).
    pub trait Arbitrary: Sized {
        /// Draws a value from the full domain of `Self`.
        fn arb_sample(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arb_sample(rng: &mut TestRng) -> Self {
            rng.gen_bool(0.5)
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arb_sample(rng: &mut TestRng) -> Self {
                    rng.gen::<u64>() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// Strategy for the full domain of `T` (returned by [`crate::any`]).
    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T> Default for Any<T> {
        fn default() -> Self {
            Any(std::marker::PhantomData)
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            T::arb_sample(rng)
        }
    }
}

/// Strategy over the full domain of `T`.
pub fn any<T: strategy::Arbitrary>() -> strategy::Any<T> {
    strategy::Any::default()
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::Range;

    /// Strategy for `Vec`s with lengths drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `Vec<S::Value>` with a length in `size` and elements from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.gen_range(self.size.clone());
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod prelude {
    //! Everything a property test file needs in scope.

    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError};
    pub use crate::{any, prop_assert, prop_assert_eq, proptest};
}

/// Defines property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a test that checks the body over `cases` random inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::test_runner::Config::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr) $( $(#[$meta:meta])* fn $name:ident( $($pat:pat in $strat:expr),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::test_runner::Config = $cfg;
                for __case in 0..__cfg.cases {
                    let mut __rng = $crate::test_runner::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        __case,
                    );
                    $(let $pat = $crate::strategy::Strategy::sample(&($strat), &mut __rng);)+
                    let __result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(e) = __result {
                        panic!("case {}/{}: {}", __case + 1, __cfg.cases, e);
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a `proptest!` body, failing the case (not
/// panicking) so the runner can report which case broke.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: left {:?} != right {:?}: {}",
            l, r, format!($($fmt)+)
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(50))]

        #[test]
        fn ranges_and_tuples((a, b) in (0u64..10, 5u8..=7), v in crate::collection::vec(any::<bool>(), 2..6)) {
            prop_assert!(a < 10);
            prop_assert!((5..=7).contains(&b));
            prop_assert!((2..6).contains(&v.len()));
        }

        #[test]
        fn map_and_just(x in (1u32..100).prop_map(|v| v * 2), y in Just(9usize)) {
            prop_assert_eq!(x % 2, 0);
            prop_assert_eq!(y, 9);
        }
    }

    #[test]
    fn failures_report_case_numbers() {
        let result = std::panic::catch_unwind(|| {
            proptest! {
                #![proptest_config(ProptestConfig::with_cases(3))]
                fn always_fails(x in 0u64..5) {
                    prop_assert!(x > 100, "x themed {x}");
                }
            }
            always_fails();
        });
        assert!(result.is_err());
    }

    #[test]
    fn streams_are_deterministic() {
        use crate::strategy::Strategy;
        let s = crate::collection::vec(0u64..1000, 3..10);
        let mut r1 = crate::test_runner::TestRng::for_case("t", 4);
        let mut r2 = crate::test_runner::TestRng::for_case("t", 4);
        assert_eq!(s.sample(&mut r1), s.sample(&mut r2));
    }
}
