//! Offline shim for `serde`: a small, value-based serialization framework
//! with the same surface the workspace uses (`Serialize`/`Deserialize`
//! derives, `#[serde(with = "...")]`, `#[serde(default)]`).
//!
//! The build container has no crates.io access, so the real serde cannot be
//! vendored. Instead of the full visitor-based data model, this shim lowers
//! every value to a [`Value`] tree that `serde_json` (also shimmed) renders
//! to and parses from JSON. Enum representation is externally tagged, like
//! real serde: unit variants are strings, data variants single-key maps.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::BTreeMap;
use std::fmt;

/// The in-memory data model every serializable type lowers to.
///
/// Maps preserve insertion order so serialized output is deterministic and
/// follows field declaration order (like real serde's JSON output).
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Non-negative integer.
    U64(u64),
    /// Negative integer.
    I64(i64),
    /// Floating-point number.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Seq(Vec<Value>),
    /// Object, insertion-ordered.
    Map(Vec<(String, Value)>),
}

/// Deserialization error: a human-readable description of the mismatch.
#[derive(Clone, Debug, PartialEq)]
pub struct DeError(pub String);

impl DeError {
    /// Creates an error from a message.
    pub fn new(msg: impl Into<String>) -> Self {
        DeError(msg.into())
    }

    /// A required field was absent.
    pub fn missing_field(ty: &str, field: &str) -> Self {
        DeError(format!("{ty}: missing field `{field}`"))
    }

    /// An enum tag did not match any variant.
    pub fn unknown_variant(ty: &str, tag: &str) -> Self {
        DeError(format!("{ty}: unknown variant `{tag}`"))
    }

    /// The value had the wrong shape.
    pub fn expected(what: &str, got: &Value) -> Self {
        let kind = match got {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::U64(_) | Value::I64(_) | Value::F64(_) => "number",
            Value::Str(_) => "string",
            Value::Seq(_) => "array",
            Value::Map(_) => "object",
        };
        DeError(format!("expected {what}, got {kind}"))
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

/// Lowers `self` to a [`Value`].
pub trait Serialize {
    /// The value-tree representation of `self`.
    fn to_value(&self) -> Value;
}

/// Reconstructs `Self` from a [`Value`].
pub trait Deserialize: Sized {
    /// Parses `v`, reporting shape mismatches as [`DeError`].
    ///
    /// # Errors
    ///
    /// Returns an error when `v` does not have the expected shape.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

/// Looks up `key` in an object value (used by derived impls).
pub fn value_get<'a>(v: &'a Value, key: &str) -> Option<&'a Value> {
    match v {
        Value::Map(m) => m.iter().find(|(k, _)| k == key).map(|(_, x)| x),
        _ => None,
    }
}

/// Views `v` as a sequence (used by derived impls).
///
/// # Errors
///
/// Returns an error when `v` is not a sequence.
pub fn as_seq<'a>(v: &'a Value, what: &str) -> Result<&'a [Value], DeError> {
    match v {
        Value::Seq(s) => Ok(s),
        other => Err(DeError::expected(what, other)),
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

// ----------------------------------------------------------------------
// Primitive impls
// ----------------------------------------------------------------------

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(u64::from(*self))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let raw = match v {
                    Value::U64(x) => *x,
                    Value::I64(x) if *x >= 0 => *x as u64,
                    other => return Err(DeError::expected(stringify!($t), other)),
                };
                <$t>::try_from(raw)
                    .map_err(|_| DeError::new(format!("{raw} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64);

impl Serialize for usize {
    fn to_value(&self) -> Value {
        Value::U64(*self as u64)
    }
}

impl Deserialize for usize {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        u64::from_value(v).and_then(|x| {
            usize::try_from(x).map_err(|_| DeError::new(format!("{x} out of range for usize")))
        })
    }
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let x = i64::from(*self);
                if x >= 0 { Value::U64(x as u64) } else { Value::I64(x) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let raw = match v {
                    Value::I64(x) => *x,
                    Value::U64(x) => i64::try_from(*x)
                        .map_err(|_| DeError::new(format!("{x} out of range for i64")))?,
                    other => return Err(DeError::expected(stringify!($t), other)),
                };
                <$t>::try_from(raw)
                    .map_err(|_| DeError::new(format!("{raw} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64);

impl Serialize for isize {
    fn to_value(&self) -> Value {
        (*self as i64).to_value()
    }
}

impl Deserialize for isize {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        i64::from_value(v).and_then(|x| {
            isize::try_from(x).map_err(|_| DeError::new(format!("{x} out of range for isize")))
        })
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::F64(x) => Ok(*x),
            Value::U64(x) => Ok(*x as f64),
            Value::I64(x) => Ok(*x as f64),
            other => Err(DeError::expected("f64", other)),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        f64::from_value(v).map(|x| x as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::expected("bool", other)),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::expected("string", other)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

// ----------------------------------------------------------------------
// Composite impls
// ----------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Box<[T]> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Box<[T]> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Vec::<T>::from_value(v).map(Vec::into_boxed_slice)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        as_seq(v, "sequence")?.iter().map(T::from_value).collect()
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items = as_seq(v, "array")?;
        if items.len() != N {
            return Err(DeError::new(format!(
                "expected array of {N}, got {}",
                items.len()
            )));
        }
        let vec: Vec<T> = items.iter().map(T::from_value).collect::<Result<_, _>>()?;
        vec.try_into()
            .map_err(|_| DeError::new("array length changed during conversion"))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

macro_rules! impl_tuple {
    ($(($($t:ident . $idx:tt),+) with $len:expr;)*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let s = as_seq(v, "tuple")?;
                if s.len() != $len {
                    return Err(DeError::new(format!("expected {}-tuple, got {}", $len, s.len())));
                }
                Ok(($($t::from_value(&s[$idx])?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (A.0) with 1;
    (A.0, B.1) with 2;
    (A.0, B.1, C.2) with 3;
    (A.0, B.1, C.2, D.3) with 4;
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Map(m) => m
                .iter()
                .map(|(k, x)| Ok((k.clone(), V::from_value(x)?)))
                .collect(),
            other => Err(DeError::expected("object", other)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(i32::from_value(&(-7i32).to_value()).unwrap(), -7);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
        assert!(f64::from_value(&1.5f64.to_value()).unwrap() == 1.5);
    }

    #[test]
    fn composites_round_trip() {
        let v = vec![(1u64, true), (2, false)];
        let rt = Vec::<(u64, bool)>::from_value(&v.to_value()).unwrap();
        assert_eq!(v, rt);
        let o: Option<u32> = None;
        assert_eq!(Option::<u32>::from_value(&o.to_value()).unwrap(), None);
        let mut m = BTreeMap::new();
        m.insert("a".to_string(), 1u64);
        assert_eq!(
            BTreeMap::<String, u64>::from_value(&m.to_value()).unwrap(),
            m
        );
    }

    #[test]
    fn shape_errors_are_reported() {
        assert!(u64::from_value(&Value::Str("x".into())).is_err());
        assert!(bool::from_value(&Value::U64(1)).is_err());
        assert!(Vec::<u64>::from_value(&Value::Bool(true)).is_err());
    }
}
