//! Offline shim for `criterion`: the API surface the workspace benches
//! use, backed by a simple monotonic-clock timing loop.
//!
//! Each `bench_function` runs a short warm-up, then a fixed batch of timed
//! iterations, and prints mean ns/op (plus derived throughput when one was
//! declared). There is no statistical analysis, HTML report, or baseline
//! comparison — the point is that `cargo bench`/`cargo test` build and run
//! the bench targets offline with stable output.

use std::time::Instant;

/// Declared work-per-iteration, used to derive throughput.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Iterations process this many logical elements.
    Elements(u64),
    /// Iterations process this many bytes.
    Bytes(u64),
}

/// Prevents the optimizer from discarding a value (stable-Rust version).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Top-level benchmark driver (mirrors `criterion::Criterion`).
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.to_string(),
            throughput: None,
            iters: DEFAULT_ITERS,
        }
    }
}

const DEFAULT_ITERS: u64 = 1000;

/// A named group of benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup {
    name: String,
    throughput: Option<Throughput>,
    iters: u64,
}

impl BenchmarkGroup {
    /// Declares per-iteration work for throughput reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Scales the iteration batch down for expensive benchmarks
    /// (named after criterion's sample-count knob).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.iters = (n as u64).max(1);
        self
    }

    /// Times `f` and prints one result line.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            iters: self.iters.min(10),
            elapsed_ns: 0,
        };
        f(&mut b); // warm-up, discarded
        let mut b = Bencher {
            iters: self.iters,
            elapsed_ns: 0,
        };
        f(&mut b);
        let per_iter = b.elapsed_ns as f64 / self.iters as f64;
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) if per_iter > 0.0 => {
                format!("  {:>12.0} elem/s", n as f64 * 1e9 / per_iter)
            }
            Some(Throughput::Bytes(n)) if per_iter > 0.0 => {
                format!("  {:>12.0} B/s", n as f64 * 1e9 / per_iter)
            }
            _ => String::new(),
        };
        println!(
            "bench {}/{:<28} {:>12.1} ns/iter{}",
            self.name, id, per_iter, rate
        );
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; times the inner loop.
pub struct Bencher {
    iters: u64,
    elapsed_ns: u128,
}

impl Bencher {
    /// Runs `f` for the configured number of iterations, timing the batch.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed_ns = start.elapsed().as_nanos();
    }
}

/// Bundles benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_loop_runs_and_counts() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(50);
        g.throughput(Throughput::Elements(1));
        let mut calls = 0u64;
        g.bench_function("count", |b| b.iter(|| calls += 1));
        g.finish();
        // warm-up (10) + timed batch (50), the closure runs twice.
        assert_eq!(calls, 60);
    }
}
