//! Offline shim for `serde_json`: renders the vendored [`serde::Value`]
//! data model to JSON text and parses it back.
//!
//! Supports everything the workspace serializes: objects, arrays, strings
//! (with escape handling), booleans, null, and integer/float numbers.
//! Output is deterministic — object keys keep insertion (declaration)
//! order, and floats use Rust's shortest round-trip formatting.

pub use serde::{DeError as Error, Value};

use serde::{Deserialize, Serialize};

/// Serializes `value` to compact JSON.
///
/// # Errors
///
/// Never fails in this shim; the `Result` mirrors the real serde_json API.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Serializes `value` to two-space-indented JSON.
///
/// # Errors
///
/// Never fails in this shim; the `Result` mirrors the real serde_json API.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

/// Parses JSON text into a `T`.
///
/// # Errors
///
/// Returns an error on malformed JSON or a shape mismatch.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    T::from_value(&parse_value(s)?)
}

/// Converts any serializable value into a raw [`Value`] tree.
///
/// # Errors
///
/// Never fails in this shim; the `Result` mirrors the real serde_json API.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    Ok(value.to_value())
}

/// Converts a [`Value`] tree into a `T`.
///
/// # Errors
///
/// Returns an error on a shape mismatch.
pub fn from_value<T: Deserialize>(value: Value) -> Result<T, Error> {
    T::from_value(&value)
}

/// Parses JSON text into a raw [`Value`] tree.
///
/// # Errors
///
/// Returns an error on malformed JSON or trailing garbage.
pub fn parse_value(s: &str) -> Result<Value, Error> {
    let bytes = s.as_bytes();
    let mut pos = 0;
    let v = parse_at(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {pos}")));
    }
    Ok(v)
}

// ----------------------------------------------------------------------
// Writer
// ----------------------------------------------------------------------

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::U64(x) => out.push_str(&x.to_string()),
        Value::I64(x) => out.push_str(&x.to_string()),
        Value::F64(x) => {
            if x.is_finite() {
                out.push_str(&x.to_string());
            } else {
                // JSON has no inf/NaN; real serde_json writes null.
                out.push_str("null");
            }
        }
        Value::Str(s) => write_escaped(s, out),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_break(out, indent, depth + 1);
                write_value(item, out, indent, depth + 1);
            }
            if !items.is_empty() {
                write_break(out, indent, depth);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_break(out, indent, depth + 1);
                write_escaped(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(item, out, indent, depth + 1);
            }
            if !entries.is_empty() {
                write_break(out, indent, depth);
            }
            out.push('}');
        }
    }
}

fn write_break(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(n) = indent {
        out.push('\n');
        for _ in 0..n * depth {
            out.push(' ');
        }
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ----------------------------------------------------------------------
// Parser
// ----------------------------------------------------------------------

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), Error> {
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(Error::new(format!(
            "expected `{}` at byte {pos}",
            c as char,
            pos = *pos
        )))
    }
}

fn parse_at(b: &[u8], pos: &mut usize) -> Result<Value, Error> {
    skip_ws(b, pos);
    match b.get(*pos) {
        Some(b'{') => {
            *pos += 1;
            let mut entries = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Map(entries));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                expect(b, pos, b':')?;
                let val = parse_at(b, pos)?;
                entries.push((key, val));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Map(entries));
                    }
                    _ => {
                        return Err(Error::new(format!(
                            "expected `,` or `}}` at byte {pos}",
                            pos = *pos
                        )))
                    }
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Seq(items));
            }
            loop {
                items.push(parse_at(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Seq(items));
                    }
                    _ => {
                        return Err(Error::new(format!(
                            "expected `,` or `]` at byte {pos}",
                            pos = *pos
                        )))
                    }
                }
            }
        }
        Some(b'"') => parse_string(b, pos).map(Value::Str),
        Some(b't') => parse_lit(b, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Value::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Value::Null),
        Some(_) => parse_number(b, pos),
        None => Err(Error::new("unexpected end of input")),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: Value) -> Result<Value, Error> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(Error::new(format!(
            "invalid literal at byte {pos}",
            pos = *pos
        )))
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Value, Error> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut float = false;
    while let Some(&c) = b.get(*pos) {
        match c {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text =
        std::str::from_utf8(&b[start..*pos]).map_err(|_| Error::new("invalid number encoding"))?;
    if float {
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::new(format!("bad number `{text}`")))
    } else if text.starts_with('-') {
        text.parse::<i64>()
            .map(Value::I64)
            .map_err(|_| Error::new(format!("bad number `{text}`")))
    } else {
        text.parse::<u64>()
            .map(Value::U64)
            .map_err(|_| Error::new(format!("bad number `{text}`")))
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, Error> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err(Error::new("unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or_else(|| Error::new("bad \\u escape"))?;
                        out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(Error::new("bad escape")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 character.
                let rest = std::str::from_utf8(&b[*pos..])
                    .map_err(|_| Error::new("invalid UTF-8 in string"))?;
                let c = rest.chars().next().expect("nonempty");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn value_round_trip() {
        let v = Value::Map(vec![
            ("name".into(), Value::Str("a \"quoted\" wl\n".into())),
            ("ipc".into(), Value::F64(1.25)),
            ("neg".into(), Value::I64(-3)),
            ("big".into(), Value::U64(u64::MAX)),
            (
                "flags".into(),
                Value::Seq(vec![Value::Bool(true), Value::Null]),
            ),
            ("empty".into(), Value::Map(vec![])),
        ]);
        let text = {
            let mut s = String::new();
            super::write_value(&v, &mut s, None, 0);
            s
        };
        assert_eq!(parse_value(&text).unwrap(), v);
    }

    #[test]
    fn typed_round_trip() {
        let mut m = BTreeMap::new();
        m.insert("x".to_string(), 3u64);
        let text = to_string(&m).unwrap();
        assert_eq!(text, r#"{"x":3}"#);
        let back: BTreeMap<String, u64> = from_str(&text).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn pretty_output_indents() {
        let v: Vec<u64> = vec![1, 2];
        let text = to_string_pretty(&v).unwrap();
        assert_eq!(text, "[\n  1,\n  2\n]");
    }

    #[test]
    fn malformed_inputs_error() {
        assert!(parse_value("{").is_err());
        assert!(parse_value("[1,]").is_err());
        assert!(parse_value("12 34").is_err());
        assert!(parse_value(r#""\q""#).is_err());
    }

    #[test]
    fn floats_keep_precision() {
        let x = 0.1f64 + 0.2;
        let text = to_string(&x).unwrap();
        let back: f64 = from_str(&text).unwrap();
        assert!(back == x, "{back} vs {x}");
    }
}
