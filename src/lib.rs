//! # ucp-sim — Alternate Path µ-op Cache Prefetching, reproduced in Rust
//!
//! This is the umbrella crate of the UCP reproduction (ISCA 2024, Singh,
//! Perais, Jimborean, Ros). It re-exports every workspace crate so examples
//! and downstream users need a single dependency:
//!
//! * [`isa`] — the fixed-width ISA model,
//! * [`workloads`] — the synthetic-workload generator and oracle executor,
//! * [`bpred`] — TAGE-SC-L, ITTAGE and confidence estimation,
//! * [`mem`] — caches, MSHRs, TLBs and DRAM,
//! * [`frontend`] — BTB, RAS, FTQ and the µ-op cache,
//! * [`prefetch`] — FNL+MMA, D-JOLT, the Entangling prefetcher and MRC,
//! * [`core`] — the cycle-level pipeline, the UCP engine, configuration,
//!   statistics and the experiment runner,
//! * [`telemetry`] — counters, event tracing, per-cycle accounting and
//!   interval time-series sampling.
//!
//! # Quickstart
//!
//! ```
//! use ucp_sim::core::{Simulator, SimConfig};
//! use ucp_sim::workloads::WorkloadSpec;
//!
//! let spec = WorkloadSpec::tiny("demo", 1);
//! let mut cfg = SimConfig::baseline();
//! cfg.ucp.enabled = true;
//! let stats = Simulator::run_spec(&spec, &cfg, 20_000, 50_000);
//! println!("IPC = {:.3}", stats.ipc());
//! ```

pub use sim_isa as isa;
pub use ucp_bpred as bpred;
pub use ucp_core as core;
pub use ucp_frontend as frontend;
pub use ucp_mem as mem;
pub use ucp_prefetch as prefetch;
pub use ucp_telemetry as telemetry;
pub use ucp_workloads as workloads;
