//! D-JOLT (Nakamura et al., IPC1 2020): the "distant jolt" prefetcher.
//!
//! D-JOLT observes that instruction misses recur in stable long-range
//! sequences tied to the calling context. It keeps a *signature* of recent
//! control-flow (here: a rolling hash of recent miss lines, standing in
//! for the return-address-based signature of the original), and two
//! signature-indexed tables:
//!
//! * a **long-range** table predicting the miss `DL` misses ahead,
//! * a **short-range** table predicting the next couple of misses,
//!
//! plus an *exact-miss* fallback table keyed by the current miss line.
//! The original is one of the largest IPC1 entries (~125 KB); the tables
//! here are sized to match that budget.

use crate::{InstPrefetcher, PrefetchTelemetry};
use sim_isa::Addr;
use std::collections::VecDeque;
use ucp_telemetry::Telemetry;

const LONG_DIST: usize = 8;
const SHORT_DIST: usize = 2;

#[derive(Clone, Copy, Default, Debug)]
struct Entry {
    tag: u16,
    target: u64,
    valid: bool,
}

/// The D-JOLT prefetcher.
#[derive(Debug)]
pub struct DJolt {
    /// Long-range table: signature → distant miss line (2^14 entries).
    long: Vec<Entry>,
    /// Short-range table: signature → next miss line (2^13 entries).
    short: Vec<Entry>,
    /// Fallback: miss line → next miss line (2^12 entries).
    next_miss: Vec<Entry>,
    miss_hist: VecDeque<u64>,
    /// Rolling signatures aligned with `miss_hist` (signature *before*
    /// each miss).
    sig_hist: VecDeque<u64>,
    sig: u64,
    pending: Vec<Addr>,
    tele: PrefetchTelemetry,
}

impl DJolt {
    /// Creates the IPC1-budget configuration.
    pub fn new() -> Self {
        DJolt {
            long: vec![Entry::default(); 1 << 14],
            short: vec![Entry::default(); 1 << 13],
            next_miss: vec![Entry::default(); 1 << 12],
            miss_hist: VecDeque::with_capacity(32),
            sig_hist: VecDeque::with_capacity(32),
            sig: 0,
            pending: Vec::new(),
            tele: PrefetchTelemetry::default(),
        }
    }

    #[inline]
    fn slot(table_bits: u32, key: u64) -> (usize, u16) {
        let h = key.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        (
            ((h >> 20) as usize) & ((1 << table_bits) - 1),
            ((h >> 48) & 0x3ff) as u16,
        )
    }
}

impl Default for DJolt {
    fn default() -> Self {
        DJolt::new()
    }
}

impl InstPrefetcher for DJolt {
    fn name(&self) -> &'static str {
        "D-JOLT"
    }

    fn storage_bits(&self) -> u64 {
        // ~125 KB, matching the published budget.
        let e = 10 + 26 + 1;
        (1u64 << 14) * e + (1u64 << 13) * e + (1u64 << 12) * e + 64 * 32
    }

    fn on_access(&mut self, line_addr: Addr, hit: bool) {
        if hit {
            return;
        }
        let line = line_addr.raw() >> 6;

        // Train: the signature seen LONG_DIST misses ago predicts this miss.
        if self.sig_hist.len() >= LONG_DIST {
            let old_sig = self.sig_hist[self.sig_hist.len() - LONG_DIST];
            let (i, t) = Self::slot(14, old_sig);
            self.long[i] = Entry {
                tag: t,
                target: line,
                valid: true,
            };
        }
        if self.sig_hist.len() >= SHORT_DIST {
            let old_sig = self.sig_hist[self.sig_hist.len() - SHORT_DIST];
            let (i, t) = Self::slot(13, old_sig);
            self.short[i] = Entry {
                tag: t,
                target: line,
                valid: true,
            };
        }
        if let Some(&prev) = self.miss_hist.back() {
            let (i, t) = Self::slot(12, prev);
            self.next_miss[i] = Entry {
                tag: t,
                target: line,
                valid: true,
            };
        }

        // Advance the signature: a fold of the last 8 miss lines, so the
        // same recurring subsequence reproduces the same signature.
        self.miss_hist.push_back(line);
        if self.miss_hist.len() > 32 {
            self.miss_hist.pop_front();
        }
        let mut sig = 0u64;
        for &m in self.miss_hist.iter().rev().take(8) {
            sig = sig.rotate_left(9) ^ m;
        }
        self.sig = sig;
        self.sig_hist.push_back(self.sig);
        if self.sig_hist.len() > 32 {
            self.sig_hist.pop_front();
        }

        // Predict from the current signature and the current miss.
        let (il, tl) = Self::slot(14, self.sig);
        if self.long[il].valid && self.long[il].tag == tl {
            self.pending.push(Addr::new(self.long[il].target << 6));
        }
        let (is, ts) = Self::slot(13, self.sig);
        if self.short[is].valid && self.short[is].tag == ts {
            self.pending.push(Addr::new(self.short[is].target << 6));
        }
        let (inm, tnm) = Self::slot(12, line);
        if self.next_miss[inm].valid && self.next_miss[inm].tag == tnm {
            self.pending
                .push(Addr::new(self.next_miss[inm].target << 6));
        }
    }

    fn attach_telemetry(&mut self, telemetry: &Telemetry) {
        self.tele.attach(telemetry);
    }

    fn save_state(&self, w: &mut sim_isa::StateWriter) {
        for table in [&self.long, &self.short, &self.next_miss] {
            w.put_usize(table.len());
            for e in table.iter() {
                w.put_u16(e.tag);
                w.put_u64(e.target);
                w.put_bool(e.valid);
            }
        }
        w.put_usize(self.miss_hist.len());
        for &l in &self.miss_hist {
            w.put_u64(l);
        }
        w.put_usize(self.sig_hist.len());
        for &s in &self.sig_hist {
            w.put_u64(s);
        }
        w.put_u64(self.sig);
        w.put_usize(self.pending.len());
        for &a in &self.pending {
            w.put_addr(a);
        }
    }

    fn restore_state(&mut self, r: &mut sim_isa::StateReader) {
        for table in [&mut self.long, &mut self.short, &mut self.next_miss] {
            let n = r.get_usize();
            assert_eq!(n, table.len(), "D-JOLT table geometry mismatch");
            for e in table.iter_mut() {
                e.tag = r.get_u16();
                e.target = r.get_u64();
                e.valid = r.get_bool();
            }
        }
        self.miss_hist.clear();
        for _ in 0..r.get_usize() {
            self.miss_hist.push_back(r.get_u64());
        }
        self.sig_hist.clear();
        for _ in 0..r.get_usize() {
            self.sig_hist.push_back(r.get_u64());
        }
        self.sig = r.get_u64();
        self.pending.clear();
        for _ in 0..r.get_usize() {
            self.pending.push(r.get_addr());
        }
    }

    fn drain(&mut self, out: &mut Vec<Addr>) {
        self.tele.on_drain(self.name(), &self.pending);
        out.append(&mut self.pending);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_chain(p: &mut DJolt, chain: &[Addr], reps: usize) {
        for _ in 0..reps {
            for &a in chain {
                p.on_access(a, false);
                let mut sink = Vec::new();
                p.drain(&mut sink);
            }
        }
    }

    #[test]
    fn learns_recurring_miss_sequences() {
        let mut p = DJolt::new();
        let chain: Vec<Addr> = (0..12)
            .map(|i| Addr::new(0x40_0000 + i * 0x2_0000))
            .collect();
        run_chain(&mut p, &chain, 4);
        // Replay the prefix; expect predictions covering later chain lines.
        let mut predicted = Vec::new();
        for &a in &chain[..4] {
            p.on_access(a, false);
            p.drain(&mut predicted);
        }
        let hits = chain[4..]
            .iter()
            .filter(|a| predicted.contains(&a.line()))
            .count();
        assert!(
            hits >= 2,
            "must predict distant chain members, got {hits} ({predicted:?})"
        );
    }

    #[test]
    fn hits_are_ignored() {
        let mut p = DJolt::new();
        for i in 0..20u64 {
            p.on_access(Addr::new(0x1000 + i * 64), true);
        }
        let mut out = Vec::new();
        p.drain(&mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn storage_is_about_125_kb() {
        let kb = DJolt::new().storage_bits() / 8192;
        assert!((100..150).contains(&kb), "got {kb} KB");
    }
}
