//! Baseline instruction prefetchers for the UCP reproduction.
//!
//! §III-C of the paper compares UCP against the leading IPC1 standalone
//! L1I prefetchers — FNL+MMA (and its updated `++` version), D-JOLT and the
//! Entangling prefetcher (EP / EP++) — and §VI-F against the Misprediction
//! Recovery Cache (MRC). All five are implemented here behind the
//! [`InstPrefetcher`] trait, plus [`Mrc`], which is not an L1I prefetcher
//! and has its own interface.
//!
//! These are faithful-in-spirit reimplementations from the IPC1
//! descriptions, sized to their published storage budgets (reported by
//! `storage_bits`, plotted in Fig. 16). Absolute coverage depends on the
//! rest of the model; the property that matters for the paper's argument —
//! standalone L1I prefetchers lift L1I hit rates but barely move the µ-op
//! cache — is structural and survives the approximation.
//!
//! # Examples
//!
//! ```
//! use ucp_prefetch::{InstPrefetcher, NextLine};
//! use sim_isa::Addr;
//!
//! let mut p = NextLine::new(2);
//! p.on_access(Addr::new(0x1000), false);
//! let mut out = Vec::new();
//! p.drain(&mut out);
//! assert_eq!(out, vec![Addr::new(0x1040), Addr::new(0x1080)]);
//! ```

pub mod djolt;
pub mod entangling;
pub mod fnl_mma;
pub mod mrc;

pub use djolt::DJolt;
pub use entangling::Entangling;
pub use fnl_mma::FnlMma;
pub use mrc::Mrc;

use sim_isa::Addr;
use ucp_telemetry::{Category, Counter, Telemetry, Tracer};

/// A standalone L1I prefetcher.
///
/// The pipeline reports every demand L1I access (line granularity) via
/// [`InstPrefetcher::on_access`] and drains candidates once per cycle into
/// the L1I prefetch queue.
pub trait InstPrefetcher: Send + std::fmt::Debug {
    /// Display name for figures (`FNL-MMA`, `D-JOLT`, `EP`, …).
    fn name(&self) -> &'static str;

    /// Storage budget in bits (plotted in Fig. 16).
    fn storage_bits(&self) -> u64;

    /// A demand access to `line` (64 B aligned) with its hit/miss outcome.
    fn on_access(&mut self, line: Addr, hit: bool);

    /// The frontend was redirected (misprediction flush). Wrong-path-aware
    /// prefetchers (EP++) discard not-yet-committed training.
    fn on_redirect(&mut self) {}

    /// Binds `prefetch.*` counters and the `Prefetch` trace category.
    /// Stateless prefetchers keep the default no-op.
    fn attach_telemetry(&mut self, _telemetry: &Telemetry) {}

    /// Serializes the prefetcher's mutable state into a checkpoint.
    /// Stateless prefetchers keep the default no-op; stateful ones must
    /// override both this and [`InstPrefetcher::restore_state`].
    fn save_state(&self, _w: &mut sim_isa::StateWriter) {}

    /// Restores state written by [`InstPrefetcher::save_state`].
    fn restore_state(&mut self, _r: &mut sim_isa::StateReader) {}

    /// Moves pending prefetch candidates (line addresses) into `out`.
    fn drain(&mut self, out: &mut Vec<Addr>);
}

/// Telemetry handles shared by the prefetcher implementations: a counter
/// of generated candidates plus trace events on every non-empty drain.
/// Detached (unobservable, still cheap) until [`PrefetchTelemetry::attach`].
#[derive(Clone, Debug, Default)]
pub struct PrefetchTelemetry {
    tracer: Tracer,
    candidates: Counter,
}

impl PrefetchTelemetry {
    /// Rebinds the handles to `t`'s registry and tracer.
    pub fn attach(&mut self, t: &Telemetry) {
        self.tracer = t.tracer.clone();
        self.candidates = t.registry.counter("prefetch.candidates");
    }

    /// Accounts one drain of `lines` produced by prefetcher `name`.
    pub fn on_drain(&self, name: &'static str, lines: &[Addr]) {
        if lines.is_empty() {
            return;
        }
        self.candidates.add(lines.len() as u64);
        self.tracer.emit(Category::Prefetch, "candidates", || {
            format!("src={name} n={} first={:#x}", lines.len(), lines[0].raw())
        });
    }
}

/// The trivial sequential prefetcher (fetches the next `n` lines on every
/// miss). Not part of the paper's comparison set, but a useful sanity
/// baseline and example implementation.
#[derive(Debug, Default)]
pub struct NextLine {
    degree: u64,
    pending: Vec<Addr>,
    tele: PrefetchTelemetry,
}

impl NextLine {
    /// Creates a next-`degree`-lines prefetcher.
    pub fn new(degree: u64) -> Self {
        NextLine {
            degree,
            pending: Vec::new(),
            tele: PrefetchTelemetry::default(),
        }
    }
}

impl InstPrefetcher for NextLine {
    fn name(&self) -> &'static str {
        "NextLine"
    }

    fn storage_bits(&self) -> u64 {
        8
    }

    fn on_access(&mut self, line: Addr, hit: bool) {
        if !hit {
            for i in 1..=self.degree {
                self.pending.push(Addr::new(line.line().raw() + i * 64));
            }
        }
    }

    fn attach_telemetry(&mut self, telemetry: &Telemetry) {
        self.tele.attach(telemetry);
    }

    fn save_state(&self, w: &mut sim_isa::StateWriter) {
        w.put_usize(self.pending.len());
        for &a in &self.pending {
            w.put_addr(a);
        }
    }

    fn restore_state(&mut self, r: &mut sim_isa::StateReader) {
        let n = r.get_usize();
        self.pending.clear();
        for _ in 0..n {
            self.pending.push(r.get_addr());
        }
    }

    fn drain(&mut self, out: &mut Vec<Addr>) {
        self.tele.on_drain("NextLine", &self.pending);
        out.append(&mut self.pending);
    }
}

/// A no-op prefetcher (the paper's `NONE` configuration).
#[derive(Debug, Default, Clone, Copy)]
pub struct NoPrefetch;

impl InstPrefetcher for NoPrefetch {
    fn name(&self) -> &'static str {
        "NONE"
    }

    fn storage_bits(&self) -> u64 {
        0
    }

    fn on_access(&mut self, _line: Addr, _hit: bool) {}

    fn drain(&mut self, _out: &mut Vec<Addr>) {}
}

/// Builds the paper's Fig. 5 prefetcher lineup by name.
///
/// Recognized names: `NONE`, `FNL-MMA`, `FNL-MMA++`, `D-JOLT`, `EP`,
/// `EP++`. Returns `None` for anything else.
pub fn by_name(name: &str) -> Option<Box<dyn InstPrefetcher>> {
    match name {
        "NONE" => Some(Box::new(NoPrefetch)),
        "FNL-MMA" => Some(Box::new(FnlMma::new(false))),
        "FNL-MMA++" => Some(Box::new(FnlMma::new(true))),
        "D-JOLT" => Some(Box::new(DJolt::new())),
        "EP" => Some(Box::new(Entangling::new(false))),
        "EP++" => Some(Box::new(Entangling::new(true))),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn next_line_only_fires_on_miss() {
        let mut p = NextLine::new(1);
        p.on_access(Addr::new(0x40), true);
        let mut out = Vec::new();
        p.drain(&mut out);
        assert!(out.is_empty());
        p.on_access(Addr::new(0x40), false);
        p.drain(&mut out);
        assert_eq!(out, vec![Addr::new(0x80)]);
    }

    #[test]
    fn none_never_prefetches() {
        let mut p = NoPrefetch;
        p.on_access(Addr::new(0x40), false);
        let mut out = Vec::new();
        p.drain(&mut out);
        assert!(out.is_empty());
        assert_eq!(p.storage_bits(), 0);
    }

    #[test]
    fn telemetry_counts_drained_candidates() {
        let t = ucp_telemetry::Telemetry::with_trace("prefetch", 16);
        let mut p = NextLine::new(2);
        p.attach_telemetry(&t);
        p.on_access(Addr::new(0x1000), false);
        let mut out = Vec::new();
        p.drain(&mut out);
        p.drain(&mut out); // empty drain must not emit
        assert_eq!(t.registry.snapshot().counters["prefetch.candidates"], 2);
        assert_eq!(t.tracer.events().len(), 1);
    }

    #[test]
    fn by_name_builds_the_fig5_lineup() {
        for n in ["NONE", "FNL-MMA", "FNL-MMA++", "D-JOLT", "EP", "EP++"] {
            let p = by_name(n).unwrap_or_else(|| panic!("{n} missing"));
            assert_eq!(p.name(), n);
        }
        assert!(by_name("bogus").is_none());
    }

    #[test]
    fn plus_plus_variants_cost_more_storage() {
        assert!(
            by_name("FNL-MMA++").unwrap().storage_bits()
                > by_name("FNL-MMA").unwrap().storage_bits()
        );
        assert!(by_name("EP++").unwrap().storage_bits() > by_name("EP").unwrap().storage_bits());
    }
}
