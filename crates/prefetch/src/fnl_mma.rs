//! FNL+MMA (Seznec, IPC1 2020): "Footprint Next Line + Multiple Miss
//! Ahead".
//!
//! Two cooperating components:
//!
//! * **FNL** — a footprint table keyed by the current line records which of
//!   the following few lines were touched soon after it; on any access the
//!   recorded footprint is prefetched.
//! * **MMA** — a miss-ahead table keyed by a missing line records the line
//!   that missed `D` misses later; on a miss the predicted distant miss is
//!   prefetched, jumping ahead of the sequential footprint.
//!
//! The `++` variant doubles both tables and runs MMA two distances deep.

use crate::{InstPrefetcher, PrefetchTelemetry};
use sim_isa::Addr;
use std::collections::VecDeque;
use ucp_telemetry::Telemetry;

const FOOTPRINT_LINES: u64 = 8;

#[derive(Clone, Copy, Default)]
struct FnlEntry {
    tag: u16,
    footprint: u8,
    valid: bool,
}

#[derive(Clone, Copy, Default)]
struct MmaEntry {
    tag: u16,
    target: u64, // line address
    valid: bool,
}

/// The FNL+MMA prefetcher.
#[derive(Debug)]
pub struct FnlMma {
    plus_plus: bool,
    log_fnl: u32,
    log_mma: u32,
    fnl: Vec<FnlEntry>,
    mma: Vec<MmaEntry>,
    mma2: Vec<MmaEntry>,
    /// Recent demand lines (newest at back) for footprint training.
    recent: VecDeque<u64>,
    /// Recent miss lines for MMA training.
    miss_hist: VecDeque<u64>,
    pending: Vec<Addr>,
    mma_dist: usize,
    tele: PrefetchTelemetry,
}

impl std::fmt::Debug for FnlEntry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "FnlEntry({:x},{:b})", self.tag, self.footprint)
    }
}

impl std::fmt::Debug for MmaEntry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "MmaEntry({:x}->{:x})", self.tag, self.target)
    }
}

impl FnlMma {
    /// Creates the IPC1 configuration (`plus_plus = false`) or the updated
    /// FNL-MMA++ (`true`).
    pub fn new(plus_plus: bool) -> Self {
        let (log_fnl, log_mma) = if plus_plus { (13, 13) } else { (12, 12) };
        FnlMma {
            plus_plus,
            log_fnl,
            log_mma,
            fnl: vec![FnlEntry::default(); 1 << log_fnl],
            mma: vec![MmaEntry::default(); 1 << log_mma],
            mma2: if plus_plus {
                vec![MmaEntry::default(); 1 << log_mma]
            } else {
                Vec::new()
            },
            recent: VecDeque::with_capacity(32),
            miss_hist: VecDeque::with_capacity(32),
            pending: Vec::new(),
            mma_dist: if plus_plus { 6 } else { 4 },
            tele: PrefetchTelemetry::default(),
        }
    }

    #[inline]
    fn fnl_slot(&self, line: u64) -> (usize, u16) {
        let h = line ^ (line >> self.log_fnl as u64);
        (
            (h as usize) & ((1 << self.log_fnl) - 1),
            ((line >> 7) & 0x3ff) as u16,
        )
    }

    #[inline]
    fn mma_slot(&self, line: u64) -> (usize, u16) {
        let h = line ^ (line >> (self.log_mma as u64 + 2));
        (
            (h as usize) & ((1 << self.log_mma) - 1),
            ((line >> 9) & 0x3ff) as u16,
        )
    }

    fn train_footprint(&mut self, line: u64) {
        // Mark `line` in the footprints of the recent preceding lines that
        // are within FOOTPRINT_LINES ahead of it.
        for &prev in self.recent.iter().rev().take(12) {
            if line > prev && line - prev <= FOOTPRINT_LINES {
                let (idx, tag) = self.fnl_slot(prev);
                let e = &mut self.fnl[idx];
                if !e.valid || e.tag != tag {
                    *e = FnlEntry {
                        tag,
                        footprint: 0,
                        valid: true,
                    };
                }
                e.footprint |= 1 << (line - prev - 1);
            }
        }
    }
}

impl InstPrefetcher for FnlMma {
    fn name(&self) -> &'static str {
        if self.plus_plus {
            "FNL-MMA++"
        } else {
            "FNL-MMA"
        }
    }

    fn storage_bits(&self) -> u64 {
        let fnl = (1u64 << self.log_fnl) * (10 + 8 + 1);
        let mma = (1u64 << self.log_mma) * (10 + 26 + 1);
        let mma2 = if self.plus_plus { mma } else { 0 };
        fnl + mma + mma2 + 64 * 26
    }

    fn on_access(&mut self, line_addr: Addr, hit: bool) {
        let line = line_addr.raw() >> 6;
        self.train_footprint(line);
        self.recent.push_back(line);
        if self.recent.len() > 24 {
            self.recent.pop_front();
        }

        // FNL: prefetch the learned footprint of this line.
        let (idx, tag) = self.fnl_slot(line);
        let e = self.fnl[idx];
        if e.valid && e.tag == tag {
            for b in 0..FOOTPRINT_LINES {
                if e.footprint & (1 << b) != 0 {
                    self.pending.push(Addr::new((line + b + 1) << 6));
                }
            }
        }

        if !hit {
            // MMA training: the line that missed `mma_dist` misses ago
            // predicts this miss.
            if self.miss_hist.len() >= self.mma_dist {
                let src = self.miss_hist[self.miss_hist.len() - self.mma_dist];
                let (i, t) = self.mma_slot(src);
                self.mma[i] = MmaEntry {
                    tag: t,
                    target: line,
                    valid: true,
                };
            }
            if self.plus_plus && self.miss_hist.len() >= self.mma_dist * 2 {
                let src = self.miss_hist[self.miss_hist.len() - self.mma_dist * 2];
                let (i, t) = self.mma_slot(src);
                self.mma2[i] = MmaEntry {
                    tag: t,
                    target: line,
                    valid: true,
                };
            }
            self.miss_hist.push_back(line);
            if self.miss_hist.len() > 32 {
                self.miss_hist.pop_front();
            }
            // MMA prediction: run ahead from this miss.
            let (i, t) = self.mma_slot(line);
            let m = self.mma[i];
            if m.valid && m.tag == t {
                self.pending.push(Addr::new(m.target << 6));
            }
            if self.plus_plus {
                let m2 = self.mma2[i];
                if m2.valid && m2.tag == t {
                    self.pending.push(Addr::new(m2.target << 6));
                }
            }
        }
    }

    fn attach_telemetry(&mut self, telemetry: &Telemetry) {
        self.tele.attach(telemetry);
    }

    fn save_state(&self, w: &mut sim_isa::StateWriter) {
        w.put_usize(self.fnl.len());
        for e in &self.fnl {
            w.put_u16(e.tag);
            w.put_u8(e.footprint);
            w.put_bool(e.valid);
        }
        for table in [&self.mma, &self.mma2] {
            w.put_usize(table.len());
            for e in table.iter() {
                w.put_u16(e.tag);
                w.put_u64(e.target);
                w.put_bool(e.valid);
            }
        }
        w.put_usize(self.recent.len());
        for &l in &self.recent {
            w.put_u64(l);
        }
        w.put_usize(self.miss_hist.len());
        for &l in &self.miss_hist {
            w.put_u64(l);
        }
        w.put_usize(self.pending.len());
        for &a in &self.pending {
            w.put_addr(a);
        }
    }

    fn restore_state(&mut self, r: &mut sim_isa::StateReader) {
        let nf = r.get_usize();
        assert_eq!(nf, self.fnl.len(), "FNL table geometry mismatch");
        for e in &mut self.fnl {
            e.tag = r.get_u16();
            e.footprint = r.get_u8();
            e.valid = r.get_bool();
        }
        for table in [&mut self.mma, &mut self.mma2] {
            let nm = r.get_usize();
            assert_eq!(nm, table.len(), "MMA table geometry mismatch");
            for e in table.iter_mut() {
                e.tag = r.get_u16();
                e.target = r.get_u64();
                e.valid = r.get_bool();
            }
        }
        self.recent.clear();
        for _ in 0..r.get_usize() {
            self.recent.push_back(r.get_u64());
        }
        self.miss_hist.clear();
        for _ in 0..r.get_usize() {
            self.miss_hist.push_back(r.get_u64());
        }
        self.pending.clear();
        for _ in 0..r.get_usize() {
            self.pending.push(r.get_addr());
        }
    }

    fn drain(&mut self, out: &mut Vec<Addr>) {
        self.tele.on_drain(self.name(), &self.pending);
        out.append(&mut self.pending);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(p: &mut FnlMma) -> Vec<Addr> {
        let mut v = Vec::new();
        p.drain(&mut v);
        v
    }

    #[test]
    fn footprint_learned_and_prefetched() {
        let mut p = FnlMma::new(false);
        // Touch A, then A+2 lines repeatedly: footprint of A learns +2.
        for _ in 0..3 {
            p.on_access(Addr::new(0x10_0000), false);
            p.on_access(Addr::new(0x10_0080), false);
            let _ = drain(&mut p);
        }
        p.on_access(Addr::new(0x10_0000), true);
        let out = drain(&mut p);
        assert!(
            out.contains(&Addr::new(0x10_0080)),
            "footprint must include line +2: {out:?}"
        );
    }

    #[test]
    fn mma_jumps_ahead_on_miss_chain() {
        let mut p = FnlMma::new(false);
        // A fixed miss chain of 6 widely separated lines, repeated.
        let chain: Vec<Addr> = (0..6)
            .map(|i| Addr::new(0x20_0000 + i * 0x1_0000))
            .collect();
        for _ in 0..4 {
            for &a in &chain {
                p.on_access(a, false);
                let _ = drain(&mut p);
            }
        }
        // On the first miss, MMA should predict the miss `dist` ahead.
        p.on_access(chain[0], false);
        let out = drain(&mut p);
        assert!(
            out.contains(&chain[4].line()),
            "MMA (dist 4) must predict {:?}, got {out:?}",
            chain[4]
        );
    }

    #[test]
    fn hits_do_not_train_mma() {
        let mut p = FnlMma::new(false);
        for i in 0..10u64 {
            p.on_access(Addr::new(0x30_0000 + i * 0x1000), true);
        }
        assert!(p.miss_hist.is_empty());
    }

    #[test]
    fn storage_budgets() {
        let base = FnlMma::new(false).storage_bits() / 8192;
        let pp = FnlMma::new(true).storage_bits() / 8192;
        assert!((15..40).contains(&base), "FNL-MMA ≈ 24 KB, got {base}");
        assert!(pp > base, "++ must be larger");
    }
}
