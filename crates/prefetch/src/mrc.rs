//! The Misprediction Recovery Cache (Nanda, Bondi & Dutta, 1998), the
//! paper's closest prior work (§VI-F).
//!
//! A fully-associative cache tagged by the *corrected branch target*. Each
//! entry stores the 64 µ-ops that followed that target last time. On a
//! misprediction, a tag match streams those µ-ops directly to the backend,
//! skipping the frontend refill; a miss allocates an entry that fills as
//! the corrected path retires.

use sim_isa::Addr;

/// µ-ops stored per MRC entry.
pub const MRC_UOPS_PER_ENTRY: usize = 64;

#[derive(Clone, Copy, Debug)]
struct MrcSlot {
    tag: Addr,
    valid: bool,
    /// µ-ops captured so far (an entry streams only what it holds).
    filled: u8,
    lru: u64,
}

/// The misprediction recovery cache.
#[derive(Clone, Debug)]
pub struct Mrc {
    slots: Vec<MrcSlot>,
    stamp: u64,
    /// Entry currently being filled by the retiring corrected path.
    filling: Option<usize>,
    lookups: u64,
    hits: u64,
}

impl Mrc {
    /// Creates an MRC with `entries` fully-associative entries.
    /// 64 entries ≈ 16.5 KB; the paper evaluates 16.5/33/66/132 KB.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is zero.
    pub fn new(entries: usize) -> Self {
        assert!(entries > 0);
        Mrc {
            slots: vec![
                MrcSlot {
                    tag: Addr::NULL,
                    valid: false,
                    filled: 0,
                    lru: 0
                };
                entries
            ],
            stamp: 0,
            filling: None,
            lookups: 0,
            hits: 0,
        }
    }

    /// Builds the size (in entries) for a given paper storage point in KB
    /// (16.5 → 64, 33 → 128, 66 → 256, 132 → 512).
    pub fn with_storage_kb(kb: f64) -> Self {
        let entries = ((kb * 8192.0) / Self::bits_per_entry() as f64)
            .round()
            .max(1.0) as usize;
        Mrc::new(entries)
    }

    fn bits_per_entry() -> u64 {
        // tag(46) + 64 µ-ops × 32 + valid/fill/lru(18) = 2112 bits, giving
        // the paper's 16.5 KB at 64 entries.
        46 + (MRC_UOPS_PER_ENTRY as u64) * 32 + 18
    }

    /// Looks up a corrected branch target on a misprediction. On a hit,
    /// returns how many µ-ops the entry can stream.
    pub fn lookup(&mut self, corrected_target: Addr) -> Option<u32> {
        self.lookups += 1;
        self.stamp += 1;
        for s in &mut self.slots {
            if s.valid && s.tag == corrected_target {
                s.lru = self.stamp;
                self.hits += 1;
                return Some(u32::from(s.filled));
            }
        }
        None
    }

    /// Allocates (or refreshes) an entry for a corrected target and starts
    /// filling it; subsequent [`Mrc::fill_uop`] calls append retired µ-ops.
    pub fn allocate(&mut self, corrected_target: Addr) {
        self.stamp += 1;
        // Refresh in place if present.
        if let Some(i) = self
            .slots
            .iter()
            .position(|s| s.valid && s.tag == corrected_target)
        {
            self.slots[i].lru = self.stamp;
            self.filling = Some(i);
            return;
        }
        let victim = (0..self.slots.len())
            .min_by_key(|&i| {
                if self.slots[i].valid {
                    self.slots[i].lru
                } else {
                    0
                }
            })
            .expect("nonempty");
        self.slots[victim] = MrcSlot {
            tag: corrected_target,
            valid: true,
            filled: 0,
            lru: self.stamp,
        };
        self.filling = Some(victim);
    }

    /// Appends one retired corrected-path µ-op to the filling entry.
    /// Filling stops at entry capacity or on the next [`Mrc::allocate`].
    pub fn fill_uop(&mut self) {
        if let Some(i) = self.filling {
            let s = &mut self.slots[i];
            if (s.filled as usize) < MRC_UOPS_PER_ENTRY {
                s.filled += 1;
            } else {
                self.filling = None;
            }
        }
    }

    /// Hit rate over misprediction lookups.
    pub fn hit_rate(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            self.hits as f64 / self.lookups as f64
        }
    }

    /// Storage in bits.
    pub fn storage_bits(&self) -> u64 {
        self.slots.len() as u64 * Self::bits_per_entry()
    }

    /// Storage in KB.
    pub fn storage_kb(&self) -> f64 {
        self.storage_bits() as f64 / 8192.0
    }

    /// Serializes the mutable state (slots, fill pointer, statistics).
    pub fn save_state(&self, w: &mut sim_isa::StateWriter) {
        w.put_usize(self.slots.len());
        for s in &self.slots {
            w.put_addr(s.tag);
            w.put_bool(s.valid);
            w.put_u8(s.filled);
            w.put_u64(s.lru);
        }
        w.put_u64(self.stamp);
        w.put_bool(self.filling.is_some());
        w.put_usize(self.filling.unwrap_or(0));
        w.put_u64(self.lookups);
        w.put_u64(self.hits);
    }

    /// Restores state written by [`Mrc::save_state`].
    pub fn restore_state(&mut self, r: &mut sim_isa::StateReader) {
        let n = r.get_usize();
        assert_eq!(n, self.slots.len(), "MRC geometry mismatch");
        for s in &mut self.slots {
            s.tag = r.get_addr();
            s.valid = r.get_bool();
            s.filled = r.get_u8();
            s.lru = r.get_u64();
        }
        self.stamp = r.get_u64();
        let has_filling = r.get_bool();
        let filling = r.get_usize();
        self.filling = has_filling.then_some(filling);
        self.lookups = r.get_u64();
        self.hits = r.get_u64();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocate_fill_then_hit() {
        let mut m = Mrc::new(4);
        let t = Addr::new(0x4000);
        assert_eq!(m.lookup(t), None);
        m.allocate(t);
        for _ in 0..30 {
            m.fill_uop();
        }
        assert_eq!(m.lookup(t), Some(30));
    }

    #[test]
    fn fill_saturates_at_capacity() {
        let mut m = Mrc::new(2);
        m.allocate(Addr::new(0x10));
        for _ in 0..100 {
            m.fill_uop();
        }
        assert_eq!(m.lookup(Addr::new(0x10)), Some(MRC_UOPS_PER_ENTRY as u32));
    }

    #[test]
    fn lru_replacement() {
        let mut m = Mrc::new(2);
        m.allocate(Addr::new(0x10));
        m.allocate(Addr::new(0x20));
        let _ = m.lookup(Addr::new(0x10)); // refresh
        m.allocate(Addr::new(0x30)); // evicts 0x20
        assert!(m.lookup(Addr::new(0x10)).is_some());
        assert!(m.lookup(Addr::new(0x20)).is_none());
    }

    #[test]
    fn storage_points_match_paper() {
        for (kb, entries) in [(16.5, 64), (33.0, 128), (66.0, 256), (132.0, 512)] {
            let m = Mrc::with_storage_kb(kb);
            assert_eq!(m.slots.len(), entries, "for {kb} KB");
            assert!((m.storage_kb() - kb).abs() / kb < 0.05);
        }
    }

    #[test]
    fn hit_rate_tracks() {
        let mut m = Mrc::new(2);
        m.allocate(Addr::new(0x10));
        let _ = m.lookup(Addr::new(0x10));
        let _ = m.lookup(Addr::new(0x20));
        assert!((m.hit_rate() - 0.5).abs() < 1e-9);
    }
}
