//! The Entangling instruction prefetcher (Ros & Jimborean, IPC1 2020 /
//! ISCA 2021), EP and its wrong-path-aware EP++ refinement.
//!
//! On an L1I miss of line `D`, EP searches the recent access stream for a
//! *source* line `S` fetched early enough to have hidden `D`'s miss
//! latency, and **entangles** `S → D`. From then on, any access to `S`
//! prefetches its entangled destinations, making them timely by
//! construction.
//!
//! EP++ additionally (a) holds more destinations per source and (b) is
//! wrong-path aware: training triggered by accesses that are squashed by a
//! pipeline redirect is discarded rather than polluting the entangling
//! table.

use crate::{InstPrefetcher, PrefetchTelemetry};
use sim_isa::Addr;
use std::collections::VecDeque;
use ucp_telemetry::Telemetry;

/// How many accesses back the entangled source is chosen (stands in for
/// "miss latency expressed in fetched lines").
const ENTANGLE_DIST: usize = 12;

#[derive(Clone, Debug, Default)]
struct EntEntry {
    tag: u16,
    dests: Vec<u64>,
    valid: bool,
}

/// The entangling prefetcher.
#[derive(Debug)]
pub struct Entangling {
    plus_plus: bool,
    log_entries: u32,
    max_dests: usize,
    table: Vec<EntEntry>,
    /// Recent demand lines, newest at the back.
    recent: VecDeque<u64>,
    /// Recent training, undoable by EP++ on a redirect:
    /// (table index, destination added, tick of training).
    speculative_training: Vec<(usize, u64, u64)>,
    /// Drain ticks (≈ cycles); training older than the commit window is
    /// considered architecturally confirmed.
    ticks: u64,
    pending: Vec<Addr>,
    tele: PrefetchTelemetry,
}

impl Entangling {
    /// Creates EP (`plus_plus = false`, cost-effective ISCA'21 version) or
    /// EP++ (`true`, the wrong-path-aware TC'24 version).
    pub fn new(plus_plus: bool) -> Self {
        let log_entries = if plus_plus { 12 } else { 11 };
        Entangling {
            plus_plus,
            log_entries,
            max_dests: if plus_plus { 4 } else { 2 },
            table: vec![EntEntry::default(); 1 << log_entries],
            recent: VecDeque::with_capacity(ENTANGLE_DIST + 4),
            speculative_training: Vec::new(),
            ticks: 0,
            pending: Vec::new(),
            tele: PrefetchTelemetry::default(),
        }
    }

    #[inline]
    fn slot(&self, line: u64) -> (usize, u16) {
        let h = line.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        (
            ((h >> 16) as usize) & ((1 << self.log_entries) - 1),
            ((h >> 50) & 0x3ff) as u16,
        )
    }

    fn entangle(&mut self, src: u64, dst: u64) {
        let (i, t) = self.slot(src);
        let max_dests = self.max_dests;
        let e = &mut self.table[i];
        if !e.valid || e.tag != t {
            *e = EntEntry {
                tag: t,
                dests: Vec::with_capacity(max_dests),
                valid: true,
            };
        }
        if e.dests.contains(&dst) {
            return;
        }
        if e.dests.len() >= max_dests {
            e.dests.remove(0);
        }
        e.dests.push(dst);
        if self.plus_plus {
            let tick = self.ticks;
            self.speculative_training.push((i, dst, tick));
        }
    }
}

impl InstPrefetcher for Entangling {
    fn name(&self) -> &'static str {
        if self.plus_plus {
            "EP++"
        } else {
            "EP"
        }
    }

    fn storage_bits(&self) -> u64 {
        // tag(10) + valid(1) + max_dests × 26-bit compressed lines.
        (1u64 << self.log_entries) * (11 + self.max_dests as u64 * 26) + 32 * 26
    }

    fn on_access(&mut self, line_addr: Addr, hit: bool) {
        let line = line_addr.raw() >> 6;
        if !hit {
            // Entangle with the line fetched ENTANGLE_DIST accesses ago
            // (early enough to hide the miss), falling back to the oldest
            // recorded access.
            let src = if self.recent.len() >= ENTANGLE_DIST {
                Some(self.recent[self.recent.len() - ENTANGLE_DIST])
            } else {
                self.recent.front().copied()
            };
            if let Some(src) = src {
                if src != line {
                    self.entangle(src, line);
                }
            }
        }
        self.recent.push_back(line);
        if self.recent.len() > ENTANGLE_DIST + 4 {
            self.recent.pop_front();
        }
        // Fire this line's entangled destinations.
        let (i, t) = self.slot(line);
        let e = &self.table[i];
        if e.valid && e.tag == t {
            for &d in &e.dests {
                self.pending.push(Addr::new(d << 6));
            }
        }
    }

    fn on_redirect(&mut self) {
        if !self.plus_plus {
            return;
        }
        // Wrong-path awareness: undo entanglements trained since the last
        // redirect — they were driven by squashed fetches.
        for (i, dst, _) in self.speculative_training.drain(..) {
            let e = &mut self.table[i];
            if let Some(pos) = e.dests.iter().position(|&d| d == dst) {
                e.dests.remove(pos);
            }
        }
    }

    fn attach_telemetry(&mut self, telemetry: &Telemetry) {
        self.tele.attach(telemetry);
    }

    fn save_state(&self, w: &mut sim_isa::StateWriter) {
        w.put_usize(self.table.len());
        for e in &self.table {
            w.put_u16(e.tag);
            w.put_bool(e.valid);
            w.put_usize(e.dests.len());
            for &d in &e.dests {
                w.put_u64(d);
            }
        }
        w.put_usize(self.recent.len());
        for &l in &self.recent {
            w.put_u64(l);
        }
        w.put_usize(self.speculative_training.len());
        for &(i, dst, tick) in &self.speculative_training {
            w.put_usize(i);
            w.put_u64(dst);
            w.put_u64(tick);
        }
        w.put_u64(self.ticks);
        w.put_usize(self.pending.len());
        for &a in &self.pending {
            w.put_addr(a);
        }
    }

    fn restore_state(&mut self, r: &mut sim_isa::StateReader) {
        let n = r.get_usize();
        assert_eq!(n, self.table.len(), "entangling table geometry mismatch");
        for e in &mut self.table {
            e.tag = r.get_u16();
            e.valid = r.get_bool();
            e.dests.clear();
            for _ in 0..r.get_usize() {
                e.dests.push(r.get_u64());
            }
        }
        self.recent.clear();
        for _ in 0..r.get_usize() {
            self.recent.push_back(r.get_u64());
        }
        self.speculative_training.clear();
        for _ in 0..r.get_usize() {
            let i = r.get_usize();
            let dst = r.get_u64();
            let tick = r.get_u64();
            self.speculative_training.push((i, dst, tick));
        }
        self.ticks = r.get_u64();
        self.pending.clear();
        for _ in 0..r.get_usize() {
            self.pending.push(r.get_addr());
        }
    }

    fn drain(&mut self, out: &mut Vec<Addr>) {
        self.tele.on_drain(self.name(), &self.pending);
        out.append(&mut self.pending);
        if self.plus_plus {
            self.ticks += 1;
            let horizon = self.ticks.saturating_sub(32);
            // Training older than the commit window is confirmed.
            self.speculative_training.retain(|&(_, _, t)| t >= horizon);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(p: &mut Entangling) -> Vec<Addr> {
        let mut v = Vec::new();
        p.drain(&mut v);
        v
    }

    /// A stream where line D always misses ENTANGLE_DIST accesses after S.
    fn stream(s: u64, d: u64) -> Vec<(Addr, bool)> {
        let mut v = vec![(Addr::new(s << 6), true)];
        for i in 0..ENTANGLE_DIST as u64 - 1 {
            v.push((Addr::new((0x9000 + i) << 6), true));
        }
        v.push((Addr::new(d << 6), false));
        v
    }

    #[test]
    fn entangles_source_with_destination() {
        let mut p = Entangling::new(false);
        for _ in 0..3 {
            for (a, hit) in stream(0x100, 0x500) {
                p.on_access(a, hit);
            }
            let _ = drain(&mut p);
        }
        // Touching the source now prefetches the destination.
        p.on_access(Addr::new(0x100 << 6), true);
        let out = drain(&mut p);
        assert!(out.contains(&Addr::new(0x500 << 6)), "{out:?}");
    }

    #[test]
    fn destination_capacity_is_bounded() {
        let mut p = Entangling::new(false);
        for d in 0..5u64 {
            for (a, hit) in stream(0x100, 0x500 + d) {
                p.on_access(a, hit);
            }
            let _ = drain(&mut p);
        }
        p.on_access(Addr::new(0x100 << 6), true);
        let out = drain(&mut p);
        assert!(out.len() <= 2, "EP holds 2 destinations: {out:?}");
    }

    #[test]
    fn plus_plus_discards_wrong_path_training() {
        let mut p = Entangling::new(true);
        for (a, hit) in stream(0x100, 0x500) {
            p.on_access(a, hit);
        }
        p.on_redirect(); // everything above was wrong-path
        p.on_access(Addr::new(0x100 << 6), true);
        let out = drain(&mut p);
        assert!(
            !out.contains(&Addr::new(0x500 << 6)),
            "squashed training must not fire: {out:?}"
        );
    }

    #[test]
    fn plus_plus_keeps_committed_training() {
        let mut p = Entangling::new(true);
        for _ in 0..3 {
            for (a, hit) in stream(0x100, 0x500) {
                p.on_access(a, hit);
            }
            let _ = drain(&mut p); // drains age out speculative markers
        }
        // Force the speculative buffer to be considered committed.
        for _ in 0..70 {
            p.on_access(Addr::new(0xf000 << 6), true);
            let _ = drain(&mut p);
        }
        p.on_redirect();
        p.on_access(Addr::new(0x100 << 6), true);
        let out = drain(&mut p);
        assert!(out.contains(&Addr::new(0x500 << 6)), "{out:?}");
    }

    #[test]
    fn storage_budgets() {
        let ep = Entangling::new(false).storage_bits() / 8192;
        let epp = Entangling::new(true).storage_bits() / 8192;
        assert!((10..30).contains(&ep), "EP ≈ 16 KB, got {ep}");
        assert!(epp > ep);
    }
}
