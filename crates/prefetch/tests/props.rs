//! Property-based tests for the instruction prefetchers: output sanity
//! (line-aligned, bounded volume), determinism, and trait-level contracts
//! that the pipeline relies on.

use proptest::prelude::*;
use sim_isa::Addr;
use ucp_prefetch::{by_name, Mrc};

const NAMES: [&str; 6] = ["NONE", "FNL-MMA", "FNL-MMA++", "D-JOLT", "EP", "EP++"];

fn arb_stream() -> impl Strategy<Value = Vec<(u64, bool)>> {
    proptest::collection::vec((0u64..512, any::<bool>()), 1..400)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// All prefetchers emit 64 B-aligned line addresses and never emit an
    /// unbounded number of candidates per access.
    #[test]
    fn outputs_are_line_aligned_and_bounded(stream in arb_stream(), which in 0usize..6) {
        let mut p = by_name(NAMES[which]).expect("known name");
        let mut out = Vec::new();
        for &(l, hit) in &stream {
            p.on_access(Addr::new(0x10_0000 + l * 64), hit);
            let before = out.len();
            p.drain(&mut out);
            prop_assert!(out.len() - before <= 64, "flood from one access");
            for a in &out[before..] {
                prop_assert_eq!(a.raw() % 64, 0, "prefetch must be line-aligned");
            }
        }
    }

    /// Identical streams produce identical prefetch sequences.
    #[test]
    fn prefetchers_are_deterministic(stream in arb_stream(), which in 1usize..6) {
        let mut p1 = by_name(NAMES[which]).expect("known");
        let mut p2 = by_name(NAMES[which]).expect("known");
        let mut o1 = Vec::new();
        let mut o2 = Vec::new();
        for &(l, hit) in &stream {
            let a = Addr::new(0x20_0000 + l * 64);
            p1.on_access(a, hit);
            p2.on_access(a, hit);
            p1.drain(&mut o1);
            p2.drain(&mut o2);
            prop_assert_eq!(&o1, &o2);
        }
    }

    /// Redirects never panic and leave the prefetcher functional.
    #[test]
    fn redirects_are_safe(stream in arb_stream(), which in 0usize..6) {
        let mut p = by_name(NAMES[which]).expect("known");
        let mut out = Vec::new();
        for (i, &(l, hit)) in stream.iter().enumerate() {
            p.on_access(Addr::new(0x30_0000 + l * 64), hit);
            if i % 7 == 0 {
                p.on_redirect();
            }
            p.drain(&mut out);
        }
        // Still alive and reporting storage.
        let _ = p.storage_bits();
    }

    /// MRC: a lookup can only hit a target that was previously allocated,
    /// and streamed-µ-op counts never exceed the entry capacity.
    #[test]
    fn mrc_only_returns_allocated_targets(
        ops in proptest::collection::vec((0u64..16, any::<bool>(), 0u8..80), 1..200),
    ) {
        let mut m = Mrc::new(4);
        let mut allocated = std::collections::HashSet::new();
        for &(t, alloc, fills) in &ops {
            let target = Addr::new(0x5000 + t * 4);
            if alloc {
                m.allocate(target);
                allocated.insert(target);
                for _ in 0..fills {
                    m.fill_uop();
                }
            } else {
                if let Some(n) = m.lookup(target) {
                    prop_assert!(allocated.contains(&target), "hit on never-allocated target");
                    prop_assert!(n <= ucp_prefetch::mrc::MRC_UOPS_PER_ENTRY as u32);
                }
            }
        }
    }
}
