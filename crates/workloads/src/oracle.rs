//! The architectural oracle: executes the program's correct path.

use crate::behavior::{hash_event, splitmix64, Behavior, CondBehavior};
use crate::program::Program;
use sim_isa::{Addr, DynInst, InstKind};

/// Executes a [`Program`] architecturally, producing the committed dynamic
/// instruction stream (the "correct path").
///
/// The oracle owns all behavioural state: per-branch occurrence counters,
/// loop iteration counters, last outcomes for correlated branches, and the
/// call stack. Given the same program and seed, the stream is identical on
/// every run.
///
/// The stream is unbounded (workload drivers loop forever); callers decide
/// how many instructions to consume.
///
/// # Examples
///
/// ```
/// use ucp_workloads::{suite, Oracle};
/// let spec = &suite::workload_suite()[0];
/// let program = spec.build();
/// let mut o = Oracle::new(&program, spec.seed);
/// for _ in 0..100 {
///     let d = o.next_inst();
///     assert!(program.inst_at(d.pc).is_some());
/// }
/// ```
#[derive(Debug)]
pub struct Oracle<'p> {
    prog: &'p Program,
    seed: u64,
    pc: Addr,
    /// Per-instruction dynamic occurrence counters.
    occ: Vec<u64>,
    /// Last outcome of each conditional branch (for `Correlated`).
    last_outcome: Vec<bool>,
    /// Loop-branch state: iterations completed in the current trip.
    loop_iter: Vec<u32>,
    /// Loop-branch state: number of completed trips (re-seeds variable trips).
    loop_exits: Vec<u32>,
    call_stack: Vec<Addr>,
    retired: u64,
}

impl<'p> Oracle<'p> {
    /// Maximum modelled call depth; deeper calls still execute but the
    /// oldest return addresses are dropped (programs are generated as DAGs,
    /// so this never triggers in practice).
    pub const MAX_CALL_DEPTH: usize = 4096;

    /// Creates an oracle positioned at the program entry.
    pub fn new(prog: &'p Program, seed: u64) -> Self {
        let n = prog.len();
        Oracle {
            prog,
            seed,
            pc: prog.entry(),
            occ: vec![0; n],
            last_outcome: vec![false; n],
            loop_iter: vec![0; n],
            loop_exits: vec![0; n],
            call_stack: Vec::with_capacity(256),
            retired: 0,
        }
    }

    /// Total instructions produced so far.
    #[inline]
    pub fn retired(&self) -> u64 {
        self.retired
    }

    /// Current architectural PC (the next instruction to execute).
    #[inline]
    pub fn pc(&self) -> Addr {
        self.pc
    }

    /// Current call depth.
    #[inline]
    pub fn call_depth(&self) -> usize {
        self.call_stack.len()
    }

    fn eval_cond(&mut self, idx: usize, occ: u64, b: &CondBehavior) -> bool {
        match *b {
            CondBehavior::Biased { taken_prob_milli } => {
                hash_event(self.seed ^ ((idx as u64) << 32) ^ occ, taken_prob_milli)
            }
            CondBehavior::Loop { min_trip, max_trip } => {
                let trips = self.loop_exits[idx];
                let trip = if min_trip == max_trip {
                    min_trip
                } else {
                    let span = u64::from(max_trip - min_trip + 1);
                    min_trip
                        + (splitmix64(self.seed ^ ((idx as u64) << 24) ^ u64::from(trips)) % span)
                            as u32
                };
                let iter = self.loop_iter[idx] + 1;
                if iter >= trip.max(1) {
                    // Exit iteration: not taken.
                    self.loop_iter[idx] = 0;
                    self.loop_exits[idx] = trips.wrapping_add(1);
                    false
                } else {
                    self.loop_iter[idx] = iter;
                    true
                }
            }
            CondBehavior::Pattern { bits, len } => {
                let pos = (occ % u64::from(len.clamp(1, 64))) as u32;
                (bits >> pos) & 1 == 1
            }
            CondBehavior::Correlated {
                other,
                invert,
                noise_milli,
            } => {
                let base = self
                    .last_outcome
                    .get(other as usize)
                    .copied()
                    .unwrap_or(false)
                    ^ invert;
                if noise_milli > 0
                    && hash_event(self.seed ^ 0xC0FE ^ ((idx as u64) << 20) ^ occ, noise_milli)
                {
                    !base
                } else {
                    base
                }
            }
        }
    }

    /// Executes one instruction and returns its dynamic record.
    ///
    /// # Panics
    ///
    /// Panics if the PC ever leaves the program image (generator bug).
    pub fn next_inst(&mut self) -> DynInst {
        let pc = self.pc;
        let idx = self
            .prog
            .index_of(pc)
            .unwrap_or_else(|| panic!("oracle PC {pc} escaped the program image"));
        let inst = *self
            .prog
            .inst_at(pc)
            .expect("index_of succeeded, inst_at must too");
        let occ = self.occ[idx];
        self.occ[idx] = occ + 1;

        let mut taken = false;
        let mut mem_addr = Addr::NULL;
        let next_pc = match inst.kind {
            InstKind::Op(_) => pc.next_inst(),
            InstKind::Load | InstKind::Store => {
                if let Behavior::Mem(m) = self.prog.behavior(idx) {
                    mem_addr = m.addr(occ, self.seed ^ ((idx as u64) << 16));
                }
                pc.next_inst()
            }
            InstKind::CondBranch { target } => {
                let b = match self.prog.behavior(idx) {
                    Behavior::Cond(c) => c.clone(),
                    // A conditional branch without a model defaults to
                    // strongly not-taken.
                    _ => CondBehavior::Biased {
                        taken_prob_milli: 20,
                    },
                };
                taken = self.eval_cond(idx, occ, &b);
                self.last_outcome[idx] = taken;
                if taken {
                    target
                } else {
                    pc.next_inst()
                }
            }
            InstKind::Jump { target } => {
                taken = true;
                target
            }
            InstKind::Call { target } => {
                taken = true;
                self.push_return(pc.next_inst());
                target
            }
            InstKind::IndirectJump => {
                taken = true;
                self.indirect_target(idx, occ)
            }
            InstKind::IndirectCall => {
                taken = true;
                self.push_return(pc.next_inst());
                self.indirect_target(idx, occ)
            }
            InstKind::Return => {
                taken = true;
                // A return with an empty stack restarts the driver; the
                // generator terminates the driver with a jump so this is a
                // safety net only.
                self.call_stack.pop().unwrap_or_else(|| self.prog.entry())
            }
        };

        self.pc = next_pc;
        self.retired += 1;
        DynInst {
            pc,
            inst,
            next_pc,
            taken,
            mem_addr,
        }
    }

    fn push_return(&mut self, ra: Addr) {
        if self.call_stack.len() >= Self::MAX_CALL_DEPTH {
            self.call_stack.remove(0);
        }
        self.call_stack.push(ra);
    }

    fn indirect_target(&self, idx: usize, occ: u64) -> Addr {
        match self.prog.behavior(idx) {
            Behavior::Indirect(b) => b.target(occ, self.seed ^ ((idx as u64) << 8)),
            other => panic!(
                "indirect branch at index {idx} lacks an indirect behaviour (found {other:?})"
            ),
        }
    }

    /// Serializes the full behavioural state. The program and seed are
    /// reconstruction parameters, not state; restore requires an oracle
    /// built over the same program with the same seed.
    pub fn save_state(&self, w: &mut sim_isa::StateWriter) {
        w.put_u64(self.seed);
        w.put_addr(self.pc);
        w.put_usize(self.occ.len());
        for &o in &self.occ {
            w.put_u64(o);
        }
        for &b in &self.last_outcome {
            w.put_bool(b);
        }
        for &i in &self.loop_iter {
            w.put_u32(i);
        }
        for &e in &self.loop_exits {
            w.put_u32(e);
        }
        w.put_usize(self.call_stack.len());
        for &a in &self.call_stack {
            w.put_addr(a);
        }
        w.put_u64(self.retired);
    }

    /// Restores state written by [`Oracle::save_state`].
    pub fn restore_state(&mut self, r: &mut sim_isa::StateReader) {
        let seed = r.get_u64();
        assert_eq!(seed, self.seed, "oracle seed mismatch");
        self.pc = r.get_addr();
        let n = r.get_usize();
        assert_eq!(n, self.occ.len(), "oracle program-length mismatch");
        for o in &mut self.occ {
            *o = r.get_u64();
        }
        for b in &mut self.last_outcome {
            *b = r.get_bool();
        }
        for i in &mut self.loop_iter {
            *i = r.get_u32();
        }
        for e in &mut self.loop_exits {
            *e = r.get_u32();
        }
        self.call_stack.clear();
        for _ in 0..r.get_usize() {
            self.call_stack.push(r.get_addr());
        }
        self.retired = r.get_u64();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::behavior::{Behavior, CondBehavior, IndirectBehavior};
    use crate::program::PROGRAM_BASE;
    use sim_isa::{ExecClass, StaticInst};

    fn addr(i: u64) -> Addr {
        Addr::new(PROGRAM_BASE + i * 4)
    }

    /// idx0: alu, idx1: loop branch back to 0, idx2: jump to 0 (after exit).
    fn loop_program(min_trip: u32, max_trip: u32) -> Program {
        let insts = vec![
            StaticInst::new(InstKind::Op(ExecClass::Alu)),
            StaticInst::new(InstKind::CondBranch { target: addr(0) }),
            StaticInst::new(InstKind::Jump { target: addr(0) }),
        ];
        let behaviors = vec![
            Behavior::None,
            Behavior::Cond(CondBehavior::Loop { min_trip, max_trip }),
            Behavior::None,
        ];
        Program::new(insts, behaviors, addr(0))
    }

    #[test]
    fn fixed_loop_iterates_exactly_trip_times() {
        let p = loop_program(5, 5);
        let mut o = Oracle::new(&p, 1);
        let mut body_execs = 0;
        loop {
            let d = o.next_inst();
            if d.pc == addr(0) {
                body_execs += 1;
            }
            if d.pc == addr(1) && !d.taken {
                break;
            }
        }
        assert_eq!(body_execs, 5, "loop body must run `trip` times");
    }

    #[test]
    fn variable_loop_trip_stays_in_range() {
        let p = loop_program(2, 6);
        let mut o = Oracle::new(&p, 99);
        let mut trips = Vec::new();
        let mut body = 0;
        for _ in 0..2000 {
            let d = o.next_inst();
            if d.pc == addr(0) {
                body += 1;
            }
            if d.pc == addr(1) && !d.taken {
                trips.push(body);
                body = 0;
            }
        }
        assert!(trips.len() > 10);
        assert!(trips.iter().all(|&t| (2..=6).contains(&t)), "{trips:?}");
        // The variable trip must actually vary.
        assert!(trips.iter().any(|&t| t != trips[0]));
    }

    #[test]
    fn deterministic_across_runs() {
        let p = loop_program(2, 9);
        let run = |seed| {
            let mut o = Oracle::new(&p, seed);
            (0..500).map(|_| o.next_inst()).collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn calls_and_returns_balance() {
        // 0: call 3 ; 1: jump 0 ; 2: (pad) ; 3: alu ; 4: ret
        let insts = vec![
            StaticInst::new(InstKind::Call { target: addr(3) }),
            StaticInst::new(InstKind::Jump { target: addr(0) }),
            StaticInst::new(InstKind::Op(ExecClass::Alu)),
            StaticInst::new(InstKind::Op(ExecClass::Alu)),
            StaticInst::new(InstKind::Return),
        ];
        let behaviors = vec![Behavior::None; 5];
        let p = Program::new(insts, behaviors, addr(0));
        let mut o = Oracle::new(&p, 3);
        for _ in 0..100 {
            let d = o.next_inst();
            if d.inst.kind == InstKind::Return {
                assert_eq!(d.next_pc, addr(1), "return must resume after the call");
            }
            assert!(o.call_depth() <= 1);
        }
    }

    #[test]
    fn indirect_jump_follows_behavior() {
        let insts = vec![
            StaticInst::new(InstKind::IndirectJump),
            StaticInst::new(InstKind::Jump { target: addr(0) }),
            StaticInst::new(InstKind::Jump { target: addr(0) }),
        ];
        let behaviors = vec![
            Behavior::Indirect(IndirectBehavior::Rotate {
                targets: vec![addr(1), addr(2)].into(),
            }),
            Behavior::None,
            Behavior::None,
        ];
        let p = Program::new(insts, behaviors, addr(0));
        let mut o = Oracle::new(&p, 0);
        let d0 = o.next_inst();
        assert_eq!(d0.next_pc, addr(1));
        o.next_inst(); // jump back
        let d1 = o.next_inst();
        assert_eq!(d1.next_pc, addr(2));
    }

    #[test]
    fn pattern_branch_repeats() {
        let insts = vec![
            StaticInst::new(InstKind::CondBranch { target: addr(2) }),
            StaticInst::new(InstKind::Jump { target: addr(0) }),
            StaticInst::new(InstKind::Jump { target: addr(0) }),
        ];
        let behaviors = vec![
            Behavior::Cond(CondBehavior::Pattern {
                bits: 0b0110,
                len: 4,
            }),
            Behavior::None,
            Behavior::None,
        ];
        let p = Program::new(insts, behaviors, addr(0));
        let mut o = Oracle::new(&p, 0);
        let mut outcomes = Vec::new();
        for _ in 0..16 {
            let d = o.next_inst();
            if d.pc == addr(0) {
                outcomes.push(d.taken);
            }
        }
        assert_eq!(&outcomes[..4], &[false, true, true, false]);
        assert_eq!(&outcomes[..4], &outcomes[4..8]);
    }

    #[test]
    fn correlated_branch_follows_other() {
        // 0: cond (biased 50%) -> 2 ; 1: nop path... then 2: correlated -> 4
        let insts = vec![
            StaticInst::new(InstKind::CondBranch { target: addr(1) }),
            StaticInst::new(InstKind::CondBranch { target: addr(2) }),
            StaticInst::new(InstKind::Jump { target: addr(0) }),
        ];
        let behaviors = vec![
            Behavior::Cond(CondBehavior::Biased {
                taken_prob_milli: 500,
            }),
            Behavior::Cond(CondBehavior::Correlated {
                other: 0,
                invert: false,
                noise_milli: 0,
            }),
            Behavior::None,
        ];
        let p = Program::new(insts, behaviors, addr(0));
        let mut o = Oracle::new(&p, 11);
        let mut last0 = None;
        for _ in 0..300 {
            let d = o.next_inst();
            if d.pc == addr(0) {
                last0 = Some(d.taken);
            }
            if d.pc == addr(1) {
                assert_eq!(Some(d.taken), last0);
            }
        }
    }

    #[test]
    fn retired_counts() {
        let p = loop_program(3, 3);
        let mut o = Oracle::new(&p, 0);
        for _ in 0..42 {
            o.next_inst();
        }
        assert_eq!(o.retired(), 42);
    }
}
