//! Synthetic workloads standing in for the CVP-1 datacenter traces.
//!
//! The paper evaluates UCP on 306 Qualcomm datacenter traces from the first
//! Championship on Value Prediction (CVP-1). Those traces are not
//! redistributable, so this crate synthesizes *programs* with the properties
//! the paper measures:
//!
//! * large static code footprints (tens of KB to ~1 MB of hot code) that
//!   oversubscribe a 4Kops µ-op cache,
//! * deep, DAG-shaped call graphs with direct and indirect calls,
//! * a controlled mix of conditional-branch behaviours — strongly biased,
//!   loop, periodic-pattern, correlated, and genuinely hard-to-predict —
//!   yielding conditional MPKIs in the paper's 1.5–6 range,
//! * strided and irregular data accesses.
//!
//! Because a workload is a full static program plus deterministic behaviour
//! models (not a linear trace), the simulator can walk **any** path through
//! the code: the correct path (via [`Oracle`]), the wrong path after a
//! misprediction, and the alternate path that UCP prefetches.
//!
//! Everything is seeded and deterministic: the same [`WorkloadSpec`] always
//! produces the same [`Program`] and the same dynamic instruction stream.
//!
//! # Examples
//!
//! ```
//! use ucp_workloads::{suite, Oracle};
//!
//! let spec = &suite::workload_suite()[0];
//! let program = spec.build();
//! let mut oracle = Oracle::new(&program, spec.seed);
//! let first = oracle.next_inst();
//! assert_eq!(first.pc, program.entry());
//! ```

pub mod behavior;
pub mod gen;
pub mod oracle;
pub mod program;
pub mod suite;

pub use behavior::{Behavior, CondBehavior, IndirectBehavior, MemBehavior};
pub use gen::{CondMix, WorkloadSpec};
pub use oracle::Oracle;
pub use program::Program;
