//! Deterministic behaviour models attached to branches and memory operations.
//!
//! Behaviours are evaluated by the [`Oracle`](crate::Oracle) with
//! per-instruction occurrence counters, so the dynamic stream is a pure
//! function of `(program, seed)` — no ambient randomness, fully
//! reproducible.

use serde::{Deserialize, Serialize};
use sim_isa::Addr;

/// SplitMix64 — the stateless hash used for all behavioural randomness.
///
/// Deterministic and well distributed; good enough to make "hard" branches
/// genuinely hard for a TAGE-SC-L predictor.
#[inline]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Returns a deterministic pseudo-random event with probability
/// `prob_milli / 1000`, keyed by `key`.
#[inline]
pub fn hash_event(key: u64, prob_milli: u16) -> bool {
    (splitmix64(key) % 1000) < u64::from(prob_milli)
}

/// Behaviour of a conditional branch.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum CondBehavior {
    /// Taken with probability `taken_prob_milli / 1000`, independently per
    /// occurrence. Probabilities near 0/1000 model easy biased branches;
    /// mid-range values model data-dependent hard-to-predict branches.
    Biased {
        /// Taken probability in per-mille.
        taken_prob_milli: u16,
    },
    /// Backward loop branch: taken `trip - 1` times, then not taken once.
    /// When `min_trip != max_trip` the trip count is re-drawn (deterministic
    /// hash of the exit count) after every exit, which defeats the loop
    /// predictor while remaining partially TAGE-predictable.
    Loop {
        /// Minimum trip count (inclusive), `>= 1`.
        min_trip: u32,
        /// Maximum trip count (inclusive), `>= min_trip`.
        max_trip: u32,
    },
    /// Periodic direction pattern of `len` bits, indexed by occurrence
    /// count. Highly predictable by global-history predictors.
    Pattern {
        /// Pattern bits, LSB first.
        bits: u64,
        /// Period in `1..=64`.
        len: u8,
    },
    /// Repeats the most recent outcome of another conditional branch
    /// (identified by instruction index), optionally inverted, with a small
    /// per-mille noise flip. Predictable given enough global history.
    Correlated {
        /// Instruction index of the branch this one follows.
        other: u32,
        /// Whether the outcome is inverted.
        invert: bool,
        /// Probability (per-mille) of flipping the outcome anyway.
        noise_milli: u16,
    },
}

/// Behaviour of an indirect jump or indirect call.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum IndirectBehavior {
    /// Always the same target (monomorphic call site).
    Mono {
        /// The single target.
        target: Addr,
    },
    /// Rotates through the target list by occurrence count — predictable by
    /// ITTAGE via global history.
    Rotate {
        /// Targets rotated through.
        targets: Box<[Addr]>,
    },
    /// Picks a pseudo-random target per occurrence — hard for any predictor.
    Scramble {
        /// Candidate targets.
        targets: Box<[Addr]>,
    },
}

impl IndirectBehavior {
    /// All targets this site can produce.
    pub fn targets(&self) -> &[Addr] {
        match self {
            IndirectBehavior::Mono { target } => std::slice::from_ref(target),
            IndirectBehavior::Rotate { targets } | IndirectBehavior::Scramble { targets } => {
                targets
            }
        }
    }

    /// The target for occurrence `occ` under seed `seed`.
    ///
    /// # Panics
    ///
    /// Panics if a polymorphic behaviour was constructed with an empty
    /// target list (the generator never does).
    pub fn target(&self, occ: u64, seed: u64) -> Addr {
        match self {
            IndirectBehavior::Mono { target } => *target,
            IndirectBehavior::Rotate { targets } => targets[(occ % targets.len() as u64) as usize],
            IndirectBehavior::Scramble { targets } => {
                let i = splitmix64(seed ^ occ.wrapping_mul(0x9e3779b1)) % targets.len() as u64;
                targets[i as usize]
            }
        }
    }
}

/// Behaviour of a load or store's effective address.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum MemBehavior {
    /// Strided stream: `base + (occ * stride) % span`.
    Stride {
        /// Region base address.
        base: u64,
        /// Stride in bytes.
        stride: u32,
        /// Region size in bytes (wraps).
        span: u32,
    },
    /// Pseudo-random address within `[base, base + span)`.
    RandomIn {
        /// Region base address.
        base: u64,
        /// Region size in bytes.
        span: u32,
    },
}

impl MemBehavior {
    /// The effective address for occurrence `occ` under seed `seed`,
    /// 8-byte aligned.
    pub fn addr(&self, occ: u64, seed: u64) -> Addr {
        let raw = match *self {
            MemBehavior::Stride { base, stride, span } => {
                base + (occ.wrapping_mul(u64::from(stride))) % u64::from(span.max(8))
            }
            MemBehavior::RandomIn { base, span } => {
                base + splitmix64(seed ^ occ) % u64::from(span.max(8))
            }
        };
        Addr::new(raw & !7)
    }
}

/// Behaviour attached to one instruction slot (at most one per instruction).
#[derive(Clone, Debug, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum Behavior {
    /// No behaviour (plain compute instruction or direct jump/call).
    #[default]
    None,
    /// Conditional-branch direction model.
    Cond(CondBehavior),
    /// Indirect-target model.
    Indirect(IndirectBehavior),
    /// Memory-address model.
    Mem(MemBehavior),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic_and_spread() {
        assert_eq!(splitmix64(42), splitmix64(42));
        assert_ne!(splitmix64(42), splitmix64(43));
        // Crude spread check over low bits.
        let ones = (0..1000u64).filter(|&i| splitmix64(i) & 1 == 1).count();
        assert!((400..600).contains(&ones), "bit bias: {ones}");
    }

    #[test]
    fn hash_event_matches_probability() {
        let hits = (0..10_000u64).filter(|&i| hash_event(i, 250)).count();
        let frac = hits as f64 / 10_000.0;
        assert!((0.22..0.28).contains(&frac), "got {frac}");
    }

    #[test]
    fn hash_event_extremes() {
        assert!(!(0..1000u64).any(|i| hash_event(i, 0)));
        assert!((0..1000u64).all(|i| hash_event(i, 1000)));
    }

    #[test]
    fn mono_indirect_is_constant() {
        let b = IndirectBehavior::Mono {
            target: Addr::new(0x40),
        };
        for occ in 0..10 {
            assert_eq!(b.target(occ, 7), Addr::new(0x40));
        }
        assert_eq!(b.targets(), &[Addr::new(0x40)]);
    }

    #[test]
    fn rotate_cycles_through_targets() {
        let ts: Box<[Addr]> = vec![Addr::new(0x10), Addr::new(0x20), Addr::new(0x30)].into();
        let b = IndirectBehavior::Rotate { targets: ts };
        assert_eq!(b.target(0, 0), Addr::new(0x10));
        assert_eq!(b.target(1, 0), Addr::new(0x20));
        assert_eq!(b.target(2, 0), Addr::new(0x30));
        assert_eq!(b.target(3, 0), Addr::new(0x10));
    }

    #[test]
    fn scramble_covers_all_targets() {
        let ts: Box<[Addr]> = (0..4).map(|i| Addr::new(0x100 + i * 0x10)).collect();
        let b = IndirectBehavior::Scramble { targets: ts };
        let mut seen = std::collections::HashSet::new();
        for occ in 0..200 {
            seen.insert(b.target(occ, 99));
        }
        assert_eq!(seen.len(), 4);
    }

    #[test]
    fn stride_wraps_in_span() {
        let m = MemBehavior::Stride {
            base: 0x1000,
            stride: 64,
            span: 256,
        };
        for occ in 0..20 {
            let a = m.addr(occ, 0).raw();
            assert!((0x1000..0x1100).contains(&a));
            assert_eq!(a % 8, 0);
        }
        assert_eq!(m.addr(0, 0).raw(), 0x1000);
        assert_eq!(m.addr(1, 0).raw(), 0x1040);
        assert_eq!(m.addr(4, 0).raw(), 0x1000);
    }

    #[test]
    fn random_in_stays_in_region() {
        let m = MemBehavior::RandomIn {
            base: 0x20_0000,
            span: 4096,
        };
        for occ in 0..100 {
            let a = m.addr(occ, 5).raw();
            assert!((0x20_0000..0x20_1000).contains(&a));
        }
    }
}
