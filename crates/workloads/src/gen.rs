//! Synthetic program generator.
//!
//! Programs are generated in two passes: first every function is produced as
//! a list of *proto-instructions* with symbolic (function-local or
//! function-id) targets, then all functions are laid out densely and the
//! symbols are resolved to absolute addresses. The call graph is a DAG
//! (functions only call higher-indexed functions), so execution terminates
//! per call chain and the driver's infinite outer loop provides the
//! unbounded stream.

use crate::behavior::{Behavior, CondBehavior, IndirectBehavior, MemBehavior};
use crate::program::Program;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use sim_isa::{Addr, ExecClass, InstKind, Reg, StaticInst};

/// Base address of the synthetic data region touched by loads and stores.
pub const DATA_BASE: u64 = 0x1000_0000;

/// Mix of conditional-branch behaviours, in per-mille of generated
/// if-statement branches. The remainder up to 1000 becomes *hard* branches
/// (mid-range taken probability — the H2P population UCP targets).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct CondMix {
    /// Strongly biased branches (per-mille).
    pub easy_milli: u16,
    /// Periodic-pattern branches (per-mille).
    pub pattern_milli: u16,
    /// Correlated branches (per-mille).
    pub correlated_milli: u16,
}

impl CondMix {
    /// Per-mille share of hard branches.
    ///
    /// # Panics
    ///
    /// Panics if the explicit shares exceed 1000.
    pub fn hard_milli(&self) -> u16 {
        let used = self.easy_milli + self.pattern_milli + self.correlated_milli;
        assert!(used <= 1000, "CondMix shares exceed 1000 per-mille");
        1000 - used
    }
}

impl Default for CondMix {
    fn default() -> Self {
        CondMix {
            easy_milli: 600,
            pattern_milli: 150,
            correlated_milli: 100,
        }
    }
}

/// Workload category, mirroring the CVP-1 trace classes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Category {
    /// Datacenter/server-class: very large code footprint.
    Server,
    /// Integer: moderate footprint, loops and hard branches.
    Int,
    /// Floating point: small, loopy, predictable.
    Fp,
    /// Crypto: tiny hot loops, high ILP.
    Crypto,
}

impl std::fmt::Display for Category {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Category::Server => "srv",
            Category::Int => "int",
            Category::Fp => "fp",
            Category::Crypto => "crypto",
        };
        f.write_str(s)
    }
}

/// Full recipe for one synthetic workload.
///
/// Build the program with [`WorkloadSpec::build`]; run it with
/// [`Oracle`](crate::Oracle) seeded with [`WorkloadSpec::seed`].
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct WorkloadSpec {
    /// Unique workload name (e.g. `srv03`).
    pub name: String,
    /// Workload class.
    pub category: Category,
    /// Seed for both generation and behavioural randomness.
    pub seed: u64,
    /// Number of functions, including the driver.
    pub num_funcs: usize,
    /// Statements per function (inclusive range).
    pub stmts_per_func: (u32, u32),
    /// Straight-line block length in instructions (inclusive range).
    pub block_len: (u32, u32),
    /// Per-mille chance a statement is a call site.
    pub call_milli: u16,
    /// Per-mille of call sites that are indirect.
    pub indirect_call_milli: u16,
    /// Per-mille chance a statement is a loop.
    pub loop_milli: u16,
    /// Per-mille chance a statement is an if/else (rest are plain blocks).
    pub if_milli: u16,
    /// Loop trip count (inclusive range).
    pub loop_trip: (u32, u32),
    /// Per-mille of loops whose trip count varies between trips.
    pub variable_trip_milli: u16,
    /// Behaviour mix for if-statement branches.
    pub cond_mix: CondMix,
    /// Taken-probability range (per-mille) drawn for hard branches.
    pub hard_prob_range: (u16, u16),
    /// How strongly biased easy branches are (per-mille toward their bias).
    pub easy_bias_milli: u16,
    /// Call sites in the driver's outer loop.
    pub driver_sites: usize,
    /// Zipf exponent ×100 for driver call-target popularity (0 = uniform).
    pub zipf_centi: u32,
    /// Data region span in KiB.
    pub data_span_kb: u32,
    /// Per-mille of block instructions that access memory.
    pub mem_milli: u16,
    /// Per-mille of memory instructions that are stores.
    pub store_milli: u16,
    /// Per-mille of memory instructions with irregular (random) addresses.
    pub random_mem_milli: u16,
    /// Per-mille of compute ops that are FP.
    pub fp_milli: u16,
    /// Per-mille of compute ops that are multiplies.
    pub mul_milli: u16,
    /// Per-mille of compute ops that are divides.
    pub div_milli: u16,
    /// Per-mille of driver call sites that are wide scrambled dispatches
    /// (request-type handlers) instead of fixed calls.
    pub dispatch_milli: u16,
    /// Number of handler targets per scrambled dispatch site (inclusive
    /// range).
    pub dispatch_fanout: (u32, u32),
}

impl WorkloadSpec {
    /// A small, fast-to-simulate default spec (used by tests and the
    /// quickstart example).
    pub fn tiny(name: &str, seed: u64) -> Self {
        WorkloadSpec {
            name: name.to_owned(),
            category: Category::Int,
            seed,
            num_funcs: 12,
            stmts_per_func: (4, 8),
            block_len: (3, 7),
            call_milli: 150,
            indirect_call_milli: 100,
            loop_milli: 200,
            if_milli: 400,
            loop_trip: (3, 12),
            variable_trip_milli: 300,
            cond_mix: CondMix::default(),
            hard_prob_range: (250, 750),
            easy_bias_milli: 960,
            driver_sites: 6,
            zipf_centi: 80,
            data_span_kb: 64,
            mem_milli: 300,
            store_milli: 300,
            random_mem_milli: 250,
            fp_milli: 50,
            mul_milli: 60,
            div_milli: 5,
            dispatch_milli: 300,
            dispatch_fanout: (3, 6),
        }
    }

    /// Generates the program for this spec. Deterministic in `self`.
    pub fn build(&self) -> Program {
        Generator::new(self).run()
    }
}

/// Proto-instruction with symbolic targets, produced in pass 1.
#[derive(Clone, Debug)]
enum PInst {
    Op(ExecClass, Option<Reg>, [Option<Reg>; 2]),
    Load(Reg, MemBehavior),
    Store(MemBehavior, [Option<Reg>; 2]),
    /// Conditional branch to a function-local instruction index.
    CondLocal {
        target: usize,
        behavior: PCond,
    },
    /// Unconditional jump to a function-local instruction index.
    JumpLocal {
        target: usize,
    },
    /// Direct call to a function id.
    CallFunc {
        callee: usize,
    },
    /// Indirect call to one of several function ids.
    IndirectCallFuncs {
        callees: Vec<usize>,
        scramble: bool,
    },
    Return,
}

/// Conditional behaviour with possibly function-local correlation index.
#[derive(Clone, Debug)]
enum PCond {
    Direct(CondBehavior),
    /// Correlated with the conditional branch at the given *local* index.
    CorrelatedLocal {
        other_local: usize,
        invert: bool,
        noise_milli: u16,
    },
}

struct Generator<'s> {
    spec: &'s WorkloadSpec,
    rng: SmallRng,
    /// Ring of recently written registers, for building dependence chains.
    recent: Vec<Reg>,
    /// Call-graph levels: function index ranges. The driver (index 0)
    /// dispatches into level 0 (handlers); level `l` functions call level
    /// `l+1`; the last level is leaves. This bounds every dynamic call
    /// tree to O(2^levels) invocations while keeping popularity flat
    /// within a level.
    levels: Vec<std::ops::Range<usize>>,
}

impl<'s> Generator<'s> {
    fn new(spec: &'s WorkloadSpec) -> Self {
        assert!(spec.num_funcs >= 2, "need a driver and at least one callee");
        let n = spec.num_funcs;
        // Levels by cumulative fractions 15% / 35% / 65% / 100% of the
        // non-driver functions.
        let b0 = 1;
        let b1 = (1 + (n - 1) * 15 / 100).max(b0 + 1).min(n);
        let b2 = (1 + (n - 1) * 35 / 100).max(b1 + 1).min(n);
        let b3 = (1 + (n - 1) * 65 / 100).max(b2 + 1).min(n);
        let mut levels = vec![b0..b1, b1..b2, b2..b3, b3..n];
        levels.retain(|r| !r.is_empty());
        Generator {
            spec,
            rng: SmallRng::seed_from_u64(spec.seed ^ 0xDEC0_DE00),
            recent: vec![Reg::new(1)],
            levels,
        }
    }

    fn level_of(&self, f: usize) -> Option<usize> {
        self.levels.iter().position(|r| r.contains(&f))
    }

    fn sample_in(&mut self, level: usize) -> Option<usize> {
        let r = self.levels.get(level)?.clone();
        if r.is_empty() {
            return None;
        }
        Some(self.rng.gen_range(r.start..r.end))
    }

    fn run(mut self) -> Program {
        let n = self.spec.num_funcs;
        let mut funcs: Vec<Vec<PInst>> = Vec::with_capacity(n);
        funcs.push(self.gen_driver());
        for f in 1..n {
            let body = self.gen_func(f);
            funcs.push(body);
        }

        // Pass 2: layout.
        let mut starts = Vec::with_capacity(n);
        let mut total = 0usize;
        for f in &funcs {
            starts.push(total);
            total += f.len();
        }
        let base = crate::program::PROGRAM_BASE;
        let addr_of = |global_idx: usize| Addr::new(base + global_idx as u64 * 4);

        let mut insts = Vec::with_capacity(total);
        let mut behaviors = Vec::with_capacity(total);
        for (fi, body) in funcs.iter().enumerate() {
            let fstart = starts[fi];
            for p in body {
                let (inst, beh) = match p {
                    PInst::Op(class, dst, srcs) => {
                        let mut i = StaticInst::new(InstKind::Op(*class));
                        i.dst = *dst;
                        i.srcs = *srcs;
                        (i, Behavior::None)
                    }
                    PInst::Load(dst, m) => {
                        let mut i = StaticInst::new(InstKind::Load);
                        i.dst = Some(*dst);
                        (i, Behavior::Mem(*m))
                    }
                    PInst::Store(m, srcs) => {
                        let mut i = StaticInst::new(InstKind::Store);
                        i.srcs = *srcs;
                        (i, Behavior::Mem(*m))
                    }
                    PInst::CondLocal { target, behavior } => {
                        let inst = StaticInst::new(InstKind::CondBranch {
                            target: addr_of(fstart + target),
                        })
                        .with_srcs(&[self.recent[0]]);
                        let cond = match behavior {
                            PCond::Direct(c) => c.clone(),
                            PCond::CorrelatedLocal {
                                other_local,
                                invert,
                                noise_milli,
                            } => CondBehavior::Correlated {
                                other: (fstart + other_local) as u32,
                                invert: *invert,
                                noise_milli: *noise_milli,
                            },
                        };
                        (inst, Behavior::Cond(cond))
                    }
                    PInst::JumpLocal { target } => (
                        StaticInst::new(InstKind::Jump {
                            target: addr_of(fstart + target),
                        }),
                        Behavior::None,
                    ),
                    PInst::CallFunc { callee } => (
                        StaticInst::new(InstKind::Call {
                            target: addr_of(starts[*callee]),
                        }),
                        Behavior::None,
                    ),
                    PInst::IndirectCallFuncs { callees, scramble } => {
                        let targets: Box<[Addr]> =
                            callees.iter().map(|&c| addr_of(starts[c])).collect();
                        let beh = if targets.len() == 1 {
                            IndirectBehavior::Mono { target: targets[0] }
                        } else if *scramble {
                            IndirectBehavior::Scramble { targets }
                        } else {
                            IndirectBehavior::Rotate { targets }
                        };
                        (
                            StaticInst::new(InstKind::IndirectCall),
                            Behavior::Indirect(beh),
                        )
                    }
                    PInst::Return => (StaticInst::new(InstKind::Return), Behavior::None),
                };
                insts.push(inst);
                behaviors.push(beh);
            }
        }

        let program = Program::new(insts, behaviors, addr_of(starts[0]));
        program.validate();
        program
    }

    fn roll(&mut self, milli: u16) -> bool {
        self.rng.gen_range(0..1000) < u32::from(milli)
    }

    fn range(&mut self, (lo, hi): (u32, u32)) -> u32 {
        if lo >= hi {
            lo
        } else {
            self.rng.gen_range(lo..=hi)
        }
    }

    fn fresh_reg(&mut self) -> Reg {
        let r = Reg::new(self.rng.gen_range(1..64));
        if self.recent.len() >= 8 {
            self.recent.remove(0);
        }
        self.recent.push(r);
        r
    }

    fn src_reg(&mut self) -> Reg {
        let i = self.rng.gen_range(0..self.recent.len());
        self.recent[i]
    }

    fn exec_class(&mut self) -> ExecClass {
        let r = self.rng.gen_range(0..1000);
        let fp = u32::from(self.spec.fp_milli);
        let mul = u32::from(self.spec.mul_milli);
        let div = u32::from(self.spec.div_milli);
        if r < fp {
            if r % 2 == 0 {
                ExecClass::FpAdd
            } else {
                ExecClass::FpMul
            }
        } else if r < fp + mul {
            ExecClass::Mul
        } else if r < fp + mul + div {
            ExecClass::Div
        } else {
            ExecClass::Alu
        }
    }

    fn mem_behavior(&mut self) -> MemBehavior {
        let span = self.spec.data_span_kb.max(1) * 1024;
        if self.roll(self.spec.random_mem_milli) {
            let base = DATA_BASE + u64::from(self.rng.gen_range(0..8u32)) * u64::from(span);
            MemBehavior::RandomIn { base, span }
        } else {
            let stride = *[8u32, 8, 16, 64]
                .get(self.rng.gen_range(0..4))
                .unwrap_or(&8);
            let base = DATA_BASE + u64::from(self.rng.gen_range(0..64u32)) * 4096;
            MemBehavior::Stride {
                base,
                stride,
                span: span.min(64 * 1024),
            }
        }
    }

    /// Emits a straight-line block of `len` instructions.
    fn emit_block(&mut self, out: &mut Vec<PInst>, len: u32) {
        for _ in 0..len {
            if self.roll(self.spec.mem_milli) {
                let m = self.mem_behavior();
                if self.roll(self.spec.store_milli) {
                    let s = [Some(self.src_reg()), Some(self.src_reg())];
                    out.push(PInst::Store(m, s));
                } else {
                    let d = self.fresh_reg();
                    out.push(PInst::Load(d, m));
                }
            } else {
                let class = self.exec_class();
                let srcs = [Some(self.src_reg()), Some(self.src_reg())];
                let dst = Some(self.fresh_reg());
                out.push(PInst::Op(class, dst, srcs));
            }
        }
    }

    fn cond_behavior(&mut self, prior_branches: &[usize]) -> PCond {
        let mix = self.spec.cond_mix;
        let r = self.rng.gen_range(0..1000u16);
        if r < mix.easy_milli {
            // Biased toward taken or not-taken, randomly.
            let p = if self.rng.gen_bool(0.5) {
                self.spec.easy_bias_milli
            } else {
                1000 - self.spec.easy_bias_milli
            };
            PCond::Direct(CondBehavior::Biased {
                taken_prob_milli: p,
            })
        } else if r < mix.easy_milli + mix.pattern_milli {
            let len = self.rng.gen_range(2..=6u8);
            let bits = self.rng.gen::<u64>() & ((1u64 << len) - 1);
            PCond::Direct(CondBehavior::Pattern { bits, len })
        } else if r < mix.easy_milli + mix.pattern_milli + mix.correlated_milli
            && !prior_branches.is_empty()
        {
            let other_local = prior_branches[self.rng.gen_range(0..prior_branches.len())];
            PCond::CorrelatedLocal {
                other_local,
                invert: self.rng.gen_bool(0.3),
                noise_milli: self.rng.gen_range(0..60),
            }
        } else {
            let (lo, hi) = self.spec.hard_prob_range;
            let p = if lo >= hi {
                lo
            } else {
                self.rng.gen_range(lo..=hi)
            };
            PCond::Direct(CondBehavior::Biased {
                taken_prob_milli: p,
            })
        }
    }

    /// Picks a callee for function `caller`: a uniform member of the next
    /// call-graph level (occasionally two levels down). Leaf-level
    /// functions make no calls, so every dynamic call tree is bounded.
    fn pick_callee(&mut self, caller: usize) -> Option<usize> {
        let level = if caller == 0 {
            0
        } else {
            self.level_of(caller)? + 1
        };
        let skip = usize::from(self.rng.gen_bool(0.2));
        self.sample_in(level + skip)
            .or_else(|| self.sample_in(level))
    }

    /// Zipf-ish popularity sample over functions `1..n` for driver call
    /// sites: function `i` gets weight `1 / i^(zipf_centi/100)`.
    fn pick_driver_callee(&mut self) -> usize {
        let n = self.spec.num_funcs;
        let theta = f64::from(self.spec.zipf_centi) / 100.0;
        // Inverse-CDF sampling via rejection on a few candidates.
        let mut best = 1 + self.rng.gen_range(0..(n - 1));
        if theta > 0.0 {
            for _ in 0..3 {
                let cand = 1 + self.rng.gen_range(0..(n - 1));
                let w_best = 1.0 / (best as f64).powf(theta);
                let w_cand = 1.0 / (cand as f64).powf(theta);
                if self
                    .rng
                    .gen_bool((w_cand / (w_cand + w_best)).clamp(0.0, 1.0))
                {
                    best = cand;
                }
            }
        }
        best
    }

    fn gen_func(&mut self, f_idx: usize) -> Vec<PInst> {
        let mut out = Vec::new();
        let mut prior_branches: Vec<usize> = Vec::new();
        let stmts = self.range(self.spec.stmts_per_func);
        for _ in 0..stmts {
            self.gen_statement(f_idx, &mut out, &mut prior_branches, true);
        }
        out.push(PInst::Return);
        out
    }

    fn gen_statement(
        &mut self,
        f_idx: usize,
        out: &mut Vec<PInst>,
        prior_branches: &mut Vec<usize>,
        allow_call: bool,
    ) {
        let r = self.rng.gen_range(0..1000u16);
        let call_cut = self.spec.call_milli;
        let loop_cut = call_cut + self.spec.loop_milli;
        let if_cut = loop_cut + self.spec.if_milli;
        if r < call_cut && allow_call {
            self.emit_call(f_idx, out);
        } else if r < loop_cut {
            self.emit_loop(f_idx, out, prior_branches);
        } else if r < if_cut {
            self.emit_if(out, prior_branches);
        } else {
            let len = self.range(self.spec.block_len);
            self.emit_block(out, len);
        }
    }

    fn emit_call(&mut self, f_idx: usize, out: &mut Vec<PInst>) {
        // Argument setup.
        self.emit_block(out, 2);
        let Some(callee) = self.pick_callee(f_idx) else {
            return;
        };
        if self.roll(self.spec.indirect_call_milli) {
            let mut callees = vec![callee];
            let extra = self.rng.gen_range(0..4usize);
            for _ in 0..extra {
                if let Some(c) = self.pick_callee(f_idx) {
                    if !callees.contains(&c) {
                        callees.push(c);
                    }
                }
            }
            let scramble = self.rng.gen_bool(0.15);
            out.push(PInst::IndirectCallFuncs { callees, scramble });
        } else {
            out.push(PInst::CallFunc { callee });
        }
    }

    fn emit_loop(&mut self, f_idx: usize, out: &mut Vec<PInst>, _prior: &mut Vec<usize>) {
        let top = out.len();
        let body_len = self.range(self.spec.block_len);
        self.emit_block(out, body_len);
        // No calls inside loop bodies: a call site repeated `trip` times
        // would multiply the dynamic call-tree fan-out.
        let _ = f_idx;
        let trip_lo = self.spec.loop_trip.0.max(2);
        let trip_hi = self.spec.loop_trip.1.max(trip_lo);
        let (min_trip, max_trip) = if self.roll(self.spec.variable_trip_milli) {
            (trip_lo, trip_hi)
        } else {
            let t = self.range((trip_lo, trip_hi));
            (t, t)
        };
        out.push(PInst::CondLocal {
            target: top,
            behavior: PCond::Direct(CondBehavior::Loop { min_trip, max_trip }),
        });
    }

    fn emit_if(&mut self, out: &mut Vec<PInst>, prior: &mut Vec<usize>) {
        let behavior = self.cond_behavior(prior);
        let branch_pos = out.len();
        // Placeholder; patched below.
        out.push(PInst::CondLocal {
            target: 0,
            behavior,
        });
        let then_len = self.range(self.spec.block_len);
        self.emit_block(out, then_len);
        let with_else = self.rng.gen_bool(0.5);
        if with_else {
            let jump_pos = out.len();
            out.push(PInst::JumpLocal { target: 0 });
            let else_start = out.len();
            let else_len = self.range(self.spec.block_len);
            self.emit_block(out, else_len);
            let end = out.len();
            patch_target(&mut out[branch_pos], else_start);
            patch_target(&mut out[jump_pos], end);
        } else {
            let end = out.len();
            patch_target(&mut out[branch_pos], end);
        }
        prior.push(branch_pos);
    }

    fn gen_driver(&mut self) -> Vec<PInst> {
        let mut out = Vec::new();
        let mut prior: Vec<usize> = Vec::new();
        // Warmup straight-line prologue.
        self.emit_block(&mut out, 4);
        let loop_top = out.len();
        for _ in 0..self.spec.driver_sites.max(1) {
            // Interleave a little control flow between call sites.
            if self.roll(self.spec.if_milli / 2) {
                self.emit_if(&mut out, &mut prior);
            }
            self.emit_block(&mut out, 2);
            if self.roll(self.spec.dispatch_milli) {
                // A wide "request dispatch" site: every dynamic visit jumps
                // to a pseudo-random handler, sweeping a different call
                // subtree through the frontend each time. This is what
                // gives datacenter workloads their flat, footprint-heavy
                // profile.
                let fanout = self.range(self.spec.dispatch_fanout).max(2) as usize;
                let mut callees = Vec::with_capacity(fanout);
                for _ in 0..fanout * 4 {
                    if callees.len() >= fanout {
                        break;
                    }
                    let Some(c) = self.sample_in(0) else { break };
                    if !callees.contains(&c) {
                        callees.push(c);
                    }
                }
                if callees.len() < 2 {
                    callees.push(1);
                }
                out.push(PInst::IndirectCallFuncs {
                    callees,
                    scramble: true,
                });
            } else {
                let callee = self.pick_driver_callee();
                if self.roll(self.spec.indirect_call_milli) {
                    let mut callees = vec![callee];
                    for _ in 0..self.rng.gen_range(1..4usize) {
                        let c = self.pick_driver_callee();
                        if !callees.contains(&c) {
                            callees.push(c);
                        }
                    }
                    out.push(PInst::IndirectCallFuncs {
                        callees,
                        scramble: false,
                    });
                } else {
                    out.push(PInst::CallFunc { callee });
                }
            }
        }
        // Infinite outer loop.
        out.push(PInst::JumpLocal { target: loop_top });
        out
    }
}

fn patch_target(p: &mut PInst, new_target: usize) {
    match p {
        PInst::CondLocal { target, .. } | PInst::JumpLocal { target } => *target = new_target,
        other => panic!("patch_target on non-branch proto-instruction {other:?}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::Oracle;

    #[test]
    fn tiny_builds_and_validates() {
        let spec = WorkloadSpec::tiny("t0", 1);
        let p = spec.build();
        assert!(p.len() > 50);
        assert!(p.validate() > 0);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = WorkloadSpec::tiny("t", 42).build();
        let b = WorkloadSpec::tiny("t", 42).build();
        assert_eq!(a.len(), b.len());
        assert_eq!(a.insts(), b.insts());
    }

    #[test]
    fn different_seeds_differ() {
        let a = WorkloadSpec::tiny("t", 1).build();
        let b = WorkloadSpec::tiny("t", 2).build();
        assert!(a.len() != b.len() || a.insts() != b.insts());
    }

    #[test]
    fn oracle_runs_long_without_escaping() {
        let spec = WorkloadSpec::tiny("t", 7);
        let p = spec.build();
        let mut o = Oracle::new(&p, spec.seed);
        for _ in 0..200_000 {
            let d = o.next_inst();
            assert!(p.inst_at(d.pc).is_some());
        }
        assert_eq!(o.retired(), 200_000);
    }

    #[test]
    fn stream_contains_all_inst_classes() {
        let spec = WorkloadSpec::tiny("t", 3);
        let p = spec.build();
        let mut o = Oracle::new(&p, spec.seed);
        let mut saw_cond = false;
        let mut saw_call = false;
        let mut saw_ret = false;
        let mut saw_mem = false;
        for _ in 0..100_000 {
            let d = o.next_inst();
            match d.inst.kind {
                InstKind::CondBranch { .. } => saw_cond = true,
                InstKind::Call { .. } | InstKind::IndirectCall => saw_call = true,
                InstKind::Return => saw_ret = true,
                InstKind::Load | InstKind::Store => saw_mem = true,
                _ => {}
            }
        }
        assert!(saw_cond && saw_call && saw_ret && saw_mem);
    }

    #[test]
    fn footprint_scales_with_num_funcs() {
        let mut small = WorkloadSpec::tiny("s", 5);
        small.num_funcs = 8;
        let mut big = WorkloadSpec::tiny("b", 5);
        big.num_funcs = 64;
        assert!(big.build().footprint_bytes() > 3 * small.build().footprint_bytes());
    }

    #[test]
    fn cond_mix_hard_share() {
        let m = CondMix {
            easy_milli: 700,
            pattern_milli: 100,
            correlated_milli: 100,
        };
        assert_eq!(m.hard_milli(), 100);
    }

    #[test]
    #[should_panic(expected = "exceed 1000")]
    fn cond_mix_overflow_panics() {
        let m = CondMix {
            easy_milli: 900,
            pattern_milli: 200,
            correlated_milli: 0,
        };
        let _ = m.hard_milli();
    }

    #[test]
    fn driver_loops_forever() {
        let spec = WorkloadSpec::tiny("t", 9);
        let p = spec.build();
        let mut o = Oracle::new(&p, spec.seed);
        let entry = p.entry();
        let mut revisits = 0;
        for _ in 0..500_000 {
            let d = o.next_inst();
            if d.pc == entry {
                revisits += 1;
            }
        }
        // The prologue runs once, but the loop top is revisited many times;
        // entry itself is only hit once. Check the driver region is re-entered.
        let _ = revisits;
        assert!(
            o.call_depth() < 64,
            "call depth runaway: {}",
            o.call_depth()
        );
    }
}
