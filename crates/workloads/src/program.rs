//! The static program image: densely laid out instructions plus behaviours.

use crate::behavior::Behavior;
use sim_isa::{Addr, StaticInst, INST_BYTES};

/// Base address at which programs are laid out.
pub const PROGRAM_BASE: u64 = 0x0001_0000;

/// A static program: instructions laid out densely from [`PROGRAM_BASE`],
/// with one optional [`Behavior`] per instruction.
///
/// The whole image is addressable, which is what lets the simulator walk
/// speculative paths (wrong path, alternate path) through real code.
#[derive(Clone, Debug)]
pub struct Program {
    base: Addr,
    insts: Vec<StaticInst>,
    behaviors: Vec<Behavior>,
    entry: Addr,
}

impl Program {
    /// Assembles a program from instructions and their parallel behaviours.
    ///
    /// # Panics
    ///
    /// Panics if the two vectors differ in length, if the program is empty,
    /// or if `entry` is out of range.
    pub fn new(insts: Vec<StaticInst>, behaviors: Vec<Behavior>, entry: Addr) -> Self {
        assert_eq!(
            insts.len(),
            behaviors.len(),
            "behaviour table length mismatch"
        );
        assert!(!insts.is_empty(), "empty program");
        let p = Program {
            base: Addr::new(PROGRAM_BASE),
            insts,
            behaviors,
            entry,
        };
        assert!(p.index_of(entry).is_some(), "entry point outside program");
        p
    }

    /// First address of the program image.
    #[inline]
    pub fn base(&self) -> Addr {
        self.base
    }

    /// The execution entry point (the driver function).
    #[inline]
    pub fn entry(&self) -> Addr {
        self.entry
    }

    /// Number of static instructions.
    #[inline]
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// `true` if the program holds no instructions (never, by construction).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// Static code footprint in bytes.
    #[inline]
    pub fn footprint_bytes(&self) -> u64 {
        self.insts.len() as u64 * INST_BYTES
    }

    /// One-past-the-end address of the image.
    #[inline]
    pub fn end(&self) -> Addr {
        Addr::new(self.base.raw() + self.footprint_bytes())
    }

    /// Index of the instruction at `pc`, or `None` if `pc` is outside the
    /// image or misaligned.
    #[inline]
    pub fn index_of(&self, pc: Addr) -> Option<usize> {
        let raw = pc.raw();
        let base = self.base.raw();
        if raw < base || !raw.is_multiple_of(INST_BYTES) {
            return None;
        }
        let idx = ((raw - base) / INST_BYTES) as usize;
        (idx < self.insts.len()).then_some(idx)
    }

    /// Address of the instruction at `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    #[inline]
    pub fn addr_of(&self, idx: usize) -> Addr {
        assert!(idx < self.insts.len());
        Addr::new(self.base.raw() + idx as u64 * INST_BYTES)
    }

    /// The instruction at `pc`, if inside the image.
    #[inline]
    pub fn inst_at(&self, pc: Addr) -> Option<&StaticInst> {
        self.index_of(pc).map(|i| &self.insts[i])
    }

    /// The behaviour of the instruction at index `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    #[inline]
    pub fn behavior(&self, idx: usize) -> &Behavior {
        &self.behaviors[idx]
    }

    /// All instructions, in layout order.
    #[inline]
    pub fn insts(&self) -> &[StaticInst] {
        &self.insts
    }

    /// Iterates `(address, instruction)` pairs in layout order.
    pub fn iter(&self) -> impl Iterator<Item = (Addr, &StaticInst)> + '_ {
        self.insts
            .iter()
            .enumerate()
            .map(move |(i, inst)| (self.addr_of(i), inst))
    }

    /// Sanity-checks internal consistency: every direct branch target lands
    /// inside the image on an instruction boundary. Returns the number of
    /// branches checked.
    ///
    /// # Panics
    ///
    /// Panics if a direct target is out of range.
    pub fn validate(&self) -> usize {
        let mut checked = 0;
        for (pc, inst) in self.iter() {
            if let Some(t) = inst.kind.direct_target() {
                assert!(
                    self.index_of(t).is_some(),
                    "branch at {pc} targets {t}, outside program"
                );
                checked += 1;
            }
        }
        checked
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_isa::{ExecClass, InstKind};

    fn tiny() -> Program {
        let insts = vec![
            StaticInst::new(InstKind::Op(ExecClass::Alu)),
            StaticInst::new(InstKind::Jump {
                target: Addr::new(PROGRAM_BASE),
            }),
        ];
        let behaviors = vec![Behavior::None, Behavior::None];
        Program::new(insts, behaviors, Addr::new(PROGRAM_BASE))
    }

    #[test]
    fn index_addr_round_trip() {
        let p = tiny();
        for i in 0..p.len() {
            assert_eq!(p.index_of(p.addr_of(i)), Some(i));
        }
    }

    #[test]
    fn out_of_range_lookups_fail() {
        let p = tiny();
        assert_eq!(p.index_of(Addr::new(PROGRAM_BASE - 4)), None);
        assert_eq!(p.index_of(p.end()), None);
        assert_eq!(p.index_of(Addr::new(PROGRAM_BASE + 1)), None, "misaligned");
        assert!(p.inst_at(Addr::new(0)).is_none());
    }

    #[test]
    fn footprint_matches_len() {
        let p = tiny();
        assert_eq!(p.footprint_bytes(), 8);
        assert_eq!(p.end().raw(), PROGRAM_BASE + 8);
        assert!(!p.is_empty());
    }

    #[test]
    fn validate_accepts_in_range_targets() {
        assert_eq!(tiny().validate(), 1);
    }

    #[test]
    #[should_panic(expected = "outside program")]
    fn validate_rejects_wild_targets() {
        let insts = vec![StaticInst::new(InstKind::Jump {
            target: Addr::new(0x10),
        })];
        let p = Program::new(insts, vec![Behavior::None], Addr::new(PROGRAM_BASE));
        p.validate();
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_tables_rejected() {
        let insts = vec![StaticInst::new(InstKind::Op(ExecClass::Alu))];
        let _ = Program::new(insts, vec![], Addr::new(PROGRAM_BASE));
    }

    #[test]
    fn iter_yields_layout_order() {
        let p = tiny();
        let addrs: Vec<_> = p.iter().map(|(a, _)| a).collect();
        assert_eq!(
            addrs,
            vec![Addr::new(PROGRAM_BASE), Addr::new(PROGRAM_BASE + 4)]
        );
    }
}
