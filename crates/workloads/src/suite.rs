//! The fixed 30-workload suite used by every experiment.
//!
//! Mirrors the CVP-1 population the paper evaluates: a majority of
//! datacenter/server workloads with very large code footprints and *flat*
//! execution profiles (little loop reuse, so the µ-op cache is genuinely
//! oversubscribed), plus integer, FP and crypto workloads with
//! progressively smaller footprints and loopier behaviour. Names, seeds and
//! parameters are fixed so every figure harness sees the same deterministic
//! population.

use crate::gen::{Category, CondMix, WorkloadSpec};

fn base(name: String, category: Category, seed: u64) -> WorkloadSpec {
    WorkloadSpec {
        name,
        category,
        seed,
        num_funcs: 64,
        stmts_per_func: (6, 14),
        block_len: (4, 10),
        call_milli: 140,
        indirect_call_milli: 80,
        loop_milli: 120,
        if_milli: 420,
        loop_trip: (2, 8),
        variable_trip_milli: 350,
        cond_mix: CondMix {
            easy_milli: 700,
            pattern_milli: 130,
            correlated_milli: 90,
        },
        hard_prob_range: (250, 750),
        easy_bias_milli: 970,
        driver_sites: 12,
        zipf_centi: 80,
        data_span_kb: 128,
        mem_milli: 300,
        store_milli: 300,
        random_mem_milli: 250,
        fp_milli: 40,
        mul_milli: 60,
        div_milli: 4,
        dispatch_milli: 250,
        dispatch_fanout: (4, 10),
    }
}

/// Datacenter/server-class workload: hundreds of functions, hundreds of KB
/// of hot code, flat profiles, deep call chains. The µ-op cache hit rate
/// spans roughly 30–90% across the population, as in the paper's Fig. 3.
fn server(i: usize) -> WorkloadSpec {
    let seed = 0x5EB0_0000 + i as u64;
    let mut s = base(format!("srv{i:02}"), Category::Server, seed);
    // Footprints from ~200 KB to ~900 KB across the server population.
    s.num_funcs = 350 + i * 60;
    s.stmts_per_func = (10, 22);
    s.block_len = (4, 11);
    // Flat profile: many calls, few short loops.
    s.call_milli = 110;
    s.indirect_call_milli = 110;
    s.loop_milli = 50 + (i as u16 % 3) * 15;
    s.loop_trip = (2, 5);
    s.variable_trip_milli = 120;
    s.dispatch_milli = 380;
    s.dispatch_fanout = (8 + i as u32, 16 + i as u32 * 2);
    s.if_milli = 430;
    s.driver_sites = 18 + i * 2;
    // Lower skew = wider instruction footprint per unit time.
    s.zipf_centi = 30 + (i as u32 % 5) * 15;
    s.cond_mix = CondMix {
        easy_milli: 800 + (i as u16 % 4) * 10,
        pattern_milli: 80,
        correlated_milli: 70,
    };
    s.hard_prob_range = (250, 750);
    s.easy_bias_milli = 985;
    s.data_span_kb = 256;
    s.random_mem_milli = 350;
    s
}

/// Integer workload: moderate footprint, loop-heavy with hard branches.
fn int(i: usize) -> WorkloadSpec {
    let seed = 0x1277_0000 + i as u64;
    let mut s = base(format!("int{i:02}"), Category::Int, seed);
    s.num_funcs = 60 + i * 30;
    s.stmts_per_func = (8, 16);
    s.call_milli = 130;
    s.loop_milli = 140;
    s.loop_trip = (3, 9);
    s.variable_trip_milli = 150;
    s.zipf_centi = 50;
    s.driver_sites = 12 + i;
    s.cond_mix = CondMix {
        easy_milli: 760,
        pattern_milli: 110,
        correlated_milli: 70,
    };
    s.easy_bias_milli = 980;
    s.hard_prob_range = (300, 700);
    s
}

/// FP workload: small footprint, long predictable loops, FP latencies.
fn fp(i: usize) -> WorkloadSpec {
    let seed = 0xF900_0000 + i as u64;
    let mut s = base(format!("fp{i:02}"), Category::Fp, seed);
    s.num_funcs = 18 + i * 6;
    s.stmts_per_func = (5, 10);
    s.loop_milli = 320;
    s.loop_trip = (16, 80);
    s.variable_trip_milli = 60;
    s.cond_mix = CondMix {
        easy_milli: 870,
        pattern_milli: 80,
        correlated_milli: 30,
    };
    s.fp_milli = 450;
    s.dispatch_milli = 80;
    s.dispatch_fanout = (2, 4);
    s.mul_milli = 120;
    s.mem_milli = 380;
    s.random_mem_milli = 80;
    s.indirect_call_milli = 20;
    s
}

/// Crypto workload: tiny hot loops, high ILP, almost no hard branches.
fn crypto(i: usize) -> WorkloadSpec {
    let seed = 0xC0DE_0000 + i as u64;
    let mut s = base(format!("crypto{i:02}"), Category::Crypto, seed);
    s.num_funcs = 10 + i * 4;
    s.stmts_per_func = (4, 9);
    s.block_len = (6, 14);
    s.loop_milli = 340;
    s.loop_trip = (8, 64);
    s.variable_trip_milli = 40;
    s.dispatch_milli = 60;
    s.dispatch_fanout = (2, 3);
    s.cond_mix = CondMix {
        easy_milli: 900,
        pattern_milli: 70,
        correlated_milli: 10,
    };
    s.mul_milli = 180;
    s.mem_milli = 240;
    s.random_mem_milli = 60;
    s.indirect_call_milli = 10;
    s.zipf_centi = 40;
    s
}

/// The full 30-workload evaluation suite (14 server, 8 int, 2 fp, 6 crypto),
/// echoing the CVP-1 category proportions with datacenter traces dominating.
pub fn workload_suite() -> Vec<WorkloadSpec> {
    let mut v = Vec::with_capacity(30);
    for i in 0..14 {
        v.push(server(i));
    }
    for i in 0..8 {
        v.push(int(i));
    }
    for i in 0..2 {
        v.push(fp(i));
    }
    for i in 0..6 {
        v.push(crypto(i));
    }
    v
}

/// A reduced 8-workload suite for quick runs (CI, `cargo bench` smoke
/// figures): 4 server, 2 int, 1 fp, 1 crypto.
pub fn quick_suite() -> Vec<WorkloadSpec> {
    vec![
        server(0),
        server(4),
        server(8),
        server(12),
        int(1),
        int(5),
        fp(0),
        crypto(2),
    ]
}

/// Looks a workload up by name in the full suite.
pub fn by_name(name: &str) -> Option<WorkloadSpec> {
    workload_suite().into_iter().find(|s| s.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn suite_has_30_unique_names_and_seeds() {
        let suite = workload_suite();
        assert_eq!(suite.len(), 30);
        let names: HashSet<_> = suite.iter().map(|s| s.name.clone()).collect();
        let seeds: HashSet<_> = suite.iter().map(|s| s.seed).collect();
        assert_eq!(names.len(), 30);
        assert_eq!(seeds.len(), 30);
    }

    #[test]
    fn quick_suite_is_subset_of_full() {
        let full: HashSet<_> = workload_suite().into_iter().map(|s| s.name).collect();
        for s in quick_suite() {
            assert!(full.contains(&s.name), "{} not in full suite", s.name);
        }
    }

    #[test]
    fn by_name_finds_and_misses() {
        assert!(by_name("srv03").is_some());
        assert!(by_name("nope").is_none());
    }

    #[test]
    fn server_footprints_oversubscribe_uop_cache() {
        // A 4Kops µ-op cache reaches 16 KB of code; server workloads must
        // exceed that by an order of magnitude.
        let p = server(0).build();
        assert!(
            p.footprint_bytes() > 160 * 1024,
            "srv00 footprint only {} bytes",
            p.footprint_bytes()
        );
    }

    #[test]
    fn crypto_footprints_are_small() {
        let p = crypto(0).build();
        assert!(
            p.footprint_bytes() < 64 * 1024,
            "crypto00 footprint {} bytes",
            p.footprint_bytes()
        );
    }

    #[test]
    fn all_specs_build_and_validate() {
        for s in workload_suite() {
            let p = s.build();
            p.validate();
            assert!(p.len() > 100, "{} too small", s.name);
        }
    }
}
