use std::collections::HashMap;
use ucp_workloads::{suite, Oracle};

fn main() {
    for n in ["srv00", "srv10", "int02", "crypto01"] {
        let spec = suite::by_name(n).unwrap();
        let p = spec.build();
        let mut o = Oracle::new(&p, spec.seed);
        let mut windows: HashMap<u64, u64> = HashMap::new();
        for _ in 0..1_000_000 {
            let d = o.next_inst();
            *windows.entry(d.pc.raw() >> 5).or_default() += 1;
        }
        let mut counts: Vec<u64> = windows.values().copied().collect();
        counts.sort_unstable_by(|a, b| b.cmp(a));
        let total: u64 = counts.iter().sum();
        let mut acc = 0u64;
        let mut w90 = 0usize;
        for (i, c) in counts.iter().enumerate() {
            acc += c;
            if acc * 10 >= total * 9 {
                w90 = i + 1;
                break;
            }
        }
        println!(
            "{n}: distinct_windows={} w90={} static_windows={}",
            counts.len(),
            w90,
            p.footprint_bytes() / 32
        );
    }
}
