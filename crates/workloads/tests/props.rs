//! Property-based tests for the workload generator and oracle.

use proptest::prelude::*;
use sim_isa::InstKind;
use ucp_workloads::{CondMix, Oracle, WorkloadSpec};

fn arb_spec() -> impl Strategy<Value = WorkloadSpec> {
    (
        1u64..100_000,
        2usize..60,
        (0u16..400, 0u16..400, 0u16..500),
        0u16..600,
        (0u16..400, 0u16..400, 0u16..200),
        (2u32..6, 6u32..12),
    )
        .prop_map(
            |(seed, funcs, (call, loop_m, if_m), dispatch, mix, trips)| {
                let mut s = WorkloadSpec::tiny("prop", seed);
                s.num_funcs = funcs.max(2);
                s.call_milli = call;
                s.loop_milli = loop_m;
                s.if_milli = if_m;
                s.dispatch_milli = dispatch;
                s.loop_trip = trips;
                let (a, b, c) = mix;
                // Keep the mix legal (≤1000 per-mille).
                let total = a + b + c;
                let (a, b, c) = if total > 1000 {
                    (
                        a * 1000 / total.max(1),
                        b * 1000 / total.max(1),
                        c * 1000 / total.max(1),
                    )
                } else {
                    (a, b, c)
                };
                s.cond_mix = CondMix {
                    easy_milli: a,
                    pattern_milli: b,
                    correlated_milli: c,
                };
                s
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every generated program validates, and all direct branch targets
    /// are instruction-aligned addresses inside the image.
    #[test]
    fn programs_validate(spec in arb_spec()) {
        let p = spec.build();
        let checked = p.validate();
        prop_assert!(checked > 0, "programs always contain direct branches");
        prop_assert_eq!(p.footprint_bytes(), p.len() as u64 * 4);
    }

    /// The oracle's control-flow bookkeeping is sound: calls and returns
    /// balance (the call stack never leaks), and taken flags match
    /// redirections.
    #[test]
    fn oracle_control_flow_sound(spec in arb_spec()) {
        let p = spec.build();
        let mut o = Oracle::new(&p, spec.seed);
        let mut depth: i64 = 0;
        for _ in 0..20_000 {
            let d = o.next_inst();
            match d.inst.kind {
                InstKind::Call { .. } | InstKind::IndirectCall => depth += 1,
                InstKind::Return => depth -= 1,
                _ => {}
            }
            prop_assert!(depth >= -1, "returns must not underflow the call structure");
            if d.redirects() {
                prop_assert!(d.taken, "a redirecting instruction must be a taken transfer");
            }
            if d.inst.kind.is_mem() {
                prop_assert!(!d.mem_addr.is_null(), "memory ops carry an address");
                prop_assert_eq!(d.mem_addr.raw() % 8, 0, "8-byte aligned data");
            }
        }
        prop_assert_eq!(depth as usize, o.call_depth());
    }

    /// Conditional outcomes respect their behavioural contracts: a branch
    /// whose taken probability is 0 is never taken, 1000 always taken.
    #[test]
    fn extreme_biases_are_exact(seed in 1u64..1000) {
        let mut s = WorkloadSpec::tiny("prop", seed);
        s.cond_mix = CondMix { easy_milli: 1000, pattern_milli: 0, correlated_milli: 0 };
        s.easy_bias_milli = 1000; // easy branches are always-taken or never-taken
        s.loop_milli = 0; // suppress loop branches, whose exits flip by design
        let p = s.build();
        let mut o = Oracle::new(&p, s.seed);
        use std::collections::HashMap;
        let mut outcomes: HashMap<u64, (bool, bool)> = HashMap::new(); // pc -> (saw_t, saw_nt)
        for _ in 0..50_000 {
            let d = o.next_inst();
            if matches!(d.inst.kind, InstKind::CondBranch { .. }) {
                let e = outcomes.entry(d.pc.raw()).or_insert((false, false));
                if d.taken { e.0 = true } else { e.1 = true }
            }
        }
        // Loop branches flip at exits; but pure biased branches at
        // probability 0/1000 must be constant. We can't tell them apart by
        // pc alone, so check the aggregate: a healthy majority of branch
        // sites must be single-direction.
        let constant = outcomes.values().filter(|(t, nt)| t ^ nt).count();
        prop_assert!(constant * 2 >= outcomes.len(), "{constant}/{}", outcomes.len());
    }

    /// Two oracles over the same spec with different seeds diverge (the
    /// seed actually drives behaviour).
    #[test]
    fn seed_changes_behaviour(spec in arb_spec()) {
        let p = spec.build();
        let mut a = Oracle::new(&p, spec.seed);
        let mut b = Oracle::new(&p, spec.seed ^ 0xdead_beef);
        let mut diverged = false;
        for _ in 0..20_000 {
            if a.next_inst() != b.next_inst() {
                diverged = true;
                break;
            }
        }
        prop_assert!(diverged, "different behavioural seeds must diverge");
    }
}
