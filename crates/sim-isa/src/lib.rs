//! Fixed-width RISC-like ISA model for the UCP reproduction.
//!
//! The paper evaluates on ARMv8 traces and assumes that every architectural
//! instruction is 4 bytes, aligned, and decodes to exactly one µ-op. This
//! crate models exactly that: a small RISC-like ISA with fixed 4-byte
//! instructions, 64 architectural registers, and a one-to-one
//! instruction-to-µ-op mapping.
//!
//! The two central types are [`StaticInst`] (an instruction as it exists in
//! the program image — what a decoder sees) and [`DynInst`] (one dynamic
//! execution of an instruction on the architecturally correct path — what the
//! oracle executor produces).
//!
//! # Examples
//!
//! ```
//! use sim_isa::{Addr, InstKind, Reg, StaticInst};
//!
//! let branch = StaticInst::new(InstKind::CondBranch { target: Addr::new(0x40) })
//!     .with_srcs(&[Reg::new(3)]);
//! assert!(branch.is_cond_branch());
//! assert_eq!(branch.kind.direct_target(), Some(Addr::new(0x40)));
//! ```

pub mod addr;
pub mod inst;
pub mod reg;
pub mod state;

pub use addr::{Addr, CACHE_LINE_BYTES, INST_BYTES, UOP_WINDOW_BYTES};
pub use inst::{BranchClass, DynInst, ExecClass, InstKind, StaticInst};
pub use reg::Reg;
pub use state::{fnv1a64, StateReader, StateWriter};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn public_types_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Addr>();
        assert_send_sync::<Reg>();
        assert_send_sync::<StaticInst>();
        assert_send_sync::<DynInst>();
        assert_send_sync::<InstKind>();
    }
}
