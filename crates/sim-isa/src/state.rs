//! Binary state codec for checkpoint/restore.
//!
//! Every stateful component of the simulator serializes its *mutable*
//! state (never fixed geometry, which is reconstructed from the config)
//! into a [`StateWriter`] and restores it from a [`StateReader`]. The
//! encoding is a flat little-endian byte stream with no self-description:
//! the component itself is the schema, and the whole-checkpoint envelope
//! (see `ucp-core::snapshot`) carries the version and checksum that make
//! a mismatched read detectable before any component decodes a byte.
//!
//! [`StateReader`] panics on underflow or on a failed [`StateReader::check`]
//! marker. That is deliberate: the envelope checksum and version are
//! validated *before* decoding starts, so a panic here means either a bug
//! or in-memory corruption, and the suite runner's `catch_unwind`
//! isolation (PR 3) converts it into a structured per-workload error
//! instead of a process abort.
//!
//! Determinism contract: a component must write its state in an order
//! that is a pure function of that state — no `HashMap` iteration order,
//! no addresses, no timestamps. The 64-bit FNV-1a digest of the encoded
//! bytes ([`fnv1a64`]) is then a stable fingerprint of the component
//! state, comparable across runs, machines and platforms.

use crate::Addr;

/// FNV-1a 64-bit hash — the digest function for component and
/// whole-checkpoint state fingerprints. Same constants as the result
/// cache's key hash, kept dependency-free here so every crate in the
/// workspace can digest its own state.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Append-only encoder for component state.
#[derive(Debug, Default)]
pub struct StateWriter {
    buf: Vec<u8>,
}

impl StateWriter {
    pub fn new() -> Self {
        Self::default()
    }

    /// The encoded bytes so far.
    pub fn bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Consumes the writer, returning the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    pub fn len(&self) -> usize {
        self.buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub fn put_bool(&mut self, v: bool) {
        self.buf.push(v as u8);
    }

    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_i8(&mut self, v: i8) {
        self.buf.push(v as u8);
    }

    pub fn put_i32(&mut self, v: i32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Encodes a `usize` as a fixed-width u64 so checkpoints are
    /// portable across pointer widths.
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    pub fn put_addr(&mut self, a: Addr) {
        self.put_u64(a.raw());
    }

    /// Length-prefixed raw bytes.
    pub fn put_bytes(&mut self, b: &[u8]) {
        self.put_usize(b.len());
        self.buf.extend_from_slice(b);
    }

    /// Length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_bytes(s.as_bytes());
    }

    /// `Option<u64>` as presence byte + value.
    pub fn put_opt_u64(&mut self, v: Option<u64>) {
        match v {
            Some(x) => {
                self.put_bool(true);
                self.put_u64(x);
            }
            None => self.put_bool(false),
        }
    }

    /// A structural marker. [`StateReader::check`] verifies it during
    /// restore, so a component whose encode/decode drift out of sync
    /// fails fast at the drift point instead of silently mis-decoding
    /// everything after it.
    pub fn mark(&mut self, tag: u32) {
        self.put_u32(tag ^ 0x5AFE_5AFE);
    }
}

/// Decoder over a component state byte slice. Panics on underflow or
/// marker mismatch — see the module docs for why that is safe here.
#[derive(Debug)]
pub struct StateReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> StateReader<'a> {
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> &'a [u8] {
        assert!(
            self.remaining() >= n,
            "checkpoint state underflow: need {n} bytes at offset {}, have {}",
            self.pos,
            self.remaining()
        );
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        s
    }

    pub fn get_u8(&mut self) -> u8 {
        self.take(1)[0]
    }

    pub fn get_bool(&mut self) -> bool {
        match self.get_u8() {
            0 => false,
            1 => true,
            b => panic!("checkpoint state corrupt: bool byte {b:#x}"),
        }
    }

    pub fn get_u16(&mut self) -> u16 {
        u16::from_le_bytes(self.take(2).try_into().unwrap())
    }

    pub fn get_u32(&mut self) -> u32 {
        u32::from_le_bytes(self.take(4).try_into().unwrap())
    }

    pub fn get_u64(&mut self) -> u64 {
        u64::from_le_bytes(self.take(8).try_into().unwrap())
    }

    pub fn get_i8(&mut self) -> i8 {
        self.get_u8() as i8
    }

    pub fn get_i32(&mut self) -> i32 {
        i32::from_le_bytes(self.take(4).try_into().unwrap())
    }

    pub fn get_i64(&mut self) -> i64 {
        i64::from_le_bytes(self.take(8).try_into().unwrap())
    }

    pub fn get_usize(&mut self) -> usize {
        let v = self.get_u64();
        usize::try_from(v).expect("checkpoint state corrupt: usize overflow")
    }

    pub fn get_addr(&mut self) -> Addr {
        Addr::new(self.get_u64())
    }

    pub fn get_bytes(&mut self) -> &'a [u8] {
        let n = self.get_usize();
        self.take(n)
    }

    pub fn get_str(&mut self) -> &'a str {
        std::str::from_utf8(self.get_bytes()).expect("checkpoint state corrupt: non-UTF-8 string")
    }

    pub fn get_opt_u64(&mut self) -> Option<u64> {
        self.get_bool().then(|| self.get_u64())
    }

    /// Verifies a [`StateWriter::mark`] written at the same structural
    /// point during save.
    pub fn check(&mut self, tag: u32) {
        let got = self.get_u32() ^ 0x5AFE_5AFE;
        assert_eq!(
            got, tag,
            "checkpoint state corrupt: marker {got:#x} where {tag:#x} expected"
        );
    }

    /// Asserts the whole slice was consumed — every restore should end
    /// with this so trailing garbage (a schema drift symptom) is caught.
    pub fn finish(self) {
        assert_eq!(
            self.remaining(),
            0,
            "checkpoint state corrupt: {} trailing bytes",
            self.remaining()
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_primitives() {
        let mut w = StateWriter::new();
        w.mark(1);
        w.put_u8(0xAB);
        w.put_bool(true);
        w.put_bool(false);
        w.put_u16(0xBEEF);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(u64::MAX - 3);
        w.put_i8(-7);
        w.put_i32(-123_456);
        w.put_i64(i64::MIN + 1);
        w.put_usize(42);
        w.put_addr(Addr::new(0x4000));
        w.put_bytes(&[1, 2, 3]);
        w.put_str("µop");
        w.put_opt_u64(Some(9));
        w.put_opt_u64(None);
        w.mark(2);

        let bytes = w.into_bytes();
        let mut r = StateReader::new(&bytes);
        r.check(1);
        assert_eq!(r.get_u8(), 0xAB);
        assert!(r.get_bool());
        assert!(!r.get_bool());
        assert_eq!(r.get_u16(), 0xBEEF);
        assert_eq!(r.get_u32(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64(), u64::MAX - 3);
        assert_eq!(r.get_i8(), -7);
        assert_eq!(r.get_i32(), -123_456);
        assert_eq!(r.get_i64(), i64::MIN + 1);
        assert_eq!(r.get_usize(), 42);
        assert_eq!(r.get_addr(), Addr::new(0x4000));
        assert_eq!(r.get_bytes(), &[1, 2, 3]);
        assert_eq!(r.get_str(), "µop");
        assert_eq!(r.get_opt_u64(), Some(9));
        assert_eq!(r.get_opt_u64(), None);
        r.check(2);
        r.finish();
    }

    #[test]
    fn fnv1a64_matches_reference_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn reader_panics_on_underflow() {
        let mut r = StateReader::new(&[1, 2]);
        r.get_u64();
    }

    #[test]
    #[should_panic(expected = "marker")]
    fn reader_panics_on_marker_mismatch() {
        let mut w = StateWriter::new();
        w.mark(7);
        let b = w.into_bytes();
        StateReader::new(&b).check(8);
    }
}
