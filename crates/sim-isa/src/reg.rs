//! Architectural registers.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Number of architectural registers (integer + FP file, flat namespace).
pub const NUM_REGS: u8 = 64;

/// An architectural register identifier in `0..NUM_REGS`.
///
/// # Examples
///
/// ```
/// use sim_isa::Reg;
/// let r = Reg::new(5);
/// assert_eq!(r.index(), 5);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Reg(u8);

impl Reg {
    /// Creates a register id.
    ///
    /// # Panics
    ///
    /// Panics if `id >= NUM_REGS`.
    #[inline]
    pub fn new(id: u8) -> Self {
        assert!(id < NUM_REGS, "register id {id} out of range");
        Reg(id)
    }

    /// The register's index, suitable for scoreboard lookup.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        for i in 0..NUM_REGS {
            assert_eq!(Reg::new(i).index(), i as usize);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_panics() {
        let _ = Reg::new(NUM_REGS);
    }

    #[test]
    fn display() {
        assert_eq!(Reg::new(7).to_string(), "r7");
    }
}
