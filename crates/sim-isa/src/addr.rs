//! Byte addresses and the geometry constants shared by the whole simulator.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Size of one architectural instruction in bytes (ARMv8-style fixed width).
pub const INST_BYTES: u64 = 4;

/// Size of one cache line in bytes (L1I/L1D/L2/LLC all use 64 B lines).
pub const CACHE_LINE_BYTES: u64 = 64;

/// Bytes covered by one µ-op cache entry (the paper uses 32 B windows holding
/// up to 8 µ-ops).
pub const UOP_WINDOW_BYTES: u64 = 32;

/// A byte address in the simulated machine.
///
/// A newtype over `u64` so instruction addresses, line addresses and window
/// addresses cannot be silently mixed with counters or indices.
///
/// # Examples
///
/// ```
/// use sim_isa::Addr;
/// let pc = Addr::new(0x1_0044);
/// assert_eq!(pc.line(), Addr::new(0x1_0040));
/// assert_eq!(pc.next_inst(), Addr::new(0x1_0048));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct Addr(u64);

impl Addr {
    /// The zero address, used as an "invalid / not yet known" sentinel by
    /// structures that need one (e.g. empty BTB targets).
    pub const NULL: Addr = Addr(0);

    /// Creates an address from a raw byte value.
    #[inline]
    pub const fn new(raw: u64) -> Self {
        Addr(raw)
    }

    /// Returns the raw byte value.
    #[inline]
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Returns `true` if this is the [`Addr::NULL`] sentinel.
    #[inline]
    pub const fn is_null(self) -> bool {
        self.0 == 0
    }

    /// Address of the 64 B cache line containing this address.
    #[inline]
    pub const fn line(self) -> Addr {
        Addr(self.0 & !(CACHE_LINE_BYTES - 1))
    }

    /// Address of the 32 B µ-op cache window containing this address.
    #[inline]
    pub const fn uop_window(self) -> Addr {
        Addr(self.0 & !(UOP_WINDOW_BYTES - 1))
    }

    /// Byte offset of this address within its 32 B µ-op cache window.
    #[inline]
    pub const fn uop_window_offset(self) -> u64 {
        self.0 & (UOP_WINDOW_BYTES - 1)
    }

    /// Address of the next sequential instruction.
    #[inline]
    pub const fn next_inst(self) -> Addr {
        Addr(self.0 + INST_BYTES)
    }

    /// Address advanced by `n` instructions.
    #[inline]
    pub const fn offset_insts(self, n: u64) -> Addr {
        Addr(self.0 + n * INST_BYTES)
    }

    /// Number of instructions between `self` and `later` (`later >= self`).
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `later` is below `self` or the distance is
    /// not a whole number of instructions.
    #[inline]
    pub fn insts_until(self, later: Addr) -> u64 {
        debug_assert!(later.0 >= self.0);
        debug_assert_eq!((later.0 - self.0) % INST_BYTES, 0);
        (later.0 - self.0) / INST_BYTES
    }

    /// `true` if `self` and `other` fall in the same 64 B cache line.
    #[inline]
    pub const fn same_line(self, other: Addr) -> bool {
        self.line().0 == other.line().0
    }
}

impl fmt::Debug for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Addr({:#x})", self.0)
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl fmt::LowerHex for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl From<u64> for Addr {
    fn from(raw: u64) -> Self {
        Addr(raw)
    }
}

impl From<Addr> for u64 {
    fn from(a: Addr) -> Self {
        a.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_masks_low_bits() {
        assert_eq!(Addr::new(0x1234).line(), Addr::new(0x1200));
        assert_eq!(Addr::new(0x1240).line(), Addr::new(0x1240));
    }

    #[test]
    fn window_and_offset_partition_address() {
        let a = Addr::new(0x1005c);
        assert_eq!(a.uop_window().raw() + a.uop_window_offset(), a.raw());
        assert_eq!(a.uop_window(), Addr::new(0x10040));
        assert_eq!(a.uop_window_offset(), 0x1c);
    }

    #[test]
    fn inst_arithmetic_round_trips() {
        let a = Addr::new(0x400);
        let b = a.offset_insts(7);
        assert_eq!(a.insts_until(b), 7);
        assert_eq!(a.next_inst(), a.offset_insts(1));
    }

    #[test]
    fn same_line_detects_boundaries() {
        assert!(Addr::new(0x100).same_line(Addr::new(0x13c)));
        assert!(!Addr::new(0x13c).same_line(Addr::new(0x140)));
    }

    #[test]
    fn null_sentinel() {
        assert!(Addr::NULL.is_null());
        assert!(!Addr::new(4).is_null());
        assert_eq!(Addr::default(), Addr::NULL);
    }

    #[test]
    fn display_is_hex() {
        assert_eq!(Addr::new(0xabc).to_string(), "0xabc");
        assert_eq!(format!("{:x}", Addr::new(0xabc)), "abc");
    }
}
