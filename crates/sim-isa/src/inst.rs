//! Static and dynamic instruction representations.

use crate::addr::Addr;
use crate::reg::Reg;
use serde::{Deserialize, Serialize};

/// Execution latency class of a non-control µ-op.
///
/// Latencies themselves live in the pipeline configuration; the ISA only
/// records the class.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ExecClass {
    /// Simple integer ALU operation (1-cycle class).
    Alu,
    /// Integer multiply (3-cycle class).
    Mul,
    /// Integer divide (long-latency class).
    Div,
    /// Floating-point add/convert class.
    FpAdd,
    /// Floating-point multiply/FMA class.
    FpMul,
}

/// Control-flow class of a branch, as the BTB/BPU categorize it.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BranchClass {
    /// Conditional direct branch.
    CondDirect,
    /// Unconditional direct jump.
    UncondDirect,
    /// Direct call (pushes a return address).
    Call,
    /// Indirect jump through a register.
    IndirectJump,
    /// Indirect call through a register.
    IndirectCall,
    /// Function return (pops the return address stack).
    Return,
}

impl BranchClass {
    /// `true` for the classes whose target comes from a register at run time
    /// (indirect jumps/calls and returns).
    #[inline]
    pub const fn is_indirect(self) -> bool {
        matches!(
            self,
            BranchClass::IndirectJump | BranchClass::IndirectCall | BranchClass::Return
        )
    }

    /// `true` if this class is always taken.
    #[inline]
    pub const fn is_unconditional(self) -> bool {
        !matches!(self, BranchClass::CondDirect)
    }

    /// Stable byte encoding used by checkpoint serialization.
    #[inline]
    pub const fn code(self) -> u8 {
        match self {
            BranchClass::CondDirect => 0,
            BranchClass::UncondDirect => 1,
            BranchClass::Call => 2,
            BranchClass::IndirectJump => 3,
            BranchClass::IndirectCall => 4,
            BranchClass::Return => 5,
        }
    }

    /// Inverse of [`BranchClass::code`].
    ///
    /// # Panics
    ///
    /// Panics on an unknown byte (checkpoint corruption).
    #[inline]
    pub fn from_code(b: u8) -> Self {
        match b {
            0 => BranchClass::CondDirect,
            1 => BranchClass::UncondDirect,
            2 => BranchClass::Call,
            3 => BranchClass::IndirectJump,
            4 => BranchClass::IndirectCall,
            5 => BranchClass::Return,
            _ => panic!("checkpoint state corrupt: branch class {b}"),
        }
    }
}

/// The operation performed by a [`StaticInst`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum InstKind {
    /// Non-memory compute operation of the given latency class.
    Op(ExecClass),
    /// Memory load.
    Load,
    /// Memory store.
    Store,
    /// Conditional direct branch; not-taken falls through.
    CondBranch {
        /// Taken target.
        target: Addr,
    },
    /// Unconditional direct jump.
    Jump {
        /// Jump target.
        target: Addr,
    },
    /// Direct call; pushes `pc + 4` on the call stack.
    Call {
        /// Callee entry point.
        target: Addr,
    },
    /// Indirect jump; target produced by the workload's behaviour model.
    IndirectJump,
    /// Indirect call; target produced by the workload's behaviour model.
    IndirectCall,
    /// Return to the most recent call site.
    Return,
}

impl InstKind {
    /// The branch class, or `None` for non-control instructions.
    #[inline]
    pub const fn branch_class(self) -> Option<BranchClass> {
        match self {
            InstKind::CondBranch { .. } => Some(BranchClass::CondDirect),
            InstKind::Jump { .. } => Some(BranchClass::UncondDirect),
            InstKind::Call { .. } => Some(BranchClass::Call),
            InstKind::IndirectJump => Some(BranchClass::IndirectJump),
            InstKind::IndirectCall => Some(BranchClass::IndirectCall),
            InstKind::Return => Some(BranchClass::Return),
            InstKind::Op(_) | InstKind::Load | InstKind::Store => None,
        }
    }

    /// The statically encoded target for direct control flow, if any.
    #[inline]
    pub const fn direct_target(self) -> Option<Addr> {
        match self {
            InstKind::CondBranch { target }
            | InstKind::Jump { target }
            | InstKind::Call { target } => Some(target),
            _ => None,
        }
    }

    /// `true` for loads and stores.
    #[inline]
    pub const fn is_mem(self) -> bool {
        matches!(self, InstKind::Load | InstKind::Store)
    }
}

/// An instruction as it exists in the program image.
///
/// `StaticInst` deliberately does not know its own address: the program
/// stores instructions densely and the address is implied by position. Use
/// [`StaticInst::new`] plus the `with_*` builders to construct one.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct StaticInst {
    /// What the instruction does.
    pub kind: InstKind,
    /// Destination register, if the instruction writes one.
    pub dst: Option<Reg>,
    /// Up to two source registers.
    pub srcs: [Option<Reg>; 2],
}

impl StaticInst {
    /// Creates an instruction with no register operands.
    #[inline]
    pub const fn new(kind: InstKind) -> Self {
        StaticInst {
            kind,
            dst: None,
            srcs: [None, None],
        }
    }

    /// Sets the destination register.
    #[inline]
    pub const fn with_dst(mut self, dst: Reg) -> Self {
        self.dst = Some(dst);
        self
    }

    /// Sets up to two source registers; extras are ignored.
    #[inline]
    pub fn with_srcs(mut self, srcs: &[Reg]) -> Self {
        for (slot, &r) in self.srcs.iter_mut().zip(srcs.iter()) {
            *slot = Some(r);
        }
        self
    }

    /// `true` if this is any control-flow instruction.
    #[inline]
    pub const fn is_branch(&self) -> bool {
        self.kind.branch_class().is_some()
    }

    /// `true` if this is a conditional direct branch.
    #[inline]
    pub const fn is_cond_branch(&self) -> bool {
        matches!(self.kind, InstKind::CondBranch { .. })
    }
}

/// One dynamic execution of an instruction on the architecturally correct
/// path, as produced by the oracle executor.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct DynInst {
    /// Address of the instruction.
    pub pc: Addr,
    /// The static instruction.
    pub inst: StaticInst,
    /// Address of the next instruction on the correct path.
    pub next_pc: Addr,
    /// For branches: whether the branch was taken. `false` otherwise.
    pub taken: bool,
    /// For loads/stores: the effective address. [`Addr::NULL`] otherwise.
    pub mem_addr: Addr,
}

impl DynInst {
    /// `true` if the correct path leaves the sequential stream here.
    #[inline]
    pub fn redirects(&self) -> bool {
        self.next_pc != self.pc.next_inst()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn branch_classes() {
        assert_eq!(
            InstKind::CondBranch {
                target: Addr::new(8)
            }
            .branch_class(),
            Some(BranchClass::CondDirect)
        );
        assert_eq!(InstKind::Return.branch_class(), Some(BranchClass::Return));
        assert_eq!(InstKind::Op(ExecClass::Alu).branch_class(), None);
        assert!(BranchClass::Return.is_indirect());
        assert!(BranchClass::IndirectCall.is_indirect());
        assert!(!BranchClass::CondDirect.is_indirect());
        assert!(!BranchClass::CondDirect.is_unconditional());
        assert!(BranchClass::Call.is_unconditional());
    }

    #[test]
    fn direct_targets() {
        let t = Addr::new(0x80);
        assert_eq!(InstKind::Call { target: t }.direct_target(), Some(t));
        assert_eq!(InstKind::IndirectJump.direct_target(), None);
        assert_eq!(InstKind::Load.direct_target(), None);
    }

    #[test]
    fn builder_sets_operands() {
        let i = StaticInst::new(InstKind::Op(ExecClass::Mul))
            .with_dst(Reg::new(1))
            .with_srcs(&[Reg::new(2), Reg::new(3)]);
        assert_eq!(i.dst, Some(Reg::new(1)));
        assert_eq!(i.srcs, [Some(Reg::new(2)), Some(Reg::new(3))]);
        assert!(!i.is_branch());
    }

    #[test]
    fn extra_srcs_ignored() {
        let i = StaticInst::new(InstKind::Load).with_srcs(&[Reg::new(1), Reg::new(2), Reg::new(3)]);
        assert_eq!(i.srcs, [Some(Reg::new(1)), Some(Reg::new(2))]);
        assert!(i.kind.is_mem());
    }

    #[test]
    fn dyn_inst_redirect() {
        let pc = Addr::new(0x100);
        let d = DynInst {
            pc,
            inst: StaticInst::new(InstKind::CondBranch {
                target: Addr::new(0x200),
            }),
            next_pc: Addr::new(0x200),
            taken: true,
            mem_addr: Addr::NULL,
        };
        assert!(d.redirects());
        let seq = DynInst {
            next_pc: pc.next_inst(),
            taken: false,
            ..d
        };
        assert!(!seq.redirects());
    }
}
