//! Benchmark harnesses that regenerate every table and figure of the
//! paper's evaluation.
//!
//! Each figure lives in [`figs`] as a function returning a printable
//! report; the `src/bin/fig*.rs` binaries are thin wrappers, and
//! `benches/figures.rs` runs reduced versions of all of them under
//! `cargo bench`.
//!
//! # Profiles
//!
//! Simulation volume is controlled by the `UCP_FIG_PROFILE` environment
//! variable:
//!
//! * `quick` — 8-workload suite, 0.2 M + 0.8 M instructions per run,
//! * `std` (default) — full 30-workload suite, 0.5 M + 2 M,
//! * `full` — full suite, 1 M + 4 M (the paper-scale setting).
//!
//! Suite runs are cached under `target/ucp-results` keyed by
//! configuration + profile, so reruns and figure interdependencies (many
//! figures share the baseline) are free. Set `UCP_NO_CACHE=1` to disable.
//!
//! # Resilience
//!
//! Suite execution is fault-isolated: a panicking, hanging or
//! invariant-violating workload degrades the run (reports carry a
//! `DEGRADED (k/n)` marker) instead of killing it; per-workload results
//! persist incrementally so a killed run resumes; and every cache entry
//! is integrity-checked (checksum + model version), with corrupt entries
//! quarantined and regenerated. See [`cache`] and
//! `ucp_core::run_suite_outcome`.

pub mod cache;
pub mod figs;
pub mod harness;

pub use harness::{
    cached_suite_run, check_accounting, merged_telemetry, profiled_suite_run, prune_cache_litter,
    stall_breakdown_table, suite_breakdown, suite_run_with_cache, try_cached_suite_run, HostPhase,
    Profile, SuiteRun, MODEL_VERSION,
};
