//! Shared harness plumbing: profiles, the fault-isolated resumable
//! result cache, host-side self-profiling, and formatting.

use crate::cache::{quarantine, read_envelope, write_envelope, CacheReadError};
use std::ops::Deref;
use std::path::{Path, PathBuf};
use std::time::Instant;
use ucp_core::{run_suite_outcome, RunResult, SimConfig, SimError, SuiteOptions};
use ucp_telemetry::fault::global_plan;
use ucp_telemetry::AccountingBreakdown;
use ucp_workloads::suite::{quick_suite, workload_suite};
use ucp_workloads::WorkloadSpec;

/// Simulation volume profile (see the crate docs).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Profile {
    /// 8 workloads × (0.2 M + 0.8 M) instructions.
    Quick,
    /// 30 workloads × (0.5 M + 2 M) instructions.
    Std,
    /// 30 workloads × (1 M + 4 M) instructions.
    Full,
}

impl Profile {
    /// Parses a profile tag.
    ///
    /// # Errors
    ///
    /// An unknown tag is a hard error listing the valid tags — a typo'd
    /// `UCP_FIG_PROFILE` must not silently simulate the (much slower)
    /// default profile.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "quick" => Ok(Profile::Quick),
            "std" => Ok(Profile::Std),
            "full" => Ok(Profile::Full),
            other => Err(format!(
                "UCP_FIG_PROFILE=`{other}` is not a profile; valid tags: quick, std, full"
            )),
        }
    }

    /// Reads `UCP_FIG_PROFILE` (default `std`); unknown tags are an
    /// error.
    pub fn from_env_checked() -> Result<Self, String> {
        match std::env::var("UCP_FIG_PROFILE") {
            Err(_) => Ok(Profile::Std),
            Ok(s) if s.trim().is_empty() => Ok(Profile::Std),
            Ok(s) => Profile::parse(s.trim()),
        }
    }

    /// [`Profile::from_env_checked`] for binaries: prints the error and
    /// exits with status 2 on a malformed environment.
    pub fn from_env() -> Self {
        Profile::from_env_checked().unwrap_or_else(|e| {
            eprintln!("error: {e}");
            std::process::exit(2);
        })
    }

    /// The workload suite for this profile.
    pub fn suite(self) -> Vec<WorkloadSpec> {
        match self {
            Profile::Quick => quick_suite(),
            _ => workload_suite(),
        }
    }

    /// (warmup, measure) instruction counts per run.
    pub fn lengths(self) -> (u64, u64) {
        match self {
            Profile::Quick => (200_000, 800_000),
            Profile::Std => (500_000, 2_000_000),
            Profile::Full => (1_000_000, 4_000_000),
        }
    }

    /// Short tag for cache keys and report headers.
    pub fn tag(self) -> &'static str {
        match self {
            Profile::Quick => "quick",
            Profile::Std => "std",
            Profile::Full => "full",
        }
    }
}

/// Bump when a model-affecting code change invalidates cached results.
/// (v2: results gained cycle accounting and interval time series; v3:
/// entries moved into the integrity envelope, which also carries this
/// version — stale entries now quarantine instead of silently orphaning.)
pub const MODEL_VERSION: u32 = 3;

fn cache_dir() -> PathBuf {
    std::env::var("UCP_RESULT_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from("target/ucp-results"))
}

use crate::cache::fnv1a;

/// A suite's results plus how the run got them: complete or degraded,
/// fresh or resumed. Derefs to the *successful* results (in suite order),
/// so aggregation code written for `Vec<RunResult>` keeps working; the
/// failure records ride alongside for report markers.
#[derive(Debug, Default)]
pub struct SuiteRun {
    results: Vec<RunResult>,
    /// Workloads that failed every attempt: `(name, final error)`.
    pub failures: Vec<(String, SimError)>,
    /// Suite size (`results.len() + failures.len()`).
    pub total: usize,
    /// How many results were resumed from partial persistence instead of
    /// simulated in this invocation.
    pub resumed: usize,
}

impl Deref for SuiteRun {
    type Target = [RunResult];
    fn deref(&self) -> &[RunResult] {
        &self.results
    }
}

impl SuiteRun {
    /// Wraps a complete, trusted result set (cache hits, tests).
    pub fn complete(results: Vec<RunResult>) -> Self {
        let total = results.len();
        SuiteRun {
            results,
            failures: Vec::new(),
            total,
            resumed: 0,
        }
    }

    /// The successful results, in suite order.
    pub fn results(&self) -> &[RunResult] {
        &self.results
    }

    /// True when every workload produced a result.
    pub fn is_complete(&self) -> bool {
        self.failures.is_empty()
    }

    /// The `DEGRADED (k/n)` report marker, or `None` when complete.
    pub fn marker(&self) -> Option<String> {
        (!self.is_complete()).then(|| format!("DEGRADED ({}/{})", self.results.len(), self.total))
    }
}

/// Retention caps for result-cache litter: stale `partial-<key>/` resume
/// directories (a partial can only resume a run with the *same* key, so
/// old ones are dead weight) and `*.quarantined.*` forensic copies.
const MAX_PARTIAL_DIRS: usize = 8;
const MAX_QUARANTINED: usize = 16;

/// Prunes the cache directory's recoverable litter down to the retention
/// caps, oldest first by mtime, logging every eviction. `active_partial`
/// (the in-flight run's resume directory) is never pruned, and the
/// combined `<key>.json` entries are never touched.
pub fn prune_cache_litter(
    dir: &Path,
    active_partial: &Path,
    max_partial_dirs: usize,
    max_quarantined: usize,
) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    let mut partials = Vec::new();
    let mut quarantined = Vec::new();
    for e in entries.flatten() {
        let path = e.path();
        if path == active_partial {
            continue;
        }
        let Ok(md) = e.metadata() else { continue };
        let name = e.file_name().to_string_lossy().into_owned();
        let mtime = md.modified().ok();
        if md.is_dir() && name.starts_with("partial-") {
            partials.push((mtime, path));
        } else if md.is_file() && name.contains(".quarantined") {
            quarantined.push((mtime, path));
        }
    }
    prune_oldest(partials, max_partial_dirs, true);
    prune_oldest(quarantined, max_quarantined, false);
}

fn prune_oldest(
    mut entries: Vec<(Option<std::time::SystemTime>, PathBuf)>,
    cap: usize,
    is_dir: bool,
) {
    if entries.len() <= cap {
        return;
    }
    // Unreadable mtimes (`None`) sort oldest and go first.
    entries.sort_by_key(|(t, _)| *t);
    let excess = entries.len() - cap;
    for (_, path) in entries.drain(..excess) {
        let removed = if is_dir {
            std::fs::remove_dir_all(&path)
        } else {
            std::fs::remove_file(&path)
        };
        match removed {
            Ok(()) => eprintln!("[ucp-cache] pruned stale {}", path.display()),
            Err(e) => eprintln!("[ucp-cache] could not prune {}: {e}", path.display()),
        }
    }
}

/// The fault-isolated, resumable, integrity-checked suite runner behind
/// [`cached_suite_run`], parameterized over the cache directory so tests
/// can use private directories instead of racing on the environment.
///
/// Cache layout under `dir`:
///
/// - `<key>.json` — the complete suite result set, enveloped
///   (written only when every workload succeeded);
/// - `partial-<key>/NN-<workload>.json` — per-workload results, enveloped,
///   persisted as each workload finishes so a killed run resumes instead
///   of re-simulating (cleared once the combined entry lands);
/// - `*.quarantined.*` — entries that failed integrity verification,
///   moved aside for debugging and regenerated.
///
/// # Errors
///
/// [`SimError::BadConfig`] for malformed environment knobs. Per-workload
/// failures do not error — they degrade the returned [`SuiteRun`].
pub fn suite_run_with_cache(
    cfg: &SimConfig,
    suite: &[WorkloadSpec],
    warmup: u64,
    measure: u64,
    dir: &Path,
    opts: &SuiteOptions,
    use_cache: bool,
) -> Result<SuiteRun, SimError> {
    let bad = |detail: String| SimError::BadConfig { detail };
    // Cached results embed the interval series sampled at whatever
    // UCP_INTERVAL was active when the cache was populated, so the
    // effective interval is part of the key (0 = sampling off).
    let interval = ucp_telemetry::IntervalSampler::from_env()
        .map_err(bad)?
        .map_or(0, |s| s.every());
    let fault = match opts.fault.clone() {
        Some(p) => Some(p),
        None => global_plan().map_err(bad)?,
    };
    let cfg_json = serde_json::to_string(cfg).expect("config serializes");
    let names: Vec<&str> = suite.iter().map(|s| s.name.as_str()).collect();
    let key = format!("{cfg_json}|{names:?}|{warmup}|{measure}|iv{interval}");
    let key = format!("{:016x}", fnv1a(key.as_bytes()));
    let combined = dir.join(format!("{key}.json"));
    let partial_dir = dir.join(format!("partial-{key}"));

    if use_cache {
        if let Some(results) = load_combined(&combined, suite) {
            return Ok(SuiteRun::complete(results));
        }
        prune_cache_litter(dir, &partial_dir, MAX_PARTIAL_DIRS, MAX_QUARANTINED);
    }

    // Resume: adopt verified per-workload partials from a previous run.
    let mut prefilled: Vec<Option<RunResult>> = vec![None; suite.len()];
    if use_cache {
        for (i, spec) in suite.iter().enumerate() {
            prefilled[i] = load_partial(&partial_path(&partial_dir, i, spec), &spec.name);
        }
    }
    let resumed = prefilled.iter().flatten().count();

    let persist_fault = fault.clone();
    let persist = |i: usize, r: &RunResult| {
        if std::fs::create_dir_all(&partial_dir).is_err() {
            return;
        }
        if let Ok(text) = serde_json::to_string(r) {
            let _ = write_envelope(
                &partial_path(&partial_dir, i, &suite[i]),
                MODEL_VERSION,
                &text,
                persist_fault.as_deref(),
            );
        }
    };
    let run_opts = SuiteOptions {
        prefilled,
        fault,
        ..opts.clone()
    };
    let outcome = run_suite_outcome(
        suite,
        cfg,
        warmup,
        measure,
        &run_opts,
        use_cache.then_some(&persist as ucp_core::PersistFn<'_>),
    )?;

    let total = outcome.total();
    let mut results = Vec::new();
    let mut failures = Vec::new();
    for o in outcome.outcomes {
        match o.outcome {
            Ok(r) => results.push(r),
            Err(e) => failures.push((o.workload, e)),
        }
    }
    let run = SuiteRun {
        results,
        failures,
        total,
        resumed,
    };
    if use_cache && run.is_complete() {
        let _ = std::fs::create_dir_all(dir);
        if let Ok(text) = serde_json::to_string(&run.results) {
            let _ = write_envelope(&combined, MODEL_VERSION, &text, run_opts.fault.as_deref());
        }
        // The combined entry supersedes the partials.
        let _ = std::fs::remove_dir_all(&partial_dir);
    }
    Ok(run)
}

fn partial_path(partial_dir: &Path, i: usize, spec: &WorkloadSpec) -> PathBuf {
    partial_dir.join(format!("{i:02}-{}.json", spec.name))
}

/// Loads and verifies the combined cache entry; quarantines anything
/// corrupt or misaligned (wrong suite length/order — a key collision or
/// a stale layout) and reports a miss.
fn load_combined(path: &Path, suite: &[WorkloadSpec]) -> Option<Vec<RunResult>> {
    match read_envelope(path, MODEL_VERSION) {
        Ok(payload) => match serde_json::from_str::<Vec<RunResult>>(&payload) {
            Ok(results)
                if results.len() == suite.len()
                    && results.iter().zip(suite).all(|(r, s)| r.workload == s.name) =>
            {
                Some(results)
            }
            Ok(_) => {
                eprintln!(
                    "warning: cache entry {} does not match the suite; quarantining",
                    path.display()
                );
                quarantine(path);
                None
            }
            Err(e) => {
                eprintln!(
                    "warning: cache entry {} holds unparseable payload ({e}); quarantining",
                    path.display()
                );
                quarantine(path);
                None
            }
        },
        Err(CacheReadError::Missing) => None,
        Err(CacheReadError::Corrupt(why)) => {
            eprintln!(
                "warning: cache entry {} is corrupt ({why}); quarantining",
                path.display()
            );
            quarantine(path);
            None
        }
    }
}

/// Loads and verifies one per-workload partial; quarantines corrupt or
/// misnamed entries and reports a miss (the workload just re-simulates).
fn load_partial(path: &Path, expect_workload: &str) -> Option<RunResult> {
    match read_envelope(path, MODEL_VERSION) {
        Ok(payload) => match serde_json::from_str::<RunResult>(&payload) {
            Ok(r) if r.workload == expect_workload => Some(r),
            _ => {
                eprintln!(
                    "warning: partial result {} is unusable; quarantining",
                    path.display()
                );
                quarantine(path);
                None
            }
        },
        Err(CacheReadError::Missing) => None,
        Err(CacheReadError::Corrupt(why)) => {
            eprintln!(
                "warning: partial result {} is corrupt ({why}); quarantining",
                path.display()
            );
            quarantine(path);
            None
        }
    }
}

/// [`cached_suite_run`] without the exit-on-error wrapper, for callers
/// that handle [`SimError`] themselves.
///
/// # Errors
///
/// [`SimError::BadConfig`] for malformed environment knobs.
pub fn try_cached_suite_run(cfg: &SimConfig, profile: Profile) -> Result<SuiteRun, SimError> {
    let suite = profile.suite();
    let (warmup, measure) = profile.lengths();
    let use_cache = std::env::var("UCP_NO_CACHE").is_err();
    suite_run_with_cache(
        cfg,
        &suite,
        warmup,
        measure,
        &cache_dir(),
        &SuiteOptions::default(),
        use_cache,
    )
}

/// Runs `cfg` over the profile's suite, caching results on disk. The cache
/// key covers the full configuration, the suite composition and the run
/// lengths, so distinct experiments never collide. Workload failures
/// degrade the returned [`SuiteRun`] (see [`SuiteRun::marker`]); only a
/// malformed environment terminates the process (exit 2).
pub fn cached_suite_run(cfg: &SimConfig, profile: Profile) -> SuiteRun {
    let run = try_cached_suite_run(cfg, profile).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(2);
    });
    for (name, e) in &run.failures {
        eprintln!("warning: workload `{name}` failed: {e}");
    }
    run
}

/// Sums the per-workload telemetry snapshots of a result set into one
/// suite-wide [`ucp_telemetry::RegistrySnapshot`]. Empty when every result
/// came from a cache written before telemetry existed — rerun with
/// `UCP_NO_CACHE=1` to repopulate.
pub fn merged_telemetry(results: &[RunResult]) -> ucp_telemetry::RegistrySnapshot {
    let mut total = ucp_telemetry::RegistrySnapshot::default();
    for r in results {
        total.merge(&r.telemetry);
    }
    total
}

/// Suite-wide cycle-accounting breakdown: the per-workload accounting
/// counters summed, then decoded. Empty (all-zero) when the results carry
/// no telemetry.
pub fn suite_breakdown(results: &[RunResult]) -> AccountingBreakdown {
    AccountingBreakdown::from_snapshot(&merged_telemetry(results))
}

/// Checks the cycle-accounting invariant on every result: the per-category
/// cycles must sum to the accounting total, which must equal the measured
/// cycle count. Returns one message per violating workload (empty = all
/// good). Results without telemetry (pre-accounting caches) are skipped —
/// there is nothing to check.
pub fn check_accounting(results: &[RunResult]) -> Vec<String> {
    let mut bad = Vec::new();
    for r in results {
        if r.telemetry.is_empty() {
            continue;
        }
        let b = AccountingBreakdown::from_snapshot(&r.telemetry);
        if let Err(e) = b.verify() {
            bad.push(format!("{}: {e}", r.workload));
        } else if b.total != r.stats.cycles {
            bad.push(format!(
                "{}: accounting charged {} cycles but the run measured {}",
                r.workload, b.total, r.stats.cycles
            ));
        }
    }
    bad
}

/// Host-side self-profiling for one harness phase: wall-clock time next to
/// the simulated volume it covered, so runs report simulation throughput
/// (simulated MIPS) alongside simulated results.
#[derive(Clone, Debug)]
pub struct HostPhase {
    /// Phase label (e.g. a config name).
    pub name: String,
    /// Wall-clock seconds spent in the phase.
    pub wall_seconds: f64,
    /// Simulated instructions committed during the phase.
    pub instructions: u64,
    /// Simulated cycles elapsed during the phase.
    pub cycles: u64,
}

impl HostPhase {
    /// Simulated millions of instructions per wall-clock second.
    pub fn mips(&self) -> f64 {
        if self.wall_seconds <= 0.0 {
            0.0
        } else {
            self.instructions as f64 / 1e6 / self.wall_seconds
        }
    }
}

/// Runs `cfg` over the profile's suite with the host-side wall clock
/// running — always uncached, since a cache hit would time disk I/O
/// instead of simulation. The returned [`HostPhase`] sums the measured
/// windows of every *successful* workload; failures degrade the
/// [`SuiteRun`] as in [`cached_suite_run`].
pub fn profiled_suite_run(name: &str, cfg: &SimConfig, profile: Profile) -> (SuiteRun, HostPhase) {
    let suite = profile.suite();
    let (warmup, measure) = profile.lengths();
    let t0 = Instant::now();
    let outcome = run_suite_outcome(
        &suite,
        cfg,
        warmup,
        measure,
        &ucp_core::SuiteOptions::default(),
        None,
    )
    .unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(2);
    });
    let wall_seconds = t0.elapsed().as_secs_f64();
    let total = outcome.total();
    let mut results = Vec::new();
    let mut failures = Vec::new();
    for o in outcome.outcomes {
        match o.outcome {
            Ok(r) => results.push(r),
            Err(e) => {
                eprintln!("warning: workload `{}` failed: {e}", o.workload);
                failures.push((o.workload, e));
            }
        }
    }
    let run = SuiteRun {
        results,
        failures,
        total,
        resumed: 0,
    };
    let phase = HostPhase {
        name: name.to_string(),
        wall_seconds,
        instructions: run.iter().map(|r| r.stats.instructions).sum(),
        cycles: run.iter().map(|r| r.stats.cycles).sum(),
    };
    (run, phase)
}

/// Renders a per-workload stall-breakdown table: one row per workload with
/// the percentage of measured cycles charged to each category, plus an
/// aggregate row. Category columns are ordered by the aggregate's largest
/// share first.
pub fn stall_breakdown_table(results: &[RunResult]) -> String {
    use ucp_telemetry::CycleCause;
    let agg = suite_breakdown(results);
    if agg.is_empty() {
        return "  (no accounting data — cache predates cycle accounting; \
                rerun with UCP_NO_CACHE=1)\n"
            .to_string();
    }
    let order: Vec<CycleCause> = agg.sorted().into_iter().map(|(c, _)| c).collect();
    let mut out = format!("  {:<10}", "workload");
    for c in &order {
        out += &format!(" {:>13}", c.name());
    }
    out.push('\n');
    let row = |label: &str, b: &AccountingBreakdown| {
        let mut line = format!("  {label:<10}");
        for c in &order {
            line += &format!(" {:>12.1}%", b.share_pct(*c));
        }
        line.push('\n');
        line
    };
    for r in results {
        let b = AccountingBreakdown::from_snapshot(&r.telemetry);
        if b.is_empty() {
            continue;
        }
        out += &row(&r.workload, &b);
    }
    out += &row("ALL", &agg);
    out
}

/// Arithmetic mean.
pub fn amean(v: &[f64]) -> f64 {
    if v.is_empty() {
        0.0
    } else {
        v.iter().sum::<f64>() / v.len() as f64
    }
}

/// Renders a sorted per-workload curve (the paper's "Sorted traces"
/// x-axes): one `name value` row per workload, ascending.
pub fn sorted_curve(pairs: &mut [(String, f64)], unit: &str) -> String {
    pairs.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite values"));
    let mut out = String::new();
    for (name, v) in pairs.iter() {
        out.push_str(&format!("  {name:<10} {v:>8.2} {unit}\n"));
    }
    out
}

/// Renders a `min / mean / max` summary line.
pub fn summary_line(label: &str, v: &[f64]) -> String {
    let min = v.iter().copied().fold(f64::INFINITY, f64::min);
    let max = v.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    format!(
        "{label}: min {min:.2}  mean {:.2}  max {max:.2}\n",
        amean(v)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_lengths_monotone() {
        assert!(Profile::Quick.lengths().1 < Profile::Std.lengths().1);
        assert!(Profile::Std.lengths().1 < Profile::Full.lengths().1);
        assert_eq!(Profile::Quick.suite().len(), 8);
        assert_eq!(Profile::Std.suite().len(), 30);
    }

    #[test]
    fn fnv_distinguishes() {
        assert_ne!(fnv1a(b"a"), fnv1a(b"b"));
        assert_eq!(fnv1a(b"abc"), fnv1a(b"abc"));
    }

    #[test]
    fn sorted_curve_sorts() {
        let mut v = vec![("b".into(), 2.0), ("a".into(), 1.0)];
        let s = sorted_curve(&mut v, "%");
        let a_pos = s.find('a').unwrap();
        let b_pos = s.find('b').unwrap();
        assert!(a_pos < b_pos);
    }

    #[test]
    fn amean_basic() {
        assert_eq!(amean(&[1.0, 3.0]), 2.0);
        assert_eq!(amean(&[]), 0.0);
    }

    #[test]
    fn profile_parse_rejects_unknown_tags() {
        assert_eq!(Profile::parse("quick").unwrap(), Profile::Quick);
        assert_eq!(Profile::parse("full").unwrap(), Profile::Full);
        let e = Profile::parse("fast").unwrap_err();
        assert!(e.contains("quick, std, full"), "error lists tags: {e}");
        assert!(Profile::parse("Quick").is_err(), "tags are case-sensitive");
    }

    #[test]
    fn suite_run_marker_reports_degradation() {
        use ucp_core::SimStats;
        let ok = RunResult {
            workload: "a".into(),
            stats: SimStats::default(),
            telemetry: ucp_telemetry::RegistrySnapshot::default(),
            intervals: Vec::new(),
            digests: Vec::new(),
        };
        let complete = SuiteRun::complete(vec![ok.clone()]);
        assert!(complete.is_complete());
        assert_eq!(complete.marker(), None);
        let degraded = SuiteRun {
            results: vec![ok],
            failures: vec![(
                "b".into(),
                SimError::WorkloadPanic {
                    workload: "b".into(),
                    payload: "boom".into(),
                },
            )],
            total: 2,
            resumed: 0,
        };
        assert_eq!(degraded.marker().as_deref(), Some("DEGRADED (1/2)"));
        // Deref exposes only the successful results.
        assert_eq!(degraded.len(), 1);
    }

    #[test]
    fn merged_telemetry_sums_counters() {
        use ucp_core::RunResult;
        use ucp_core::SimStats;
        let mut a = ucp_telemetry::RegistrySnapshot::default();
        a.counters.insert("ucp.walks_started".into(), 2);
        let mut b = ucp_telemetry::RegistrySnapshot::default();
        b.counters.insert("ucp.walks_started".into(), 3);
        let results = vec![
            RunResult {
                workload: "a".into(),
                stats: SimStats::default(),
                telemetry: a,
                intervals: Vec::new(),
                digests: Vec::new(),
            },
            RunResult {
                workload: "b".into(),
                stats: SimStats::default(),
                telemetry: b,
                intervals: Vec::new(),
                digests: Vec::new(),
            },
        ];
        assert_eq!(merged_telemetry(&results).counters["ucp.walks_started"], 5);
    }

    fn result_with_accounting(workload: &str, cycles: u64, uop: u64, miss: u64) -> RunResult {
        use ucp_core::SimStats;
        use ucp_telemetry::{CycleCause, TOTAL_CYCLES_PATH};
        let mut snap = ucp_telemetry::RegistrySnapshot::default();
        snap.counters
            .insert(CycleCause::DeliverUop.counter_path(), uop);
        snap.counters
            .insert(CycleCause::L1iMiss.counter_path(), miss);
        snap.counters.insert(TOTAL_CYCLES_PATH.into(), uop + miss);
        let stats = SimStats {
            cycles,
            ..Default::default()
        };
        RunResult {
            workload: workload.into(),
            stats,
            telemetry: snap,
            intervals: Vec::new(),
            digests: Vec::new(),
        }
    }

    #[test]
    fn check_accounting_flags_mismatches_only() {
        let good = result_with_accounting("good", 10, 7, 3);
        let bad = result_with_accounting("bad", 11, 7, 3); // total != cycles
        let legacy = RunResult {
            workload: "legacy".into(),
            stats: ucp_core::SimStats::default(),
            telemetry: ucp_telemetry::RegistrySnapshot::default(),
            intervals: Vec::new(),
            digests: Vec::new(),
        };
        assert!(check_accounting(&[good.clone(), legacy]).is_empty());
        let msgs = check_accounting(&[good, bad]);
        assert_eq!(msgs.len(), 1);
        assert!(msgs[0].starts_with("bad:"), "{msgs:?}");
    }

    #[test]
    fn stall_table_orders_by_aggregate_share() {
        let r = vec![
            result_with_accounting("w0", 10, 7, 3),
            result_with_accounting("w1", 10, 6, 4),
        ];
        let table = stall_breakdown_table(&r);
        // deliver_uop dominates the aggregate, so its column comes first.
        let uop = table.find("deliver_uop").unwrap();
        let miss = table.find("l1i_miss").unwrap();
        assert!(uop < miss, "{table}");
        assert!(table.contains("ALL"));
        assert_eq!(suite_breakdown(&r).total, 20);
    }

    #[test]
    fn prune_cache_litter_caps_partials_and_quarantine() {
        let dir = std::env::temp_dir().join(format!("ucp-prune-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        // Four stale partial dirs plus the active one, three quarantined
        // files, and a combined entry that must never be touched.
        for i in 0..4 {
            std::fs::create_dir_all(dir.join(format!("partial-old{i}"))).unwrap();
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        let active = dir.join("partial-active");
        std::fs::create_dir_all(&active).unwrap();
        for i in 0..3 {
            std::fs::write(dir.join(format!("e{i}.json.quarantined.0")), "x").unwrap();
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        std::fs::write(dir.join("abcd.json"), "{}").unwrap();

        prune_cache_litter(&dir, &active, 2, 1);

        assert!(!dir.join("partial-old0").exists(), "oldest partial evicted");
        assert!(
            !dir.join("partial-old1").exists(),
            "2nd-oldest partial evicted"
        );
        assert!(dir.join("partial-old2").exists(), "newest partials kept");
        assert!(dir.join("partial-old3").exists());
        assert!(active.exists(), "active partial never pruned");
        assert!(!dir.join("e0.json.quarantined.0").exists());
        assert!(!dir.join("e1.json.quarantined.0").exists());
        assert!(dir.join("e2.json.quarantined.0").exists(), "newest kept");
        assert!(dir.join("abcd.json").exists(), "combined entries untouched");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn host_phase_mips() {
        let p = HostPhase {
            name: "x".into(),
            wall_seconds: 2.0,
            instructions: 8_000_000,
            cycles: 1,
        };
        assert_eq!(p.mips(), 4.0);
        let z = HostPhase {
            wall_seconds: 0.0,
            ..p
        };
        assert_eq!(z.mips(), 0.0);
    }
}
