//! Shared harness plumbing: profiles, the result cache, and formatting.

use std::path::PathBuf;
use ucp_core::{run_suite, RunResult, SimConfig};
use ucp_workloads::suite::{quick_suite, workload_suite};
use ucp_workloads::WorkloadSpec;

/// Simulation volume profile (see the crate docs).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Profile {
    /// 8 workloads × (0.2 M + 0.8 M) instructions.
    Quick,
    /// 30 workloads × (0.5 M + 2 M) instructions.
    Std,
    /// 30 workloads × (1 M + 4 M) instructions.
    Full,
}

impl Profile {
    /// Reads `UCP_FIG_PROFILE` (default `std`).
    pub fn from_env() -> Self {
        match std::env::var("UCP_FIG_PROFILE").as_deref() {
            Ok("quick") => Profile::Quick,
            Ok("full") => Profile::Full,
            _ => Profile::Std,
        }
    }

    /// The workload suite for this profile.
    pub fn suite(self) -> Vec<WorkloadSpec> {
        match self {
            Profile::Quick => quick_suite(),
            _ => workload_suite(),
        }
    }

    /// (warmup, measure) instruction counts per run.
    pub fn lengths(self) -> (u64, u64) {
        match self {
            Profile::Quick => (200_000, 800_000),
            Profile::Std => (500_000, 2_000_000),
            Profile::Full => (1_000_000, 4_000_000),
        }
    }

    /// Short tag for cache keys and report headers.
    pub fn tag(self) -> &'static str {
        match self {
            Profile::Quick => "quick",
            Profile::Std => "std",
            Profile::Full => "full",
        }
    }
}

/// Bump when a model-affecting code change invalidates cached results.
/// (v1 keeps the original key format so existing caches stay valid.)
pub const MODEL_VERSION: u32 = 1;

fn cache_dir() -> PathBuf {
    std::env::var("UCP_RESULT_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from("target/ucp-results"))
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Writes `text` to `path` atomically: a unique temp file in the same
/// directory, then a rename. Concurrent figure binaries sharing a cache
/// entry can otherwise interleave a read with a partial write.
fn write_atomic(path: &std::path::Path, text: &str) -> std::io::Result<()> {
    let dir = path.parent().unwrap_or_else(|| std::path::Path::new("."));
    let tmp = dir.join(format!(
        ".{}.{}.tmp",
        path.file_name().and_then(|n| n.to_str()).unwrap_or("cache"),
        std::process::id()
    ));
    std::fs::write(&tmp, text)?;
    std::fs::rename(&tmp, path).inspect_err(|_| {
        let _ = std::fs::remove_file(&tmp);
    })
}

/// Runs `cfg` over the profile's suite, caching results on disk. The cache
/// key covers the full configuration, the suite composition and the run
/// lengths, so distinct experiments never collide.
pub fn cached_suite_run(cfg: &SimConfig, profile: Profile) -> Vec<RunResult> {
    let suite = profile.suite();
    let (warmup, measure) = profile.lengths();
    let cfg_json = serde_json::to_string(cfg).expect("config serializes");
    let names: Vec<&str> = suite.iter().map(|s| s.name.as_str()).collect();
    let key = if MODEL_VERSION == 1 {
        format!("{cfg_json}|{names:?}|{warmup}|{measure}")
    } else {
        format!("{cfg_json}|{names:?}|{warmup}|{measure}|v{MODEL_VERSION}")
    };
    let path = cache_dir().join(format!("{:016x}.json", fnv1a(key.as_bytes())));
    let no_cache = std::env::var("UCP_NO_CACHE").is_ok();
    if !no_cache {
        if let Ok(text) = std::fs::read_to_string(&path) {
            if let Ok(results) = serde_json::from_str::<Vec<RunResult>>(&text) {
                if results.len() == suite.len()
                    && results
                        .iter()
                        .zip(&suite)
                        .all(|(r, s)| r.workload == s.name)
                {
                    return results;
                }
            }
        }
    }
    let results = run_suite(&suite, cfg, warmup, measure);
    if !no_cache {
        let _ = std::fs::create_dir_all(cache_dir());
        if let Ok(text) = serde_json::to_string(&results) {
            let _ = write_atomic(&path, &text);
        }
    }
    results
}

/// Sums the per-workload telemetry snapshots of a result set into one
/// suite-wide [`ucp_telemetry::RegistrySnapshot`]. Empty when every result
/// came from a cache written before telemetry existed — rerun with
/// `UCP_NO_CACHE=1` to repopulate.
pub fn merged_telemetry(results: &[RunResult]) -> ucp_telemetry::RegistrySnapshot {
    let mut total = ucp_telemetry::RegistrySnapshot::default();
    for r in results {
        total.merge(&r.telemetry);
    }
    total
}

/// Arithmetic mean.
pub fn amean(v: &[f64]) -> f64 {
    if v.is_empty() {
        0.0
    } else {
        v.iter().sum::<f64>() / v.len() as f64
    }
}

/// Renders a sorted per-workload curve (the paper's "Sorted traces"
/// x-axes): one `name value` row per workload, ascending.
pub fn sorted_curve(pairs: &mut [(String, f64)], unit: &str) -> String {
    pairs.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite values"));
    let mut out = String::new();
    for (name, v) in pairs.iter() {
        out.push_str(&format!("  {name:<10} {v:>8.2} {unit}\n"));
    }
    out
}

/// Renders a `min / mean / max` summary line.
pub fn summary_line(label: &str, v: &[f64]) -> String {
    let min = v.iter().copied().fold(f64::INFINITY, f64::min);
    let max = v.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    format!(
        "{label}: min {min:.2}  mean {:.2}  max {max:.2}\n",
        amean(v)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_lengths_monotone() {
        assert!(Profile::Quick.lengths().1 < Profile::Std.lengths().1);
        assert!(Profile::Std.lengths().1 < Profile::Full.lengths().1);
        assert_eq!(Profile::Quick.suite().len(), 8);
        assert_eq!(Profile::Std.suite().len(), 30);
    }

    #[test]
    fn fnv_distinguishes() {
        assert_ne!(fnv1a(b"a"), fnv1a(b"b"));
        assert_eq!(fnv1a(b"abc"), fnv1a(b"abc"));
    }

    #[test]
    fn sorted_curve_sorts() {
        let mut v = vec![("b".into(), 2.0), ("a".into(), 1.0)];
        let s = sorted_curve(&mut v, "%");
        let a_pos = s.find('a').unwrap();
        let b_pos = s.find('b').unwrap();
        assert!(a_pos < b_pos);
    }

    #[test]
    fn amean_basic() {
        assert_eq!(amean(&[1.0, 3.0]), 2.0);
        assert_eq!(amean(&[]), 0.0);
    }

    #[test]
    fn write_atomic_replaces_and_cleans_up() {
        let dir = std::env::temp_dir().join(format!("ucp-harness-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cache.json");
        std::fs::write(&path, "old").unwrap();
        write_atomic(&path, "new contents").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "new contents");
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().ends_with(".tmp"))
            .collect();
        assert!(
            leftovers.is_empty(),
            "temp file must not survive the rename"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn merged_telemetry_sums_counters() {
        use ucp_core::RunResult;
        use ucp_core::SimStats;
        let mut a = ucp_telemetry::RegistrySnapshot::default();
        a.counters.insert("ucp.walks_started".into(), 2);
        let mut b = ucp_telemetry::RegistrySnapshot::default();
        b.counters.insert("ucp.walks_started".into(), 3);
        let results = vec![
            RunResult {
                workload: "a".into(),
                stats: SimStats::default(),
                telemetry: a,
            },
            RunResult {
                workload: "b".into(),
                stats: SimStats::default(),
                telemetry: b,
            },
        ];
        assert_eq!(merged_telemetry(&results).counters["ucp.walks_started"], 5);
    }
}
