//! Shared harness plumbing: profiles, the result cache, host-side
//! self-profiling, and formatting.

use std::path::PathBuf;
use std::time::Instant;
use ucp_core::{run_suite, RunResult, SimConfig};
use ucp_telemetry::AccountingBreakdown;
use ucp_workloads::suite::{quick_suite, workload_suite};
use ucp_workloads::WorkloadSpec;

/// Simulation volume profile (see the crate docs).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Profile {
    /// 8 workloads × (0.2 M + 0.8 M) instructions.
    Quick,
    /// 30 workloads × (0.5 M + 2 M) instructions.
    Std,
    /// 30 workloads × (1 M + 4 M) instructions.
    Full,
}

impl Profile {
    /// Reads `UCP_FIG_PROFILE` (default `std`).
    pub fn from_env() -> Self {
        match std::env::var("UCP_FIG_PROFILE").as_deref() {
            Ok("quick") => Profile::Quick,
            Ok("full") => Profile::Full,
            _ => Profile::Std,
        }
    }

    /// The workload suite for this profile.
    pub fn suite(self) -> Vec<WorkloadSpec> {
        match self {
            Profile::Quick => quick_suite(),
            _ => workload_suite(),
        }
    }

    /// (warmup, measure) instruction counts per run.
    pub fn lengths(self) -> (u64, u64) {
        match self {
            Profile::Quick => (200_000, 800_000),
            Profile::Std => (500_000, 2_000_000),
            Profile::Full => (1_000_000, 4_000_000),
        }
    }

    /// Short tag for cache keys and report headers.
    pub fn tag(self) -> &'static str {
        match self {
            Profile::Quick => "quick",
            Profile::Std => "std",
            Profile::Full => "full",
        }
    }
}

/// Bump when a model-affecting code change invalidates cached results.
/// (v2: results now carry cycle accounting and interval time series, so
/// caches written before those existed must repopulate.)
pub const MODEL_VERSION: u32 = 2;

fn cache_dir() -> PathBuf {
    std::env::var("UCP_RESULT_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from("target/ucp-results"))
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Writes `text` to `path` atomically: a unique temp file in the same
/// directory, then a rename. Concurrent figure binaries sharing a cache
/// entry can otherwise interleave a read with a partial write.
fn write_atomic(path: &std::path::Path, text: &str) -> std::io::Result<()> {
    let dir = path.parent().unwrap_or_else(|| std::path::Path::new("."));
    let tmp = dir.join(format!(
        ".{}.{}.tmp",
        path.file_name().and_then(|n| n.to_str()).unwrap_or("cache"),
        std::process::id()
    ));
    std::fs::write(&tmp, text)?;
    std::fs::rename(&tmp, path).inspect_err(|_| {
        let _ = std::fs::remove_file(&tmp);
    })
}

/// Runs `cfg` over the profile's suite, caching results on disk. The cache
/// key covers the full configuration, the suite composition and the run
/// lengths, so distinct experiments never collide.
pub fn cached_suite_run(cfg: &SimConfig, profile: Profile) -> Vec<RunResult> {
    let suite = profile.suite();
    let (warmup, measure) = profile.lengths();
    let cfg_json = serde_json::to_string(cfg).expect("config serializes");
    let names: Vec<&str> = suite.iter().map(|s| s.name.as_str()).collect();
    // Cached results embed the interval series sampled at whatever
    // UCP_INTERVAL was active when the cache was populated, so the
    // effective interval is part of the key (0 = sampling off).
    let interval = ucp_telemetry::IntervalSampler::from_env().map_or(0, |s| s.every());
    let key = if MODEL_VERSION == 1 {
        format!("{cfg_json}|{names:?}|{warmup}|{measure}")
    } else {
        format!("{cfg_json}|{names:?}|{warmup}|{measure}|v{MODEL_VERSION}|iv{interval}")
    };
    let path = cache_dir().join(format!("{:016x}.json", fnv1a(key.as_bytes())));
    let no_cache = std::env::var("UCP_NO_CACHE").is_ok();
    if !no_cache {
        if let Ok(text) = std::fs::read_to_string(&path) {
            if let Ok(results) = serde_json::from_str::<Vec<RunResult>>(&text) {
                if results.len() == suite.len()
                    && results
                        .iter()
                        .zip(&suite)
                        .all(|(r, s)| r.workload == s.name)
                {
                    return results;
                }
            }
        }
    }
    let results = run_suite(&suite, cfg, warmup, measure);
    if !no_cache {
        let _ = std::fs::create_dir_all(cache_dir());
        if let Ok(text) = serde_json::to_string(&results) {
            let _ = write_atomic(&path, &text);
        }
    }
    results
}

/// Sums the per-workload telemetry snapshots of a result set into one
/// suite-wide [`ucp_telemetry::RegistrySnapshot`]. Empty when every result
/// came from a cache written before telemetry existed — rerun with
/// `UCP_NO_CACHE=1` to repopulate.
pub fn merged_telemetry(results: &[RunResult]) -> ucp_telemetry::RegistrySnapshot {
    let mut total = ucp_telemetry::RegistrySnapshot::default();
    for r in results {
        total.merge(&r.telemetry);
    }
    total
}

/// Suite-wide cycle-accounting breakdown: the per-workload accounting
/// counters summed, then decoded. Empty (all-zero) when the results carry
/// no telemetry.
pub fn suite_breakdown(results: &[RunResult]) -> AccountingBreakdown {
    AccountingBreakdown::from_snapshot(&merged_telemetry(results))
}

/// Checks the cycle-accounting invariant on every result: the per-category
/// cycles must sum to the accounting total, which must equal the measured
/// cycle count. Returns one message per violating workload (empty = all
/// good). Results without telemetry (pre-accounting caches) are skipped —
/// there is nothing to check.
pub fn check_accounting(results: &[RunResult]) -> Vec<String> {
    let mut bad = Vec::new();
    for r in results {
        if r.telemetry.is_empty() {
            continue;
        }
        let b = AccountingBreakdown::from_snapshot(&r.telemetry);
        if let Err(e) = b.verify() {
            bad.push(format!("{}: {e}", r.workload));
        } else if b.total != r.stats.cycles {
            bad.push(format!(
                "{}: accounting charged {} cycles but the run measured {}",
                r.workload, b.total, r.stats.cycles
            ));
        }
    }
    bad
}

/// Host-side self-profiling for one harness phase: wall-clock time next to
/// the simulated volume it covered, so runs report simulation throughput
/// (simulated MIPS) alongside simulated results.
#[derive(Clone, Debug)]
pub struct HostPhase {
    /// Phase label (e.g. a config name).
    pub name: String,
    /// Wall-clock seconds spent in the phase.
    pub wall_seconds: f64,
    /// Simulated instructions committed during the phase.
    pub instructions: u64,
    /// Simulated cycles elapsed during the phase.
    pub cycles: u64,
}

impl HostPhase {
    /// Simulated millions of instructions per wall-clock second.
    pub fn mips(&self) -> f64 {
        if self.wall_seconds <= 0.0 {
            0.0
        } else {
            self.instructions as f64 / 1e6 / self.wall_seconds
        }
    }
}

/// Runs `cfg` over the profile's suite with the host-side wall clock
/// running — always uncached, since a cache hit would time disk I/O
/// instead of simulation. The returned [`HostPhase`] sums the measured
/// windows of every workload in the suite.
pub fn profiled_suite_run(
    name: &str,
    cfg: &SimConfig,
    profile: Profile,
) -> (Vec<RunResult>, HostPhase) {
    let suite = profile.suite();
    let (warmup, measure) = profile.lengths();
    let t0 = Instant::now();
    let results = run_suite(&suite, cfg, warmup, measure);
    let wall_seconds = t0.elapsed().as_secs_f64();
    let phase = HostPhase {
        name: name.to_string(),
        wall_seconds,
        instructions: results.iter().map(|r| r.stats.instructions).sum(),
        cycles: results.iter().map(|r| r.stats.cycles).sum(),
    };
    (results, phase)
}

/// Renders a per-workload stall-breakdown table: one row per workload with
/// the percentage of measured cycles charged to each category, plus an
/// aggregate row. Category columns are ordered by the aggregate's largest
/// share first.
pub fn stall_breakdown_table(results: &[RunResult]) -> String {
    use ucp_telemetry::CycleCause;
    let agg = suite_breakdown(results);
    if agg.is_empty() {
        return "  (no accounting data — cache predates cycle accounting; \
                rerun with UCP_NO_CACHE=1)\n"
            .to_string();
    }
    let order: Vec<CycleCause> = agg.sorted().into_iter().map(|(c, _)| c).collect();
    let mut out = format!("  {:<10}", "workload");
    for c in &order {
        out += &format!(" {:>13}", c.name());
    }
    out.push('\n');
    let row = |label: &str, b: &AccountingBreakdown| {
        let mut line = format!("  {label:<10}");
        for c in &order {
            line += &format!(" {:>12.1}%", b.share_pct(*c));
        }
        line.push('\n');
        line
    };
    for r in results {
        let b = AccountingBreakdown::from_snapshot(&r.telemetry);
        if b.is_empty() {
            continue;
        }
        out += &row(&r.workload, &b);
    }
    out += &row("ALL", &agg);
    out
}

/// Arithmetic mean.
pub fn amean(v: &[f64]) -> f64 {
    if v.is_empty() {
        0.0
    } else {
        v.iter().sum::<f64>() / v.len() as f64
    }
}

/// Renders a sorted per-workload curve (the paper's "Sorted traces"
/// x-axes): one `name value` row per workload, ascending.
pub fn sorted_curve(pairs: &mut [(String, f64)], unit: &str) -> String {
    pairs.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite values"));
    let mut out = String::new();
    for (name, v) in pairs.iter() {
        out.push_str(&format!("  {name:<10} {v:>8.2} {unit}\n"));
    }
    out
}

/// Renders a `min / mean / max` summary line.
pub fn summary_line(label: &str, v: &[f64]) -> String {
    let min = v.iter().copied().fold(f64::INFINITY, f64::min);
    let max = v.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    format!(
        "{label}: min {min:.2}  mean {:.2}  max {max:.2}\n",
        amean(v)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_lengths_monotone() {
        assert!(Profile::Quick.lengths().1 < Profile::Std.lengths().1);
        assert!(Profile::Std.lengths().1 < Profile::Full.lengths().1);
        assert_eq!(Profile::Quick.suite().len(), 8);
        assert_eq!(Profile::Std.suite().len(), 30);
    }

    #[test]
    fn fnv_distinguishes() {
        assert_ne!(fnv1a(b"a"), fnv1a(b"b"));
        assert_eq!(fnv1a(b"abc"), fnv1a(b"abc"));
    }

    #[test]
    fn sorted_curve_sorts() {
        let mut v = vec![("b".into(), 2.0), ("a".into(), 1.0)];
        let s = sorted_curve(&mut v, "%");
        let a_pos = s.find('a').unwrap();
        let b_pos = s.find('b').unwrap();
        assert!(a_pos < b_pos);
    }

    #[test]
    fn amean_basic() {
        assert_eq!(amean(&[1.0, 3.0]), 2.0);
        assert_eq!(amean(&[]), 0.0);
    }

    #[test]
    fn write_atomic_replaces_and_cleans_up() {
        let dir = std::env::temp_dir().join(format!("ucp-harness-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cache.json");
        std::fs::write(&path, "old").unwrap();
        write_atomic(&path, "new contents").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "new contents");
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().ends_with(".tmp"))
            .collect();
        assert!(
            leftovers.is_empty(),
            "temp file must not survive the rename"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn merged_telemetry_sums_counters() {
        use ucp_core::RunResult;
        use ucp_core::SimStats;
        let mut a = ucp_telemetry::RegistrySnapshot::default();
        a.counters.insert("ucp.walks_started".into(), 2);
        let mut b = ucp_telemetry::RegistrySnapshot::default();
        b.counters.insert("ucp.walks_started".into(), 3);
        let results = vec![
            RunResult {
                workload: "a".into(),
                stats: SimStats::default(),
                telemetry: a,
                intervals: Vec::new(),
            },
            RunResult {
                workload: "b".into(),
                stats: SimStats::default(),
                telemetry: b,
                intervals: Vec::new(),
            },
        ];
        assert_eq!(merged_telemetry(&results).counters["ucp.walks_started"], 5);
    }

    fn result_with_accounting(workload: &str, cycles: u64, uop: u64, miss: u64) -> RunResult {
        use ucp_core::SimStats;
        use ucp_telemetry::{CycleCause, TOTAL_CYCLES_PATH};
        let mut snap = ucp_telemetry::RegistrySnapshot::default();
        snap.counters
            .insert(CycleCause::DeliverUop.counter_path(), uop);
        snap.counters
            .insert(CycleCause::L1iMiss.counter_path(), miss);
        snap.counters.insert(TOTAL_CYCLES_PATH.into(), uop + miss);
        let stats = SimStats {
            cycles,
            ..Default::default()
        };
        RunResult {
            workload: workload.into(),
            stats,
            telemetry: snap,
            intervals: Vec::new(),
        }
    }

    #[test]
    fn check_accounting_flags_mismatches_only() {
        let good = result_with_accounting("good", 10, 7, 3);
        let bad = result_with_accounting("bad", 11, 7, 3); // total != cycles
        let legacy = RunResult {
            workload: "legacy".into(),
            stats: ucp_core::SimStats::default(),
            telemetry: ucp_telemetry::RegistrySnapshot::default(),
            intervals: Vec::new(),
        };
        assert!(check_accounting(&[good.clone(), legacy]).is_empty());
        let msgs = check_accounting(&[good, bad]);
        assert_eq!(msgs.len(), 1);
        assert!(msgs[0].starts_with("bad:"), "{msgs:?}");
    }

    #[test]
    fn stall_table_orders_by_aggregate_share() {
        let r = vec![
            result_with_accounting("w0", 10, 7, 3),
            result_with_accounting("w1", 10, 6, 4),
        ];
        let table = stall_breakdown_table(&r);
        // deliver_uop dominates the aggregate, so its column comes first.
        let uop = table.find("deliver_uop").unwrap();
        let miss = table.find("l1i_miss").unwrap();
        assert!(uop < miss, "{table}");
        assert!(table.contains("ALL"));
        assert_eq!(suite_breakdown(&r).total, 20);
    }

    #[test]
    fn host_phase_mips() {
        let p = HostPhase {
            name: "x".into(),
            wall_seconds: 2.0,
            instructions: 8_000_000,
            cycles: 1,
        };
        assert_eq!(p.mips(), 4.0);
        let z = HostPhase {
            wall_seconds: 0.0,
            ..p
        };
        assert_eq!(z.mips(), 0.0);
    }
}
