//! Prints the instantiated Table II baseline configuration.
fn main() {
    print!("{}", ucp_bench::figs::table2());
}
