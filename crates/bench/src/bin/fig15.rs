//! Regenerates the paper's Fig. 15 (see DESIGN.md §4).
fn main() {
    let profile = ucp_bench::Profile::from_env();
    print!("{}", ucp_bench::figs::fig15(profile));
}
