//! Writes per-workload interval time-series CSVs (see DESIGN.md §7).
fn main() {
    let profile = ucp_bench::Profile::from_env();
    print!("{}", ucp_bench::figs::timeseries(profile));
}
