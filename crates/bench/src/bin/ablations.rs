//! Ablations beyond the paper's grid: sensitivity of the headline result
//! to the model knobs DESIGN.md calls out — the stream↔build switch
//! hysteresis and penalty, the µ-op-path vs decode-path depth gap, the
//! alternate decoder width, and the Alt-FTQ depth.
//!
//! These quantify how much of UCP's gain depends on each modelling choice.
//!
//! ```text
//! cargo run --release -p ucp-bench --bin ablations
//! ```

use ucp_bench::{cached_suite_run, Profile};
use ucp_core::{align_by_workload, geomean_speedup_pct, RunResult, SimConfig};

fn geo(base: &[RunResult], new: &[RunResult]) -> f64 {
    // Degraded runs may cover different workload subsets: compare over
    // the intersection.
    let (base, new) = align_by_workload(base, new);
    let b: Vec<f64> = base.iter().map(|r| r.stats.ipc()).collect();
    let n: Vec<f64> = new.iter().map(|r| r.stats.ipc()).collect();
    geomean_speedup_pct(&b, &n)
}

fn main() {
    let profile = Profile::from_env();
    println!(
        "=== ablations: model-knob sensitivity [profile {}] ===",
        profile.tag()
    );

    // 1. Stream-switch hysteresis: how many consecutive µ-op cache hits in
    //    build mode before returning to stream mode.
    println!("\nstream_switch_hits (baseline IPC impact + switch PKI):");
    let ref_base = cached_suite_run(&SimConfig::baseline(), profile);
    for hits in [1u32, 3, 8] {
        let mut cfg = SimConfig::baseline();
        cfg.frontend.stream_switch_hits = hits;
        let r = cached_suite_run(&cfg, profile);
        let pki: f64 = r.iter().map(|x| x.stats.switch_pki()).sum::<f64>() / r.len() as f64;
        println!(
            "  hits={hits}: speedup vs default {:+.2}%, switch PKI {pki:.2}",
            geo(&ref_base, &r)
        );
    }

    // 2. Mode-switch penalty (the paper uses 1 cycle, per §V).
    println!("\nmode_switch_penalty:");
    for pen in [0u64, 1, 3] {
        let mut cfg = SimConfig::baseline();
        cfg.frontend.mode_switch_penalty = pen;
        let r = cached_suite_run(&cfg, profile);
        println!(
            "  penalty={pen}: speedup vs default {:+.2}%",
            geo(&ref_base, &r)
        );
    }

    // 3. The µ-op path / decode path depth gap — the source of the µ-op
    //    cache's refill advantage. UCP's benefit should track this gap.
    println!("\ndecode_path_delay (uop path fixed at 2) — UCP gain vs same-knob baseline:");
    for delay in [3u64, 5, 8] {
        let mut b = SimConfig::baseline();
        b.frontend.decode_path_delay = delay;
        let mut u = SimConfig::ucp();
        u.frontend.decode_path_delay = delay;
        let rb = cached_suite_run(&b, profile);
        let ru = cached_suite_run(&u, profile);
        println!("  delay={delay}: UCP speedup {:+.2}%", geo(&rb, &ru));
    }

    // 4. Alternate decoder width (paper: 6 dedicated decoders).
    println!("\nalt_decoders — UCP gain vs baseline:");
    for w in [2u32, 6] {
        let mut u = SimConfig::ucp();
        u.ucp.alt_decoders = w;
        let ru = cached_suite_run(&u, profile);
        println!("  width={w}: UCP speedup {:+.2}%", geo(&ref_base, &ru));
    }

    // 5. Alt-FTQ depth (paper: 24 entries).
    println!("\nalt_ftq_entries — UCP gain vs baseline:");
    for n in [8usize, 24, 64] {
        let mut u = SimConfig::ucp();
        u.ucp.alt_ftq_entries = n;
        let ru = cached_suite_run(&u, profile);
        println!("  entries={n}: UCP speedup {:+.2}%", geo(&ref_base, &ru));
    }
}
