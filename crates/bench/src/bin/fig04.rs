//! Regenerates the paper's Fig. 04 (see DESIGN.md §4).
fn main() {
    let profile = ucp_bench::Profile::from_env();
    print!("{}", ucp_bench::figs::fig04(profile));
}
