//! `ucp-top`: where do the frontend's cycles go?
//!
//! Renders the cycle-accounting breakdown for one or more configurations
//! as sorted plain text — the suite-wide category table, then one line per
//! workload with its dominant category — and verifies the accounting
//! invariant (categories sum to the measured cycle total) on every run,
//! exiting nonzero if any workload trips it.
//!
//! ```text
//! cargo run --release -p ucp-bench --bin ucp-top [-- CONFIG...]
//! ```
//!
//! `CONFIG` is any of `baseline`, `ucp`, `noucp` (default: `baseline
//! ucp`). `UCP_FIG_PROFILE` selects the suite/run-length profile; results
//! come from the shared on-disk cache (`UCP_NO_CACHE=1` to re-run).

use ucp_bench::{cached_suite_run, check_accounting, suite_breakdown, Profile};
use ucp_core::{RunResult, SimConfig};
use ucp_telemetry::AccountingBreakdown;

fn config_named(name: &str) -> Option<(String, SimConfig)> {
    match name {
        "baseline" => Some(("baseline (4Kops uop cache)".into(), SimConfig::baseline())),
        "ucp" => Some(("ucp (alternate-path prefetch)".into(), SimConfig::ucp())),
        "noucp" | "no-uop-cache" => Some(("no uop cache".into(), SimConfig::no_uop_cache())),
        _ => None,
    }
}

fn report(title: &str, results: &[RunResult]) -> String {
    let agg = suite_breakdown(results);
    let mut out = format!("=== {title}: {} workloads ===\n", results.len());
    if agg.is_empty() {
        out += "  (no accounting data — cache predates cycle accounting; \
                rerun with UCP_NO_CACHE=1)\n";
        return out;
    }
    out += &agg.table();
    out += "\n  per-workload dominant category:\n";
    let mut rows: Vec<(String, f64, &'static str, f64)> = results
        .iter()
        .filter(|r| !r.telemetry.is_empty())
        .map(|r| {
            let b = AccountingBreakdown::from_snapshot(&r.telemetry);
            let (top, cycles) = b.sorted()[0];
            let share = 100.0 * cycles as f64 / b.total.max(1) as f64;
            (r.workload.clone(), r.stats.ipc(), top.name(), share)
        })
        .collect();
    rows.sort_by(|a, b| b.3.partial_cmp(&a.3).expect("finite"));
    for (name, ipc, top, share) in rows {
        out += &format!("  {name:<10} IPC {ipc:>5.3}   {top:<14} {share:>5.1}%\n");
    }
    out
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let wanted: Vec<&str> = if args.is_empty() {
        vec!["baseline", "ucp"]
    } else {
        args.iter().map(String::as_str).collect()
    };
    let profile = Profile::from_env();
    let mut violations = Vec::new();
    for name in wanted {
        let Some((title, cfg)) = config_named(name) else {
            eprintln!("unknown config `{name}`; known: baseline, ucp, noucp");
            std::process::exit(2);
        };
        let results = cached_suite_run(&cfg, profile);
        print!("{}", report(&title, &results));
        if let Some(m) = results.marker() {
            println!("  *** {m} — failed workloads excluded ***");
        }
        println!();
        for v in check_accounting(&results) {
            violations.push(format!("{name}/{v}"));
        }
    }
    if !violations.is_empty() {
        eprintln!("cycle-accounting invariant violated:");
        for v in &violations {
            eprintln!("  {v}");
        }
        std::process::exit(1);
    }
}
