//! Regenerates the artifact-appendix UCP variant table.
fn main() {
    let profile = ucp_bench::Profile::from_env();
    print!("{}", ucp_bench::figs::table_artifact(profile));
}
