//! Host-side self-profiling benchmark: times uncached suite runs under
//! the baseline and UCP configurations and records wall-clock seconds,
//! simulated MIPS, and the per-category cycle shares to
//! `BENCH_accounting.json` in the current directory.
//!
//! ```text
//! cargo run --release -p ucp-bench --bin bench_accounting
//! ```
//!
//! Honors `UCP_FIG_PROFILE`, but defaults to the `quick` profile (unlike
//! the figure binaries) so the benchmark stays a minutes-not-hours
//! datapoint.

use serde::Serialize;
use ucp_bench::{check_accounting, profiled_suite_run, suite_breakdown, Profile};
use ucp_core::SimConfig;
use ucp_telemetry::CycleCause;

#[derive(Serialize)]
struct PhaseReport {
    name: String,
    wall_seconds: f64,
    instructions: u64,
    cycles: u64,
    simulated_mips: f64,
    ipc: f64,
    share_pct: Vec<(String, f64)>,
}

#[derive(Serialize)]
struct BenchReport {
    bench: String,
    profile: String,
    workloads: usize,
    phases: Vec<PhaseReport>,
}

fn main() {
    let profile = if std::env::var("UCP_FIG_PROFILE").is_ok() {
        Profile::from_env()
    } else {
        Profile::Quick
    };
    let mut report = BenchReport {
        bench: "accounting".into(),
        profile: profile.tag().into(),
        workloads: profile.suite().len(),
        phases: Vec::new(),
    };
    let mut violations = Vec::new();
    for (name, cfg) in [
        ("baseline", SimConfig::baseline()),
        ("ucp", SimConfig::ucp()),
    ] {
        let (results, phase) = profiled_suite_run(name, &cfg, profile);
        if let Some(m) = results.marker() {
            println!("{name:<10} *** {m} — failed workloads excluded ***");
        }
        violations.extend(check_accounting(&results));
        let b = suite_breakdown(&results);
        let share_pct = CycleCause::ALL
            .iter()
            .map(|&c| (c.name().to_string(), b.share_pct(c)))
            .collect();
        println!(
            "{name:<10} {:>6.2}s wall, {:.2} simulated MIPS, IPC {:.3}",
            phase.wall_seconds,
            phase.mips(),
            phase.instructions as f64 / phase.cycles.max(1) as f64
        );
        report.phases.push(PhaseReport {
            name: name.into(),
            wall_seconds: phase.wall_seconds,
            instructions: phase.instructions,
            cycles: phase.cycles,
            simulated_mips: phase.mips(),
            ipc: phase.instructions as f64 / phase.cycles.max(1) as f64,
            share_pct,
        });
    }
    let text = serde_json::to_string(&report).expect("report serializes");
    std::fs::write("BENCH_accounting.json", &text).expect("write BENCH_accounting.json");
    println!("wrote BENCH_accounting.json");
    if !violations.is_empty() {
        eprintln!("cycle-accounting invariant violated:");
        for v in &violations {
            eprintln!("  {v}");
        }
        std::process::exit(1);
    }
}
