//! Regenerates the paper's Fig. 13 (see DESIGN.md §4).
fn main() {
    let profile = ucp_bench::Profile::from_env();
    print!("{}", ucp_bench::figs::fig13(profile));
}
