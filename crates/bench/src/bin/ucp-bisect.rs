//! `ucp-bisect`: localize a determinism divergence to one
//! inter-checkpoint window.
//!
//! ```text
//! cargo run --release -p ucp-bench --bin ucp-bisect -- <ckpt-dir>
//! ```
//!
//! `<ckpt-dir>` is one run's checkpoint directory as written under
//! `UCP_CKPT` (`$UCP_CKPT_DIR/<workload>-<slug>/`, default root
//! `target/ucp-ckpt`). The tool rebuilds the simulated machine from the
//! metadata embedded in the checkpoints, replays the workload from cycle
//! zero, and binary-searches the recorded checkpoints for the first one
//! whose machine state the replay cannot reproduce bit-for-bit. Replay
//! determinism makes "matches checkpoint k" a prefix property, so the
//! search localizes the divergence to a single inter-checkpoint window
//! and dumps the replayed and the recorded machine diagnostics side by
//! side at its right edge.
//!
//! Run it under the *same* environment knobs as the original run —
//! `UCP_INTERVAL` and `UCP_DIGEST` change what state the machine carries,
//! so a mismatch there reports as divergence at the first checkpoint.
//!
//! Exit status: 0 when the replay reproduces every checkpoint, 1 when a
//! divergent window was found, 2 on usage or configuration errors.

use std::path::{Path, PathBuf};
use ucp_core::snapshot::{list_checkpoints, parse_checkpoint};
use ucp_core::{CheckpointMeta, SimConfig, Simulator, CKPT_VERSION};
use ucp_telemetry::envelope::read_envelope_bytes;
use ucp_telemetry::CacheReadError;
use ucp_workloads::WorkloadSpec;

struct Ckpt {
    meta: CheckpointMeta,
    state: Vec<u8>,
    path: PathBuf,
}

fn load_checkpoints(dir: &Path) -> Vec<Ckpt> {
    let mut out = Vec::new();
    for (_, path) in list_checkpoints(dir) {
        let payload = match read_envelope_bytes(&path, CKPT_VERSION) {
            Ok(p) => p,
            Err(CacheReadError::Missing) => continue,
            Err(CacheReadError::Corrupt(why)) => {
                eprintln!(
                    "warning: skipping corrupt checkpoint {}: {why}",
                    path.display()
                );
                continue;
            }
        };
        match parse_checkpoint(&payload) {
            Ok((meta, state)) => out.push(Ckpt { meta, state, path }),
            Err(why) => {
                eprintln!(
                    "warning: skipping corrupt checkpoint {}: {why}",
                    path.display()
                );
            }
        }
    }
    out
}

/// A replay that only ever moves forward, rebuilt from scratch whenever
/// the bisection probes behind its current position.
struct Replay<'a> {
    prog: &'a ucp_workloads::Program,
    seed: u64,
    cfg: &'a SimConfig,
    warmup: u64,
    sim: Option<Simulator<'a>>,
}

impl<'a> Replay<'a> {
    fn new(prog: &'a ucp_workloads::Program, seed: u64, cfg: &'a SimConfig, warmup: u64) -> Self {
        Replay {
            prog,
            seed,
            cfg,
            warmup,
            sim: None,
        }
    }

    fn at(&mut self, target: u64) -> &mut Simulator<'a> {
        if self.sim.as_ref().is_some_and(|s| s.committed() > target) {
            self.sim = None;
        }
        let sim = self
            .sim
            .get_or_insert_with(|| Simulator::new(self.prog, self.seed, self.cfg));
        sim.run_to_committed(target, self.warmup)
            .unwrap_or_else(|e| {
                eprintln!("error: replay failed at {target} committed: {e}");
                std::process::exit(2);
            });
        sim
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let [dir] = args.as_slice() else {
        eprintln!("usage: ucp-bisect <ckpt-dir>");
        std::process::exit(2);
    };
    let dir = PathBuf::from(dir);
    let ckpts = load_checkpoints(&dir);
    if ckpts.is_empty() {
        eprintln!("error: no valid checkpoints in {}", dir.display());
        std::process::exit(2);
    }
    let meta0 = &ckpts[0].meta;
    let spec: WorkloadSpec = serde_json::from_str(&meta0.spec_json).unwrap_or_else(|e| {
        eprintln!("error: checkpoint workload spec does not parse: {e}");
        std::process::exit(2);
    });
    let cfg: SimConfig = serde_json::from_str(&meta0.cfg_json).unwrap_or_else(|e| {
        eprintln!("error: checkpoint sim config does not parse: {e}");
        std::process::exit(2);
    });
    println!(
        "bisecting {} checkpoints of workload `{}` (seed {:#x}) in {}",
        ckpts.len(),
        meta0.workload,
        meta0.seed,
        dir.display()
    );

    let prog = spec.build();
    let mut replay = Replay::new(&prog, spec.seed, &cfg, meta0.warmup);
    let matches = |replay: &mut Replay, c: &Ckpt| {
        let sim = replay.at(c.meta.committed);
        sim.state_digest() == c.meta.digest
    };

    // Cheap common case first: the newest checkpoint replays clean.
    let last = ckpts.len() - 1;
    if matches(&mut replay, &ckpts[last]) {
        println!(
            "replay reproduces every checkpoint bit-for-bit (through {} committed); \
             no divergence",
            ckpts[last].meta.committed
        );
        return;
    }
    // `matches` is a prefix property of a deterministic replay: find the
    // first checkpoint it fails.
    let mut lo = 0; // first candidate that might mismatch
    let mut hi = last; // known mismatch
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if matches(&mut replay, &ckpts[mid]) {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    let bad = &ckpts[lo];
    let window_start = if lo == 0 {
        0
    } else {
        ckpts[lo - 1].meta.committed
    };
    println!(
        "divergence localized to the window ({window_start}, {}] committed instructions",
        bad.meta.committed
    );
    println!("  first divergent checkpoint: {}", bad.path.display());

    // Side-by-side diagnostics at the window's right edge: the replayed
    // machine vs the recorded one.
    let replayed = replay.at(bad.meta.committed).diagnostics();
    let mut recorded_sim = Simulator::new(&prog, spec.seed, &cfg);
    recorded_sim.restore_from_bytes(&bad.state);
    let recorded = recorded_sim.diagnostics();
    println!("  replayed : {replayed}");
    println!("  recorded : {recorded}");
    println!(
        "  digests  : replayed {:#018x} vs recorded {:#018x}",
        replayed.state_digest, recorded.state_digest
    );
    std::process::exit(1);
}
