//! Characterizes the evaluation suite: static footprint, dynamic working
//! set, branch mix and call depth per workload — the properties DESIGN.md
//! §1 claims for the CVP-1 substitution.
//!
//! ```text
//! cargo run --release -p ucp-bench --bin suite_report
//! ```

use std::collections::HashMap;
use ucp_bench::{
    cached_suite_run, check_accounting, merged_telemetry, stall_breakdown_table, Profile,
};
use ucp_core::SimConfig;
use ucp_telemetry::snapshot_table;
use ucp_workloads::Oracle;

fn main() {
    let profile = Profile::from_env();
    let suite = profile.suite();
    let insts = profile.lengths().1.min(1_000_000);
    println!(
        "{:<10} {:>9} {:>9} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "workload", "staticKB", "dyn.wins", "w90", "cond/KI", "call/KI", "ind/KI", "maxdep"
    );
    for spec in &suite {
        let p = spec.build();
        let mut o = Oracle::new(&p, spec.seed);
        let mut windows: HashMap<u64, u64> = HashMap::new();
        let (mut cond, mut call, mut ind, mut maxdep) = (0u64, 0u64, 0u64, 0usize);
        for _ in 0..insts {
            let d = o.next_inst();
            *windows.entry(d.pc.uop_window().raw()).or_default() += 1;
            use sim_isa::InstKind::*;
            match d.inst.kind {
                CondBranch { .. } => cond += 1,
                Call { .. } => call += 1,
                IndirectCall | IndirectJump => ind += 1,
                _ => {}
            }
            maxdep = maxdep.max(o.call_depth());
        }
        let mut counts: Vec<u64> = windows.values().copied().collect();
        counts.sort_unstable_by(|a, b| b.cmp(a));
        let total: u64 = counts.iter().sum();
        let mut acc = 0u64;
        let mut w90 = counts.len();
        for (i, c) in counts.iter().enumerate() {
            acc += c;
            if acc * 10 >= total * 9 {
                w90 = i + 1;
                break;
            }
        }
        let ki = insts as f64 / 1000.0;
        println!(
            "{:<10} {:>9} {:>9} {:>8} {:>8.1} {:>8.1} {:>8.1} {:>8}",
            spec.name,
            p.footprint_bytes() / 1024,
            windows.len(),
            w90,
            cond as f64 / ki,
            call as f64 / ki,
            ind as f64 / ki,
            maxdep
        );
    }
    println!(
        "\n(dyn.wins = distinct 32B windows in {insts} instructions; w90 = windows covering 90% \
         of fetches; a 4Kops uop cache holds 512 window entries)"
    );

    // Suite-wide telemetry under the UCP configuration (cached like every
    // figure run; per-workload snapshots live in the result cache).
    let results = cached_suite_run(&SimConfig::ucp(), profile);
    if let Some(m) = results.marker() {
        println!("\n*** UCP suite run {m} — failed workloads are excluded below ***");
    }
    let total = merged_telemetry(&results);
    println!(
        "\naggregate telemetry (UCP config, {} workloads):",
        results.len()
    );
    if total.is_empty() {
        println!("  (empty — cache predates telemetry; rerun with UCP_NO_CACHE=1)");
    } else {
        print!("{}", snapshot_table(&total));
    }

    // Cycle accounting: where each configuration's frontend cycles go, per
    // workload — UCP should shift share out of l1i_miss/resteer relative
    // to the baseline. Every run is also checked against the accounting
    // invariant (categories sum to the measured cycle total); a violation
    // fails the report so CI catches it.
    let baseline = cached_suite_run(&SimConfig::baseline(), profile);
    if let Some(m) = baseline.marker() {
        println!("\n*** baseline suite run {m} — failed workloads are excluded below ***");
    }
    println!("\nstall breakdown, baseline (% of measured cycles):");
    print!("{}", stall_breakdown_table(&baseline));
    println!("\nstall breakdown, UCP (% of measured cycles):");
    print!("{}", stall_breakdown_table(&results));
    let mut violations = check_accounting(&baseline);
    violations.extend(check_accounting(&results));
    if !violations.is_empty() {
        eprintln!("cycle-accounting invariant violated:");
        for v in &violations {
            eprintln!("  {v}");
        }
        std::process::exit(1);
    }
}
