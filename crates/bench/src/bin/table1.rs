//! Prints the Table I stopping weights actually used by the UCP engine.
fn main() {
    print!("{}", ucp_bench::figs::table1());
}
