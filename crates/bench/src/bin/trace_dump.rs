//! Runs one workload with event tracing on and dumps the trace.
//!
//! ```text
//! cargo run --release -p ucp-bench --bin trace_dump -- [--counters] [WORKLOAD] [OUT]
//! ```
//!
//! - `WORKLOAD` — suite workload name (default: the first quick-suite
//!   workload). `--list` prints the available names.
//! - `OUT` — output path. `.jsonl` selects the line-delimited format;
//!   anything else gets Chrome trace-event JSON, loadable in Perfetto
//!   (<https://ui.perfetto.dev>) or `chrome://tracing`. Default
//!   `target/ucp-trace.json`.
//! - `--counters` — also emit Chrome `C` (counter) events from the
//!   interval sampler: IPC, µ-op cache hit rate, L1I MPKI, and the
//!   stacked frontend-cycle breakdown render as counter tracks above the
//!   event rows. Forces a fine sampling interval so short traces still
//!   chart. Ignored for `.jsonl` output.
//!
//! Environment: `UCP_TRACE` selects categories (default `all` here —
//! unlike the simulator library, this tool exists to trace);
//! `UCP_TRACE_BUF` sets the ring-buffer capacity; `UCP_SIM_WARMUP` /
//! `UCP_SIM_INSTRUCTIONS` override run lengths.

use ucp_bench::Profile;
use ucp_core::{run_lengths, SimConfig, Simulator};
use ucp_telemetry::{
    snapshot_table, to_chrome_trace, to_chrome_trace_with_counters, to_jsonl, IntervalSampler,
    Telemetry,
};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let suite = Profile::from_env().suite();
    if args.iter().any(|a| a == "--list" || a == "-l") {
        for s in &suite {
            println!("{}", s.name);
        }
        return;
    }
    let counters = args.iter().any(|a| a == "--counters" || a == "-c");
    let positional: Vec<&String> = args.iter().filter(|a| !a.starts_with('-')).collect();
    let spec = match positional.first() {
        Some(name) => suite
            .iter()
            .find(|s| &s.name == *name)
            .unwrap_or_else(|| {
                eprintln!("unknown workload `{name}`; try --list");
                std::process::exit(2);
            })
            .clone(),
        None => suite[0].clone(),
    };
    let out_path = positional
        .get(1)
        .cloned()
        .cloned()
        .unwrap_or_else(|| "target/ucp-trace.json".to_string());

    let categories = std::env::var("UCP_TRACE").unwrap_or_else(|_| "all".to_string());
    let capacity = std::env::var("UCP_TRACE_BUF")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(65536);
    let telemetry = Telemetry::with_trace(&categories, capacity);

    let (warmup, measure) = run_lengths(0.2);
    let cfg = SimConfig::ucp();
    let prog = spec.build();
    let mut sim = Simulator::with_telemetry(&prog, spec.seed, &cfg, telemetry.clone());
    if counters {
        // ~200 samples over the measured window even on short runs
        // (cycles ≈ instructions at IPC ≈ 1).
        sim.set_interval_sampling(Some(IntervalSampler::new((measure / 200).max(100), 4096)));
    }
    let out = sim.run_full(warmup, measure).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(2);
    });
    let (stats, window) = (out.stats, out.telemetry);

    let events = telemetry.tracer.events();
    let text = if out_path.ends_with(".jsonl") {
        to_jsonl(&events)
    } else if counters {
        to_chrome_trace_with_counters(&events, &out.intervals)
    } else {
        to_chrome_trace(&events)
    };
    if let Some(dir) = std::path::Path::new(&out_path).parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    std::fs::write(&out_path, text).expect("write trace file");

    println!(
        "{}: {} events ({} dropped) over {} cycles, IPC {:.3} -> {}",
        spec.name,
        events.len(),
        telemetry.tracer.dropped(),
        stats.cycles,
        stats.ipc(),
        out_path
    );
    if counters {
        println!(
            "counter tracks: {} interval samples ({} cycles each)",
            out.intervals.len(),
            (measure / 200).max(100)
        );
    }
    println!(
        "\nmeasurement-window counters:\n{}",
        snapshot_table(&window)
    );
}
