//! Runs one workload with event tracing on and dumps the trace.
//!
//! ```text
//! cargo run --release -p ucp-bench --bin trace_dump -- [WORKLOAD] [OUT]
//! ```
//!
//! - `WORKLOAD` — suite workload name (default: the first quick-suite
//!   workload). `--list` prints the available names.
//! - `OUT` — output path. `.jsonl` selects the line-delimited format;
//!   anything else gets Chrome trace-event JSON, loadable in Perfetto
//!   (<https://ui.perfetto.dev>) or `chrome://tracing`. Default
//!   `target/ucp-trace.json`.
//!
//! Environment: `UCP_TRACE` selects categories (default `all` here —
//! unlike the simulator library, this tool exists to trace);
//! `UCP_TRACE_BUF` sets the ring-buffer capacity; `UCP_SIM_WARMUP` /
//! `UCP_SIM_INSTRUCTIONS` override run lengths.

use ucp_bench::Profile;
use ucp_core::{run_lengths, SimConfig, Simulator};
use ucp_telemetry::{snapshot_table, to_chrome_trace, to_jsonl, Telemetry};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let suite = Profile::from_env().suite();
    if args.iter().any(|a| a == "--list" || a == "-l") {
        for s in &suite {
            println!("{}", s.name);
        }
        return;
    }
    let spec = match args.first() {
        Some(name) => suite
            .iter()
            .find(|s| &s.name == name)
            .unwrap_or_else(|| {
                eprintln!("unknown workload `{name}`; try --list");
                std::process::exit(2);
            })
            .clone(),
        None => suite[0].clone(),
    };
    let out_path = args
        .get(1)
        .cloned()
        .unwrap_or_else(|| "target/ucp-trace.json".to_string());

    let categories = std::env::var("UCP_TRACE").unwrap_or_else(|_| "all".to_string());
    let capacity = std::env::var("UCP_TRACE_BUF")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(65536);
    let telemetry = Telemetry::with_trace(&categories, capacity);

    let (warmup, measure) = run_lengths(0.2);
    let cfg = SimConfig::ucp();
    let prog = spec.build();
    let mut sim = Simulator::with_telemetry(&prog, spec.seed, &cfg, telemetry.clone());
    let (stats, window) = sim.run_instrumented(warmup, measure);

    let events = telemetry.tracer.events();
    let text = if out_path.ends_with(".jsonl") {
        to_jsonl(&events)
    } else {
        to_chrome_trace(&events)
    };
    if let Some(dir) = std::path::Path::new(&out_path).parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    std::fs::write(&out_path, text).expect("write trace file");

    println!(
        "{}: {} events ({} dropped) over {} cycles, IPC {:.3} -> {}",
        spec.name,
        events.len(),
        telemetry.tracer.dropped(),
        stats.cycles,
        stats.ipc(),
        out_path
    );
    println!(
        "\nmeasurement-window counters:\n{}",
        snapshot_table(&window)
    );
}
