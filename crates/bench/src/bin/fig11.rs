//! Regenerates the paper's Fig. 11 (see DESIGN.md §4).
fn main() {
    let profile = ucp_bench::Profile::from_env();
    print!("{}", ucp_bench::figs::fig11(profile));
}
