//! Prints the UCP hardware inventory (paper Fig. 8 / §IV-F).
fn main() {
    print!("{}", ucp_bench::figs::fig08());
}
