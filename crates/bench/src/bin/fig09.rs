//! Regenerates the paper's Fig. 09 (see DESIGN.md §4).
fn main() {
    let profile = ucp_bench::Profile::from_env();
    print!("{}", ucp_bench::figs::fig09(profile));
}
