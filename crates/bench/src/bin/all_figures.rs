//! Regenerates every table and figure in paper order.
fn main() {
    let profile = ucp_bench::Profile::from_env();
    print!("{}", ucp_bench::figs::all(profile));
}
