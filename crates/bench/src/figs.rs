//! One function per table/figure of the paper's evaluation. Every report
//! prints the paper's headline numbers next to the measured ones; see
//! EXPERIMENTS.md for the recorded comparison.

use crate::harness::{amean, cached_suite_run, sorted_curve, summary_line, Profile, SuiteRun};
use ucp_bpred::Provider;
use ucp_core::{
    align_by_workload, geomean_speedup_pct, speedups_pct, ConfKind, PrefetcherKind, RunResult,
    SimConfig, UopCacheModel,
};
use ucp_frontend::UopCacheConfig;

fn header(id: &str, title: &str, paper: &str, profile: Profile) -> String {
    format!(
        "=== {id}: {title} [profile {}] ===\npaper: {paper}\n",
        profile.tag()
    )
}

/// Per-workload speedups over the workloads present in *both* sets —
/// degraded runs shrink the comparison instead of crashing it.
fn per_workload_speedups(base: &[RunResult], new: &[RunResult]) -> Vec<(String, f64)> {
    let (b, n) = align_by_workload(base, new);
    speedups_pct(&b, &n)
        .into_iter()
        .zip(&b)
        .map(|(s, r)| (r.workload.clone(), s))
        .collect()
}

fn geomean(base: &[RunResult], new: &[RunResult]) -> f64 {
    let (base, new) = align_by_workload(base, new);
    let b: Vec<f64> = base.iter().map(|r| r.stats.ipc()).collect();
    let n: Vec<f64> = new.iter().map(|r| r.stats.ipc()).collect();
    geomean_speedup_pct(&b, &n)
}

/// The inline ` [DEGRADED (k/n)]` row marker, empty for complete runs.
fn mark(r: &SuiteRun) -> String {
    r.marker().map_or(String::new(), |m| format!(" [{m}]"))
}

/// One `NOTE:` line per degraded run, naming the failed workloads and
/// failure kinds; empty when every listed run is complete.
fn degraded_note(runs: &[(&str, &SuiteRun)]) -> String {
    let mut out = String::new();
    for (tag, r) in runs {
        if let Some(m) = r.marker() {
            out += &format!("  NOTE: {tag} {m}:");
            for (w, e) in &r.failures {
                out += &format!(" `{w}` ({})", e.kind());
            }
            out.push('\n');
        }
    }
    out
}

/// Fig. 2: IPC improvement of a 4Kops µ-op cache over no µ-op cache.
pub fn fig02(profile: Profile) -> String {
    let mut out = header(
        "fig02",
        "4Kops uop cache vs no uop cache (sorted)",
        "beneficial for 80.7% of traces, range ~ -2%..+6%",
        profile,
    );
    let no_uc = cached_suite_run(&SimConfig::no_uop_cache(), profile);
    let base = cached_suite_run(&SimConfig::baseline(), profile);
    let mut pairs = per_workload_speedups(&no_uc, &base);
    let vals: Vec<f64> = pairs.iter().map(|p| p.1).collect();
    let beneficial = vals.iter().filter(|&&v| v > 0.0).count();
    out += &sorted_curve(&mut pairs, "% IPC");
    out += &summary_line("speedup", &vals);
    out += &format!(
        "beneficial: {}/{} ({:.1}%)   geomean {:+.2}%\n",
        beneficial,
        vals.len(),
        100.0 * beneficial as f64 / vals.len() as f64,
        geomean(&no_uc, &base),
    );
    out += &degraded_note(&[("no-uop-cache", &no_uc), ("baseline", &base)]);
    out
}

/// Fig. 3: µ-op cache hit rate and switch PKI per workload.
pub fn fig03(profile: Profile) -> String {
    let mut out = header(
        "fig03",
        "uop cache hit rate and switch PKI (sorted by hit rate)",
        "amean hit rate 71.6%, min 30.7%; switch PKI up to ~22",
        profile,
    );
    let base = cached_suite_run(&SimConfig::baseline(), profile);
    let mut rows: Vec<(String, f64, f64)> = base
        .iter()
        .map(|r| {
            (
                r.workload.clone(),
                r.stats.uop_hit_rate_pct(),
                r.stats.switch_pki(),
            )
        })
        .collect();
    rows.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"));
    for (name, hit, pki) in &rows {
        out += &format!("  {name:<10} hit {hit:>6.1}%   switch {pki:>6.2} PKI\n");
    }
    let hits: Vec<f64> = rows.iter().map(|r| r.1).collect();
    let pkis: Vec<f64> = rows.iter().map(|r| r.2).collect();
    out += &summary_line("hit rate %", &hits);
    out += &summary_line("switch PKI", &pkis);
    out += &degraded_note(&[("baseline", &base)]);
    out
}

/// Fig. 4: µ-op cache size sweep 4K→64Kops vs the ideal µ-op cache.
pub fn fig04(profile: Profile) -> String {
    let mut out = header(
        "fig04",
        "uop cache size sweep (speedup over 4Kops baseline; hit rate)",
        "8K +0.18%, 16x larger +1.2% @ 91.2% hit; ideal +10.8%",
        profile,
    );
    let base = cached_suite_run(&SimConfig::baseline(), profile);
    for kops in [8usize, 16, 32, 64] {
        let mut cfg = SimConfig::baseline();
        cfg.uop_cache = UopCacheModel::Real(UopCacheConfig::kops(kops));
        let r = cached_suite_run(&cfg, profile);
        let hit: Vec<f64> = r.iter().map(|x| x.stats.uop_hit_rate_pct()).collect();
        out += &format!(
            "  {kops:>2}Kops: speedup {:+.2}%  hit rate {:.1}%{}\n",
            geomean(&base, &r),
            amean(&hit),
            mark(&r)
        );
    }
    let mut ideal = SimConfig::baseline();
    ideal.uop_cache = UopCacheModel::Ideal;
    let r = cached_suite_run(&ideal, profile);
    out += &format!(
        "  ideal: speedup {:+.2}%  hit rate 100.0%{}\n",
        geomean(&base, &r),
        mark(&r)
    );
    let base_hit: Vec<f64> = base.iter().map(|x| x.stats.uop_hit_rate_pct()).collect();
    out += &format!("  (4Kops baseline hit rate {:.1}%)\n", amean(&base_hit));
    out += &degraded_note(&[("baseline", &base)]);
    out
}

/// Fig. 5: L1I prefetchers × µ-op-cache idealizations.
pub fn fig05(profile: Profile) -> String {
    let mut out = header(
        "fig05",
        "L1I prefetchers vs alternate-path idealizations",
        "Base +1.1..1.6%; L1I-Hits up to +1.9% @97% hit; IdealBRCond-8 +2.3%; -16 +2.9%",
        profile,
    );
    let baseline = cached_suite_run(&SimConfig::baseline(), profile);
    out += &format!(
        "  {:<10} {:>8} {:>8} {:>10} {:>11}\n",
        "prefetcher", "Base", "L1I-Hits", "IdealBR-8", "IdealBR-16"
    );
    for pk in PrefetcherKind::ALL {
        let mut row = format!("  {:<10}", pk.name());
        for variant in 0..4 {
            let mut cfg = SimConfig::baseline();
            cfg.prefetcher = pk;
            match variant {
                1 => cfg.l1i_hits_ideal = true,
                2 => cfg.ideal_brcond = Some(8),
                3 => cfg.ideal_brcond = Some(16),
                _ => {}
            }
            let r = cached_suite_run(&cfg, profile);
            let hit: Vec<f64> = r.iter().map(|x| x.stats.uop_hit_rate_pct()).collect();
            row += &format!(
                " {:+6.2}%({:>4.1}){}",
                geomean(&baseline, &r),
                amean(&hit),
                mark(&r)
            );
        }
        out += &row;
        out.push('\n');
    }
    out += "  (each cell: geomean speedup over NONE/Base, and amean uop hit rate %)\n";
    out += &degraded_note(&[("baseline", &baseline)]);
    out
}

/// Fig. 6: per-component misprediction rate vs counter value.
pub fn fig06(profile: Profile) -> String {
    let mut out = header(
        "fig06",
        "miss rate per TAGE-SC-L component and counter value",
        "saturated HitBank/bimodal ~0%; bimodal(>1in8) >6%; AltBank high at all counters; \
         SC 10-50% by |sum|; LP <3%",
        profile,
    );
    let base = cached_suite_run(&SimConfig::baseline(), profile);
    let mut agg: std::collections::BTreeMap<(Provider, i32), (u64, u64)> = Default::default();
    for r in base.iter() {
        for (&k, b) in &r.stats.provider_buckets {
            let e = agg.entry(k).or_default();
            e.0 += b.preds;
            e.1 += b.misses;
        }
    }
    let mut last: Option<Provider> = None;
    for ((p, v), (preds, misses)) in &agg {
        if last != Some(*p) {
            out += &format!("  {p}:\n");
            last = Some(*p);
        }
        if *preds < 50 {
            continue; // too few samples to report a rate
        }
        out += &format!(
            "    ctr {v:>4}: {:>6.2}% miss ({preds} preds)\n",
            100.0 * *misses as f64 / *preds as f64
        );
    }
    out += &degraded_note(&[("baseline", &base)]);
    out
}

/// Fig. 7: contribution of each component to total mispredictions.
pub fn fig07(profile: Profile) -> String {
    let mut out = header(
        "fig07",
        "share of total mispredictions per component",
        "HitBank 66.7%, SC 11.1%, AltBank 8.1%, bimodal(>1in8) 7.5%, bimodal 6.2%, LP 0.1%",
        profile,
    );
    let base = cached_suite_run(&SimConfig::baseline(), profile);
    let mut misses: std::collections::BTreeMap<Provider, u64> = Default::default();
    let mut total = 0u64;
    for r in base.iter() {
        for (&p, b) in &r.stats.provider_totals {
            *misses.entry(p).or_default() += b.misses;
            total += b.misses;
        }
    }
    for p in Provider::ALL {
        let m = misses.get(&p).copied().unwrap_or(0);
        out += &format!(
            "  {p:<16} {:>6.2}%\n",
            100.0 * m as f64 / total.max(1) as f64
        );
    }
    out += &degraded_note(&[("baseline", &base)]);
    out
}

/// Fig. 8 / §IV-F: the structures UCP adds and their storage, measured
/// from the instantiated hardware (not hand-quoted).
pub fn fig08() -> String {
    use ucp_bpred::{Ittage, IttageParams, SclPreset, TageScL};
    use ucp_frontend::Ras;
    let mut out = String::from(
        "=== fig08: UCP structures and storage (measured vs paper §IV-F) ===\n         paper: Alt-BP 8 KB, Alt-Ind 4 KB, Alt-RAS 0.06 KB, Alt-FTQ 0.14 KB,          uop MSHR 0.19 KB, L1I PQ 0.25 KB, alt decode queue 0.12 KB;          total 12.95 KB (8.95 KB without Alt-Ind)\n",
    );
    let alt_bp = TageScL::new(SclPreset::Alt8K);
    let alt_ind = Ittage::new(IttageParams::alt_4k());
    let alt_ras = Ras::new(16);
    out += &format!("  Alt-BP (TAGE-SC-L)   {:>7.2} KB\n", alt_bp.storage_kb());
    out += &format!("  Alt-Ind (ITTAGE)     {:>7.2} KB\n", alt_ind.storage_kb());
    out += &format!(
        "  Alt-RAS (16 entries) {:>7.2} KB\n",
        alt_ras.storage_bits() as f64 / 8192.0
    );
    out += "  Alt-FTQ (24 entries)    0.14 KB (queue of uop-window addresses)\n";
    out += "  uop cache MSHR (32)     0.19 KB\n";
    out += "  L1I PQ (32)             0.25 KB\n";
    out += "  alt decode queue (32)   0.12 KB\n";
    out += &format!(
        "  TOTAL with Alt-Ind   {:>7.2} KB   (paper 12.95 KB)\n",
        SimConfig::ucp().extra_storage_kb()
    );
    out += &format!(
        "  TOTAL without        {:>7.2} KB   (paper  8.95 KB)\n",
        SimConfig::ucp_no_ind().extra_storage_kb()
    );
    out
}

/// Fig. 9: H2P coverage and accuracy of TAGE-Conf vs UCP-Conf.
pub fn fig09(profile: Profile) -> String {
    let mut out = header(
        "fig09",
        "H2P detector coverage and accuracy",
        "TAGE-Conf: coverage 48.5%, accuracy 12%; UCP-Conf: coverage 70%, accuracy 14.66%",
        profile,
    );
    let base = cached_suite_run(&SimConfig::baseline(), profile);
    let mut t = ucp_core::H2pCounts::default();
    let mut u = ucp_core::H2pCounts::default();
    for r in base.iter() {
        t.marked += r.stats.h2p_tage.marked;
        t.marked_mispredicted += r.stats.h2p_tage.marked_mispredicted;
        t.mispredicted += r.stats.h2p_tage.mispredicted;
        u.marked += r.stats.h2p_ucp.marked;
        u.marked_mispredicted += r.stats.h2p_ucp.marked_mispredicted;
        u.mispredicted += r.stats.h2p_ucp.mispredicted;
    }
    out += &format!(
        "  TAGE-Conf: coverage {:.1}%  accuracy {:.2}%\n",
        t.coverage_pct(),
        t.accuracy_pct()
    );
    out += &format!(
        "  UCP-Conf:  coverage {:.1}%  accuracy {:.2}%\n",
        u.coverage_pct(),
        u.accuracy_pct()
    );
    out += &degraded_note(&[("baseline", &base)]);
    out
}

/// Fig. 10: IPC of the 4Kops baseline and UCP, both over no-µ-op-cache.
pub fn fig10(profile: Profile) -> String {
    let mut out = header(
        "fig10",
        "baseline and UCP vs no uop cache (sorted)",
        "UCP lifts the share of workloads benefiting from a uop cache from 80.7% to 90%",
        profile,
    );
    let no_uc = cached_suite_run(&SimConfig::no_uop_cache(), profile);
    let base = cached_suite_run(&SimConfig::baseline(), profile);
    let ucp = cached_suite_run(&SimConfig::ucp(), profile);
    let mut b_pairs = per_workload_speedups(&no_uc, &base);
    let mut u_pairs = per_workload_speedups(&no_uc, &ucp);
    out += "4Kops baseline vs no uop cache:\n";
    out += &sorted_curve(&mut b_pairs, "%");
    out += "UCP vs no uop cache:\n";
    out += &sorted_curve(&mut u_pairs, "%");
    let bb: Vec<f64> = b_pairs.iter().map(|p| p.1).collect();
    let uu: Vec<f64> = u_pairs.iter().map(|p| p.1).collect();
    out += &format!(
        "beneficial: baseline {}/{}  UCP {}/{}\n",
        bb.iter().filter(|&&v| v > 0.0).count(),
        bb.len(),
        uu.iter().filter(|&&v| v > 0.0).count(),
        uu.len()
    );
    out += &degraded_note(&[("no-uop-cache", &no_uc), ("baseline", &base), ("UCP", &ucp)]);
    out
}

/// Fig. 11: UCP speedup over baseline with conditional MPKI.
pub fn fig11(profile: Profile) -> String {
    let mut out = header(
        "fig11",
        "UCP speedup and conditional MPKI (sorted by speedup)",
        "average +2%, max +12%; average MPKI 1.56, best workload MPKI 6.17",
        profile,
    );
    let base = cached_suite_run(&SimConfig::baseline(), profile);
    let ucp = cached_suite_run(&SimConfig::ucp(), profile);
    let (ab, au) = align_by_workload(&base, &ucp);
    let sp = speedups_pct(&ab, &au);
    let mut rows: Vec<(String, f64, f64)> = sp
        .iter()
        .zip(&au)
        .map(|(&s, r)| (r.workload.clone(), s, r.stats.cond_mpki()))
        .collect();
    rows.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"));
    for (name, s, mpki) in &rows {
        out += &format!("  {name:<10} {s:>+6.2}%   MPKI {mpki:>5.2}\n");
    }
    out += &summary_line("speedup %", &sp);
    let mpkis: Vec<f64> = rows.iter().map(|r| r.2).collect();
    out += &summary_line("cond MPKI", &mpkis);
    out += &format!("geomean speedup {:+.2}%\n", geomean(&base, &ucp));
    out += &degraded_note(&[("baseline", &base), ("UCP", &ucp)]);
    out
}

/// Fig. 12: UCP vs UCP-NoIND and UCP-Conf vs TAGE-Conf triggering.
pub fn fig12(profile: Profile) -> String {
    let mut out = header(
        "fig12",
        "indirect predictor and confidence-estimator ablations",
        "UCP 2.0% vs UCP-NoIND 1.9%; UCP-Conf 2.0% vs TAGE-Conf 1.8%",
        profile,
    );
    let base = cached_suite_run(&SimConfig::baseline(), profile);
    let ucp = cached_suite_run(&SimConfig::ucp(), profile);
    let no_ind = cached_suite_run(&SimConfig::ucp_no_ind(), profile);
    let mut tage_conf_cfg = SimConfig::ucp();
    tage_conf_cfg.ucp.conf = ConfKind::Tage;
    let tage_conf = cached_suite_run(&tage_conf_cfg, profile);
    let sp = |r: &[RunResult]| {
        let (b, n) = align_by_workload(&base, r);
        let v = speedups_pct(&b, &n);
        let min = v.iter().copied().fold(f64::INFINITY, f64::min);
        let max = v.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        (geomean(&base, r), min, max)
    };
    for (name, r) in [
        ("UCP", &ucp),
        ("UCP-NoIND", &no_ind),
        ("UCP(TAGE-Conf)", &tage_conf),
    ] {
        let (g, min, max) = sp(r);
        out += &format!(
            "  {name:<15} geomean {g:+.2}%  min {min:+.2}%  max {max:+.2}%{}\n",
            mark(r)
        );
    }
    out += &degraded_note(&[("baseline", &base)]);
    out
}

/// Fig. 13: µ-op cache hit rate under UCP.
pub fn fig13(profile: Profile) -> String {
    let mut out = header(
        "fig13",
        "uop cache hit rate under UCP (sorted)",
        "modest improvement: 71.4% -> 74% on average; ~10 lines prefetched per alternate path",
        profile,
    );
    let base = cached_suite_run(&SimConfig::baseline(), profile);
    let ucp = cached_suite_run(&SimConfig::ucp(), profile);
    let mut pairs: Vec<(String, f64)> = ucp
        .iter()
        .map(|r| (r.workload.clone(), r.stats.uop_hit_rate_pct()))
        .collect();
    out += &sorted_curve(&mut pairs, "% hit");
    let b: Vec<f64> = base.iter().map(|r| r.stats.uop_hit_rate_pct()).collect();
    let u: Vec<f64> = ucp.iter().map(|r| r.stats.uop_hit_rate_pct()).collect();
    let lines_per_walk: Vec<f64> = ucp
        .iter()
        .map(|r| r.stats.ucp.lines_prefetched as f64 / r.stats.ucp.walks_started.max(1) as f64)
        .collect();
    out += &format!(
        "amean hit rate: baseline {:.1}% -> UCP {:.1}%; lines per alternate path {:.1}\n",
        amean(&b),
        amean(&u),
        amean(&lines_per_walk)
    );
    out += &degraded_note(&[("baseline", &base), ("UCP", &ucp)]);
    out
}

/// Fig. 14: UCP prefetch accuracy.
pub fn fig14(profile: Profile) -> String {
    let mut out = header(
        "fig14",
        "UCP prefetch accuracy (timely / inserted, entry granularity)",
        "average 67.7%; plus ~8% (max 18%) of entries used late",
        profile,
    );
    let ucp = cached_suite_run(&SimConfig::ucp(), profile);
    let mut pairs: Vec<(String, f64)> = ucp
        .iter()
        .filter(|r| r.stats.ucp.entries_inserted > 0)
        .map(|r| (r.workload.clone(), r.stats.ucp.prefetch_accuracy_pct()))
        .collect();
    out += &sorted_curve(&mut pairs, "% timely");
    let acc: Vec<f64> = pairs.iter().map(|p| p.1).collect();
    let late: Vec<f64> = ucp
        .iter()
        .filter(|r| r.stats.ucp.entries_inserted > 0)
        .map(|r| r.stats.ucp.late_use_pct())
        .collect();
    out += &summary_line("accuracy %", &acc);
    out += &summary_line("late-use %", &late);
    out += &degraded_note(&[("UCP", &ucp)]);
    out
}

/// Fig. 15: stopping-threshold sensitivity, µ-op-cache vs L1I-only.
pub fn fig15(profile: Profile) -> String {
    let mut out = header(
        "fig15",
        "stopping-threshold sweep (geomean speedup over baseline)",
        "uop-cache prefetch plateaus ~500 then thrashes past ~1000; L1I-only peaks at 1000 (~1.6-1.7%)",
        profile,
    );
    let base = cached_suite_run(&SimConfig::baseline(), profile);
    out += &format!(
        "  {:>9} {:>12} {:>12}\n",
        "threshold", "UCP(uop$)", "UCP(L1I)"
    );
    for thr in [16u32, 64, 256, 500, 1024, 4096] {
        let mut ucp = SimConfig::ucp();
        ucp.ucp.stop_threshold = thr;
        let mut l1i = SimConfig::ucp();
        l1i.ucp.stop_threshold = thr;
        l1i.ucp.till_l1i = true;
        let r_u = cached_suite_run(&ucp, profile);
        let r_l = cached_suite_run(&l1i, profile);
        out += &format!(
            "  {thr:>9} {:>+11.2}% {:>+11.2}%{}{}\n",
            geomean(&base, &r_u),
            geomean(&base, &r_l),
            mark(&r_u),
            mark(&r_l)
        );
    }
    out += &degraded_note(&[("baseline", &base)]);
    out
}

/// Fig. 16: storage vs speedup Pareto front.
pub fn fig16(profile: Profile) -> String {
    let mut out = header(
        "fig16",
        "storage (KB) vs geomean speedup (%) Pareto",
        "UCP flavours on the Pareto front at 8.95/12.95 KB ~ +1.9/+2.0%; \
         D-JOLT 125 KB below UCP; TAGE-SC-Lx2 marginal at high cost; MRC 0.3-0.7%",
        profile,
    );
    let base = cached_suite_run(&SimConfig::baseline(), profile);
    let mut points: Vec<(String, SimConfig)> = Vec::new();
    points.push(("UCP-NoIndirect".into(), SimConfig::ucp_no_ind()));
    points.push(("UCP-ITTAGE".into(), SimConfig::ucp()));
    {
        let mut c = SimConfig::ucp();
        c.ucp.shared_decoders = true;
        points.push(("UCP-SharedDecoders".into(), c));
    }
    {
        let mut c = SimConfig::ucp();
        c.ucp.till_l1i = true;
        c.ucp.stop_threshold = 1000;
        points.push(("UCP-L1I(T=1000)".into(), c));
    }
    {
        let mut c = SimConfig::ucp();
        c.ucp.ideal_btb_banking = true;
        points.push(("UCP-NoBTBConflict".into(), c));
    }
    for pk in [
        PrefetcherKind::FnlMma,
        PrefetcherKind::FnlMmaPlusPlus,
        PrefetcherKind::DJolt,
        PrefetcherKind::Ep,
        PrefetcherKind::EpPlusPlus,
    ] {
        let mut c = SimConfig::baseline();
        c.prefetcher = pk;
        points.push((pk.name().into(), c));
    }
    {
        let mut c = SimConfig::baseline();
        c.bpred = ucp_bpred::SclPreset::Big128K;
        points.push(("TAGE-SC-Lx2".into(), c));
    }
    for entries in [64usize, 128, 256, 512] {
        let mut c = SimConfig::baseline();
        c.mrc_entries = Some(entries);
        points.push((format!("MRC-{entries}e"), c));
    }
    for kops in [8usize, 16, 32] {
        let mut c = SimConfig::baseline();
        c.uop_cache = UopCacheModel::Real(UopCacheConfig::kops(kops));
        points.push((format!("uop-{kops}Kops"), c));
    }
    out += &format!("  {:<20} {:>10} {:>10}\n", "config", "extra KB", "speedup");
    for (name, cfg) in points {
        let r = cached_suite_run(&cfg, profile);
        out += &format!(
            "  {name:<20} {:>10.2} {:>+9.2}%{}\n",
            cfg.extra_storage_kb(),
            geomean(&base, &r),
            mark(&r)
        );
    }
    out += &degraded_note(&[("baseline", &base)]);
    out
}

/// Interval time series: per-workload CSVs of IPC, µ-op cache hit rate,
/// L1I MPKI and the stall breakdown over the run, for the baseline and UCP
/// configurations. Files land under `target/ucp-figs/timeseries/<config>/`;
/// the returned report lists what was written.
pub fn timeseries(profile: Profile) -> String {
    use ucp_telemetry::intervals_to_csv;
    let mut out = header(
        "timeseries",
        "interval time series (CSV per workload)",
        "n/a (observability report, no paper counterpart)",
        profile,
    );
    let root = std::path::Path::new("target/ucp-figs/timeseries");
    for (tag, cfg) in [
        ("baseline", SimConfig::baseline()),
        ("ucp", SimConfig::ucp()),
    ] {
        let results = cached_suite_run(&cfg, profile);
        let dir = root.join(tag);
        if std::fs::create_dir_all(&dir).is_err() {
            out += &format!("  {tag}: cannot create {}\n", dir.display());
            continue;
        }
        let mut written = 0usize;
        let mut records = 0usize;
        for r in results.iter() {
            if r.intervals.is_empty() {
                continue; // cached before sampling existed, or sampling off
            }
            let path = dir.join(format!("{}.csv", r.workload));
            if std::fs::write(&path, intervals_to_csv(&r.intervals)).is_ok() {
                written += 1;
                records += r.intervals.len();
            }
        }
        if written == 0 {
            out += &format!(
                "  {tag}: no interval data (rerun with UCP_NO_CACHE=1 and UCP_INTERVAL set)\n"
            );
        } else {
            out += &format!(
                "  {tag}: {written} workload CSVs, {records} intervals -> {}\n",
                dir.display()
            );
        }
    }
    out
}

/// Table I self-check: the stopping weights the engine actually uses.
pub fn table1() -> String {
    use ucp_bpred::{SclPreset, TageScL};
    let mut out = String::from("=== table1: stopping weights (engine self-check vs paper) ===\n");
    let bp = TageScL::new(SclPreset::Alt8K);
    let h = bp.new_history();
    let mut p = bp.predict(&h, sim_isa::Addr::new(0x40));
    let mut check = |prov: Provider, ctr: i8, sum: i32, expect: u32| {
        p.provider = prov;
        p.tage.provider_ctr = ctr;
        p.sc.sum = sum;
        let w = ucp_core::ucp::cond_stop_weight(&p);
        out_push(
            &mut out,
            &format!(
                "  {prov:<16} ctr {ctr:>3} sum {sum:>4} -> weight {w} (paper {expect}) {}\n",
                if w == expect { "OK" } else { "MISMATCH" }
            ),
        );
        assert_eq!(w, expect, "Table I mismatch for {prov}");
    };
    check(Provider::Bimodal, 1, 0, 1);
    check(Provider::Bimodal, 0, 0, 2);
    check(Provider::BimodalLow8, -2, 0, 2);
    check(Provider::BimodalLow8, 0, 0, 6);
    check(Provider::HitBank, 3, 0, 1);
    check(Provider::HitBank, -3, 0, 3);
    check(Provider::HitBank, -2, 0, 4);
    check(Provider::HitBank, -1, 0, 6);
    check(Provider::AltBank, -4, 0, 5);
    check(Provider::AltBank, 1, 0, 7);
    check(Provider::LoopPred, 0, 0, 1);
    check(Provider::Sc, 0, 200, 3);
    check(Provider::Sc, 0, 100, 6);
    check(Provider::Sc, 0, 40, 8);
    check(Provider::Sc, 0, 10, 10);
    out
}

fn out_push(out: &mut String, s: &str) {
    out.push_str(s);
}

/// Table II self-check: the baseline configuration actually instantiated.
pub fn table2() -> String {
    format!(
        "=== table2: baseline configuration (self-check vs paper Table II) ===\n{}\n",
        SimConfig::baseline().describe_table2()
    )
}

/// The artifact-appendix variant table: UCP / TillL1I / SharedDecoders /
/// IdealBTBBanking.
pub fn table_artifact(profile: Profile) -> String {
    let mut out = header(
        "table_artifact",
        "UCP variant IPC improvements (artifact appendix)",
        "UCP 2%, UCP-TillL1I 1.6%, UCP-SharedDecoders 1.8%, UCP-IdealBTBBanking 2.2%",
        profile,
    );
    let base = cached_suite_run(&SimConfig::baseline(), profile);
    let mut variants: Vec<(&str, SimConfig)> = vec![("UCP", SimConfig::ucp())];
    {
        let mut c = SimConfig::ucp();
        c.ucp.till_l1i = true;
        variants.push(("UCP-TillL1I", c));
    }
    {
        let mut c = SimConfig::ucp();
        c.ucp.shared_decoders = true;
        variants.push(("UCP-SharedDecoders", c));
    }
    {
        let mut c = SimConfig::ucp();
        c.ucp.ideal_btb_banking = true;
        variants.push(("UCP-IdealBTBBanking", c));
    }
    for (name, cfg) in variants {
        let r = cached_suite_run(&cfg, profile);
        out += &format!("  {name:<22} {:+.2}%{}\n", geomean(&base, &r), mark(&r));
    }
    out += &degraded_note(&[("baseline", &base)]);
    out
}

/// Every report in paper order (the `all_figures` binary and the `figures`
/// bench).
pub fn all(profile: Profile) -> String {
    let mut out = String::new();
    out += &table2();
    out += &table1();
    out += &fig08();
    for f in [
        fig02, fig03, fig04, fig05, fig06, fig07, fig09, fig10, fig11, fig12, fig13, fig14, fig15,
        fig16,
    ] {
        out += &f(profile);
        out.push('\n');
    }
    out += &table_artifact(profile);
    out.push('\n');
    out += &timeseries(profile);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_self_check_passes() {
        let report = table1();
        assert!(report.contains("OK"));
        assert!(!report.contains("MISMATCH"));
        // All 15 Table I rows present.
        assert_eq!(report.matches("-> weight").count(), 15);
    }

    #[test]
    fn table2_reports_key_parameters() {
        let report = table2();
        for needle in [
            "65536 entries",
            "16 banks",
            "4096 ops",
            "ROB 512",
            "32 KB 4c",
        ] {
            assert!(report.contains(needle), "missing {needle:?} in:\n{report}");
        }
    }

    #[test]
    fn header_names_profile() {
        let h = header("figX", "t", "p", Profile::Quick);
        assert!(h.contains("figX"));
        assert!(h.contains("quick"));
    }
}
