//! Result-cache integrity: an enveloped on-disk format with checksums,
//! atomic writes, and quarantine for corrupt entries.
//!
//! The implementation moved to [`ucp_telemetry::envelope`] so the
//! checkpoint writer in `ucp-core::snapshot` can share the exact same
//! machinery (it sits below `ucp-core` in the dependency graph; this
//! crate sits above it). This module re-exports everything under its
//! original PR 3 paths so existing callers and the CI fault smoke are
//! unaffected.

pub use ucp_telemetry::envelope::{
    fnv1a, quarantine, read_envelope, read_envelope_bytes, write_atomic, write_atomic_bytes,
    write_envelope, write_envelope_bytes, CacheReadError, CACHE_SCHEMA,
};
