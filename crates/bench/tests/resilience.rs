//! End-to-end tests for the resilience layer: fault-isolated degraded
//! suite runs, crash-resume from partial persistence, cache integrity
//! (corruption → quarantine → regenerate), and the hang watchdog's
//! structured error — all through the same `suite_run_with_cache` path
//! the figure binaries use.
//!
//! Every test owns a private cache directory (no `UCP_RESULT_DIR`
//! mutation), so the suite is safe under the default parallel test
//! runner. `cfg(test)` does not apply to integration-test builds of the
//! core crate, so these tests exercise the *release-mode* error paths —
//! e.g. `SimError::InvariantViolation` instead of the unit-test assert.

use std::path::{Path, PathBuf};
use std::sync::Arc;
use ucp_bench::cache::{read_envelope, write_envelope};
use ucp_bench::{suite_run_with_cache, SuiteRun, MODEL_VERSION};
use ucp_core::{SimConfig, SuiteOptions};
use ucp_telemetry::FaultPlan;
use ucp_workloads::WorkloadSpec;

const WARMUP: u64 = 5_000;
const MEASURE: u64 = 20_000;

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("ucp-resilience-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

fn suite(n: usize) -> Vec<WorkloadSpec> {
    (0..n)
        .map(|i| WorkloadSpec::tiny(&format!("w{i}"), i as u64 + 1))
        .collect()
}

fn opts_with(fault: &str) -> SuiteOptions {
    SuiteOptions {
        max_attempts: 2,
        fault: Some(Arc::new(FaultPlan::parse(fault).unwrap())),
        ..Default::default()
    }
}

fn run(suite: &[WorkloadSpec], dir: &Path, opts: &SuiteOptions, use_cache: bool) -> SuiteRun {
    suite_run_with_cache(
        &SimConfig::baseline(),
        suite,
        WARMUP,
        MEASURE,
        dir,
        opts,
        use_cache,
    )
    .expect("only BadConfig can fail, and the env is clean")
}

fn files_matching(dir: &Path, needle: &str) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let Ok(rd) = std::fs::read_dir(dir) else {
        return out;
    };
    for e in rd.filter_map(Result::ok) {
        let p = e.path();
        if p.file_name().unwrap().to_string_lossy().contains(needle) {
            out.push(p.clone());
        }
        if p.is_dir() {
            out.extend(files_matching(&p, needle));
        }
    }
    out
}

/// The ISSUE's acceptance scenario: a deterministic injected panic in an
/// 8-workload suite degrades it to 7/8, every surviving result is
/// bit-for-bit identical to an uninjected run, and a re-invocation
/// resumes from the persisted partials without re-simulating.
#[test]
fn injected_panic_degrades_resumes_and_matches_uninjected() {
    let dir_fault = tmpdir("panic-fault");
    let dir_clean = tmpdir("panic-clean");
    let s = suite(8);

    let degraded = run(&s, &dir_fault, &opts_with("panic:7"), true);
    assert_eq!(degraded.marker().as_deref(), Some("DEGRADED (7/8)"));
    assert_eq!(degraded.failures.len(), 1);
    assert_eq!(degraded.failures[0].0, "w6", "7th workload (index 6) died");
    assert_eq!(degraded.failures[0].1.kind(), "workload-panic");

    // Surviving results are bit-for-bit identical to an uninjected run.
    let clean = run(&s, &dir_clean, &SuiteOptions::default(), true);
    assert!(clean.is_complete());
    for r in degraded.iter() {
        let c = clean.iter().find(|c| c.workload == r.workload).unwrap();
        assert_eq!(
            serde_json::to_string(r).unwrap(),
            serde_json::to_string(c).unwrap(),
            "fault isolation must not perturb other workloads ({})",
            r.workload
        );
    }

    // No combined cache entry for the degraded run, but partials exist.
    assert!(!files_matching(&dir_fault, "partial-").is_empty());

    // Re-invocation without the fault resumes the 7 persisted workloads
    // and only simulates the victim.
    let resumed = run(&s, &dir_fault, &SuiteOptions::default(), true);
    assert!(resumed.is_complete());
    assert_eq!(resumed.resumed, 7, "only w6 re-simulated");
    for (r, c) in resumed.iter().zip(clean.iter()) {
        assert_eq!(
            serde_json::to_string(r).unwrap(),
            serde_json::to_string(c).unwrap(),
            "resumed suite equals a clean run ({})",
            r.workload
        );
    }
    // Completion promotes partials into the combined entry.
    assert!(
        files_matching(&dir_fault, "partial-").is_empty(),
        "partial dir cleared after completion"
    );

    // And a further invocation is a pure cache hit.
    let hit = run(&s, &dir_fault, &SuiteOptions::default(), true);
    assert!(hit.is_complete());
    assert_eq!(hit.resumed, 0);
    let _ = std::fs::remove_dir_all(&dir_fault);
    let _ = std::fs::remove_dir_all(&dir_clean);
}

/// An injected hang is terminated by the watchdog with a structured
/// `SimError::Hang` whose snapshot names the stuck fetch PC.
#[test]
fn injected_hang_reports_structured_snapshot() {
    let dir = tmpdir("hang");
    let s = suite(2);
    let opts = SuiteOptions {
        max_attempts: 1,
        fault: Some(Arc::new(FaultPlan::parse("hang:2").unwrap())),
        watchdog: Some(Some(3_000)),
        ..Default::default()
    };
    let out = run(&s, &dir, &opts, false);
    assert_eq!(out.marker().as_deref(), Some("DEGRADED (1/2)"));
    let (name, err) = &out.failures[0];
    assert_eq!(name, "w1");
    assert_eq!(err.kind(), "hang");
    let snap = err.snapshot().expect("hang carries a snapshot");
    assert!(snap.cycle >= 3_000, "watchdog window elapsed");
    // The rendering names where fetch is stuck.
    let text = err.to_string();
    assert!(text.contains("agen_pc 0x"), "{text}");
    assert!(text.contains("no retirement for 3000 cycles"), "{text}");
    let _ = std::fs::remove_dir_all(&dir);
}

/// An injected accounting skew surfaces as `SimError::InvariantViolation`
/// (the release-mode downgrade of the end-of-run assert) and does not
/// take the suite down.
#[test]
fn injected_invariant_violation_is_structured() {
    let dir = tmpdir("invariant");
    let s = suite(2);
    let opts = SuiteOptions {
        max_attempts: 3,
        fault: Some(Arc::new(FaultPlan::parse("invariant:1").unwrap())),
        ..Default::default()
    };
    let out = run(&s, &dir, &opts, false);
    assert_eq!(out.marker().as_deref(), Some("DEGRADED (1/2)"));
    let (name, err) = &out.failures[0];
    assert_eq!(name, "w0");
    assert_eq!(err.kind(), "invariant-violation");
    assert!(!err.is_retryable(), "invariant failures are deterministic");
    assert!(err.to_string().contains("accounting"), "{err}");
    assert!(err.snapshot().is_some(), "violation carries machine state");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Cache-corruption matrix: truncated JSON, wrong-suite-length payloads
/// and stale model versions are all quarantined and regenerated.
#[test]
fn corrupt_cache_entries_quarantine_and_regenerate() {
    let dir = tmpdir("corrupt");
    let s = suite(2);
    let first = run(&s, &dir, &SuiteOptions::default(), true);
    assert!(first.is_complete());
    let entry = files_matching(&dir, ".json")
        .into_iter()
        .find(|p| !p.to_string_lossy().contains("partial"))
        .expect("combined entry written");

    // A valid envelope whose payload holds too few results for the suite.
    let short_payload = serde_json::to_string(&vec![first.results()[0].clone()]).unwrap();
    let intact = read_envelope(&entry, MODEL_VERSION).unwrap();
    let corruptions: [(&str, &str, u32); 3] = [
        (
            "truncated payload",
            &intact[..intact.len() / 3],
            MODEL_VERSION,
        ),
        ("wrong suite length", &short_payload, MODEL_VERSION),
        ("stale model version", &intact, MODEL_VERSION - 1),
    ];
    for (i, (what, payload, version)) in corruptions.iter().enumerate() {
        if *what == "truncated payload" {
            // Raw truncation: header intact, payload cut mid-JSON.
            std::fs::write(&entry, payload).unwrap();
        } else {
            write_envelope(&entry, *version, payload, None).unwrap();
        }
        let again = run(&s, &dir, &SuiteOptions::default(), true);
        assert!(again.is_complete(), "regenerated after {what}");
        assert_eq!(
            files_matching(&dir, "quarantined").len(),
            i + 1,
            "one new quarantine file per corruption ({what})"
        );
        // The regenerated entry verifies again.
        assert!(
            read_envelope(&entry, MODEL_VERSION).is_ok(),
            "entry regenerated after {what}"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// A torn combined-cache write (simulated crash mid-write) is detected on
/// the next read, quarantined, and regenerated.
#[test]
fn torn_cache_write_heals_on_next_run() {
    let dir = tmpdir("torn");
    let s = suite(2);
    // A 2-workload cached run performs exactly three envelope writes:
    // two partials, then the combined entry. Tearing write 3 simulates a
    // crash mid-way through the combined write (the partials are already
    // gone by then, so the next run must regenerate from scratch).
    let opts = SuiteOptions {
        fault: Some(Arc::new(FaultPlan::parse("torn_write:3").unwrap())),
        ..Default::default()
    };
    let first = run(&s, &dir, &opts, true);
    assert!(first.is_complete(), "tearing a write does not fail the run");
    let second = run(&s, &dir, &SuiteOptions::default(), true);
    assert!(second.is_complete());
    assert!(
        !files_matching(&dir, "quarantined").is_empty(),
        "the torn entry was quarantined on read"
    );
    // Third run: everything verified, straight cache hit.
    let third = run(&s, &dir, &SuiteOptions::default(), true);
    assert!(third.is_complete());
    for (a, b) in second.iter().zip(third.iter()) {
        assert_eq!(
            serde_json::to_string(a).unwrap(),
            serde_json::to_string(b).unwrap()
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// `run_full` returns `Err(SimError::Hang)` (rather than panicking) when
/// the pipeline genuinely stops retiring — driven end-to-end through a
/// simulator whose retirement is wedged by the injection hook.
#[test]
fn watchdog_terminates_wedged_pipeline_with_hang_error() {
    let spec = WorkloadSpec::tiny("wedge", 7);
    let prog = spec.build();
    let mut sim = ucp_core::Simulator::new(&prog, spec.seed, &SimConfig::baseline());
    sim.set_watchdog(Some(1_500));
    sim.inject_hang();
    let err = sim.run_full(WARMUP, MEASURE).expect_err("must hang");
    assert_eq!(err.kind(), "hang");
    let snap = err.snapshot().unwrap();
    assert_eq!(snap.committed, 0);
    assert_eq!(snap.last_retired_pc, None, "nothing ever retired");
    assert!(err.to_string().contains("last_retired_pc <none>"), "{err}");
}
