//! Criterion microbenchmarks for the core components: predictor lookup
//! rates, oracle throughput, µ-op cache operations, and end-to-end
//! simulator speed.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use sim_isa::Addr;
use ucp_bpred::{SclPreset, TageScL};
use ucp_core::{SimConfig, Simulator};
use ucp_frontend::{EntryEnd, UopCache, UopCacheConfig, UopEntrySpec};
use ucp_workloads::{Oracle, WorkloadSpec};

fn bench_tage(c: &mut Criterion) {
    let mut g = c.benchmark_group("tage_sc_l");
    let bp = TageScL::new(SclPreset::Main64K);
    let mut hist = bp.new_history();
    for i in 0..1000u32 {
        hist.push(i % 3 == 0);
    }
    g.throughput(Throughput::Elements(1));
    g.bench_function("predict", |b| {
        let mut pc = 0x1000u64;
        b.iter(|| {
            pc = pc.wrapping_add(4) & 0xffff | 0x1000;
            std::hint::black_box(bp.predict(&hist, Addr::new(pc)))
        })
    });
    g.bench_function("predict_update_push", |b| {
        let mut bp = TageScL::new(SclPreset::Main64K);
        let mut hist = bp.new_history();
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let pc = Addr::new(0x1000 + (i % 512) * 4);
            let p = bp.predict(&hist, pc);
            let outcome = (i * 2654435761) % 5 < 2;
            bp.update(pc, &p, outcome);
            hist.push(outcome);
        })
    });
    g.finish();
}

fn bench_oracle(c: &mut Criterion) {
    let mut g = c.benchmark_group("oracle");
    let spec = WorkloadSpec::tiny("bench", 7);
    let prog = spec.build();
    g.throughput(Throughput::Elements(1));
    g.bench_function("next_inst", |b| {
        let mut o = Oracle::new(&prog, spec.seed);
        b.iter(|| std::hint::black_box(o.next_inst()))
    });
    g.finish();
}

fn bench_uop_cache(c: &mut Criterion) {
    let mut g = c.benchmark_group("uop_cache");
    let mut uc = UopCache::new(UopCacheConfig::kops_4());
    for i in 0..512u64 {
        uc.insert(UopEntrySpec {
            start: Addr::new(0x10000 + i * 32),
            num_uops: 8,
            end: EntryEnd::WindowBoundary,
            prefetched: false,
            trigger: 0,
        });
    }
    g.throughput(Throughput::Elements(1));
    g.bench_function("lookup", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            std::hint::black_box(uc.lookup(Addr::new(0x10000 + (i % 1024) * 32)))
        })
    });
    g.finish();
}

fn bench_simulator(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulator");
    g.sample_size(10);
    let spec = WorkloadSpec::tiny("bench", 3);
    for (name, cfg) in [
        ("baseline_50k_inst", SimConfig::baseline()),
        ("ucp_50k_inst", SimConfig::ucp()),
    ] {
        g.throughput(Throughput::Elements(50_000));
        g.bench_function(name, |b| {
            b.iter(|| std::hint::black_box(Simulator::run_spec(&spec, &cfg, 5_000, 50_000)))
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_tage,
    bench_oracle,
    bench_uop_cache,
    bench_simulator
);
criterion_main!(benches);
