//! `cargo bench` entry that regenerates reduced (quick-profile) versions of
//! every table and figure. Full-scale runs: the `fig*` binaries with
//! `UCP_FIG_PROFILE=std|full`.

fn main() {
    // Respect an explicit profile; default to quick for bench runs.
    if std::env::var("UCP_FIG_PROFILE").is_err() {
        std::env::set_var("UCP_FIG_PROFILE", "quick");
    }
    let profile = ucp_bench::Profile::from_env();
    print!("{}", ucp_bench::figs::all(profile));
}
