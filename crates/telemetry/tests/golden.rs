//! Golden-file test for the Chrome/Perfetto exporter: the rendered
//! document for a fixed event stream must match `tests/golden/` exactly,
//! so any format drift (key order, timestamps, metadata records) is a
//! deliberate, reviewed change.
//!
//! To regenerate after an intentional format change:
//! `UCP_UPDATE_GOLDEN=1 cargo test -p ucp-telemetry --test golden`

use ucp_telemetry::{to_chrome_trace, to_jsonl, Category, TraceEvent};

fn fixed_events() -> Vec<TraceEvent> {
    vec![
        TraceEvent {
            cycle: 100,
            category: Category::Ucp,
            name: "walk_start",
            payload: "trigger=0x40a0 h2p=1".into(),
        },
        TraceEvent {
            cycle: 103,
            category: Category::Ucp,
            name: "line_prefetch",
            payload: "line=0x40c0".into(),
        },
        TraceEvent {
            cycle: 117,
            category: Category::Mem,
            name: "mshr_full",
            payload: "level=l1i".into(),
        },
        TraceEvent {
            cycle: 150,
            category: Category::Pipeline,
            name: "flush",
            payload: "cause=cond_mispredict".into(),
        },
    ]
}

fn check_golden(name: &str, rendered: &str) {
    let path = format!("{}/tests/golden/{name}", env!("CARGO_MANIFEST_DIR"));
    if std::env::var("UCP_UPDATE_GOLDEN").is_ok() {
        std::fs::write(&path, rendered).expect("write golden file");
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden file {path}: {e}"));
    assert_eq!(rendered, expected, "{name} drifted from its golden copy");
}

#[test]
fn chrome_trace_matches_golden() {
    check_golden("perfetto.json", &to_chrome_trace(&fixed_events()));
}

#[test]
fn jsonl_matches_golden() {
    check_golden("trace.jsonl", &to_jsonl(&fixed_events()));
}

#[test]
fn golden_chrome_trace_is_perfetto_loadable_shape() {
    // Independent of the byte-exact check: the document must parse and
    // carry the invariants Perfetto relies on (top-level traceEvents
    // array; every record has ph/pid/tid; instant events have ts).
    let doc = serde_json::parse_value(&to_chrome_trace(&fixed_events())).unwrap();
    let events = serde::value_get(&doc, "traceEvents").expect("traceEvents key");
    let serde::Value::Seq(items) = events else {
        panic!("traceEvents must be an array")
    };
    assert!(!items.is_empty());
    for item in items {
        for key in ["ph", "pid", "tid", "name"] {
            assert!(
                serde::value_get(item, key).is_some(),
                "record missing {key}"
            );
        }
        if serde::value_get(item, "ph") == Some(&serde::Value::Str("i".into())) {
            assert!(matches!(
                serde::value_get(item, "ts"),
                Some(serde::Value::U64(_))
            ));
        }
    }
}
