//! Top-down frontend cycle accounting.
//!
//! Every simulated cycle of fetch/decode bandwidth is charged to exactly
//! one [`CycleCause`] — either the frontend delivered µ-ops (and we record
//! which path supplied them) or it did not (and we record the single
//! highest-precedence reason why). The invariant that makes the numbers
//! trustworthy is structural: the charger ([`CycleAccounting::charge`])
//! bumps one category counter *and* the total counter per call, and the
//! simulator calls it exactly once per cycle, so for any measurement
//! window
//!
//! ```text
//! Σ category cycles == total cycles == SimStats::cycles
//! ```
//!
//! [`AccountingBreakdown::verify`] checks the first equality on any
//! snapshot; the experiment runner checks the second per run.
//!
//! # Precedence
//!
//! When several stall causes coincide in one cycle, the charged category
//! is the first match in this order (delivery always wins — a cycle that
//! moved µ-ops is a delivery cycle no matter what else was pending):
//!
//! 1. [`CycleCause::DeliverUop`] — ≥1 µ-op entered the µ-op queue from
//!    the µ-op cache path.
//! 2. [`CycleCause::DeliverDecode`] — else, ≥1 µ-op from the L1I+decode
//!    path.
//! 3. [`CycleCause::ModeSwitch`] — else, delivery was inside a
//!    stream↔build mode-switch penalty window.
//! 4. [`CycleCause::BackendFull`] — else, delivery was blocked because
//!    the µ-op queue had no room (backpressure from dispatch/backend).
//! 5. [`CycleCause::L1iMiss`] — else, the head fetch block's L1I data was
//!    not ready (miss in flight, or the L1I MSHR rejected the fetch).
//! 6. [`CycleCause::Drained`] / [`CycleCause::Resteer`] — else, the FTQ
//!    was empty because the frontend was squashed (flush redirect, or a
//!    no-target indirect draining until resolution) or stalled on a
//!    BTB-miss re-steer bubble.
//! 7. [`CycleCause::FtqEmpty`] — else, the FTQ was empty with address
//!    generation live (the walker simply has not caught up).
//! 8. [`CycleCause::Drained`] — anything left (conservative catch-all).

use crate::registry::{Counter, Registry, RegistrySnapshot};
use serde::{Deserialize, Serialize};

/// The category a simulated frontend cycle is charged to. See the module
/// docs for definitions and the precedence order.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum CycleCause {
    /// Delivered µ-ops from the µ-op cache (stream path, or a build-mode
    /// parallel probe hit).
    DeliverUop,
    /// Delivered µ-ops through the L1I + decoders.
    DeliverDecode,
    /// Stalled inside a stream↔build mode-switch penalty window.
    ModeSwitch,
    /// Delivery blocked by a full µ-op queue (backend backpressure).
    BackendFull,
    /// Head fetch block waiting on the L1I (miss in flight or MSHR full).
    L1iMiss,
    /// FTQ empty behind a BTB-miss re-steer bubble.
    Resteer,
    /// FTQ empty with a live walker that has not caught up.
    FtqEmpty,
    /// Frontend drained: flush redirect penalty, a no-target branch
    /// awaiting resolution, or any residual unattributed cycle.
    Drained,
}

impl CycleCause {
    /// Every category, in display order.
    pub const ALL: [CycleCause; 8] = [
        CycleCause::DeliverUop,
        CycleCause::DeliverDecode,
        CycleCause::ModeSwitch,
        CycleCause::BackendFull,
        CycleCause::L1iMiss,
        CycleCause::Resteer,
        CycleCause::FtqEmpty,
        CycleCause::Drained,
    ];

    /// Number of categories.
    pub const COUNT: usize = Self::ALL.len();

    /// Stable snake_case name (the counter-path suffix).
    pub fn name(self) -> &'static str {
        match self {
            CycleCause::DeliverUop => "deliver_uop",
            CycleCause::DeliverDecode => "deliver_decode",
            CycleCause::ModeSwitch => "mode_switch",
            CycleCause::BackendFull => "backend_full",
            CycleCause::L1iMiss => "l1i_miss",
            CycleCause::Resteer => "resteer",
            CycleCause::FtqEmpty => "ftq_empty",
            CycleCause::Drained => "drained",
        }
    }

    /// Registry path of this category's cycle counter.
    pub fn counter_path(self) -> String {
        format!("account.{}", self.name())
    }
}

/// Registry path of the total-cycles counter the charger maintains.
pub const TOTAL_CYCLES_PATH: &str = "account.total_cycles";

/// The per-cycle charger. Holds one counter handle per category plus the
/// total, so a charge is two relaxed atomic adds — cheap enough to leave
/// on for every run. Detached by default (increments tick into
/// unobservable cells); bind with [`CycleAccounting::bound_to`].
#[derive(Clone, Debug, Default)]
pub struct CycleAccounting {
    counters: [Counter; CycleCause::COUNT],
    total: Counter,
}

impl CycleAccounting {
    /// A charger whose counters live in `registry` under `account.*`.
    pub fn bound_to(registry: &Registry) -> Self {
        CycleAccounting {
            counters: std::array::from_fn(|i| registry.counter(&CycleCause::ALL[i].counter_path())),
            total: registry.counter(TOTAL_CYCLES_PATH),
        }
    }

    /// Charges one cycle to `cause` (and to the total).
    #[inline]
    pub fn charge(&self, cause: CycleCause) {
        self.counters[cause as usize].inc();
        self.total.inc();
    }

    /// Cycles charged to `cause` so far.
    pub fn charged(&self, cause: CycleCause) -> u64 {
        self.counters[cause as usize].get()
    }

    /// Total cycles charged so far.
    pub fn total(&self) -> u64 {
        self.total.get()
    }
}

/// A decoded per-category cycle breakdown, extracted from any
/// [`RegistrySnapshot`] (a whole run, a measurement-window delta, an
/// interval delta, or a suite-wide merge — they all carry `account.*`).
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AccountingBreakdown {
    /// Cycles per category, indexed like [`CycleCause::ALL`].
    pub cycles: [u64; CycleCause::COUNT],
    /// The independently-maintained total-cycles counter.
    pub total: u64,
}

impl AccountingBreakdown {
    /// Reads the `account.*` counters out of `snap`. Missing counters
    /// read as zero, so snapshots from runs without accounting decode to
    /// an empty breakdown.
    pub fn from_snapshot(snap: &RegistrySnapshot) -> Self {
        Self::from_counters(&snap.counters)
    }

    /// Like [`AccountingBreakdown::from_snapshot`], but from a bare
    /// counter map (the form interval records carry).
    pub fn from_counters(counters: &std::collections::BTreeMap<String, u64>) -> Self {
        let cycles = std::array::from_fn(|i| {
            counters
                .get(&CycleCause::ALL[i].counter_path())
                .copied()
                .unwrap_or(0)
        });
        AccountingBreakdown {
            cycles,
            total: counters.get(TOTAL_CYCLES_PATH).copied().unwrap_or(0),
        }
    }

    /// Cycles charged to `cause`.
    pub fn get(&self, cause: CycleCause) -> u64 {
        self.cycles[cause as usize]
    }

    /// Sum of the per-category cycles.
    pub fn sum(&self) -> u64 {
        self.cycles.iter().sum()
    }

    /// True when nothing was charged (accounting absent or zero-length
    /// window).
    pub fn is_empty(&self) -> bool {
        self.total == 0 && self.sum() == 0
    }

    /// Share of total cycles charged to `cause`, in percent.
    pub fn share_pct(&self, cause: CycleCause) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            100.0 * self.get(cause) as f64 / self.total as f64
        }
    }

    /// Checks the accounting invariant: per-category cycles sum to the
    /// total. An empty breakdown verifies (no accounting ran).
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the mismatch.
    pub fn verify(&self) -> Result<(), String> {
        let sum = self.sum();
        if sum == self.total {
            Ok(())
        } else {
            Err(format!(
                "cycle-accounting invariant violated: categories sum to {sum} \
                 but total_cycles is {} (diff {})",
                self.total,
                sum.abs_diff(self.total)
            ))
        }
    }

    /// Categories with their cycle counts, largest first (stable for
    /// ties, following [`CycleCause::ALL`] order).
    pub fn sorted(&self) -> Vec<(CycleCause, u64)> {
        let mut rows: Vec<(CycleCause, u64)> =
            CycleCause::ALL.iter().map(|&c| (c, self.get(c))).collect();
        rows.sort_by_key(|&(_, cycles)| std::cmp::Reverse(cycles));
        rows
    }

    /// Renders a sorted plain-text breakdown table (`category  cycles
    /// share%` rows plus a total line).
    pub fn table(&self) -> String {
        let mut out = String::new();
        for (cause, cycles) in self.sorted() {
            out.push_str(&format!(
                "  {:<16} {:>14} {:>7.2}%\n",
                cause.name(),
                cycles,
                self.share_pct(cause)
            ));
        }
        out.push_str(&format!("  {:<16} {:>14} 100.00%\n", "total", self.total));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charge_maintains_invariant() {
        let reg = Registry::default();
        let acc = CycleAccounting::bound_to(&reg);
        acc.charge(CycleCause::DeliverUop);
        acc.charge(CycleCause::DeliverUop);
        acc.charge(CycleCause::L1iMiss);
        acc.charge(CycleCause::Drained);
        let b = AccountingBreakdown::from_snapshot(&reg.snapshot());
        assert_eq!(b.total, 4);
        assert_eq!(b.get(CycleCause::DeliverUop), 2);
        assert_eq!(b.get(CycleCause::L1iMiss), 1);
        assert_eq!(b.sum(), 4);
        b.verify().expect("invariant holds");
        assert!((b.share_pct(CycleCause::DeliverUop) - 50.0).abs() < 1e-12);
    }

    #[test]
    fn verify_catches_tampering() {
        let reg = Registry::default();
        let acc = CycleAccounting::bound_to(&reg);
        acc.charge(CycleCause::FtqEmpty);
        // A stray write to the total outside charge() breaks the sum.
        reg.counter(TOTAL_CYCLES_PATH).inc();
        let b = AccountingBreakdown::from_snapshot(&reg.snapshot());
        let err = b.verify().unwrap_err();
        assert!(err.contains("invariant violated"), "{err}");
    }

    #[test]
    fn empty_snapshot_decodes_and_verifies() {
        let b = AccountingBreakdown::from_snapshot(&RegistrySnapshot::default());
        assert!(b.is_empty());
        b.verify().expect("empty breakdown is consistent");
        assert_eq!(b.share_pct(CycleCause::Drained), 0.0);
    }

    #[test]
    fn breakdown_survives_window_delta() {
        let reg = Registry::default();
        let acc = CycleAccounting::bound_to(&reg);
        acc.charge(CycleCause::DeliverDecode);
        let warmup_end = reg.snapshot();
        acc.charge(CycleCause::DeliverUop);
        acc.charge(CycleCause::ModeSwitch);
        let window = reg.snapshot().delta_since(&warmup_end);
        let b = AccountingBreakdown::from_snapshot(&window);
        assert_eq!(b.total, 2);
        assert_eq!(b.get(CycleCause::DeliverDecode), 0);
        b.verify().expect("delta windows keep the invariant");
    }

    #[test]
    fn table_sorts_by_cycles() {
        let reg = Registry::default();
        let acc = CycleAccounting::bound_to(&reg);
        for _ in 0..3 {
            acc.charge(CycleCause::L1iMiss);
        }
        acc.charge(CycleCause::DeliverUop);
        let b = AccountingBreakdown::from_snapshot(&reg.snapshot());
        let t = b.table();
        let l1i = t.find("l1i_miss").unwrap();
        let uop = t.find("deliver_uop").unwrap();
        assert!(l1i < uop, "largest category first:\n{t}");
        assert!(t.contains("total"));
    }

    #[test]
    fn paths_are_stable() {
        assert_eq!(CycleCause::DeliverUop.counter_path(), "account.deliver_uop");
        assert_eq!(TOTAL_CYCLES_PATH, "account.total_cycles");
        assert_eq!(CycleCause::ALL.len(), CycleCause::COUNT);
    }
}
