//! Trace exporters: Chrome trace-event JSON (loads in Perfetto and
//! `chrome://tracing`) and line-delimited JSON for ad-hoc tooling.

use crate::accounting::CycleCause;
use crate::interval::IntervalRecord;
use crate::registry::RegistrySnapshot;
use crate::tracer::{Category, TraceEvent};
use serde::{Serialize, Value};

/// Renders events as a Chrome trace-event JSON document.
///
/// Every event becomes an instant event (`ph: "i"`) with the simulated
/// cycle as its microsecond timestamp, one pseudo-thread per category so
/// Perfetto draws each subsystem on its own row, and the payload under
/// `args.detail`. Thread-name metadata events label the rows.
pub fn to_chrome_trace(events: &[TraceEvent]) -> String {
    to_chrome_trace_with_counters(events, &[])
}

/// Like [`to_chrome_trace`], but additionally renders interval records as
/// Chrome counter tracks (`ph: "C"`): `ipc`, `uopc_hit_pct`, `l1i_mpki`,
/// and a stacked `frontend_cycles` track with one series per
/// [`CycleCause`]. Perfetto plots these alongside the instant events, so
/// stall phases line up with the discrete events that caused them.
pub fn to_chrome_trace_with_counters(
    events: &[TraceEvent],
    intervals: &[IntervalRecord],
) -> String {
    let mut entries: Vec<Value> = Vec::new();
    for (tid, cat) in Category::ALL.iter().enumerate() {
        entries.push(Value::Map(vec![
            ("name".into(), "thread_name".to_value()),
            ("ph".into(), "M".to_value()),
            ("pid".into(), 0u64.to_value()),
            ("tid".into(), (tid as u64).to_value()),
            (
                "args".into(),
                Value::Map(vec![("name".into(), cat.name().to_value())]),
            ),
        ]));
    }
    for e in events {
        let tid = Category::ALL
            .iter()
            .position(|c| *c == e.category)
            .unwrap_or(0) as u64;
        entries.push(Value::Map(vec![
            ("name".into(), e.name.to_value()),
            ("cat".into(), e.category.name().to_value()),
            ("ph".into(), "i".to_value()),
            ("ts".into(), e.cycle.to_value()),
            ("pid".into(), 0u64.to_value()),
            ("tid".into(), tid.to_value()),
            ("s".into(), "t".to_value()),
            (
                "args".into(),
                Value::Map(vec![("detail".into(), e.payload.to_value())]),
            ),
        ]));
    }
    for r in intervals {
        // Counter events carry their value set in args; Chrome/Perfetto
        // render multi-key args as a stacked counter track.
        let ts = r.end_cycle;
        let scalar = |name: &str, value: f64| {
            Value::Map(vec![
                ("name".into(), name.to_value()),
                ("ph".into(), "C".to_value()),
                ("ts".into(), ts.to_value()),
                ("pid".into(), 0u64.to_value()),
                (
                    "args".into(),
                    Value::Map(vec![("value".into(), value.to_value())]),
                ),
            ])
        };
        entries.push(scalar("ipc", r.ipc()));
        entries.push(scalar("uopc_hit_pct", r.uopc_hit_pct()));
        entries.push(scalar("l1i_mpki", r.l1i_mpki()));
        let b = r.breakdown();
        entries.push(Value::Map(vec![
            ("name".into(), "frontend_cycles".to_value()),
            ("ph".into(), "C".to_value()),
            ("ts".into(), ts.to_value()),
            ("pid".into(), 0u64.to_value()),
            (
                "args".into(),
                Value::Map(
                    CycleCause::ALL
                        .iter()
                        .map(|&c| (c.name().to_string(), b.get(c).to_value()))
                        .collect(),
                ),
            ),
        ]));
    }
    let doc = Value::Map(vec![
        ("traceEvents".into(), Value::Seq(entries)),
        ("displayTimeUnit".into(), "ms".to_value()),
        (
            "otherData".into(),
            Value::Map(vec![("clock".into(), "simulated cycles as µs".to_value())]),
        ),
    ]);
    serde_json::to_string_pretty(&doc).expect("value trees always serialize")
}

/// Renders events as JSONL: one `{"cycle","cat","name","detail"}` object
/// per line, oldest first.
pub fn to_jsonl(events: &[TraceEvent]) -> String {
    let mut out = String::new();
    for e in events {
        let line = Value::Map(vec![
            ("cycle".into(), e.cycle.to_value()),
            ("cat".into(), e.category.name().to_value()),
            ("name".into(), e.name.to_value()),
            ("detail".into(), e.payload.to_value()),
        ]);
        out.push_str(&serde_json::to_string(&line).expect("value trees always serialize"));
        out.push('\n');
    }
    out
}

/// Renders a registry snapshot as a compact human-readable table,
/// counters then histogram means — the form suite reports embed.
pub fn snapshot_table(snap: &RegistrySnapshot) -> String {
    let mut out = String::new();
    for (path, v) in &snap.counters {
        if *v > 0 {
            out.push_str(&format!("{path:<44} {v:>14}\n"));
        }
    }
    for (path, h) in &snap.histograms {
        if h.count > 0 {
            out.push_str(&format!(
                "{path:<44} {:>14} obs, mean {:.2}\n",
                h.count,
                h.mean()
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<TraceEvent> {
        vec![
            TraceEvent {
                cycle: 10,
                category: Category::Ucp,
                name: "walk_start",
                payload: "trigger=0x40a0".into(),
            },
            TraceEvent {
                cycle: 12,
                category: Category::Mem,
                name: "mshr_full",
                payload: String::new(),
            },
        ]
    }

    #[test]
    fn chrome_trace_is_valid_json_with_all_events() {
        let text = to_chrome_trace(&sample_events());
        let doc = serde_json::parse_value(&text).unwrap();
        let events = serde::value_get(&doc, "traceEvents").unwrap();
        let Value::Seq(items) = events else {
            panic!("traceEvents must be an array")
        };
        // 6 thread-name metadata records + 2 instant events.
        assert_eq!(items.len(), 8);
        let last = items.last().unwrap();
        assert_eq!(serde::value_get(last, "ph"), Some(&Value::Str("i".into())));
        assert_eq!(serde::value_get(last, "ts"), Some(&Value::U64(12)));
    }

    #[test]
    fn counter_tracks_ride_alongside_events() {
        let mut counters = std::collections::BTreeMap::new();
        counters.insert("pipeline.committed".to_string(), 300u64);
        counters.insert(CycleCause::DeliverUop.counter_path(), 60u64);
        counters.insert(CycleCause::L1iMiss.counter_path(), 40u64);
        counters.insert(crate::accounting::TOTAL_CYCLES_PATH.to_string(), 100u64);
        let record = IntervalRecord {
            index: 0,
            start_cycle: 0,
            end_cycle: 100,
            counters,
        };
        let text = to_chrome_trace_with_counters(&sample_events(), &[record]);
        let doc = serde_json::parse_value(&text).unwrap();
        let Some(Value::Seq(items)) = serde::value_get(&doc, "traceEvents") else {
            panic!("traceEvents must be an array")
        };
        // 6 thread names + 2 instant events + 4 counter events.
        assert_eq!(items.len(), 12);
        let counter_events: Vec<&Value> = items
            .iter()
            .filter(|v| serde::value_get(v, "ph") == Some(&Value::Str("C".into())))
            .collect();
        assert_eq!(counter_events.len(), 4);
        let ipc = counter_events
            .iter()
            .find(|v| serde::value_get(v, "name") == Some(&Value::Str("ipc".into())))
            .expect("ipc track present");
        // The JSON parser may round-trip whole floats as integers; check
        // the numeric value rather than the variant.
        let args = serde::value_get(ipc, "args").unwrap();
        let ipc_value = match serde::value_get(args, "value") {
            Some(Value::F64(x)) => *x,
            Some(Value::U64(n)) => *n as f64,
            other => panic!("ipc value missing: {other:?}"),
        };
        assert!((ipc_value - 3.0).abs() < 1e-12);
        let stacked = counter_events
            .iter()
            .find(|v| serde::value_get(v, "name") == Some(&Value::Str("frontend_cycles".into())))
            .expect("stacked breakdown track present");
        let args = serde::value_get(stacked, "args").unwrap();
        assert_eq!(serde::value_get(args, "deliver_uop"), Some(&Value::U64(60)));
        assert_eq!(serde::value_get(args, "l1i_miss"), Some(&Value::U64(40)));
    }

    #[test]
    fn jsonl_emits_one_line_per_event() {
        let text = to_jsonl(&sample_events());
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        let first = serde_json::parse_value(lines[0]).unwrap();
        assert_eq!(
            serde::value_get(&first, "cat"),
            Some(&Value::Str("ucp".into()))
        );
        assert_eq!(serde::value_get(&first, "cycle"), Some(&Value::U64(10)));
    }

    #[test]
    fn snapshot_table_lists_active_instruments_only() {
        let reg = crate::Registry::default();
        reg.counter("ucp.walks_started").add(2);
        reg.counter("ucp.never_touched");
        reg.histogram("mem.occ").observe(4);
        let table = snapshot_table(&reg.snapshot());
        assert!(table.contains("ucp.walks_started"));
        assert!(table.contains("mem.occ"));
        assert!(!table.contains("never_touched"));
    }
}
