//! Trace exporters: Chrome trace-event JSON (loads in Perfetto and
//! `chrome://tracing`) and line-delimited JSON for ad-hoc tooling.

use crate::registry::RegistrySnapshot;
use crate::tracer::{Category, TraceEvent};
use serde::{Serialize, Value};

/// Renders events as a Chrome trace-event JSON document.
///
/// Every event becomes an instant event (`ph: "i"`) with the simulated
/// cycle as its microsecond timestamp, one pseudo-thread per category so
/// Perfetto draws each subsystem on its own row, and the payload under
/// `args.detail`. Thread-name metadata events label the rows.
pub fn to_chrome_trace(events: &[TraceEvent]) -> String {
    let mut entries: Vec<Value> = Vec::new();
    for (tid, cat) in Category::ALL.iter().enumerate() {
        entries.push(Value::Map(vec![
            ("name".into(), "thread_name".to_value()),
            ("ph".into(), "M".to_value()),
            ("pid".into(), 0u64.to_value()),
            ("tid".into(), (tid as u64).to_value()),
            (
                "args".into(),
                Value::Map(vec![("name".into(), cat.name().to_value())]),
            ),
        ]));
    }
    for e in events {
        let tid = Category::ALL
            .iter()
            .position(|c| *c == e.category)
            .unwrap_or(0) as u64;
        entries.push(Value::Map(vec![
            ("name".into(), e.name.to_value()),
            ("cat".into(), e.category.name().to_value()),
            ("ph".into(), "i".to_value()),
            ("ts".into(), e.cycle.to_value()),
            ("pid".into(), 0u64.to_value()),
            ("tid".into(), tid.to_value()),
            ("s".into(), "t".to_value()),
            (
                "args".into(),
                Value::Map(vec![("detail".into(), e.payload.to_value())]),
            ),
        ]));
    }
    let doc = Value::Map(vec![
        ("traceEvents".into(), Value::Seq(entries)),
        ("displayTimeUnit".into(), "ms".to_value()),
        (
            "otherData".into(),
            Value::Map(vec![("clock".into(), "simulated cycles as µs".to_value())]),
        ),
    ]);
    serde_json::to_string_pretty(&doc).expect("value trees always serialize")
}

/// Renders events as JSONL: one `{"cycle","cat","name","detail"}` object
/// per line, oldest first.
pub fn to_jsonl(events: &[TraceEvent]) -> String {
    let mut out = String::new();
    for e in events {
        let line = Value::Map(vec![
            ("cycle".into(), e.cycle.to_value()),
            ("cat".into(), e.category.name().to_value()),
            ("name".into(), e.name.to_value()),
            ("detail".into(), e.payload.to_value()),
        ]);
        out.push_str(&serde_json::to_string(&line).expect("value trees always serialize"));
        out.push('\n');
    }
    out
}

/// Renders a registry snapshot as a compact human-readable table,
/// counters then histogram means — the form suite reports embed.
pub fn snapshot_table(snap: &RegistrySnapshot) -> String {
    let mut out = String::new();
    for (path, v) in &snap.counters {
        if *v > 0 {
            out.push_str(&format!("{path:<44} {v:>14}\n"));
        }
    }
    for (path, h) in &snap.histograms {
        if h.count > 0 {
            out.push_str(&format!(
                "{path:<44} {:>14} obs, mean {:.2}\n",
                h.count,
                h.mean()
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<TraceEvent> {
        vec![
            TraceEvent {
                cycle: 10,
                category: Category::Ucp,
                name: "walk_start",
                payload: "trigger=0x40a0".into(),
            },
            TraceEvent {
                cycle: 12,
                category: Category::Mem,
                name: "mshr_full",
                payload: String::new(),
            },
        ]
    }

    #[test]
    fn chrome_trace_is_valid_json_with_all_events() {
        let text = to_chrome_trace(&sample_events());
        let doc = serde_json::parse_value(&text).unwrap();
        let events = serde::value_get(&doc, "traceEvents").unwrap();
        let Value::Seq(items) = events else {
            panic!("traceEvents must be an array")
        };
        // 6 thread-name metadata records + 2 instant events.
        assert_eq!(items.len(), 8);
        let last = items.last().unwrap();
        assert_eq!(serde::value_get(last, "ph"), Some(&Value::Str("i".into())));
        assert_eq!(serde::value_get(last, "ts"), Some(&Value::U64(12)));
    }

    #[test]
    fn jsonl_emits_one_line_per_event() {
        let text = to_jsonl(&sample_events());
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        let first = serde_json::parse_value(lines[0]).unwrap();
        assert_eq!(
            serde::value_get(&first, "cat"),
            Some(&Value::Str("ucp".into()))
        );
        assert_eq!(serde::value_get(&first, "cycle"), Some(&Value::U64(10)));
    }

    #[test]
    fn snapshot_table_lists_active_instruments_only() {
        let reg = crate::Registry::default();
        reg.counter("ucp.walks_started").add(2);
        reg.counter("ucp.never_touched");
        reg.histogram("mem.occ").observe(4);
        let table = snapshot_table(&reg.snapshot());
        assert!(table.contains("ucp.walks_started"));
        assert!(table.contains("mem.occ"));
        assert!(!table.contains("never_touched"));
    }
}
