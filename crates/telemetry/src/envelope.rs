//! On-disk integrity envelopes: checksummed headers, atomic writes, and
//! quarantine for corrupt entries.
//!
//! This lived in `ucp-bench::cache` when only the result cache needed it
//! (PR 3); it moved here so the checkpoint writer in `ucp-core::snapshot`
//! can reuse the exact same machinery — `ucp-bench` re-exports it from
//! its old path. Entries are written as an *envelope*:
//!
//! ```text
//! {"schema":1,"model_version":3,"checksum":"<fnv1a hex>","len":<bytes>}\n
//! <payload bytes>
//! ```
//!
//! Readers verify the schema, the model version, the payload length and
//! the checksum before deserializing a byte of payload. Anything that
//! fails verification is [quarantined](quarantine) — renamed aside, never
//! deleted, so the evidence survives for debugging — and the caller
//! regenerates the entry.
//!
//! Writes go through [`write_atomic`]: a uniquely-named temp file in the
//! destination directory, then a rename. The temp name includes both the
//! pid and a process-wide counter, so two threads of one process writing
//! the same entry concurrently cannot collide on the temp path.
//!
//! Text payloads (JSON result caches) use [`write_envelope`] /
//! [`read_envelope`]; binary payloads (whole-simulation checkpoints) use
//! [`write_envelope_bytes`] / [`read_envelope_bytes`]. Both share one
//! header format and one verification path, and both honour the
//! `torn_write` fault site.

use crate::fault::FaultPlan;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Envelope format version. Bump only when the header/payload framing
/// itself changes (payload-invalidating model changes bump the caller's
/// own model version instead).
pub const CACHE_SCHEMA: u32 = 1;

/// FNV-1a over the payload bytes — cheap, dependency-free, and plenty to
/// catch truncation and bit rot (this is integrity, not security).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// The envelope's first line.
#[derive(Debug, serde::Serialize, serde::Deserialize)]
struct CacheHeader {
    schema: u32,
    model_version: u32,
    checksum: String,
    len: usize,
}

/// Why a cache entry could not be used.
#[derive(Debug)]
pub enum CacheReadError {
    /// No entry at this path — a plain miss, nothing to quarantine.
    Missing,
    /// The entry exists but failed integrity verification; the string
    /// says how. The caller should [`quarantine`] it and regenerate.
    Corrupt(String),
}

/// Writes `bytes` to `path` atomically: a unique temp file in the same
/// directory, then a rename. The temp name carries a process-wide
/// counter besides the pid, so concurrent writers inside one process
/// (parallel figure binaries, parallel tests) never interleave on the
/// same temp file.
pub fn write_atomic_bytes(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    static TMP_COUNTER: AtomicU64 = AtomicU64::new(0);
    let dir = path.parent().unwrap_or_else(|| Path::new("."));
    let tmp = dir.join(format!(
        ".{}.{}.{}.tmp",
        path.file_name().and_then(|n| n.to_str()).unwrap_or("cache"),
        std::process::id(),
        TMP_COUNTER.fetch_add(1, Ordering::Relaxed),
    ));
    std::fs::write(&tmp, bytes)?;
    std::fs::rename(&tmp, path).inspect_err(|_| {
        let _ = std::fs::remove_file(&tmp);
    })
}

/// Text-payload form of [`write_atomic_bytes`].
pub fn write_atomic(path: &Path, text: &str) -> std::io::Result<()> {
    write_atomic_bytes(path, text.as_bytes())
}

fn envelope_header(model_version: u32, payload: &[u8]) -> String {
    let header = CacheHeader {
        schema: CACHE_SCHEMA,
        model_version,
        checksum: format!("{:016x}", fnv1a(payload)),
        len: payload.len(),
    };
    serde_json::to_string(&header).expect("header serializes")
}

/// Writes `payload` to `path` inside an integrity envelope, atomically.
///
/// When `fault` arms the `torn_write` site, the header still describes
/// the full payload but only the first half of it reaches disk —
/// modelling a write torn by a crash — so the next read must detect the
/// damage and quarantine the entry.
pub fn write_envelope_bytes(
    path: &Path,
    model_version: u32,
    payload: &[u8],
    fault: Option<&FaultPlan>,
) -> std::io::Result<()> {
    let header = envelope_header(model_version, payload);
    let torn = fault.is_some_and(|p| p.should_fire("torn_write"));
    let written = if torn {
        &payload[..payload.len() / 2]
    } else {
        payload
    };
    let mut out = Vec::with_capacity(header.len() + 1 + written.len());
    out.extend_from_slice(header.as_bytes());
    out.push(b'\n');
    out.extend_from_slice(written);
    write_atomic_bytes(path, &out)
}

/// Text-payload form of [`write_envelope_bytes`].
pub fn write_envelope(
    path: &Path,
    model_version: u32,
    payload: &str,
    fault: Option<&FaultPlan>,
) -> std::io::Result<()> {
    write_envelope_bytes(path, model_version, payload.as_bytes(), fault)
}

fn verify_envelope(
    header: &[u8],
    payload: &[u8],
    model_version: u32,
) -> Result<(), CacheReadError> {
    let header = std::str::from_utf8(header)
        .map_err(|e| CacheReadError::Corrupt(format!("non-UTF-8 header: {e}")))?;
    let header: CacheHeader = serde_json::from_str(header)
        .map_err(|e| CacheReadError::Corrupt(format!("unparseable header (legacy entry?): {e}")))?;
    if header.schema != CACHE_SCHEMA {
        return Err(CacheReadError::Corrupt(format!(
            "schema {} != supported {CACHE_SCHEMA}",
            header.schema
        )));
    }
    if header.model_version != model_version {
        return Err(CacheReadError::Corrupt(format!(
            "stale model version {} (current {model_version})",
            header.model_version
        )));
    }
    if header.len != payload.len() {
        return Err(CacheReadError::Corrupt(format!(
            "payload is {} bytes, header promised {} (torn write?)",
            payload.len(),
            header.len
        )));
    }
    let sum = format!("{:016x}", fnv1a(payload));
    if sum != header.checksum {
        return Err(CacheReadError::Corrupt(format!(
            "checksum {sum} != header {}",
            header.checksum
        )));
    }
    Ok(())
}

/// Reads and verifies a binary-payload envelope, returning the payload.
///
/// # Errors
///
/// [`CacheReadError::Missing`] when the file does not exist;
/// [`CacheReadError::Corrupt`] for any integrity failure — unreadable
/// header, wrong schema, stale model version, length or checksum
/// mismatch (including pre-envelope legacy files).
pub fn read_envelope_bytes(path: &Path, model_version: u32) -> Result<Vec<u8>, CacheReadError> {
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Err(CacheReadError::Missing),
        Err(e) => return Err(CacheReadError::Corrupt(format!("unreadable: {e}"))),
    };
    let Some(split) = bytes.iter().position(|&b| b == b'\n') else {
        return Err(CacheReadError::Corrupt(
            "no header line (legacy or truncated entry)".into(),
        ));
    };
    let (header, payload) = (&bytes[..split], &bytes[split + 1..]);
    verify_envelope(header, payload, model_version)?;
    Ok(payload.to_vec())
}

/// Text-payload form of [`read_envelope_bytes`].
pub fn read_envelope(path: &Path, model_version: u32) -> Result<String, CacheReadError> {
    let payload = read_envelope_bytes(path, model_version)?;
    String::from_utf8(payload)
        .map_err(|e| CacheReadError::Corrupt(format!("non-UTF-8 payload: {e}")))
}

/// Moves a corrupt entry aside (never deletes it) so the slot can be
/// regenerated while the evidence survives. Returns the quarantine path,
/// or `None` when the rename itself failed (the caller still regenerates;
/// the next read will re-quarantine).
pub fn quarantine(path: &Path) -> Option<PathBuf> {
    static QUARANTINE_COUNTER: AtomicU64 = AtomicU64::new(0);
    let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("entry");
    let dest = path.with_file_name(format!(
        "{name}.quarantined.{}.{}",
        std::process::id(),
        QUARANTINE_COUNTER.fetch_add(1, Ordering::Relaxed),
    ));
    std::fs::rename(path, &dest).ok().map(|()| dest)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("ucp-cache-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn envelope_round_trips() {
        let dir = tmpdir("roundtrip");
        let p = dir.join("e.json");
        write_envelope(&p, 3, "{\"hello\":1}", None).unwrap();
        assert_eq!(read_envelope(&p, 3).unwrap(), "{\"hello\":1}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn binary_envelope_round_trips_non_utf8_payloads() {
        let dir = tmpdir("binary");
        let p = dir.join("ckpt.bin");
        // Includes a 0x0A byte and invalid UTF-8 — the binary path must
        // split on the *first* newline only and never decode the payload.
        let payload = [0xFFu8, 0x0A, 0x00, 0xC3, 0x28, 0x0A, 0x42];
        write_envelope_bytes(&p, 7, &payload, None).unwrap();
        assert_eq!(read_envelope_bytes(&p, 7).unwrap(), payload);
        let Err(CacheReadError::Corrupt(why)) = read_envelope_bytes(&p, 8) else {
            panic!("stale model version must be corrupt");
        };
        assert!(why.contains("stale model version 7"), "{why}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn envelope_rejects_missing_stale_and_corrupt() {
        let dir = tmpdir("reject");
        let p = dir.join("e.json");
        assert!(matches!(read_envelope(&p, 3), Err(CacheReadError::Missing)));

        write_envelope(&p, 2, "x", None).unwrap();
        let Err(CacheReadError::Corrupt(why)) = read_envelope(&p, 3) else {
            panic!("stale model version must be corrupt");
        };
        assert!(why.contains("stale model version 2"), "{why}");

        // Legacy pre-envelope entry: raw JSON, no header line.
        std::fs::write(&p, "[{\"workload\":\"a\"}]").unwrap();
        assert!(matches!(
            read_envelope(&p, 3),
            Err(CacheReadError::Corrupt(_))
        ));

        // Flipped payload byte: checksum catches it.
        write_envelope(&p, 3, "abcdef", None).unwrap();
        let text = std::fs::read_to_string(&p)
            .unwrap()
            .replace("abcdef", "abcdeF");
        std::fs::write(&p, text).unwrap();
        let Err(CacheReadError::Corrupt(why)) = read_envelope(&p, 3) else {
            panic!("bit flip must be corrupt");
        };
        assert!(why.contains("checksum"), "{why}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_write_is_detected_and_quarantined() {
        let dir = tmpdir("torn");
        let p = dir.join("e.json");
        let plan = FaultPlan::parse("torn_write:1:1").unwrap();
        write_envelope(&p, 3, "0123456789", Some(&plan)).unwrap();
        let Err(CacheReadError::Corrupt(why)) = read_envelope(&p, 3) else {
            panic!("torn write must be corrupt");
        };
        assert!(why.contains("torn write"), "{why}");
        let q = quarantine(&p).expect("quarantine renames");
        assert!(q.exists());
        assert!(!p.exists());
        assert!(matches!(read_envelope(&p, 3), Err(CacheReadError::Missing)));
        // The budget was 1: the rewrite goes through intact.
        write_envelope(&p, 3, "0123456789", Some(&plan)).unwrap();
        assert_eq!(read_envelope(&p, 3).unwrap(), "0123456789");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn write_atomic_is_collision_free_across_threads() {
        let dir = tmpdir("atomic");
        let p = dir.join("e.json");
        std::thread::scope(|s| {
            for i in 0..8 {
                let p = p.clone();
                s.spawn(move || {
                    for j in 0..50 {
                        write_atomic(&p, &format!("writer {i} iteration {j}")).unwrap();
                    }
                });
            }
        });
        // The final file is some writer's complete text, and no temp
        // files survive (a pid-only temp name loses files or races here).
        let text = std::fs::read_to_string(&p).unwrap();
        assert!(text.starts_with("writer "), "{text}");
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().ends_with(".tmp"))
            .collect();
        assert!(leftovers.is_empty(), "{leftovers:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
