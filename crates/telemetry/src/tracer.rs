//! Structured event tracing: a bounded ring buffer of cycle-stamped
//! events behind an env-gated handle.
//!
//! The design goal is that a fully disabled tracer costs one branch per
//! emit site: [`Tracer`] wraps `Option<Arc<..>>`, `None` means disabled,
//! and [`Tracer::emit`] takes the payload as a closure so no formatting
//! happens unless the event's category is actually enabled.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Default ring-buffer capacity (events) when `UCP_TRACE_BUF` is unset.
pub const DEFAULT_TRACE_CAPACITY: usize = 65_536;

/// Event categories; see the crate docs for the taxonomy table.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Category {
    /// Pipeline-global events: flushes, resteers, commit milestones.
    Pipeline,
    /// Decoupled-frontend events: FTQ, fetch scheduling.
    Frontend,
    /// µ-op cache events: mode switches, inserts, evictions.
    UopCache,
    /// Standalone L1I prefetcher events: triggers and fills.
    Prefetch,
    /// UCP alternate-path events: walk lifecycle, fills, steals.
    Ucp,
    /// Memory-hierarchy events: misses, MSHR stalls, DRAM traffic.
    Mem,
}

impl Category {
    /// All categories, in display order.
    pub const ALL: [Category; 6] = [
        Category::Pipeline,
        Category::Frontend,
        Category::UopCache,
        Category::Prefetch,
        Category::Ucp,
        Category::Mem,
    ];

    /// Stable lowercase name, used in `UCP_TRACE` and export output.
    pub fn name(self) -> &'static str {
        match self {
            Category::Pipeline => "pipeline",
            Category::Frontend => "frontend",
            Category::UopCache => "uopc",
            Category::Prefetch => "prefetch",
            Category::Ucp => "ucp",
            Category::Mem => "mem",
        }
    }

    fn bit(self) -> u8 {
        1 << (self as usize)
    }

    fn from_name(s: &str) -> Option<Category> {
        Category::ALL.iter().copied().find(|c| c.name() == s)
    }
}

/// A set of enabled categories (bitmask over [`Category`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CategorySet(u8);

impl CategorySet {
    /// The empty set.
    pub fn none() -> Self {
        CategorySet(0)
    }

    /// Every category.
    pub fn all() -> Self {
        CategorySet(Category::ALL.iter().fold(0, |m, c| m | c.bit()))
    }

    /// Parses a comma-separated list of category names; `all` (or `*`)
    /// selects everything, unknown names are ignored, whitespace is
    /// tolerated. An empty string parses to the empty set.
    pub fn parse(spec: &str) -> Self {
        let mut mask = 0u8;
        for part in spec.split(',') {
            let part = part.trim();
            if part.eq_ignore_ascii_case("all") || part == "*" {
                return CategorySet::all();
            }
            if let Some(c) = Category::from_name(&part.to_ascii_lowercase()) {
                mask |= c.bit();
            }
        }
        CategorySet(mask)
    }

    /// True when `c` is in the set.
    pub fn contains(self, c: Category) -> bool {
        self.0 & c.bit() != 0
    }

    /// True when no category is enabled.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }
}

/// One trace record: where in simulated time, which subsystem, what
/// happened, and a free-form detail string.
#[derive(Clone, Debug, PartialEq)]
pub struct TraceEvent {
    /// Simulated cycle at emission.
    pub cycle: u64,
    /// Subsystem that emitted the event.
    pub category: Category,
    /// Short stable event name (`walk_start`, `mshr_full`, …).
    pub name: &'static str,
    /// Free-form detail (`pc=0x40a0 depth=3`), built lazily.
    pub payload: String,
}

struct Ring {
    buf: Vec<TraceEvent>,
    /// Index of the logical start once the buffer has wrapped.
    head: usize,
}

struct TracerInner {
    mask: CategorySet,
    capacity: usize,
    clock: AtomicU64,
    dropped: AtomicU64,
    ring: Mutex<Ring>,
}

/// Handle to the trace stream. Cloning shares the buffer. The disabled
/// tracer (`Tracer::disabled`, also `Default`) holds no allocation and
/// makes [`Tracer::emit`] a single pointer test.
#[derive(Clone, Default)]
pub struct Tracer {
    inner: Option<Arc<TracerInner>>,
}

impl Tracer {
    /// A tracer that records nothing.
    pub fn disabled() -> Self {
        Tracer { inner: None }
    }

    /// A tracer recording `mask` categories into a ring of `capacity`
    /// events. An empty mask yields the disabled tracer.
    pub fn enabled_for(mask: CategorySet, capacity: usize) -> Self {
        if mask.is_empty() || capacity == 0 {
            return Tracer::disabled();
        }
        Tracer {
            inner: Some(Arc::new(TracerInner {
                mask,
                capacity,
                clock: AtomicU64::new(0),
                dropped: AtomicU64::new(0),
                ring: Mutex::new(Ring {
                    buf: Vec::new(),
                    head: 0,
                }),
            })),
        }
    }

    /// Configures from `UCP_TRACE` (category list) and `UCP_TRACE_BUF`
    /// (capacity, default 65536). Unset or empty `UCP_TRACE` disables.
    pub fn from_env() -> Self {
        let spec = match std::env::var("UCP_TRACE") {
            Ok(s) if !s.trim().is_empty() => s,
            _ => return Tracer::disabled(),
        };
        let capacity = std::env::var("UCP_TRACE_BUF")
            .ok()
            .and_then(|s| s.trim().parse::<usize>().ok())
            .unwrap_or(DEFAULT_TRACE_CAPACITY);
        Tracer::enabled_for(CategorySet::parse(&spec), capacity)
    }

    /// True when any category is being recorded. Callers with per-cycle
    /// bookkeeping (like the clock update) should gate on this.
    #[inline]
    pub fn is_active(&self) -> bool {
        self.inner.is_some()
    }

    /// True when events of `c` are being recorded.
    #[inline]
    pub fn enabled(&self, c: Category) -> bool {
        match &self.inner {
            Some(inner) => inner.mask.contains(c),
            None => false,
        }
    }

    /// Publishes the current simulated cycle. The simulator calls this
    /// once per cycle (only while tracing is active), so emit sites deep
    /// in components don't need the cycle threaded through their APIs.
    #[inline]
    pub fn set_cycle(&self, cycle: u64) {
        if let Some(inner) = &self.inner {
            inner.clock.store(cycle, Ordering::Relaxed);
        }
    }

    /// Records an event if `category` is enabled. `payload` runs only in
    /// that case, so format strings are free on the disabled path.
    #[inline]
    pub fn emit<F: FnOnce() -> String>(&self, category: Category, name: &'static str, payload: F) {
        let Some(inner) = &self.inner else { return };
        if !inner.mask.contains(category) {
            return;
        }
        let event = TraceEvent {
            cycle: inner.clock.load(Ordering::Relaxed),
            category,
            name,
            payload: payload(),
        };
        let mut ring = inner.ring.lock().expect("trace ring poisoned");
        if ring.buf.len() < inner.capacity {
            ring.buf.push(event);
        } else {
            // Full: overwrite the oldest event and advance the head.
            let head = ring.head;
            ring.buf[head] = event;
            ring.head = (head + 1) % inner.capacity;
            inner.dropped.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Events currently buffered, oldest first.
    pub fn events(&self) -> Vec<TraceEvent> {
        match &self.inner {
            None => Vec::new(),
            Some(inner) => {
                let ring = inner.ring.lock().expect("trace ring poisoned");
                let (tail, front) = ring.buf.split_at(ring.head);
                front.iter().chain(tail).cloned().collect()
            }
        }
    }

    /// Events overwritten because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.inner
            .as_ref()
            .map_or(0, |i| i.dropped.load(Ordering::Relaxed))
    }
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.inner {
            None => f.write_str("Tracer(disabled)"),
            Some(inner) => f
                .debug_struct("Tracer")
                .field("mask", &inner.mask)
                .field("capacity", &inner.capacity)
                .field("dropped", &inner.dropped.load(Ordering::Relaxed))
                .finish(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn category_set_parsing() {
        let s = CategorySet::parse("ucp, mem");
        assert!(s.contains(Category::Ucp));
        assert!(s.contains(Category::Mem));
        assert!(!s.contains(Category::Pipeline));
        assert_eq!(CategorySet::parse("all"), CategorySet::all());
        assert_eq!(CategorySet::parse("*"), CategorySet::all());
        assert_eq!(CategorySet::parse("bogus,"), CategorySet::none());
        assert_eq!(CategorySet::parse(""), CategorySet::none());
        assert_eq!(CategorySet::parse("UCP"), CategorySet::parse("ucp"));
    }

    #[test]
    fn disabled_tracer_is_inert() {
        let t = Tracer::disabled();
        t.set_cycle(5);
        t.emit(Category::Ucp, "x", || panic!("must not format"));
        assert!(t.events().is_empty());
        assert_eq!(t.dropped(), 0);
        // An empty mask also disables.
        assert!(!Tracer::enabled_for(CategorySet::none(), 16).is_active());
    }

    #[test]
    fn category_filtering() {
        let t = Tracer::enabled_for(CategorySet::parse("ucp"), 16);
        t.emit(Category::Ucp, "walk_start", || "a".into());
        t.emit(Category::Mem, "l2_miss", || panic!("mem is filtered out"));
        let events = t.events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].name, "walk_start");
    }

    #[test]
    fn ring_wraparound_keeps_newest_in_order() {
        let t = Tracer::enabled_for(CategorySet::all(), 4);
        for i in 0..10u64 {
            t.set_cycle(i);
            t.emit(Category::Pipeline, "tick", || i.to_string());
        }
        let events = t.events();
        assert_eq!(events.len(), 4);
        // 10 emitted into capacity 4: events 0..6 overwritten.
        assert_eq!(t.dropped(), 6);
        let cycles: Vec<u64> = events.iter().map(|e| e.cycle).collect();
        assert_eq!(cycles, vec![6, 7, 8, 9]);
        let payloads: Vec<&str> = events.iter().map(|e| e.payload.as_str()).collect();
        assert_eq!(payloads, vec!["6", "7", "8", "9"]);
    }

    #[test]
    fn clock_stamps_events() {
        let t = Tracer::enabled_for(CategorySet::all(), 8);
        t.set_cycle(41);
        t.emit(Category::Frontend, "ftq_push", String::new);
        t.set_cycle(99);
        t.emit(Category::Frontend, "ftq_pop", String::new);
        let e = t.events();
        assert_eq!((e[0].cycle, e[1].cycle), (41, 99));
    }
}
