//! Hierarchical counter/histogram registry.
//!
//! Components register instruments by dotted path (`mem.l1i.misses`) and
//! keep the returned handle; increments are relaxed atomic ops on shared
//! storage, so handles can be cloned freely across pipeline stages and
//! worker threads. A [`RegistrySnapshot`] is a plain serializable map —
//! that is what lands in the result cache, suite reports, and JSON dumps.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Number of histogram buckets: one for zero plus one per bit width of
/// a `u64` value (bucket `k` holds values with bit length `k`).
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A monotonic counter handle. Clones share the same underlying cell.
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds `n` to the counter.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Overwrites the counter. Counters are monotonic in normal
    /// operation; this exists only for the checkpoint-restore path,
    /// which rewinds every instrument to a snapshotted value.
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }
}

struct HistogramInner {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

/// A power-of-two histogram handle: bucket `k` counts observations whose
/// bit length is `k` (0 → bucket 0, 1 → bucket 1, 2–3 → bucket 2, …).
/// Suited to occupancy and latency distributions where relative error is
/// what matters.
#[derive(Clone)]
pub struct Histogram(Arc<HistogramInner>);

impl Default for Histogram {
    fn default() -> Self {
        Histogram(Arc::new(HistogramInner {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }))
    }
}

impl Histogram {
    /// Records one observation.
    #[inline]
    pub fn observe(&self, value: u64) {
        let bucket = (u64::BITS - value.leading_zeros()) as usize;
        self.0.buckets[bucket].fetch_add(1, Ordering::Relaxed);
        self.0.count.fetch_add(1, Ordering::Relaxed);
        self.0.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Overwrites the histogram's state from a snapshot
    /// (checkpoint-restore path; see [`Counter::set`]).
    fn restore(&self, snap: &HistogramSnapshot) {
        let dense = snap.to_dense();
        for (bucket, &n) in self.0.buckets.iter().zip(dense.iter()) {
            bucket.store(n, Ordering::Relaxed);
        }
        self.0.count.store(snap.count, Ordering::Relaxed);
        self.0.sum.store(snap.sum, Ordering::Relaxed);
    }

    fn snapshot(&self) -> HistogramSnapshot {
        let buckets = self
            .0
            .buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let n = b.load(Ordering::Relaxed);
                (n > 0).then_some((i as u32, n))
            })
            .collect();
        HistogramSnapshot {
            count: self.0.count.load(Ordering::Relaxed),
            sum: self.0.sum.load(Ordering::Relaxed),
            buckets,
        }
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count())
            .finish()
    }
}

#[derive(Default)]
struct RegistryInner {
    counters: BTreeMap<String, Counter>,
    histograms: BTreeMap<String, Histogram>,
}

/// The instrument registry. Cloning shares storage; `counter`/`histogram`
/// get-or-create by path, so two components naming the same path share
/// one cell (useful for cross-layer counters like wrong-path squashes).
#[derive(Clone, Default)]
pub struct Registry {
    inner: Arc<Mutex<RegistryInner>>,
}

impl Registry {
    /// Returns the counter registered at `path`, creating it on first use.
    pub fn counter(&self, path: &str) -> Counter {
        let mut inner = self.inner.lock().expect("registry poisoned");
        inner.counters.entry(path.to_string()).or_default().clone()
    }

    /// Returns the histogram registered at `path`, creating it on first use.
    pub fn histogram(&self, path: &str) -> Histogram {
        let mut inner = self.inner.lock().expect("registry poisoned");
        inner
            .histograms
            .entry(path.to_string())
            .or_default()
            .clone()
    }

    /// Rewinds every instrument to the values in `snap` — the
    /// checkpoint-restore path. Instruments registered in this registry
    /// but absent from the snapshot are zeroed (they did not exist, or
    /// held zero, when the snapshot was taken); snapshot paths not yet
    /// registered are created. Existing handles stay valid because the
    /// underlying cells are overwritten in place, never replaced.
    pub fn restore(&self, snap: &RegistrySnapshot) {
        let mut inner = self.inner.lock().expect("registry poisoned");
        for (path, c) in &inner.counters {
            c.set(snap.counters.get(path).copied().unwrap_or(0));
        }
        for (path, h) in &inner.histograms {
            match snap.histograms.get(path) {
                Some(s) => h.restore(s),
                None => h.restore(&HistogramSnapshot::default()),
            }
        }
        for (path, &v) in &snap.counters {
            inner.counters.entry(path.clone()).or_default().set(v);
        }
        for (path, s) in &snap.histograms {
            inner.histograms.entry(path.clone()).or_default().restore(s);
        }
    }

    /// A serializable copy of every instrument's current state.
    ///
    /// Zero-valued counters and empty histograms are omitted: whether an
    /// instrument has been *registered* depends on which code paths have
    /// run, and a checkpoint digest must not distinguish a fresh machine
    /// from a restored one by which untouched instruments happen to
    /// exist. [`Registry::restore`] treats absent paths as zero, so the
    /// omission round-trips.
    pub fn snapshot(&self) -> RegistrySnapshot {
        let inner = self.inner.lock().expect("registry poisoned");
        RegistrySnapshot {
            counters: inner
                .counters
                .iter()
                .filter_map(|(k, c)| {
                    let v = c.get();
                    (v != 0).then(|| (k.clone(), v))
                })
                .collect(),
            histograms: inner
                .histograms
                .iter()
                .filter_map(|(k, h)| {
                    let s = h.snapshot();
                    (s.count != 0 || s.sum != 0).then(|| (k.clone(), s))
                })
                .collect(),
        }
    }
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock().expect("registry poisoned");
        f.debug_struct("Registry")
            .field("counters", &inner.counters.len())
            .field("histograms", &inner.histograms.len())
            .finish()
    }
}

/// Serializable histogram state. Buckets are sparse `(index, count)`
/// pairs; bucket `k` covers values of bit length `k`.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Total observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: u64,
    /// Non-empty buckets as `(bucket_index, count)`.
    pub buckets: Vec<(u32, u64)>,
}

impl HistogramSnapshot {
    /// Mean observed value; 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    fn to_dense(&self) -> [u64; HISTOGRAM_BUCKETS] {
        let mut dense = [0u64; HISTOGRAM_BUCKETS];
        for &(i, n) in &self.buckets {
            if let Some(slot) = dense.get_mut(i as usize) {
                *slot += n;
            }
        }
        dense
    }

    fn from_dense(count: u64, sum: u64, dense: &[u64; HISTOGRAM_BUCKETS]) -> Self {
        HistogramSnapshot {
            count,
            sum,
            buckets: dense
                .iter()
                .enumerate()
                .filter_map(|(i, &n)| (n > 0).then_some((i as u32, n)))
                .collect(),
        }
    }

    /// Bucket-wise accumulation of `other` into `self`.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        let mut dense = self.to_dense();
        for &(i, n) in &other.buckets {
            if let Some(slot) = dense.get_mut(i as usize) {
                *slot += n;
            }
        }
        *self =
            HistogramSnapshot::from_dense(self.count + other.count, self.sum + other.sum, &dense);
    }

    /// Bucket-wise difference `self - earlier` (measurement windowing).
    /// Saturates at zero, so a snapshot from a different run cannot panic.
    pub fn delta_since(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        let mut dense = self.to_dense();
        for (slot, &n) in dense.iter_mut().zip(earlier.to_dense().iter()) {
            *slot = slot.saturating_sub(n);
        }
        HistogramSnapshot::from_dense(
            self.count.saturating_sub(earlier.count),
            self.sum.saturating_sub(earlier.sum),
            &dense,
        )
    }
}

/// A point-in-time, serializable copy of a [`Registry`]. This is the type
/// that rides in cached run results and suite reports.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct RegistrySnapshot {
    /// Counter values by path.
    pub counters: BTreeMap<String, u64>,
    /// Histogram states by path.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl RegistrySnapshot {
    /// True when no instrument recorded anything.
    pub fn is_empty(&self) -> bool {
        self.counters.values().all(|&v| v == 0) && self.histograms.values().all(|h| h.count == 0)
    }

    /// Accumulates `other` into `self` (union of paths, values summed).
    /// Used to aggregate per-workload snapshots into suite totals.
    pub fn merge(&mut self, other: &RegistrySnapshot) {
        for (path, &v) in &other.counters {
            *self.counters.entry(path.clone()).or_insert(0) += v;
        }
        for (path, h) in &other.histograms {
            self.histograms.entry(path.clone()).or_default().merge(h);
        }
    }

    /// Instrument-wise difference `self - earlier`, dropping instruments
    /// that did not move. This is how a measurement window is carved out
    /// of whole-run telemetry: snapshot at measurement start, snapshot at
    /// the end, diff.
    ///
    /// An instrument created *after* `earlier` was taken has no baseline
    /// entry and appears in the delta with its full value — all of its
    /// activity happened inside the window. (Instruments are iterated
    /// from `self`, so late creation never silently drops data; the
    /// regression test below pins this.)
    pub fn delta_since(&self, earlier: &RegistrySnapshot) -> RegistrySnapshot {
        let counters = self
            .counters
            .iter()
            .filter_map(|(path, &v)| {
                let before = earlier.counters.get(path).copied().unwrap_or(0);
                let delta = v.saturating_sub(before);
                (delta > 0).then(|| (path.clone(), delta))
            })
            .collect();
        let histograms = self
            .histograms
            .iter()
            .filter_map(|(path, h)| {
                let delta = match earlier.histograms.get(path) {
                    Some(b) => h.delta_since(b),
                    None => h.clone(),
                };
                (delta.count > 0).then(|| (path.clone(), delta))
            })
            .collect();
        RegistrySnapshot {
            counters,
            histograms,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_share_by_path() {
        let r = Registry::default();
        let a = r.counter("ucp.walks_started");
        let b = r.counter("ucp.walks_started");
        a.add(2);
        b.inc();
        assert_eq!(r.snapshot().counters["ucp.walks_started"], 3);
    }

    #[test]
    fn histogram_buckets_by_bit_length() {
        let r = Registry::default();
        let h = r.histogram("mem.l1i.mshr_occupancy");
        for v in [0u64, 1, 2, 3, 5, 1024] {
            h.observe(v);
        }
        let snap = &r.snapshot().histograms["mem.l1i.mshr_occupancy"];
        assert_eq!(snap.count, 6);
        assert_eq!(snap.sum, 1035);
        // 0 → bucket 0; 1 → 1; 2,3 → 2; 5 → 3; 1024 → 11.
        assert_eq!(snap.buckets, vec![(0, 1), (1, 1), (2, 2), (3, 1), (11, 1)]);
        assert!((snap.mean() - 1035.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn snapshot_merge_unions_and_sums() {
        let a_reg = Registry::default();
        a_reg.counter("pipeline.flushes").add(4);
        a_reg.histogram("mem.lat").observe(8);
        let b_reg = Registry::default();
        b_reg.counter("pipeline.flushes").add(6);
        b_reg.counter("ucp.walks_started").add(1);
        b_reg.histogram("mem.lat").observe(9);

        let mut merged = a_reg.snapshot();
        merged.merge(&b_reg.snapshot());
        assert_eq!(merged.counters["pipeline.flushes"], 10);
        assert_eq!(merged.counters["ucp.walks_started"], 1);
        let h = &merged.histograms["mem.lat"];
        assert_eq!(h.count, 2);
        assert_eq!(h.buckets, vec![(4, 2)]); // 8 and 9 both have bit length 4
    }

    #[test]
    fn delta_isolates_measurement_window() {
        let r = Registry::default();
        let c = r.counter("frontend.uopc.mode_switches");
        let h = r.histogram("mem.l1i.mshr_occupancy");
        c.add(5);
        h.observe(3);
        let warmup_end = r.snapshot();
        c.add(7);
        h.observe(3);
        h.observe(100);
        let end = r.snapshot();

        let window = end.delta_since(&warmup_end);
        assert_eq!(window.counters["frontend.uopc.mode_switches"], 7);
        let hw = &window.histograms["mem.l1i.mshr_occupancy"];
        assert_eq!(hw.count, 2);
        assert_eq!(hw.sum, 103);
        assert_eq!(hw.buckets, vec![(2, 1), (7, 1)]);
    }

    #[test]
    fn delta_keeps_counters_created_after_baseline() {
        let r = Registry::default();
        r.counter("early.counter").add(2);
        r.histogram("early.hist").observe(1);
        let baseline = r.snapshot();
        // Instruments that first appear mid-window (e.g. the first UCP
        // walk happening after warmup) must show their full value.
        r.counter("late.counter").add(9);
        r.histogram("late.hist").observe(4);
        let window = r.snapshot().delta_since(&baseline);
        assert_eq!(window.counters.get("late.counter"), Some(&9));
        assert_eq!(window.histograms["late.hist"].count, 1);
        // Unmoved instruments are dropped, not reported as zero.
        assert!(!window.counters.contains_key("early.counter"));
        assert!(!window.histograms.contains_key("early.hist"));
    }

    #[test]
    fn restore_rewinds_all_instruments_and_keeps_handles_live() {
        let r = Registry::default();
        let c = r.counter("pipeline.flushes");
        let h = r.histogram("mem.lat");
        c.add(3);
        h.observe(8);
        let saved = r.snapshot();
        c.add(100);
        h.observe(9);
        r.counter("late.counter").add(7); // absent from `saved`
        r.restore(&saved);
        assert_eq!(r.snapshot(), saved, "late counter zeroed, rest rewound");
        // The pre-restore handle still points at the live cell.
        c.inc();
        assert_eq!(r.snapshot().counters["pipeline.flushes"], 4);
    }

    #[test]
    fn snapshot_round_trips_through_json() {
        let r = Registry::default();
        r.counter("mem.l2.mshr_full_stalls").add(11);
        r.histogram("mem.lat").observe(77);
        let snap = r.snapshot();
        let text = serde_json::to_string(&snap).unwrap();
        let back: RegistrySnapshot = serde_json::from_str(&text).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn empty_detection() {
        let r = Registry::default();
        r.counter("a.b"); // registered but never incremented
        assert!(r.snapshot().is_empty());
        r.counter("a.b").inc();
        assert!(!r.snapshot().is_empty());
    }
}
