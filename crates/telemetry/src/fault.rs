//! Deterministic fault injection (`UCP_FAULT`).
//!
//! The resilience layer (structured errors, hang watchdog, retry,
//! cache-integrity quarantine) is only trustworthy if every failure path
//! is exercised, not just claimed. This module arms named fault *sites*
//! from the environment so tests and CI can force panics, hangs,
//! accounting-invariant violations and torn cache writes at precisely
//! reproducible points.
//!
//! # Syntax
//!
//! ```text
//! UCP_FAULT=<site>:<nth>[:<times>][,<site>:<nth>[:<times>]...]
//! ```
//!
//! * `site` — one of [`SITES`]:
//!   * `panic` — the `nth` workload (1-based suite index) panics at the
//!     start of its run,
//!   * `hang` — the `nth` workload stops retiring instructions, so the
//!     hang watchdog must terminate it,
//!   * `invariant` — the `nth` workload's cycle accounting is skewed by
//!     one cycle, forcing an `InvariantViolation`,
//!   * `torn_write` — the `nth` result-cache write is torn: only half the
//!     payload reaches disk, so the next read must quarantine the entry,
//!   * `kill` — the `nth` checkpoint write panics the process right
//!     *after* the write lands: a mid-run kill the `UCP_CKPT` resume
//!     path must recover from bit-identically.
//! * `nth` — for the per-workload sites, the 1-based suite index of the
//!   victim workload; for the counter-keyed sites (`torn_write`, `kill`),
//!   the 1-based ordinal of the write.
//! * `times` — optional cap on how many times the site fires in total
//!   (default: unlimited). `panic:3` makes workload 3 fail on *every*
//!   retry (a deterministic fault the runner must give up on);
//!   `panic:3:1` fires once, so the first retry succeeds (a transient
//!   fault).
//!
//! A malformed spec is a hard configuration error: suite runners surface
//! it as `SimError::BadConfig` before simulating anything.
//!
//! # Determinism
//!
//! The per-workload sites key off the workload's suite index, not thread
//! scheduling, so the same spec always hits the same workload no matter
//! how the parallel suite runner interleaves. `torn_write` counts write
//! calls with an atomic counter, which is deterministic for single-writer
//! flows (the CI smoke) and merely bounded for concurrent ones.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

/// The named fault sites `UCP_FAULT` can arm.
pub const SITES: &[&str] = &["panic", "hang", "invariant", "torn_write", "kill"];

#[derive(Debug)]
struct SiteState {
    site: String,
    nth: u64,
    times: u64,
    /// Counter-based sites: calls to [`FaultPlan::should_fire`] so far.
    hits: AtomicU64,
    /// Firings consumed from the `times` budget so far.
    fired: AtomicU64,
}

/// A parsed, armed `UCP_FAULT` specification. All state is interior and
/// atomic, so one plan can be shared by every worker thread of a suite
/// run.
#[derive(Debug, Default)]
pub struct FaultPlan {
    sites: Vec<SiteState>,
}

impl FaultPlan {
    /// Parses a `site:nth[:times]` list. Empty input means "no faults".
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut sites = Vec::new();
        for item in spec.split(',').map(str::trim).filter(|s| !s.is_empty()) {
            let mut parts = item.split(':');
            let site = parts.next().unwrap_or("").trim().to_string();
            if !SITES.contains(&site.as_str()) {
                return Err(format!(
                    "UCP_FAULT: unknown site `{site}` in `{item}`; valid sites: {}",
                    SITES.join(", ")
                ));
            }
            let nth = parts
                .next()
                .ok_or_else(|| format!("UCP_FAULT: `{item}` is missing `:<nth>`"))?
                .trim()
                .parse::<u64>()
                .ok()
                .filter(|&n| n >= 1)
                .ok_or_else(|| {
                    format!("UCP_FAULT: `{item}` needs an integer nth >= 1 (got `{item}`)")
                })?;
            let times = match parts.next() {
                None => u64::MAX,
                Some(t) => t
                    .trim()
                    .parse::<u64>()
                    .ok()
                    .filter(|&n| n >= 1)
                    .ok_or_else(|| format!("UCP_FAULT: `{item}` needs an integer times >= 1"))?,
            };
            if parts.next().is_some() {
                return Err(format!(
                    "UCP_FAULT: `{item}` has trailing fields; expected <site>:<nth>[:<times>]"
                ));
            }
            sites.push(SiteState {
                site,
                nth,
                times,
                hits: AtomicU64::new(0),
                fired: AtomicU64::new(0),
            });
        }
        Ok(FaultPlan { sites })
    }

    /// True when the plan arms no sites at all.
    pub fn is_empty(&self) -> bool {
        self.sites.is_empty()
    }

    fn consume(s: &SiteState) -> bool {
        // `fired` only ever grows, so the budget check is race-free
        // enough: at most `times` callers win the fetch_add.
        s.fired.fetch_add(1, Ordering::Relaxed) < s.times
    }

    /// Index-keyed sites (`panic`, `hang`, `invariant`): fires when
    /// `index` (0-based) is the armed workload and the `times` budget is
    /// not exhausted. Each call for the armed index consumes one firing,
    /// so retries re-trigger deterministic faults and `times: 1` models a
    /// transient one.
    pub fn armed_at(&self, site: &str, index: usize) -> bool {
        self.sites
            .iter()
            .filter(|s| s.site == site && s.nth == index as u64 + 1)
            .any(Self::consume)
    }

    /// Counter-keyed sites (`torn_write`, `kill`): every call is one
    /// hit; the site fires from the `nth` hit onward while the `times`
    /// budget lasts.
    pub fn should_fire(&self, site: &str) -> bool {
        self.sites
            .iter()
            .filter(|s| s.site == site)
            .filter(|s| s.hits.fetch_add(1, Ordering::Relaxed) + 1 >= s.nth)
            .any(Self::consume)
    }
}

/// The process-wide plan parsed from `UCP_FAULT`, once. `Ok(None)` when
/// the variable is unset or empty; `Err` describes a malformed spec (a
/// hard configuration error). The environment is read exactly once so
/// `times` budgets and write counters span the whole process, as the CI
/// smoke relies on.
pub fn global_plan() -> Result<Option<Arc<FaultPlan>>, String> {
    static PLAN: OnceLock<Result<Option<Arc<FaultPlan>>, String>> = OnceLock::new();
    PLAN.get_or_init(|| match std::env::var("UCP_FAULT") {
        Err(_) => Ok(None),
        Ok(s) if s.trim().is_empty() => Ok(None),
        Ok(s) => {
            let plan = FaultPlan::parse(&s)?;
            Ok((!plan.is_empty()).then(|| Arc::new(plan)))
        }
    })
    .clone()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_all_sites_and_lists() {
        let p = FaultPlan::parse("panic:3,hang:2:1, torn_write:1 ,invariant:4:2").unwrap();
        assert_eq!(p.sites.len(), 4);
        assert_eq!(p.sites[0].times, u64::MAX);
        assert_eq!(p.sites[1].times, 1);
        assert!(FaultPlan::parse("").unwrap().is_empty());
        assert!(FaultPlan::parse("  ,  ").unwrap().is_empty());
    }

    #[test]
    fn parse_rejects_malformed_specs() {
        for bad in [
            "explode:1",     // unknown site
            "panic",         // missing nth
            "panic:zero",    // non-numeric nth
            "panic:0",       // nth < 1
            "panic:1:0",     // times < 1
            "panic:1:2:3",   // trailing fields
            "panic:1,bad:2", // one bad item poisons the list
        ] {
            assert!(FaultPlan::parse(bad).is_err(), "{bad} should fail");
        }
        let e = FaultPlan::parse("explode:1").unwrap_err();
        assert!(e.contains("torn_write"), "error lists valid sites: {e}");
    }

    #[test]
    fn armed_at_is_index_keyed_and_budgeted() {
        let p = FaultPlan::parse("panic:2:2").unwrap();
        assert!(!p.armed_at("panic", 0), "index 0 is not armed");
        assert!(p.armed_at("panic", 1), "first firing");
        assert!(p.armed_at("panic", 1), "second firing");
        assert!(!p.armed_at("panic", 1), "budget of 2 exhausted");
        assert!(!p.armed_at("hang", 1), "other sites unarmed");
    }

    #[test]
    fn deterministic_fault_fires_on_every_retry() {
        let p = FaultPlan::parse("hang:1").unwrap();
        for _ in 0..10 {
            assert!(p.armed_at("hang", 0));
        }
    }

    #[test]
    fn should_fire_counts_hits_from_nth() {
        let p = FaultPlan::parse("torn_write:3:2").unwrap();
        assert!(!p.should_fire("torn_write"), "hit 1 < nth");
        assert!(!p.should_fire("torn_write"), "hit 2 < nth");
        assert!(p.should_fire("torn_write"), "hit 3 fires");
        assert!(p.should_fire("torn_write"), "hit 4 fires (budget 2)");
        assert!(!p.should_fire("torn_write"), "budget exhausted");
    }
}
