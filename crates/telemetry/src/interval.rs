//! Interval time-series sampling: periodic registry-delta snapshots.
//!
//! An [`IntervalSampler`] carves a run into fixed-length windows of
//! simulated cycles (default [`DEFAULT_INTERVAL_CYCLES`]). At each window
//! boundary it diffs the registry against the previous boundary and keeps
//! the per-window counter deltas in a bounded ring of
//! [`IntervalRecord`]s. Because each record is a [`RegistrySnapshot`]
//! delta, the records *tile* the measurement window exactly: summing any
//! counter across all intervals reproduces the end-of-run aggregate (the
//! property test in `crates/core/tests` checks this).
//!
//! Records are raw counter deltas; plot-ready metrics (IPC, µ-op cache
//! hit rate, L1I MPKI, stall shares) are derived on export so the stored
//! form stays lossless and small (zero deltas are dropped by
//! [`RegistrySnapshot::delta_since`]).
//!
//! # Environment
//!
//! - `UCP_INTERVAL` — cycles per interval. `0` or `off` disables
//!   sampling; unset uses the default 100 000.
//! - `UCP_INTERVAL_BUF` — ring capacity in records (default 4096); when
//!   full the oldest records are dropped and counted.

use crate::accounting::AccountingBreakdown;
use crate::registry::{Registry, RegistrySnapshot};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Default interval length in simulated cycles.
pub const DEFAULT_INTERVAL_CYCLES: u64 = 100_000;

/// Default ring capacity in records (`UCP_INTERVAL_BUF` unset).
pub const DEFAULT_INTERVAL_CAPACITY: usize = 4096;

/// Counter path of committed instructions (maintained by the pipeline's
/// commit stage; the interval exporters derive IPC from it).
pub const INSTRET_PATH: &str = "pipeline.committed";

/// One sampled window: the half-open cycle range and every counter that
/// moved inside it (zero deltas omitted).
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct IntervalRecord {
    /// Zero-based interval number within the run (monotonic even when
    /// older records have been dropped from the ring).
    pub index: u64,
    /// First cycle of the window (inclusive).
    pub start_cycle: u64,
    /// End of the window (exclusive; equals the next record's start).
    pub end_cycle: u64,
    /// Counter deltas over the window, by registry path.
    pub counters: BTreeMap<String, u64>,
}

impl IntervalRecord {
    /// Window length in cycles.
    pub fn cycles(&self) -> u64 {
        self.end_cycle.saturating_sub(self.start_cycle)
    }

    /// Delta of the counter at `path` (0 when it did not move).
    pub fn counter(&self, path: &str) -> u64 {
        self.counters.get(path).copied().unwrap_or(0)
    }

    /// Instructions committed in the window.
    pub fn instructions(&self) -> u64 {
        self.counter(INSTRET_PATH)
    }

    /// Instructions per cycle over the window.
    pub fn ipc(&self) -> f64 {
        let cycles = self.cycles();
        if cycles == 0 {
            0.0
        } else {
            self.instructions() as f64 / cycles as f64
        }
    }

    /// µ-op cache hit rate over the window, in percent (0 when the µ-op
    /// cache saw no lookups).
    pub fn uopc_hit_pct(&self) -> f64 {
        let hits = self.counter("frontend.uopc.hits");
        let total = hits + self.counter("frontend.uopc.misses");
        if total == 0 {
            0.0
        } else {
            100.0 * hits as f64 / total as f64
        }
    }

    /// L1I demand misses per kilo-instruction over the window.
    pub fn l1i_mpki(&self) -> f64 {
        let instret = self.instructions();
        if instret == 0 {
            0.0
        } else {
            1000.0 * self.counter("mem.l1i.demand_misses") as f64 / instret as f64
        }
    }

    /// The window's frontend cycle-accounting breakdown.
    pub fn breakdown(&self) -> AccountingBreakdown {
        AccountingBreakdown::from_counters(&self.counters)
    }
}

/// Periodic registry sampler with a bounded record ring. Created
/// inactive; call [`IntervalSampler::begin`] at measurement start, then
/// [`IntervalSampler::tick`] once per cycle, and
/// [`IntervalSampler::finish`] at measurement end to flush the last
/// partial window.
#[derive(Debug, Default)]
pub struct IntervalSampler {
    every: u64,
    capacity: usize,
    baseline: RegistrySnapshot,
    window_start: u64,
    next_index: u64,
    records: Vec<IntervalRecord>,
    dropped: u64,
    active: bool,
}

impl IntervalSampler {
    /// A sampler taking one record per `every` cycles into a ring of
    /// `capacity` records. `every` of 0 is clamped to 1.
    pub fn new(every: u64, capacity: usize) -> Self {
        IntervalSampler {
            every: every.max(1),
            capacity: capacity.max(1),
            ..IntervalSampler::default()
        }
    }

    /// Reads `UCP_INTERVAL` / `UCP_INTERVAL_BUF`: `Ok(None)` when sampling
    /// is disabled (`UCP_INTERVAL=0` or `off`), otherwise a sampler with
    /// the configured (or default) interval length. Unparseable values are
    /// a hard configuration error — a typo must not silently fall back to
    /// the default and invalidate hours of cached results.
    pub fn from_env() -> Result<Option<Self>, String> {
        let every = match std::env::var("UCP_INTERVAL") {
            Err(_) => DEFAULT_INTERVAL_CYCLES,
            Ok(s) => {
                let s = s.trim().to_ascii_lowercase();
                if s.is_empty() {
                    DEFAULT_INTERVAL_CYCLES
                } else if s == "off" {
                    return Ok(None);
                } else {
                    match s.parse::<u64>() {
                        Ok(0) => return Ok(None),
                        Ok(n) => n,
                        Err(_) => {
                            return Err(format!(
                                "UCP_INTERVAL=`{s}` is not a cycle count; \
                                 expected an integer, `0`, or `off`"
                            ))
                        }
                    }
                }
            }
        };
        let capacity = match std::env::var("UCP_INTERVAL_BUF") {
            Err(_) => DEFAULT_INTERVAL_CAPACITY,
            Ok(s) => s.trim().parse::<usize>().map_err(|_| {
                format!("UCP_INTERVAL_BUF=`{s}` is not a record count; expected an integer")
            })?,
        };
        Ok(Some(IntervalSampler::new(every, capacity)))
    }

    /// Interval length in cycles.
    pub fn every(&self) -> u64 {
        self.every
    }

    /// Starts (or restarts) sampling: `now` becomes the first window's
    /// start and the registry's current state the first baseline. Any
    /// previously collected records are cleared.
    pub fn begin(&mut self, now: u64, registry: &Registry) {
        self.baseline = registry.snapshot();
        self.window_start = now;
        self.next_index = 0;
        self.records.clear();
        self.dropped = 0;
        self.active = true;
    }

    /// True when the current window is complete and `tick` would sample.
    pub fn due(&self, now: u64) -> bool {
        self.active && now.saturating_sub(self.window_start) >= self.every
    }

    /// Samples if the current window has run its course. Call once per
    /// cycle; costs one comparison when not due.
    #[inline]
    pub fn tick(&mut self, now: u64, registry: &Registry) {
        if self.due(now) {
            self.sample(now, registry);
        }
    }

    /// Closes the window `[window_start, now)` unconditionally.
    fn sample(&mut self, now: u64, registry: &Registry) {
        let snap = registry.snapshot();
        let record = IntervalRecord {
            index: self.next_index,
            start_cycle: self.window_start,
            end_cycle: now,
            counters: snap.delta_since(&self.baseline).counters,
        };
        self.next_index += 1;
        self.baseline = snap;
        self.window_start = now;
        if self.records.len() >= self.capacity {
            self.records.remove(0);
            self.dropped += 1;
        }
        self.records.push(record);
    }

    /// Flushes the final (possibly partial) window and deactivates the
    /// sampler. A no-op when inactive or when no cycle has elapsed since
    /// the last boundary.
    pub fn finish(&mut self, now: u64, registry: &Registry) {
        if self.active && now > self.window_start {
            self.sample(now, registry);
        }
        self.active = false;
    }

    /// Collected records, oldest first.
    pub fn records(&self) -> &[IntervalRecord] {
        &self.records
    }

    /// Consumes the sampler, returning the records.
    pub fn into_records(self) -> Vec<IntervalRecord> {
        self.records
    }

    /// Records evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The sampler's complete mutable state as a serializable value —
    /// the checkpoint path. `every`/`capacity` ride along so a restore
    /// into a sampler built from a different environment is detectable.
    pub fn export_state(&self) -> SamplerState {
        SamplerState {
            every: self.every,
            capacity: self.capacity as u64,
            baseline: self.baseline.clone(),
            window_start: self.window_start,
            next_index: self.next_index,
            records: self.records.clone(),
            dropped: self.dropped,
            active: self.active,
        }
    }

    /// Overwrites the sampler's state from [`IntervalSampler::export_state`],
    /// resuming mid-measurement exactly where the exported sampler was.
    pub fn import_state(&mut self, s: SamplerState) {
        self.every = s.every.max(1);
        self.capacity = (s.capacity as usize).max(1);
        self.baseline = s.baseline;
        self.window_start = s.window_start;
        self.next_index = s.next_index;
        self.records = s.records;
        self.dropped = s.dropped;
        self.active = s.active;
    }
}

/// Serializable form of an [`IntervalSampler`]'s mutable state (see
/// [`IntervalSampler::export_state`]).
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct SamplerState {
    pub every: u64,
    pub capacity: u64,
    pub baseline: RegistrySnapshot,
    pub window_start: u64,
    pub next_index: u64,
    pub records: Vec<IntervalRecord>,
    pub dropped: u64,
    pub active: bool,
}

/// Renders interval records as a plot-ready CSV document: one row per
/// interval with derived metrics (IPC, µ-op cache hit %, L1I MPKI) and
/// the per-category stall shares in percent.
pub fn intervals_to_csv(records: &[IntervalRecord]) -> String {
    use crate::accounting::CycleCause;
    let mut out = String::from(
        "interval,start_cycle,end_cycle,cycles,instructions,ipc,uopc_hit_pct,l1i_mpki",
    );
    for cause in CycleCause::ALL {
        out.push_str(",pct_");
        out.push_str(cause.name());
    }
    out.push('\n');
    for r in records {
        let b = r.breakdown();
        out.push_str(&format!(
            "{},{},{},{},{},{:.4},{:.2},{:.3}",
            r.index,
            r.start_cycle,
            r.end_cycle,
            r.cycles(),
            r.instructions(),
            r.ipc(),
            r.uopc_hit_pct(),
            r.l1i_mpki()
        ));
        for cause in CycleCause::ALL {
            out.push_str(&format!(",{:.2}", b.share_pct(cause)));
        }
        out.push('\n');
    }
    out
}

/// Renders interval records as JSONL, one full-fidelity record per line
/// (the raw counter deltas, no derived metrics — lossless form).
pub fn intervals_to_jsonl(records: &[IntervalRecord]) -> String {
    let mut out = String::new();
    for r in records {
        out.push_str(&serde_json::to_string(r).expect("interval records always serialize"));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accounting::{CycleAccounting, CycleCause};

    #[test]
    fn intervals_tile_the_run() {
        let reg = Registry::default();
        let work = reg.counter("ucp.walks_started");
        let instret = reg.counter(INSTRET_PATH);
        let mut s = IntervalSampler::new(10, 64);
        s.begin(100, &reg);
        for cycle in 100..145u64 {
            if cycle % 3 == 0 {
                work.inc();
            }
            instret.add(2);
            // Work done at cycle N belongs to the window ending after N,
            // matching the pipeline's post-increment tick ordering.
            s.tick(cycle + 1, &reg);
        }
        s.finish(145, &reg);
        let records = s.records();
        // 45 cycles at every=10: four full windows + one partial.
        assert_eq!(records.len(), 5);
        assert_eq!(records[0].start_cycle, 100);
        assert_eq!(records.last().unwrap().end_cycle, 145);
        // Windows abut exactly.
        for w in records.windows(2) {
            assert_eq!(w[0].end_cycle, w[1].start_cycle);
        }
        // Summed deltas reproduce the aggregate.
        let total: u64 = records.iter().map(|r| r.counter("ucp.walks_started")).sum();
        assert_eq!(total, work.get());
        let insts: u64 = records.iter().map(|r| r.instructions()).sum();
        assert_eq!(insts, instret.get());
        assert!((records[0].ipc() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn ring_drops_oldest_and_counts() {
        let reg = Registry::default();
        let c = reg.counter("x");
        let mut s = IntervalSampler::new(1, 3);
        s.begin(0, &reg);
        for cycle in 1..=8u64 {
            c.inc();
            s.tick(cycle, &reg);
        }
        assert_eq!(s.records().len(), 3);
        assert_eq!(s.dropped(), 5);
        let idx: Vec<u64> = s.records().iter().map(|r| r.index).collect();
        assert_eq!(idx, vec![5, 6, 7]);
    }

    #[test]
    fn begin_establishes_baseline() {
        let reg = Registry::default();
        let c = reg.counter("warmup.noise");
        c.add(1000);
        let mut s = IntervalSampler::new(5, 8);
        s.begin(50, &reg);
        c.add(3);
        s.finish(55, &reg);
        // Warmup activity before begin() is excluded from the delta.
        assert_eq!(s.records().len(), 1);
        assert_eq!(s.records()[0].counter("warmup.noise"), 3);
    }

    #[test]
    fn finish_without_progress_is_empty() {
        let reg = Registry::default();
        let mut s = IntervalSampler::new(10, 8);
        s.begin(7, &reg);
        s.finish(7, &reg);
        assert!(s.records().is_empty());
        // Inactive sampler ignores ticks.
        s.tick(100, &reg);
        assert!(s.records().is_empty());
    }

    #[test]
    fn csv_has_derived_metrics_and_shares() {
        let reg = Registry::default();
        let acc = CycleAccounting::bound_to(&reg);
        let instret = reg.counter(INSTRET_PATH);
        let mut s = IntervalSampler::new(4, 8);
        s.begin(0, &reg);
        for cycle in 0..4u64 {
            acc.charge(if cycle < 3 {
                CycleCause::DeliverUop
            } else {
                CycleCause::L1iMiss
            });
            instret.add(3);
            s.tick(cycle + 1, &reg);
        }
        s.finish(4, &reg);
        let csv = intervals_to_csv(s.records());
        let mut lines = csv.lines();
        let header = lines.next().unwrap();
        assert!(header.starts_with("interval,start_cycle,end_cycle,cycles,instructions,ipc"));
        assert!(header.contains("pct_deliver_uop"));
        let row = lines.next().unwrap();
        // 12 instructions over 4 cycles → IPC 3; 3/4 cycles delivering.
        assert!(row.contains(",3.0000,"), "{row}");
        assert!(row.contains(",75.00"), "{row}");
        let record = &s.records()[0];
        assert!(record.breakdown().verify().is_ok());
        assert_eq!(record.breakdown().get(CycleCause::L1iMiss), 1);
    }

    #[test]
    fn jsonl_round_trips() {
        let reg = Registry::default();
        reg.counter("a").add(2);
        let mut s = IntervalSampler::new(1, 4);
        s.begin(0, &reg);
        reg.counter("a").add(5);
        s.finish(9, &reg);
        let text = intervals_to_jsonl(s.records());
        assert_eq!(text.lines().count(), 1);
        let back: IntervalRecord = serde_json::from_str(text.lines().next().unwrap()).unwrap();
        assert_eq!(back, s.records()[0]);
        assert_eq!(back.counter("a"), 5);
    }

    #[test]
    fn sampler_state_round_trips_mid_window() {
        let reg = Registry::default();
        let c = reg.counter("x");
        let mut a = IntervalSampler::new(10, 4);
        a.begin(0, &reg);
        c.add(2);
        a.tick(10, &reg);
        c.add(3); // mid-window activity rides in the baseline delta
        let state = a.export_state();
        let json = serde_json::to_string(&state).unwrap();
        let mut b = IntervalSampler::new(999, 1);
        b.import_state(serde_json::from_str(&json).unwrap());
        c.add(1);
        a.tick(20, &reg);
        b.tick(20, &reg);
        a.finish(25, &reg);
        b.finish(25, &reg);
        assert_eq!(a.records(), b.records());
        assert_eq!(b.records()[1].counter("x"), 4);
    }

    #[test]
    fn from_env_honours_knob() {
        // Note: env mutation — keep all UCP_INTERVAL cases in one test to
        // avoid cross-test races.
        std::env::remove_var("UCP_INTERVAL");
        assert_eq!(
            IntervalSampler::from_env().unwrap().unwrap().every(),
            DEFAULT_INTERVAL_CYCLES
        );
        std::env::set_var("UCP_INTERVAL", "2500");
        assert_eq!(IntervalSampler::from_env().unwrap().unwrap().every(), 2500);
        std::env::set_var("UCP_INTERVAL", "0");
        assert!(IntervalSampler::from_env().unwrap().is_none());
        std::env::set_var("UCP_INTERVAL", "off");
        assert!(IntervalSampler::from_env().unwrap().is_none());
        // A typo is a hard error, never a silent fallback to the default.
        std::env::set_var("UCP_INTERVAL", "garbage");
        assert!(IntervalSampler::from_env().is_err());
        std::env::remove_var("UCP_INTERVAL");
        std::env::set_var("UCP_INTERVAL_BUF", "many");
        assert!(IntervalSampler::from_env().is_err());
        std::env::remove_var("UCP_INTERVAL_BUF");
    }
}
