//! Observability for the UCP simulator: a hierarchical counter/histogram
//! registry and a structured, env-gated event trace.
//!
//! The two halves serve different questions:
//!
//! - The **registry** ([`Registry`]) answers *how often* — monotonic
//!   counters and power-of-two histograms registered by dotted path
//!   (`frontend.uopc.mode_switches`, `mem.l2.mshr_full_stalls`). It is
//!   always on: counters are relaxed atomic adds, cheap enough to leave
//!   enabled for every run, and snapshots serialize to JSON alongside
//!   `SimStats` in the result cache and suite reports.
//!
//! - The **tracer** ([`Tracer`]) answers *when and why* — timestamped
//!   [`TraceEvent`]s in a bounded ring buffer, exportable as Chrome
//!   trace-event JSON (loadable in Perfetto / `chrome://tracing`) or
//!   JSONL. It is off unless `UCP_TRACE` selects categories, and when
//!   off every emit site reduces to one null check.
//!
//! # Category taxonomy
//!
//! Events and counter paths share a six-way split that mirrors the
//! simulator's crate structure; the first path segment of a counter is
//! the lowercase category name:
//!
//! | Category   | Prefix      | What lands here                                      |
//! |------------|-------------|------------------------------------------------------|
//! | `Pipeline` | `pipeline.` | flushes, resteers, commit/dispatch milestones        |
//! | `Frontend` | `frontend.` | FTQ, fetch scheduling, µ-op cache mode switches      |
//! | `UopCache` | `frontend.uopc.` | µ-op cache inserts, evictions, hits/misses      |
//! | `Prefetch` | `prefetch.` | standalone L1I prefetcher triggers and fills         |
//! | `Ucp`      | `ucp.`      | alternate-path walks: triggers, stops, fills, steals |
//! | `Mem`      | `mem.`      | cache misses, MSHR occupancy/stalls, DRAM traffic    |
//!
//! On top of the registry sit two derived layers:
//!
//! - **Cycle accounting** ([`accounting`]) charges every simulated
//!   frontend cycle to exactly one [`CycleCause`], with the invariant
//!   that categories sum to total cycles.
//! - **Interval sampling** ([`interval`]) snapshots registry deltas
//!   every N cycles into a bounded ring of [`IntervalRecord`]s, giving
//!   phase-resolved time series (IPC, hit rates, stall shares) that are
//!   exportable as CSV/JSONL and as Perfetto counter tracks.
//!
//! # Environment variables
//!
//! - `UCP_TRACE` — comma-separated category list (`ucp,mem`), or `all`.
//!   Unset/empty disables tracing entirely.
//! - `UCP_TRACE_BUF` — ring-buffer capacity in events (default 65536).
//!   When full, the oldest events are overwritten and counted as dropped.
//! - `UCP_INTERVAL` — cycles per interval sample (default 100000; `0` or
//!   `off` disables interval sampling). Anything else that fails to parse
//!   as an integer is a hard configuration error.
//! - `UCP_INTERVAL_BUF` — interval ring capacity in records (default
//!   4096); non-numeric values are a hard configuration error.
//! - `UCP_FAULT` — deterministic fault injection, `site:nth[:times]`
//!   (see [`fault`]). Unset disables every fault site.
//!
//! # Example
//!
//! ```
//! use ucp_telemetry::{Category, Telemetry};
//!
//! let t = Telemetry::with_trace("ucp", 16);
//! let walks = t.registry.counter("ucp.walks_started");
//! walks.inc();
//! t.tracer.set_cycle(120);
//! t.tracer.emit(Category::Ucp, "walk_start", || "trigger=0x40a0".to_string());
//! let snap = t.registry.snapshot();
//! assert_eq!(snap.counters["ucp.walks_started"], 1);
//! assert_eq!(t.tracer.events()[0].cycle, 120);
//! ```

pub mod accounting;
pub mod envelope;
pub mod export;
pub mod fault;
pub mod interval;
pub mod registry;
pub mod tracer;

pub use accounting::{AccountingBreakdown, CycleAccounting, CycleCause, TOTAL_CYCLES_PATH};
pub use envelope::CacheReadError;
pub use export::{snapshot_table, to_chrome_trace, to_chrome_trace_with_counters, to_jsonl};
pub use fault::FaultPlan;
pub use interval::{
    intervals_to_csv, intervals_to_jsonl, IntervalRecord, IntervalSampler, SamplerState,
};
pub use registry::{Counter, Histogram, HistogramSnapshot, Registry, RegistrySnapshot};
pub use tracer::{Category, CategorySet, TraceEvent, Tracer};

/// The pair every instrumented component receives: always-on counters
/// plus the (usually disabled) event tracer. Cloning is cheap and shares
/// the underlying storage, so the simulator can hand copies to the µ-op
/// cache, the UCP engine, the memory hierarchy, and prefetchers.
#[derive(Clone, Default)]
pub struct Telemetry {
    /// Hierarchical counter/histogram registry (always on).
    pub registry: Registry,
    /// Structured event trace (env-gated, ~free when disabled).
    pub tracer: Tracer,
}

impl Telemetry {
    /// Fresh registry, tracing disabled. What library users and tests
    /// that don't care about traces should use.
    pub fn disabled() -> Self {
        Telemetry {
            registry: Registry::default(),
            tracer: Tracer::disabled(),
        }
    }

    /// Fresh registry; tracing configured from `UCP_TRACE` /
    /// `UCP_TRACE_BUF` (disabled when `UCP_TRACE` is unset or empty).
    pub fn from_env() -> Self {
        Telemetry {
            registry: Registry::default(),
            tracer: Tracer::from_env(),
        }
    }

    /// Fresh registry with tracing forced on for `categories` (same
    /// syntax as `UCP_TRACE`) and the given buffer capacity. Mostly for
    /// tests and tools that own the trace lifecycle.
    pub fn with_trace(categories: &str, capacity: usize) -> Self {
        Telemetry {
            registry: Registry::default(),
            tracer: Tracer::enabled_for(CategorySet::parse(categories), capacity),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_storage() {
        let t = Telemetry::with_trace("all", 8);
        let u = t.clone();
        t.registry.counter("pipeline.flushes").add(3);
        u.registry.counter("pipeline.flushes").add(2);
        assert_eq!(t.registry.snapshot().counters["pipeline.flushes"], 5);
        u.tracer.set_cycle(7);
        u.tracer.emit(Category::Mem, "l2_miss", String::new);
        assert_eq!(t.tracer.events().len(), 1);
    }

    #[test]
    fn disabled_telemetry_emits_nothing() {
        let t = Telemetry::disabled();
        assert!(!t.tracer.is_active());
        t.tracer.emit(Category::Ucp, "walk_start", || {
            unreachable!("payload must not run")
        });
        assert!(t.tracer.events().is_empty());
    }
}
