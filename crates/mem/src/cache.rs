//! Generic set-associative cache with LRU replacement and per-line fill
//! timestamps.

use serde::{Deserialize, Serialize};
use sim_isa::Addr;

/// Geometry and latency of one cache level.
#[derive(Clone, Debug, PartialEq, Eq, Serialize)]
pub struct CacheConfig {
    /// Human-readable level name (diagnostics only).
    pub name: &'static str,
    /// Number of sets (power of two).
    pub sets: usize,
    /// Associativity.
    pub ways: usize,
    /// Hit latency in cycles.
    pub latency: u64,
}

impl CacheConfig {
    /// Total capacity in bytes (64 B lines).
    pub fn capacity_bytes(&self) -> u64 {
        (self.sets * self.ways) as u64 * 64
    }
}

/// Maps a deserialized level name back to a `&'static str`. The standard
/// hierarchy names are interned; anything else leaks (bounded: configs are
/// deserialized only by offline tools, never in the simulation loop).
pub(crate) fn intern_name(s: &str) -> &'static str {
    for known in ["L1I", "L1D", "L2", "LLC", "ITLB", "DTLB", "STLB"] {
        if s == known {
            return known;
        }
    }
    Box::leak(s.to_owned().into_boxed_str())
}

impl Deserialize for CacheConfig {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        let field = |key: &str| {
            serde::value_get(v, key)
                .ok_or_else(|| serde::DeError::missing_field("CacheConfig", key))
        };
        Ok(CacheConfig {
            name: intern_name(&String::from_value(field("name")?)?),
            sets: usize::from_value(field("sets")?)?,
            ways: usize::from_value(field("ways")?)?,
            latency: u64::from_value(field("latency")?)?,
        })
    }
}

/// Hit/miss/fill counters for one cache level.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Demand hits.
    pub hits: u64,
    /// Demand misses.
    pub misses: u64,
    /// Lines filled (demand + prefetch).
    pub fills: u64,
    /// Fills triggered by prefetches.
    pub prefetch_fills: u64,
    /// Demand hits on lines brought in by a prefetch (useful prefetches).
    pub prefetch_useful: u64,
}

impl CacheStats {
    /// Demand hit rate in `[0, 1]`; 1 when there were no accesses.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            1.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[derive(Clone, Copy, Debug, Default)]
struct Line {
    tag: u64,
    valid: bool,
    /// LRU stamp (bigger = more recent).
    lru: u64,
    /// Cycle at which the fill completes; hits before this merge with the
    /// outstanding fill.
    ready: u64,
    /// The line was filled by a prefetch and not yet demanded.
    prefetched: bool,
}

/// A set-associative, LRU, 64 B-line cache.
///
/// Lookups and fills operate on *line addresses* derived internally from
/// byte addresses; callers pass full [`Addr`]s.
#[derive(Clone, Debug)]
pub struct SetAssocCache {
    cfg: CacheConfig,
    lines: Vec<Line>,
    stamp: u64,
    stats: CacheStats,
}

/// Result of a cache lookup.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LookupResult {
    /// Line present; data available at the given cycle (accounts for an
    /// in-flight fill plus the hit latency).
    Hit {
        /// Cycle when data is available.
        ready: u64,
    },
    /// Line absent.
    Miss,
}

impl SetAssocCache {
    /// Creates an empty cache.
    ///
    /// # Panics
    ///
    /// Panics if sets or ways are zero or sets is not a power of two.
    pub fn new(cfg: CacheConfig) -> Self {
        assert!(
            cfg.sets.is_power_of_two() && cfg.sets > 0,
            "sets must be a power of two"
        );
        assert!(cfg.ways > 0, "ways must be nonzero");
        let n = cfg.sets * cfg.ways;
        SetAssocCache {
            cfg,
            lines: vec![Line::default(); n],
            stamp: 0,
            stats: CacheStats::default(),
        }
    }

    /// The configuration this cache was built with.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    #[inline]
    fn set_ways(&mut self, addr: Addr) -> (&mut [Line], u64) {
        let line = addr.raw() >> 6;
        let set = (line as usize) & (self.cfg.sets - 1);
        let base = set * self.cfg.ways;
        (&mut self.lines[base..base + self.cfg.ways], line)
    }

    /// Checks presence without touching LRU or statistics (tag probe).
    pub fn probe(&self, addr: Addr) -> bool {
        let line = addr.raw() >> 6;
        let set = (line as usize) & (self.cfg.sets - 1);
        let base = set * self.cfg.ways;
        self.lines[base..base + self.cfg.ways]
            .iter()
            .any(|l| l.valid && l.tag == line)
    }

    /// Demand lookup at cycle `now`: updates LRU and statistics.
    pub fn lookup(&mut self, addr: Addr, now: u64) -> LookupResult {
        self.stamp += 1;
        let stamp = self.stamp;
        let latency = self.cfg.latency;
        let (ways, line) = self.set_ways(addr);
        for l in ways.iter_mut() {
            if l.valid && l.tag == line {
                l.lru = stamp;
                let was_prefetched = std::mem::take(&mut l.prefetched);
                let ready = l.ready.max(now) + latency;
                self.stats.hits += 1;
                if was_prefetched {
                    self.stats.prefetch_useful += 1;
                }
                return LookupResult::Hit { ready };
            }
        }
        self.stats.misses += 1;
        LookupResult::Miss
    }

    /// Installs a line whose fill completes at `ready`. Returns the evicted
    /// line address, if a valid line was displaced.
    pub fn fill(&mut self, addr: Addr, ready: u64, prefetch: bool) -> Option<Addr> {
        self.stamp += 1;
        let stamp = self.stamp;
        let (ways, line) = self.set_ways(addr);
        // Already present (racing fills): refresh.
        if let Some(l) = ways.iter_mut().find(|l| l.valid && l.tag == line) {
            l.ready = l.ready.min(ready);
            l.lru = stamp;
            return None;
        }
        let victim = ways
            .iter_mut()
            .min_by_key(|l| if l.valid { l.lru } else { 0 })
            .expect("ways is nonempty");
        let evicted = victim.valid.then(|| Addr::new(victim.tag << 6));
        *victim = Line {
            tag: line,
            valid: true,
            lru: stamp,
            ready,
            prefetched: prefetch,
        };
        self.stats.fills += 1;
        if prefetch {
            self.stats.prefetch_fills += 1;
        }
        evicted
    }

    /// Invalidates a line if present; returns whether it was present.
    pub fn invalidate(&mut self, addr: Addr) -> bool {
        let (ways, line) = self.set_ways(addr);
        for l in ways.iter_mut() {
            if l.valid && l.tag == line {
                l.valid = false;
                return true;
            }
        }
        false
    }

    /// Number of currently valid lines.
    pub fn occupancy(&self) -> usize {
        self.lines.iter().filter(|l| l.valid).count()
    }

    /// Serializes the mutable state (lines, LRU stamp, statistics).
    pub fn save_state(&self, w: &mut sim_isa::StateWriter) {
        w.put_usize(self.lines.len());
        for l in &self.lines {
            w.put_u64(l.tag);
            w.put_bool(l.valid);
            w.put_u64(l.lru);
            w.put_u64(l.ready);
            w.put_bool(l.prefetched);
        }
        w.put_u64(self.stamp);
        w.put_u64(self.stats.hits);
        w.put_u64(self.stats.misses);
        w.put_u64(self.stats.fills);
        w.put_u64(self.stats.prefetch_fills);
        w.put_u64(self.stats.prefetch_useful);
    }

    /// Restores state written by [`SetAssocCache::save_state`].
    pub fn restore_state(&mut self, r: &mut sim_isa::StateReader) {
        let n = r.get_usize();
        assert_eq!(n, self.lines.len(), "cache geometry mismatch");
        for l in &mut self.lines {
            l.tag = r.get_u64();
            l.valid = r.get_bool();
            l.lru = r.get_u64();
            l.ready = r.get_u64();
            l.prefetched = r.get_bool();
        }
        self.stamp = r.get_u64();
        self.stats.hits = r.get_u64();
        self.stats.misses = r.get_u64();
        self.stats.fills = r.get_u64();
        self.stats.prefetch_fills = r.get_u64();
        self.stats.prefetch_useful = r.get_u64();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> SetAssocCache {
        SetAssocCache::new(CacheConfig {
            name: "t",
            sets: 2,
            ways: 2,
            latency: 3,
        })
    }

    #[test]
    fn miss_then_fill_then_hit() {
        let mut c = tiny();
        let a = Addr::new(0x1000);
        assert_eq!(c.lookup(a, 0), LookupResult::Miss);
        c.fill(a, 10, false);
        match c.lookup(a, 20) {
            LookupResult::Hit { ready } => assert_eq!(ready, 23),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn hit_under_fill_merges() {
        let mut c = tiny();
        let a = Addr::new(0x40);
        c.fill(a, 100, false);
        match c.lookup(a, 5) {
            LookupResult::Hit { ready } => assert_eq!(ready, 103, "waits for the fill"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = tiny();
        // Same set: set index from line bits; sets=2 → bit 6 picks the set.
        let a = Addr::new(0x000);
        let b = Addr::new(0x100);
        let d = Addr::new(0x200);
        c.fill(a, 0, false);
        c.fill(b, 0, false);
        c.lookup(a, 1); // a most recent
        let evicted = c.fill(d, 2, false);
        assert_eq!(evicted, Some(b));
        assert!(c.probe(a));
        assert!(!c.probe(b));
    }

    #[test]
    fn probe_does_not_disturb_lru_or_stats() {
        let mut c = tiny();
        let a = Addr::new(0x80);
        c.fill(a, 0, false);
        let before = *c.stats();
        assert!(c.probe(a));
        assert!(!c.probe(Addr::new(0xfc0)));
        assert_eq!(*c.stats(), before);
    }

    #[test]
    fn same_line_offsets_alias() {
        let mut c = tiny();
        c.fill(Addr::new(0x1000), 0, false);
        assert!(c.probe(Addr::new(0x103f)));
        assert!(!c.probe(Addr::new(0x1040)));
    }

    #[test]
    fn prefetch_usefulness_tracked() {
        let mut c = tiny();
        let a = Addr::new(0x40);
        c.fill(a, 0, true);
        assert_eq!(c.stats().prefetch_fills, 1);
        c.lookup(a, 1);
        assert_eq!(c.stats().prefetch_useful, 1);
        // Second hit no longer counts as prefetch-useful.
        c.lookup(a, 2);
        assert_eq!(c.stats().prefetch_useful, 1);
    }

    #[test]
    fn invalidate_removes() {
        let mut c = tiny();
        let a = Addr::new(0x40);
        c.fill(a, 0, false);
        assert!(c.invalidate(a));
        assert!(!c.probe(a));
        assert!(!c.invalidate(a));
    }

    #[test]
    fn duplicate_fill_keeps_single_copy() {
        let mut c = tiny();
        let a = Addr::new(0x40);
        c.fill(a, 10, false);
        c.fill(a, 5, false);
        assert_eq!(c.occupancy(), 1);
        match c.lookup(a, 0) {
            LookupResult::Hit { ready } => assert_eq!(ready, 8, "earlier fill wins"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn hit_rate_math() {
        let mut c = tiny();
        let a = Addr::new(0x40);
        c.lookup(a, 0);
        c.fill(a, 0, false);
        c.lookup(a, 1);
        assert!((c.stats().hit_rate() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn capacity_bytes() {
        let cfg = CacheConfig {
            name: "l1i",
            sets: 64,
            ways: 8,
            latency: 4,
        };
        assert_eq!(cfg.capacity_bytes(), 32 * 1024);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_pow2_sets_rejected() {
        let _ = SetAssocCache::new(CacheConfig {
            name: "x",
            sets: 3,
            ways: 1,
            latency: 1,
        });
    }
}
