//! DRAM timing: channels, banks and tRP/tRCD/tCAS, per the paper's Table II
//! (2 channels, 8 banks, 12.5 ns each for tRP/tRCD/tCAS).

use serde::{Deserialize, Serialize};
use sim_isa::Addr;

/// DRAM timing parameters, expressed in core cycles.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct DramConfig {
    /// Number of channels.
    pub channels: usize,
    /// Banks per channel.
    pub banks: usize,
    /// Row-precharge time in cycles.
    pub t_rp: u64,
    /// RAS-to-CAS delay in cycles.
    pub t_rcd: u64,
    /// CAS latency in cycles.
    pub t_cas: u64,
}

impl DramConfig {
    /// Table II values at a 4 GHz core: 12.5 ns = 50 cycles each.
    pub fn alder_lake() -> Self {
        DramConfig {
            channels: 2,
            banks: 8,
            t_rp: 50,
            t_rcd: 50,
            t_cas: 50,
        }
    }
}

/// Open-row DRAM model: each bank remembers its open row; a row hit pays
/// only tCAS, a row conflict pays tRP + tRCD + tCAS, and requests queue
/// behind the bank's busy time.
#[derive(Clone, Debug)]
pub struct Dram {
    cfg: DramConfig,
    /// Per-bank (busy_until_cycle, open_row).
    banks: Vec<(u64, u64)>,
    accesses: u64,
    row_hits: u64,
}

impl Dram {
    /// Creates an idle DRAM.
    ///
    /// # Panics
    ///
    /// Panics if channels or banks are zero.
    pub fn new(cfg: &DramConfig) -> Self {
        assert!(cfg.channels > 0 && cfg.banks > 0);
        let n = cfg.channels * cfg.banks;
        Dram {
            cfg: cfg.clone(),
            banks: vec![(0, u64::MAX); n],
            accesses: 0,
            row_hits: 0,
        }
    }

    /// Performs one line access starting no earlier than `now`; returns the
    /// cycle at which the data is available.
    pub fn access(&mut self, addr: Addr, now: u64) -> u64 {
        let line = addr.raw() >> 6;
        let nbanks = self.banks.len() as u64;
        // Line-interleave across banks; row = higher-order bits.
        let bank = (line % nbanks) as usize;
        let row = line / nbanks / 128; // 128 lines (8 KB) per row
        let (busy_until, open_row) = self.banks[bank];
        let start = now.max(busy_until);
        let lat = if open_row == row {
            self.row_hits += 1;
            self.cfg.t_cas
        } else {
            self.cfg.t_rp + self.cfg.t_rcd + self.cfg.t_cas
        };
        self.accesses += 1;
        let done = start + lat;
        // The bank is occupied for the data-burst duration (a few cycles);
        // use tCAS/4 as the burst occupancy.
        self.banks[bank] = (start + (self.cfg.t_cas / 4).max(1), row);
        done
    }

    /// Total accesses served.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Fraction of accesses that hit an open row.
    pub fn row_hit_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.row_hits as f64 / self.accesses as f64
        }
    }

    /// Serializes the mutable state (bank busy/open-row, access counters).
    pub fn save_state(&self, w: &mut sim_isa::StateWriter) {
        w.put_usize(self.banks.len());
        for &(busy, row) in &self.banks {
            w.put_u64(busy);
            w.put_u64(row);
        }
        w.put_u64(self.accesses);
        w.put_u64(self.row_hits);
    }

    /// Restores state written by [`Dram::save_state`].
    pub fn restore_state(&mut self, r: &mut sim_isa::StateReader) {
        let n = r.get_usize();
        assert_eq!(n, self.banks.len(), "DRAM bank-count mismatch");
        for b in &mut self.banks {
            b.0 = r.get_u64();
            b.1 = r.get_u64();
        }
        self.accesses = r.get_u64();
        self.row_hits = r.get_u64();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dram() -> Dram {
        Dram::new(&DramConfig::alder_lake())
    }

    #[test]
    fn cold_access_pays_full_latency() {
        let mut d = dram();
        let done = d.access(Addr::new(0x1000), 100);
        assert_eq!(done, 100 + 150);
    }

    #[test]
    fn row_hit_is_faster() {
        let mut d = dram();
        let a = Addr::new(0x10_0000);
        let first = d.access(a, 0);
        // Same line again: row is open now.
        let second = d.access(a, first);
        assert_eq!(second - first, 50, "row hit pays only tCAS");
        assert!(d.row_hit_rate() > 0.0);
    }

    #[test]
    fn bank_conflicts_serialize() {
        let mut d = dram();
        let a = Addr::new(0x0);
        let t1 = d.access(a, 0);
        // Immediately hitting the same bank queues behind the burst.
        let t2 = d.access(a, 0);
        assert!(t2 > 50, "second access must queue: {t2}");
        let _ = t1;
    }

    #[test]
    fn different_banks_proceed_in_parallel() {
        let mut d = dram();
        let t1 = d.access(Addr::new(0x00), 0);
        let t2 = d.access(Addr::new(0x40), 0); // next line → next bank
        assert_eq!(t1, t2, "independent banks see identical start");
    }
}
