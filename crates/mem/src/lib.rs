//! Memory hierarchy for the UCP reproduction.
//!
//! Models the hierarchy of the paper's Table II: a 32 KB L1I, 48 KB L1D,
//! 1.25 MB L2, 30 MB LLC and a banked DRAM with tRP/tRCD/tCAS timing, plus
//! ITLB/DTLB/STLB. Timing follows the *latency-propagation* style: caches
//! are updated in place and every line carries the cycle at which its fill
//! completes, so a hit under an outstanding fill naturally behaves like an
//! MSHR merge. Explicit [`Mshr`] occupancy bounds the number of outstanding
//! misses per level, back-pressuring the frontend exactly where the paper's
//! ChampSim model does.
//!
//! # Examples
//!
//! ```
//! use ucp_mem::{Hierarchy, HierarchyConfig, HitLevel};
//! use sim_isa::Addr;
//!
//! let mut h = Hierarchy::new(&HierarchyConfig::alder_lake());
//! let a = h.access_inst(Addr::new(0x4000), 0, false).unwrap();
//! assert_eq!(a.level, HitLevel::Dram); // cold miss
//! let b = h.access_inst(Addr::new(0x4000), a.ready, false).unwrap();
//! assert_eq!(b.level, HitLevel::L1);   // now resident
//! ```

pub mod cache;
pub mod dram;
pub mod hierarchy;
pub mod mshr;
pub mod tlb;

pub use cache::{CacheConfig, CacheStats, SetAssocCache};
pub use dram::{Dram, DramConfig};
pub use hierarchy::{Access, Hierarchy, HierarchyConfig, HitLevel, MshrFull};
pub use mshr::Mshr;
pub use tlb::{Tlb, TlbConfig};
