//! Translation lookaside buffers.
//!
//! The simulated machine uses identity mapping (virtual == physical), so
//! TLBs only contribute *timing*: a miss in the first-level TLB probes the
//! STLB, and an STLB miss pays a fixed page-walk latency.

use crate::cache::{CacheConfig, LookupResult, SetAssocCache};
use serde::{Deserialize, Serialize};
use sim_isa::Addr;

const PAGE_BITS: u64 = 12;

/// Geometry and latency of a TLB level.
#[derive(Clone, Debug, PartialEq, Eq, Serialize)]
pub struct TlbConfig {
    /// Human-readable name.
    pub name: &'static str,
    /// Total entries.
    pub entries: usize,
    /// Associativity.
    pub ways: usize,
    /// Hit latency in cycles.
    pub latency: u64,
}

impl Deserialize for TlbConfig {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        let field = |key: &str| {
            serde::value_get(v, key).ok_or_else(|| serde::DeError::missing_field("TlbConfig", key))
        };
        Ok(TlbConfig {
            name: crate::cache::intern_name(&String::from_value(field("name")?)?),
            entries: usize::from_value(field("entries")?)?,
            ways: usize::from_value(field("ways")?)?,
            latency: u64::from_value(field("latency")?)?,
        })
    }
}

/// A TLB modelled as a set-associative cache of 4 KB page translations.
#[derive(Clone, Debug)]
pub struct Tlb {
    inner: SetAssocCache,
    latency: u64,
}

impl Tlb {
    /// Creates an empty TLB.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not divisible by `ways` or the resulting set
    /// count is not a power of two.
    pub fn new(cfg: &TlbConfig) -> Self {
        assert_eq!(cfg.entries % cfg.ways, 0, "entries must divide by ways");
        let sets = cfg.entries / cfg.ways;
        Tlb {
            inner: SetAssocCache::new(CacheConfig {
                name: cfg.name,
                sets,
                ways: cfg.ways,
                latency: 0,
            }),
            latency: cfg.latency,
        }
    }

    #[inline]
    fn page_key(addr: Addr) -> Addr {
        // Feed the page number through as a "line address" by shifting the
        // page into line-address position (the inner cache strips 6 bits).
        Addr::new((addr.raw() >> PAGE_BITS) << 6)
    }

    /// Looks up the page of `addr`. On a hit, returns `Some(extra_latency)`
    /// (the TLB hit latency); on a miss returns `None` — the caller decides
    /// the walk cost and then [`Tlb::fill`]s.
    pub fn lookup(&mut self, addr: Addr, now: u64) -> Option<u64> {
        match self.inner.lookup(Self::page_key(addr), now) {
            LookupResult::Hit { .. } => Some(self.latency),
            LookupResult::Miss => None,
        }
    }

    /// Installs the translation for the page of `addr`.
    pub fn fill(&mut self, addr: Addr) {
        self.inner.fill(Self::page_key(addr), 0, false);
    }

    /// Demand hit rate so far.
    pub fn hit_rate(&self) -> f64 {
        self.inner.stats().hit_rate()
    }

    /// Serializes the mutable state (delegates to the inner cache).
    pub fn save_state(&self, w: &mut sim_isa::StateWriter) {
        self.inner.save_state(w);
    }

    /// Restores state written by [`Tlb::save_state`].
    pub fn restore_state(&mut self, r: &mut sim_isa::StateReader) {
        self.inner.restore_state(r);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tlb() -> Tlb {
        Tlb::new(&TlbConfig {
            name: "itlb",
            entries: 8,
            ways: 2,
            latency: 1,
        })
    }

    #[test]
    fn miss_fill_hit() {
        let mut t = tlb();
        let a = Addr::new(0x1234_5678);
        assert_eq!(t.lookup(a, 0), None);
        t.fill(a);
        assert_eq!(t.lookup(a, 1), Some(1));
    }

    #[test]
    fn same_page_shares_entry() {
        let mut t = tlb();
        t.fill(Addr::new(0x40_0000));
        assert!(t.lookup(Addr::new(0x40_0fff), 0).is_some());
        assert!(
            t.lookup(Addr::new(0x40_1000), 0).is_none(),
            "next page misses"
        );
    }

    #[test]
    fn capacity_evicts() {
        let mut t = Tlb::new(&TlbConfig {
            name: "t",
            entries: 2,
            ways: 2,
            latency: 1,
        });
        for p in 0..3u64 {
            t.fill(Addr::new(p << 12));
        }
        let present = (0..3u64)
            .filter(|&p| t.lookup(Addr::new(p << 12), 0).is_some())
            .count();
        assert_eq!(present, 2);
    }
}
