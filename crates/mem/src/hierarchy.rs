//! The composite memory hierarchy: L1I/L1D → L2 → LLC → DRAM plus TLBs.

use crate::cache::{CacheConfig, LookupResult, SetAssocCache};
use crate::dram::{Dram, DramConfig};
use crate::mshr::Mshr;
use crate::tlb::{Tlb, TlbConfig};
use serde::{Deserialize, Serialize};
use sim_isa::Addr;
use ucp_telemetry::{Category, Counter, Histogram, Telemetry, Tracer};

/// The level that serviced an access.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum HitLevel {
    /// First-level cache (L1I or L1D depending on the port).
    L1,
    /// Unified L2.
    L2,
    /// Last-level cache.
    Llc,
    /// Main memory.
    Dram,
}

/// A completed access: when the data arrives and where it was found.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Access {
    /// Cycle at which data is available to the requester.
    pub ready: u64,
    /// Level that provided the line.
    pub level: HitLevel,
}

/// The request was rejected because the level-1 MSHR is full; retry later.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MshrFull;

impl std::fmt::Display for MshrFull {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("level-1 MSHR full")
    }
}

impl std::error::Error for MshrFull {}

/// Full hierarchy configuration (Table II of the paper).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct HierarchyConfig {
    /// L1 instruction cache.
    pub l1i: CacheConfig,
    /// L1 data cache.
    pub l1d: CacheConfig,
    /// Unified L2.
    pub l2: CacheConfig,
    /// Last-level cache.
    pub llc: CacheConfig,
    /// L1I MSHR entries.
    pub l1i_mshr: usize,
    /// L1D MSHR entries.
    pub l1d_mshr: usize,
    /// Instruction TLB.
    pub itlb: TlbConfig,
    /// Data TLB.
    pub dtlb: TlbConfig,
    /// Second-level TLB.
    pub stlb: TlbConfig,
    /// Page-walk latency (cycles) on an STLB miss.
    pub page_walk_latency: u64,
    /// DRAM timing.
    pub dram: DramConfig,
}

impl HierarchyConfig {
    /// The paper's Table II configuration (Intel Alder Lake P-core class).
    pub fn alder_lake() -> Self {
        HierarchyConfig {
            l1i: CacheConfig {
                name: "L1I",
                sets: 64,
                ways: 8,
                latency: 4,
            },
            l1d: CacheConfig {
                name: "L1D",
                sets: 64,
                ways: 12,
                latency: 5,
            },
            l2: CacheConfig {
                name: "L2",
                sets: 1024,
                ways: 20,
                latency: 10,
            },
            llc: CacheConfig {
                name: "LLC",
                sets: 4096,
                ways: 12,
                latency: 40,
            },
            l1i_mshr: 16,
            l1d_mshr: 16,
            itlb: TlbConfig {
                name: "ITLB",
                entries: 256,
                ways: 8,
                latency: 1,
            },
            dtlb: TlbConfig {
                name: "DTLB",
                entries: 96,
                ways: 6,
                latency: 1,
            },
            stlb: TlbConfig {
                name: "STLB",
                entries: 2048,
                ways: 16,
                latency: 8,
            },
            page_walk_latency: 80,
            dram: DramConfig::alder_lake(),
        }
    }
}

/// Telemetry handles for the `mem.*` namespace. Detached by default (the
/// counters still tick into unobservable cells, which keeps every
/// increment site branch-free); [`Hierarchy::attach_telemetry`] rebinds
/// them to a live registry.
#[derive(Clone, Debug, Default)]
struct MemTelemetry {
    tracer: Tracer,
    l1i_demand_misses: Counter,
    l1d_demand_misses: Counter,
    l1i_mshr_full: Counter,
    l1d_mshr_full: Counter,
    l1i_mshr_occupancy: Histogram,
    l1i_fill_from_l2: Counter,
    l1i_fill_from_llc: Counter,
    l1i_fill_from_dram: Counter,
}

impl MemTelemetry {
    fn bound_to(t: &Telemetry) -> Self {
        MemTelemetry {
            tracer: t.tracer.clone(),
            l1i_demand_misses: t.registry.counter("mem.l1i.demand_misses"),
            l1d_demand_misses: t.registry.counter("mem.l1d.demand_misses"),
            l1i_mshr_full: t.registry.counter("mem.l1i.mshr_full_stalls"),
            l1d_mshr_full: t.registry.counter("mem.l1d.mshr_full_stalls"),
            l1i_mshr_occupancy: t.registry.histogram("mem.l1i.mshr_occupancy"),
            l1i_fill_from_l2: t.registry.counter("mem.l1i.fill_from_l2"),
            l1i_fill_from_llc: t.registry.counter("mem.l1i.fill_from_llc"),
            l1i_fill_from_dram: t.registry.counter("mem.l1i.fill_from_dram"),
        }
    }

    /// Counts which level serviced an L1I demand miss — the interval
    /// exporters use the split to tell short (L2-hit) from long (DRAM)
    /// frontend stall phases apart.
    fn record_l1i_fill(&self, level: HitLevel) {
        match level {
            HitLevel::L1 => {}
            HitLevel::L2 => self.l1i_fill_from_l2.inc(),
            HitLevel::Llc => self.l1i_fill_from_llc.inc(),
            HitLevel::Dram => self.l1i_fill_from_dram.inc(),
        }
    }
}

/// The memory system: two L1 ports over a shared L2/LLC/DRAM, with TLBs.
///
/// See the crate docs for the timing model. All methods take the current
/// cycle and return absolute completion cycles.
#[derive(Clone, Debug)]
pub struct Hierarchy {
    l1i: SetAssocCache,
    l1d: SetAssocCache,
    l2: SetAssocCache,
    llc: SetAssocCache,
    l1i_mshr: Mshr,
    l1d_mshr: Mshr,
    itlb: Tlb,
    dtlb: Tlb,
    stlb: Tlb,
    page_walk_latency: u64,
    dram: Dram,
    tele: MemTelemetry,
}

impl Hierarchy {
    /// Creates a cold hierarchy.
    pub fn new(cfg: &HierarchyConfig) -> Self {
        Hierarchy {
            l1i: SetAssocCache::new(cfg.l1i.clone()),
            l1d: SetAssocCache::new(cfg.l1d.clone()),
            l2: SetAssocCache::new(cfg.l2.clone()),
            llc: SetAssocCache::new(cfg.llc.clone()),
            l1i_mshr: Mshr::new(cfg.l1i_mshr),
            l1d_mshr: Mshr::new(cfg.l1d_mshr),
            itlb: Tlb::new(&cfg.itlb),
            dtlb: Tlb::new(&cfg.dtlb),
            stlb: Tlb::new(&cfg.stlb),
            page_walk_latency: cfg.page_walk_latency,
            dram: Dram::new(&cfg.dram),
            tele: MemTelemetry::default(),
        }
    }

    /// Binds the `mem.*` counters/histograms and the `Mem` trace category
    /// to `t`'s registry and tracer.
    pub fn attach_telemetry(&mut self, t: &Telemetry) {
        self.tele = MemTelemetry::bound_to(t);
    }

    /// Translation latency through ITLB/DTLB (+STLB, +walk).
    fn translate(&mut self, addr: Addr, now: u64, inst_side: bool) -> u64 {
        let first = if inst_side {
            &mut self.itlb
        } else {
            &mut self.dtlb
        };
        if let Some(lat) = first.lookup(addr, now) {
            return lat;
        }
        if let Some(lat) = self.stlb.lookup(addr, now) {
            if inst_side {
                self.itlb.fill(addr);
            } else {
                self.dtlb.fill(addr);
            }
            return 1 + lat;
        }
        self.stlb.fill(addr);
        if inst_side {
            self.itlb.fill(addr);
        } else {
            self.dtlb.fill(addr);
        }
        1 + 8 + self.page_walk_latency
    }

    /// Walks L2 → LLC → DRAM for a line missing in an L1, filling on the
    /// way back. `t` is the cycle the L1 miss is detected.
    fn fetch_from_l2(&mut self, addr: Addr, t: u64, prefetch: bool) -> (u64, HitLevel) {
        if let LookupResult::Hit { ready } = self.l2.lookup(addr, t) {
            return (ready, HitLevel::L2);
        }
        let t2 = t + self.l2.config().latency;
        if let LookupResult::Hit { ready } = self.llc.lookup(addr, t2) {
            self.l2.fill(addr, ready, prefetch);
            return (ready, HitLevel::Llc);
        }
        let t3 = t2 + self.llc.config().latency;
        let ready = self.dram.access(addr, t3);
        self.llc.fill(addr, ready, prefetch);
        self.l2.fill(addr, ready, prefetch);
        (ready, HitLevel::Dram)
    }

    /// Instruction-side access (demand fetch or prefetch) for the line
    /// containing `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`MshrFull`] if the L1I MSHR cannot take another miss; the
    /// caller should retry on a later cycle.
    pub fn access_inst(
        &mut self,
        addr: Addr,
        now: u64,
        prefetch: bool,
    ) -> Result<Access, MshrFull> {
        self.l1i_mshr.drain(now);
        self.tele
            .l1i_mshr_occupancy
            .observe(self.l1i_mshr.occupancy() as u64);
        if prefetch {
            // Prefetches bypass the demand hit/miss statistics: a resident
            // line makes the request a no-op, a miss walks the hierarchy
            // and fills with prefetch attribution.
            if self.l1i.probe(addr) {
                return Ok(Access {
                    ready: now + self.l1i.config().latency,
                    level: HitLevel::L1,
                });
            }
            if self.l1i_mshr.is_full() {
                self.tele.l1i_mshr_full.inc();
                self.tele.tracer.emit(Category::Mem, "mshr_full", || {
                    format!("level=l1i kind=prefetch line={:#x}", addr.raw())
                });
                return Err(MshrFull);
            }
            let t_miss = now + 1 + self.l1i.config().latency;
            let (ready, level) = self.fetch_from_l2(addr, t_miss, true);
            self.l1i_mshr.allocate(addr, ready);
            self.l1i.fill(addr, ready, true);
            return Ok(Access { ready, level });
        }
        let xlat = self.translate(addr, now, true);
        let t = now + xlat;
        match self.l1i.lookup(addr, t) {
            LookupResult::Hit { ready } => Ok(Access {
                ready,
                level: HitLevel::L1,
            }),
            LookupResult::Miss => {
                if self.l1i_mshr.is_full() {
                    self.tele.l1i_mshr_full.inc();
                    self.tele.tracer.emit(Category::Mem, "mshr_full", || {
                        format!("level=l1i kind=demand line={:#x}", addr.raw())
                    });
                    return Err(MshrFull);
                }
                self.tele.l1i_demand_misses.inc();
                let t_miss = t + self.l1i.config().latency;
                let (ready, level) = self.fetch_from_l2(addr, t_miss, false);
                self.tele.record_l1i_fill(level);
                self.l1i_mshr.allocate(addr, ready);
                self.l1i.fill(addr, ready, false);
                self.tele.tracer.emit(Category::Mem, "l1i_miss", || {
                    format!("line={:#x} served_by={level:?} ready={ready}", addr.raw())
                });
                Ok(Access { ready, level })
            }
        }
    }

    /// Data-side access for the line containing `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`MshrFull`] if the L1D MSHR cannot take another miss.
    pub fn access_data(&mut self, addr: Addr, now: u64, _store: bool) -> Result<Access, MshrFull> {
        self.l1d_mshr.drain(now);
        let xlat = self.translate(addr, now, false);
        let t = now + xlat;
        match self.l1d.lookup(addr, t) {
            LookupResult::Hit { ready } => Ok(Access {
                ready,
                level: HitLevel::L1,
            }),
            LookupResult::Miss => {
                if self.l1d_mshr.is_full() {
                    self.tele.l1d_mshr_full.inc();
                    self.tele.tracer.emit(Category::Mem, "mshr_full", || {
                        format!("level=l1d line={:#x}", addr.raw())
                    });
                    return Err(MshrFull);
                }
                self.tele.l1d_demand_misses.inc();
                let t_miss = t + self.l1d.config().latency;
                let (ready, level) = self.fetch_from_l2(addr, t_miss, false);
                self.l1d_mshr.allocate(addr, ready);
                self.l1d.fill(addr, ready, false);
                Ok(Access { ready, level })
            }
        }
    }

    /// Tag-probe of the L1I without side effects (used by the `L1I-Hits`
    /// idealization and by prefetchers that filter resident lines).
    pub fn probe_l1i(&self, addr: Addr) -> bool {
        self.l1i.probe(addr)
    }

    /// L1I statistics.
    pub fn l1i_stats(&self) -> &crate::cache::CacheStats {
        self.l1i.stats()
    }

    /// L1D statistics.
    pub fn l1d_stats(&self) -> &crate::cache::CacheStats {
        self.l1d.stats()
    }

    /// L2 statistics.
    pub fn l2_stats(&self) -> &crate::cache::CacheStats {
        self.l2.stats()
    }

    /// LLC statistics.
    pub fn llc_stats(&self) -> &crate::cache::CacheStats {
        self.llc.stats()
    }

    /// DRAM accesses served.
    pub fn dram_accesses(&self) -> u64 {
        self.dram.accesses()
    }

    /// Serializes the whole hierarchy (caches, MSHRs, TLBs, DRAM).
    /// Telemetry handles are rebound via [`Hierarchy::attach_telemetry`],
    /// not checkpointed.
    pub fn save_state(&self, w: &mut sim_isa::StateWriter) {
        self.l1i.save_state(w);
        self.l1d.save_state(w);
        self.l2.save_state(w);
        self.llc.save_state(w);
        self.l1i_mshr.save_state(w);
        self.l1d_mshr.save_state(w);
        self.itlb.save_state(w);
        self.dtlb.save_state(w);
        self.stlb.save_state(w);
        self.dram.save_state(w);
    }

    /// Restores state written by [`Hierarchy::save_state`].
    pub fn restore_state(&mut self, r: &mut sim_isa::StateReader) {
        self.l1i.restore_state(r);
        self.l1d.restore_state(r);
        self.l2.restore_state(r);
        self.llc.restore_state(r);
        self.l1i_mshr.restore_state(r);
        self.l1d_mshr.restore_state(r);
        self.itlb.restore_state(r);
        self.dtlb.restore_state(r);
        self.stlb.restore_state(r);
        self.dram.restore_state(r);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hier() -> Hierarchy {
        Hierarchy::new(&HierarchyConfig::alder_lake())
    }

    #[test]
    fn cold_inst_access_goes_to_dram() {
        let mut h = hier();
        let a = h.access_inst(Addr::new(0x8000), 0, false).unwrap();
        assert_eq!(a.level, HitLevel::Dram);
        assert!(a.ready > 150, "must include DRAM latency: {}", a.ready);
    }

    #[test]
    fn warm_inst_access_hits_l1() {
        let mut h = hier();
        let first = h.access_inst(Addr::new(0x8000), 0, false).unwrap();
        let again = h
            .access_inst(Addr::new(0x8000), first.ready + 1, false)
            .unwrap();
        assert_eq!(again.level, HitLevel::L1);
        assert_eq!(again.ready, first.ready + 1 + 1 + 4, "xlat + L1I latency");
    }

    #[test]
    fn l1i_eviction_leaves_line_in_l2() {
        let mut h = hier();
        // Fill far more lines than L1I capacity (512 lines), same L2 set
        // pressure is fine (L2 has 20 ways × 1024 sets).
        for i in 0..2048u64 {
            let _ = h
                .access_inst(Addr::new(0x10_0000 + i * 64), i * 1000, false)
                .unwrap();
        }
        // Re-access line 0: gone from L1I but present in L2.
        let a = h
            .access_inst(Addr::new(0x10_0000), 10_000_000, false)
            .unwrap();
        assert_eq!(a.level, HitLevel::L2);
    }

    #[test]
    fn access_under_miss_merges() {
        let mut h = hier();
        let a = h.access_inst(Addr::new(0x9000), 0, false).unwrap();
        // Second access 2 cycles later: line is in flight; ready must not
        // exceed the first fill by more than the hit latency.
        let b = h.access_inst(Addr::new(0x9000), 2, false).unwrap();
        assert_eq!(
            b.level,
            HitLevel::L1,
            "in-flight line counts as L1 presence"
        );
        assert!(b.ready <= a.ready + 8, "{} vs {}", b.ready, a.ready);
    }

    #[test]
    fn data_and_inst_paths_are_separate_l1s() {
        let mut h = hier();
        let _ = h.access_data(Addr::new(0x7000), 0, false).unwrap();
        assert!(
            !h.probe_l1i(Addr::new(0x7000)),
            "data fill must not enter L1I"
        );
        let i = h.access_inst(Addr::new(0x7000), 1_000_000, false).unwrap();
        assert_eq!(i.level, HitLevel::L2, "but it is in the shared L2");
    }

    #[test]
    fn mshr_full_rejects() {
        let mut cfg = HierarchyConfig::alder_lake();
        cfg.l1i_mshr = 2;
        let mut h = Hierarchy::new(&cfg);
        assert!(h.access_inst(Addr::new(0x0000), 0, false).is_ok());
        assert!(h.access_inst(Addr::new(0x1000), 0, false).is_ok());
        let third = h.access_inst(Addr::new(0x2000), 0, false);
        assert_eq!(third.unwrap_err(), MshrFull);
        // After the fills complete, capacity frees up.
        assert!(h.access_inst(Addr::new(0x2000), 100_000, false).is_ok());
    }

    #[test]
    fn prefetch_fills_are_attributed() {
        let mut h = hier();
        let _ = h.access_inst(Addr::new(0xa000), 0, true).unwrap();
        assert_eq!(h.l1i_stats().prefetch_fills, 1);
        let _ = h.access_inst(Addr::new(0xa000), 1_000_000, false).unwrap();
        assert_eq!(h.l1i_stats().prefetch_useful, 1);
    }

    #[test]
    fn probe_l1i_matches_contents() {
        let mut h = hier();
        assert!(!h.probe_l1i(Addr::new(0xb000)));
        let _ = h.access_inst(Addr::new(0xb000), 0, false).unwrap();
        assert!(h.probe_l1i(Addr::new(0xb000)));
    }

    #[test]
    fn telemetry_counts_misses_and_stalls() {
        let t = Telemetry::with_trace("mem", 32);
        let mut cfg = HierarchyConfig::alder_lake();
        cfg.l1i_mshr = 1;
        let mut h = Hierarchy::new(&cfg);
        h.attach_telemetry(&t);
        let _ = h.access_inst(Addr::new(0x0000), 0, false).unwrap();
        assert!(
            h.access_inst(Addr::new(0x1000), 0, false).is_err(),
            "MSHR of 1 is full"
        );
        let snap = t.registry.snapshot();
        assert_eq!(snap.counters["mem.l1i.demand_misses"], 1);
        assert_eq!(snap.counters["mem.l1i.mshr_full_stalls"], 1);
        // Cold miss: the fill came all the way from DRAM.
        assert_eq!(snap.counters["mem.l1i.fill_from_dram"], 1);
        // Zero-valued counters are omitted from snapshots entirely.
        assert!(!snap.counters.contains_key("mem.l1i.fill_from_l2"));
        assert_eq!(snap.histograms["mem.l1i.mshr_occupancy"].count, 2);
        assert!(t.tracer.events().iter().any(|e| e.name == "mshr_full"));
    }

    #[test]
    fn tlb_miss_costs_show_up() {
        let mut h = hier();
        // First touch of a page: pays the page walk.
        let a = h.access_inst(Addr::new(0x40_0000), 0, false).unwrap();
        // A different line in the same (now cached) page and same L1I state.
        let b = h.access_inst(Addr::new(0x40_0040), 0, false).unwrap();
        assert!(a.ready > b.ready, "first access paid a page walk");
    }
}
