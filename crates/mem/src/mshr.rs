//! Miss status holding registers: bounded outstanding-miss tracking.

use sim_isa::Addr;

/// A bounded set of outstanding line misses.
///
/// Each entry records the line address and the cycle its fill completes.
/// Requests to an already-tracked line *merge* (no new entry); a full MSHR
/// rejects new misses, which back-pressures the requester.
#[derive(Clone, Debug)]
pub struct Mshr {
    capacity: usize,
    entries: Vec<(u64, u64)>, // (line, ready_cycle)
}

impl Mshr {
    /// Creates an MSHR with `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "MSHR capacity must be nonzero");
        Mshr {
            capacity,
            entries: Vec::with_capacity(capacity),
        }
    }

    /// Retires entries whose fill completed at or before `now`.
    pub fn drain(&mut self, now: u64) {
        self.entries.retain(|&(_, ready)| ready > now);
    }

    /// If the line is already outstanding, returns its completion cycle.
    pub fn pending(&self, addr: Addr) -> Option<u64> {
        let line = addr.raw() >> 6;
        self.entries
            .iter()
            .find(|&&(l, _)| l == line)
            .map(|&(_, r)| r)
    }

    /// Allocates an entry completing at `ready`. Returns `false` (and
    /// allocates nothing) when full.
    pub fn allocate(&mut self, addr: Addr, ready: u64) -> bool {
        let line = addr.raw() >> 6;
        if let Some(e) = self.entries.iter_mut().find(|e| e.0 == line) {
            e.1 = e.1.min(ready);
            return true;
        }
        if self.entries.len() >= self.capacity {
            return false;
        }
        self.entries.push((line, ready));
        true
    }

    /// Current number of outstanding entries.
    pub fn occupancy(&self) -> usize {
        self.entries.len()
    }

    /// `true` when no more misses can be accepted.
    pub fn is_full(&self) -> bool {
        self.entries.len() >= self.capacity
    }

    /// Serializes the outstanding entries.
    pub fn save_state(&self, w: &mut sim_isa::StateWriter) {
        w.put_usize(self.capacity);
        w.put_usize(self.entries.len());
        for &(line, ready) in &self.entries {
            w.put_u64(line);
            w.put_u64(ready);
        }
    }

    /// Restores state written by [`Mshr::save_state`].
    pub fn restore_state(&mut self, r: &mut sim_isa::StateReader) {
        let cap = r.get_usize();
        assert_eq!(cap, self.capacity, "MSHR capacity mismatch");
        let n = r.get_usize();
        assert!(n <= cap, "MSHR occupancy exceeds capacity");
        self.entries.clear();
        for _ in 0..n {
            let line = r.get_u64();
            let ready = r.get_u64();
            self.entries.push((line, ready));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocate_until_full() {
        let mut m = Mshr::new(2);
        assert!(m.allocate(Addr::new(0x000), 10));
        assert!(m.allocate(Addr::new(0x040), 10));
        assert!(m.is_full());
        assert!(!m.allocate(Addr::new(0x080), 10));
        // Same line merges even when full.
        assert!(m.allocate(Addr::new(0x000), 5));
        assert_eq!(m.pending(Addr::new(0x000)), Some(5));
    }

    #[test]
    fn drain_frees_completed() {
        let mut m = Mshr::new(1);
        assert!(m.allocate(Addr::new(0x0), 10));
        m.drain(9);
        assert!(m.is_full());
        m.drain(10);
        assert!(!m.is_full());
        assert_eq!(m.occupancy(), 0);
    }

    #[test]
    fn pending_matches_by_line() {
        let mut m = Mshr::new(4);
        m.allocate(Addr::new(0x1000), 42);
        assert_eq!(m.pending(Addr::new(0x1020)), Some(42), "same 64B line");
        assert_eq!(m.pending(Addr::new(0x1040)), None);
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_capacity_rejected() {
        let _ = Mshr::new(0);
    }
}
