//! Property-based tests for the memory hierarchy: LRU/capacity invariants,
//! MSHR bounds, timing monotonicity, and inclusion behaviour under random
//! access streams.

use proptest::prelude::*;
use sim_isa::Addr;
use ucp_mem::{CacheConfig, Hierarchy, HierarchyConfig, Mshr, SetAssocCache};

fn small_cache() -> SetAssocCache {
    SetAssocCache::new(CacheConfig {
        name: "p",
        sets: 4,
        ways: 2,
        latency: 3,
    })
}

proptest! {
    /// A cache never holds more lines than its geometry allows, and a
    /// just-filled line is always present.
    #[test]
    fn cache_capacity_invariant(lines in proptest::collection::vec(0u64..64, 1..200)) {
        let mut c = small_cache();
        for &l in &lines {
            let a = Addr::new(l * 64);
            c.fill(a, 0, false);
            prop_assert!(c.probe(a));
            prop_assert!(c.occupancy() <= 8);
        }
    }

    /// LRU property: with at most `ways` distinct lines per set, nothing is
    /// ever evicted.
    #[test]
    fn no_conflict_no_eviction(
        seq in proptest::collection::vec(0usize..2, 1..100),
    ) {
        let mut c = small_cache();
        // Two lines mapping to the same set (sets=4 → stride 4 lines).
        let lines = [Addr::new(0), Addr::new(4 * 64)];
        c.fill(lines[0], 0, false);
        c.fill(lines[1], 0, false);
        for (i, &k) in seq.iter().enumerate() {
            match c.lookup(lines[k], i as u64) {
                ucp_mem::cache::LookupResult::Hit { .. } => {}
                other => prop_assert!(false, "unexpected miss: {other:?}"),
            }
        }
    }

    /// Hits + misses always equals the number of lookups.
    #[test]
    fn stats_balance(ops in proptest::collection::vec((0u64..32, any::<bool>()), 1..200)) {
        let mut c = small_cache();
        let mut lookups = 0u64;
        for &(l, fill) in &ops {
            let a = Addr::new(l * 64);
            if fill {
                c.fill(a, 0, false);
            } else {
                let _ = c.lookup(a, 0);
                lookups += 1;
            }
        }
        prop_assert_eq!(c.stats().hits + c.stats().misses, lookups);
    }

    /// The MSHR never exceeds its capacity and merging never rejects.
    #[test]
    fn mshr_bounded(reqs in proptest::collection::vec(0u64..16, 1..100)) {
        let mut m = Mshr::new(4);
        for (i, &l) in reqs.iter().enumerate() {
            let a = Addr::new(l * 64);
            if m.pending(a).is_some() {
                prop_assert!(m.allocate(a, i as u64 + 10), "merge must always succeed");
            } else {
                let _ = m.allocate(a, i as u64 + 10);
            }
            prop_assert!(m.occupancy() <= 4);
            m.drain(i as u64);
        }
    }

    /// Hierarchy timing is causal: every access completes strictly after it
    /// starts, and a repeat access to the same line completes no later
    /// (same cycle start) than the first did.
    #[test]
    fn hierarchy_timing_causal(lines in proptest::collection::vec(0u64..512, 1..60)) {
        let mut h = Hierarchy::new(&HierarchyConfig::alder_lake());
        let mut now = 0u64;
        for &l in &lines {
            let a = Addr::new(0x10_0000 + l * 64);
            // The 16-entry MSHR legitimately back-pressures dense miss
            // streams: wait out full windows like the pipeline does.
            let first = loop {
                match h.access_inst(a, now, false) {
                    Ok(acc) => break acc,
                    Err(_) => now += 50,
                }
            };
            prop_assert!(first.ready > now, "completion after start");
            let again = h.access_inst(a, now, false).unwrap();
            prop_assert!(again.ready <= first.ready + 8, "repeat no slower (merge)");
            now += 3;
        }
    }

    /// Prefetch accesses never perturb demand hit/miss statistics.
    #[test]
    fn prefetch_stats_isolated(lines in proptest::collection::vec(0u64..128, 1..60)) {
        let mut h = Hierarchy::new(&HierarchyConfig::alder_lake());
        for &l in &lines {
            let _ = h.access_inst(Addr::new(0x20_0000 + l * 64), 0, true);
        }
        let s = h.l1i_stats();
        prop_assert_eq!(s.hits + s.misses, 0, "prefetches must not count as demand");
        prop_assert!(s.prefetch_fills > 0);
    }
}
