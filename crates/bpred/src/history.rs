//! Speculative global history with folded (compressed) views and O(1)
//! checkpoint/restore.
//!
//! TAGE-family predictors index their tables with hashes of very long
//! global histories. Recomputing those hashes per prediction would be
//! O(history length), so each (table, use) pair keeps a *folded history*: a
//! `clen`-bit register updated incrementally as bits are pushed. Restoring
//! after a misprediction restores the folded registers and the write
//! pointer from a fixed-size [`HistCheckpoint`]; the underlying circular
//! bit buffer never needs rewinding because positions ahead of the restored
//! pointer are rewritten before they are ever read back.

use serde::Serialize;

/// Capacity of the circular history buffer in bits. Must exceed the longest
/// history length plus the deepest speculative run-ahead.
const GHR_CAPACITY_BITS: usize = 8192;

/// Maximum folded registers a [`HistoryState`] can carry.
pub const MAX_FOLDS: usize = 56;

/// Specification of one folded history register.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub struct FoldSpec {
    /// Original (uncompressed) history length in bits.
    pub olen: u32,
    /// Compressed register width in bits (1..=16).
    pub clen: u32,
}

#[derive(Clone, Copy, Debug, Default)]
struct Fold {
    comp: u32,
    olen: u32,
    clen: u32,
    outpoint: u32,
}

impl Fold {
    fn new(spec: FoldSpec) -> Self {
        assert!(spec.clen >= 1 && spec.clen <= 16, "clen out of range");
        assert!(spec.olen >= 1, "olen must be nonzero");
        Fold {
            comp: 0,
            olen: spec.olen,
            clen: spec.clen,
            outpoint: spec.olen % spec.clen,
        }
    }

    #[inline]
    fn push(&mut self, new_bit: u32, out_bit: u32) {
        self.comp = (self.comp << 1) | new_bit;
        self.comp ^= out_bit << self.outpoint;
        self.comp ^= self.comp >> self.clen;
        self.comp &= (1 << self.clen) - 1;
    }
}

/// Fixed-size snapshot of a [`HistoryState`], taken before each prediction
/// and restored on a pipeline flush.
#[derive(Clone, Copy, Debug)]
pub struct HistCheckpoint {
    ptr: u64,
    n: u8,
    comps: [u32; MAX_FOLDS],
}

impl Default for HistCheckpoint {
    fn default() -> Self {
        HistCheckpoint {
            ptr: 0,
            n: 0,
            comps: [0; MAX_FOLDS],
        }
    }
}

/// A speculative global history: circular bit buffer plus folded views.
///
/// The same type serves conditional-outcome history (TAGE, SC) and
/// target/path history (ITTAGE); what the bits mean is up to the pusher.
#[derive(Clone)]
pub struct HistoryState {
    bits: Vec<u64>,
    /// Monotonic bit write position (mod capacity when indexing).
    ptr: u64,
    folds: Vec<Fold>,
    max_olen: u32,
}

impl std::fmt::Debug for HistoryState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HistoryState")
            .field("ptr", &self.ptr)
            .field("folds", &self.folds.len())
            .field("max_olen", &self.max_olen)
            .finish()
    }
}

impl HistoryState {
    /// Creates a history with the given folded views.
    ///
    /// # Panics
    ///
    /// Panics if more than [`MAX_FOLDS`] folds are requested or any history
    /// length exceeds the buffer's safe window.
    pub fn new(specs: &[FoldSpec]) -> Self {
        assert!(specs.len() <= MAX_FOLDS, "too many folded histories");
        let max_olen = specs.iter().map(|s| s.olen).max().unwrap_or(1);
        assert!(
            (max_olen as usize) < GHR_CAPACITY_BITS / 2,
            "history length {max_olen} too large for buffer"
        );
        HistoryState {
            bits: vec![0; GHR_CAPACITY_BITS / 64],
            ptr: 0,
            folds: specs.iter().copied().map(Fold::new).collect(),
            max_olen,
        }
    }

    #[inline]
    fn bit_at(&self, pos: u64) -> u32 {
        let p = (pos % GHR_CAPACITY_BITS as u64) as usize;
        ((self.bits[p / 64] >> (p % 64)) & 1) as u32
    }

    #[inline]
    fn set_bit(&mut self, pos: u64, bit: u32) {
        let p = (pos % GHR_CAPACITY_BITS as u64) as usize;
        let w = &mut self.bits[p / 64];
        *w = (*w & !(1u64 << (p % 64))) | ((bit as u64) << (p % 64));
    }

    /// Pushes one history bit, updating every folded view.
    pub fn push(&mut self, bit: bool) {
        let new_bit = u32::from(bit);
        let ptr = self.ptr;
        self.set_bit(ptr, new_bit);
        for i in 0..self.folds.len() {
            // The bit leaving this fold's window was written `olen` pushes
            // ago; position ptr - olen (guarded for the cold start).
            let olen = u64::from(self.folds[i].olen);
            let out_bit = if ptr >= olen {
                self.bit_at(ptr - olen)
            } else {
                0
            };
            self.folds[i].push(new_bit, out_bit);
        }
        self.ptr = ptr + 1;
    }

    /// The folded value of view `i`.
    #[inline]
    pub fn folded(&self, i: usize) -> u32 {
        self.folds[i].comp
    }

    /// Number of folded views.
    #[inline]
    pub fn num_folds(&self) -> usize {
        self.folds.len()
    }

    /// Total bits pushed so far.
    #[inline]
    pub fn position(&self) -> u64 {
        self.ptr
    }

    /// The most recent `n` bits (LSB = most recent), for short-history
    /// consumers. `n` must be ≤ 64.
    pub fn recent(&self, n: u32) -> u64 {
        debug_assert!(n <= 64);
        let mut v = 0u64;
        for i in 0..u64::from(n) {
            if self.ptr > i {
                v |= u64::from(self.bit_at(self.ptr - 1 - i)) << i;
            }
        }
        v
    }

    /// Captures the folded registers and write pointer.
    pub fn checkpoint(&self) -> HistCheckpoint {
        let mut cp = HistCheckpoint {
            ptr: self.ptr,
            n: self.folds.len() as u8,
            comps: [0; MAX_FOLDS],
        };
        for (i, f) in self.folds.iter().enumerate() {
            cp.comps[i] = f.comp;
        }
        cp
    }

    /// Restores a checkpoint taken earlier on this history.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the checkpoint's fold count mismatches.
    pub fn restore(&mut self, cp: &HistCheckpoint) {
        debug_assert_eq!(cp.n as usize, self.folds.len(), "checkpoint shape mismatch");
        self.ptr = cp.ptr;
        for (i, f) in self.folds.iter_mut().enumerate() {
            f.comp = cp.comps[i];
        }
    }
}

impl HistCheckpoint {
    /// Serializes the checkpoint (whole-simulation checkpoint path; the
    /// pipeline keeps checkpoints inside in-flight branch records).
    pub fn save_state(&self, w: &mut sim_isa::StateWriter) {
        w.put_u64(self.ptr);
        w.put_u8(self.n);
        for c in self.comps {
            w.put_u32(c);
        }
    }

    /// Decodes a checkpoint written by [`HistCheckpoint::save_state`].
    pub fn load_state(r: &mut sim_isa::StateReader) -> Self {
        let ptr = r.get_u64();
        let n = r.get_u8();
        let mut comps = [0u32; MAX_FOLDS];
        for c in &mut comps {
            *c = r.get_u32();
        }
        HistCheckpoint { ptr, n, comps }
    }
}

impl HistoryState {
    /// Serializes the mutable state (bit buffer, write pointer, folded
    /// registers). Geometry (fold specs) is not written: a restore target
    /// must be constructed with the same specs, which the fold-count
    /// assertion below cross-checks.
    pub fn save_state(&self, w: &mut sim_isa::StateWriter) {
        w.put_u64(self.ptr);
        w.put_usize(self.bits.len());
        for &word in &self.bits {
            w.put_u64(word);
        }
        w.put_usize(self.folds.len());
        for f in &self.folds {
            w.put_u32(f.comp);
        }
    }

    /// Restores state written by [`HistoryState::save_state`] into a
    /// same-geometry history.
    pub fn restore_state(&mut self, r: &mut sim_isa::StateReader) {
        self.ptr = r.get_u64();
        let nb = r.get_usize();
        assert_eq!(nb, self.bits.len(), "history buffer geometry mismatch");
        for word in &mut self.bits {
            *word = r.get_u64();
        }
        let nf = r.get_usize();
        assert_eq!(nf, self.folds.len(), "history fold-count mismatch");
        for f in &mut self.folds {
            f.comp = r.get_u32();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn specs() -> Vec<FoldSpec> {
        vec![
            FoldSpec { olen: 5, clen: 5 },
            FoldSpec { olen: 16, clen: 11 },
            FoldSpec {
                olen: 130,
                clen: 11,
            },
        ]
    }

    /// Reference: recompute the fold from the raw history.
    fn fold_reference(history: &[bool], spec: FoldSpec) -> u32 {
        let mut f = Fold::new(spec);
        let mut past: Vec<u32> = Vec::new();
        for &b in history {
            let out = if past.len() >= spec.olen as usize {
                past[past.len() - spec.olen as usize]
            } else {
                0
            };
            f.push(u32::from(b), out);
            past.push(u32::from(b));
        }
        f.comp
    }

    #[test]
    fn folds_match_reference_recomputation() {
        let mut h = HistoryState::new(&specs());
        let mut raw = Vec::new();
        let mut x = 0x12345u64;
        for _ in 0..1000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let b = (x >> 62) & 1 == 1;
            h.push(b);
            raw.push(b);
        }
        for (i, s) in specs().iter().enumerate() {
            assert_eq!(h.folded(i), fold_reference(&raw, *s), "fold {i}");
        }
    }

    #[test]
    fn checkpoint_restore_round_trips() {
        let mut h = HistoryState::new(&specs());
        for i in 0..300 {
            h.push(i % 3 == 0);
        }
        let cp = h.checkpoint();
        let saved: Vec<u32> = (0..h.num_folds()).map(|i| h.folded(i)).collect();
        // Wrong-path pushes.
        for i in 0..50 {
            h.push(i % 2 == 0);
        }
        h.restore(&cp);
        let now: Vec<u32> = (0..h.num_folds()).map(|i| h.folded(i)).collect();
        assert_eq!(saved, now);
        assert_eq!(h.position(), 300);
    }

    #[test]
    fn restore_then_divergent_future_stays_consistent() {
        // After restore, pushing the *correct* outcomes must give the same
        // folds as a history that never went down the wrong path.
        let mut a = HistoryState::new(&specs());
        let mut b = HistoryState::new(&specs());
        let outcome = |i: u64| (i * 2654435761) % 7 < 3;
        for i in 0..400 {
            a.push(outcome(i));
            b.push(outcome(i));
        }
        let cp = a.checkpoint();
        for i in 0..60 {
            a.push(i % 2 == 1); // wrong path
        }
        a.restore(&cp);
        for i in 400..900 {
            a.push(outcome(i));
            b.push(outcome(i));
        }
        for i in 0..a.num_folds() {
            assert_eq!(a.folded(i), b.folded(i), "fold {i} diverged after restore");
        }
    }

    #[test]
    fn recent_returns_lsb_most_recent() {
        let mut h = HistoryState::new(&specs());
        h.push(true);
        h.push(false);
        h.push(true); // history (new→old): 1,0,1
        assert_eq!(h.recent(3), 0b101);
        assert_eq!(h.recent(2), 0b01);
        assert_eq!(h.recent(1), 0b1);
    }

    #[test]
    fn different_histories_give_different_folds() {
        let mut a = HistoryState::new(&specs());
        let mut b = HistoryState::new(&specs());
        for i in 0..64 {
            a.push(i % 2 == 0);
            b.push(i % 3 == 0);
        }
        assert_ne!(a.folded(2), b.folded(2));
    }

    #[test]
    #[should_panic(expected = "too large")]
    fn oversized_history_rejected() {
        let _ = HistoryState::new(&[FoldSpec {
            olen: 5000,
            clen: 12,
        }]);
    }
}
