//! ITTAGE: indirect-target predictor with tagged geometric history tables
//! (Seznec, JWAC-2 2011). Used at 64 KB as the main indirect predictor and
//! at 4 KB as UCP's alternate-path indirect predictor (Alt-Ind).

use crate::history::{FoldSpec, HistoryState};
use sim_isa::Addr;

/// Upper bound on tagged tables.
pub const MAX_ITT_TABLES: usize = 10;

/// Geometry of an ITTAGE predictor.
#[derive(Clone, Debug)]
pub struct IttageParams {
    /// Number of tagged tables.
    pub num_tables: usize,
    /// log2 entries per tagged table.
    pub log_entries: u32,
    /// Tag width in bits.
    pub tag_bits: u32,
    /// Geometric path-history lengths.
    pub hist_len: Vec<u32>,
    /// log2 entries of the pc-indexed base table.
    pub log_base: u32,
}

impl IttageParams {
    /// ~54 KB main indirect predictor (Table II).
    pub fn main_64k() -> Self {
        IttageParams {
            num_tables: 8,
            log_entries: 10,
            tag_bits: 13,
            hist_len: vec![4, 8, 15, 28, 52, 97, 181, 340],
            log_base: 12,
        }
    }

    /// ~4 KB alternate indirect predictor (Alt-Ind, §IV-F).
    pub fn alt_4k() -> Self {
        IttageParams {
            num_tables: 4,
            log_entries: 7,
            tag_bits: 9,
            hist_len: vec![4, 12, 36, 108],
            log_base: 9,
        }
    }

    /// Fold specs for a [`HistoryState`] (3 per table).
    pub fn fold_specs(&self) -> Vec<FoldSpec> {
        let mut v = Vec::with_capacity(self.num_tables * 3);
        for &olen in &self.hist_len {
            v.push(FoldSpec {
                olen,
                clen: self.log_entries,
            });
            v.push(FoldSpec {
                olen,
                clen: self.tag_bits,
            });
            v.push(FoldSpec {
                olen,
                clen: self.tag_bits - 1,
            });
        }
        v
    }
}

#[derive(Clone, Copy, Debug, Default)]
struct IttEntry {
    tag: u16,
    target: Addr,
    ctr: u8, // 2-bit confidence
    u: u8,   // 2-bit usefulness
}

#[derive(Clone, Copy, Debug, Default)]
struct BaseEntry {
    target: Addr,
    ctr: u8,
}

/// One ITTAGE prediction, kept for the update.
#[derive(Clone, Copy, Debug)]
pub struct IttagePrediction {
    /// Predicted target, if any component has one.
    pub target: Option<Addr>,
    /// Providing table (−1 = base table).
    pub provider: i8,
    /// Provider confidence counter (0..=3).
    pub ctr: u8,
    indices: [u16; MAX_ITT_TABLES],
    tags: [u16; MAX_ITT_TABLES],
    base_idx: u32,
}

/// The ITTAGE predictor. Path history lives in a caller-owned
/// [`HistoryState`]; push two target bits per taken control transfer with
/// [`push_target_history`].
#[derive(Clone, Debug)]
pub struct Ittage {
    params: IttageParams,
    tables: Vec<Vec<IttEntry>>,
    base: Vec<BaseEntry>,
    lfsr: u32,
    updates: u64,
}

/// Pushes the canonical two target bits for a taken control transfer into
/// an ITTAGE path history.
pub fn push_target_history(hist: &mut HistoryState, target: Addr) {
    // Aligned code means the low target bits are constant; mix higher bits
    // down so distinct targets produce distinct history bits.
    let h = (target.raw() >> 2).wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 56;
    hist.push(h & 1 == 1);
    hist.push((h >> 1) & 1 == 1);
}

impl Ittage {
    /// Creates an empty predictor.
    ///
    /// # Panics
    ///
    /// Panics on inconsistent parameters.
    pub fn new(params: IttageParams) -> Self {
        assert_eq!(params.hist_len.len(), params.num_tables);
        assert!(params.num_tables <= MAX_ITT_TABLES);
        Ittage {
            tables: vec![vec![IttEntry::default(); 1 << params.log_entries]; params.num_tables],
            base: vec![BaseEntry::default(); 1 << params.log_base],
            lfsr: 0xBEEF_5678,
            updates: 0,
            params,
        }
    }

    /// The geometry.
    pub fn params(&self) -> &IttageParams {
        &self.params
    }

    /// Builds a history with this predictor's fold layout.
    pub fn new_history(&self) -> HistoryState {
        HistoryState::new(&self.params.fold_specs())
    }

    #[inline]
    fn index(&self, pc: Addr, hist: &HistoryState, t: usize) -> u16 {
        let pcs = pc.raw() >> 2;
        let mask = (1u64 << self.params.log_entries) - 1;
        let h = u64::from(hist.folded(t * 3));
        ((pcs ^ (pcs >> 5) ^ h) & mask) as u16
    }

    #[inline]
    fn tag(&self, pc: Addr, hist: &HistoryState, t: usize) -> u16 {
        let pcs = pc.raw() >> 2;
        let mask = (1u64 << self.params.tag_bits) - 1;
        let h1 = u64::from(hist.folded(t * 3 + 1));
        let h2 = u64::from(hist.folded(t * 3 + 2));
        ((pcs ^ h1 ^ (h2 << 1)) & mask) as u16
    }

    /// Predicts the target of the indirect branch at `pc`.
    pub fn predict(&self, hist: &HistoryState, pc: Addr) -> IttagePrediction {
        let n = self.params.num_tables;
        let mut indices = [0u16; MAX_ITT_TABLES];
        let mut tags = [0u16; MAX_ITT_TABLES];
        let mut provider: i8 = -1;
        for t in 0..n {
            indices[t] = self.index(pc, hist, t);
            tags[t] = self.tag(pc, hist, t);
            let e = &self.tables[t][indices[t] as usize];
            if !e.target.is_null() && e.tag == tags[t] {
                provider = t as i8;
            }
        }
        let base_idx = ((pc.raw() >> 2) & ((1 << self.params.log_base) - 1)) as u32;
        if provider >= 0 {
            let e = &self.tables[provider as usize][indices[provider as usize] as usize];
            // Weak entries fall back to the base table if it has a target.
            if e.ctr == 0 && !self.base[base_idx as usize].target.is_null() {
                return IttagePrediction {
                    target: Some(self.base[base_idx as usize].target),
                    provider: -1,
                    ctr: self.base[base_idx as usize].ctr,
                    indices,
                    tags,
                    base_idx,
                };
            }
            return IttagePrediction {
                target: Some(e.target),
                provider,
                ctr: e.ctr,
                indices,
                tags,
                base_idx,
            };
        }
        let b = &self.base[base_idx as usize];
        IttagePrediction {
            target: (!b.target.is_null()).then_some(b.target),
            provider: -1,
            ctr: b.ctr,
            indices,
            tags,
            base_idx,
        }
    }

    #[inline]
    fn next_rand(&mut self) -> u32 {
        let mut x = self.lfsr;
        x ^= x << 13;
        x ^= x >> 17;
        x ^= x << 5;
        self.lfsr = x;
        x
    }

    /// Trains with the resolved target.
    pub fn update(&mut self, _pc: Addr, pred: &IttagePrediction, actual: Addr) {
        self.updates += 1;
        if self.updates.is_multiple_of(64 * 1024) {
            for t in &mut self.tables {
                for e in t.iter_mut() {
                    e.u >>= 1;
                }
            }
        }
        let correct = pred.target == Some(actual);
        let n = self.params.num_tables;

        // Provider update.
        if pred.provider >= 0 {
            let p = pred.provider as usize;
            let e = &mut self.tables[p][pred.indices[p] as usize];
            if e.target == actual {
                e.ctr = (e.ctr + 1).min(3);
                e.u = (e.u + 1).min(3);
            } else if e.ctr > 0 {
                e.ctr -= 1;
                e.u = e.u.saturating_sub(1);
            } else {
                e.target = actual;
                e.ctr = 1;
            }
        }
        // Base table always trains.
        {
            let b = &mut self.base[pred.base_idx as usize];
            if b.target == actual {
                b.ctr = (b.ctr + 1).min(3);
            } else if b.ctr > 0 {
                b.ctr -= 1;
            } else {
                b.target = actual;
                b.ctr = 1;
            }
        }
        // Allocate a longer entry on a wrong target.
        if !correct {
            let start = (pred.provider + 1) as usize;
            if start < n {
                let skip = (self.next_rand() as usize) % 2;
                let mut j = (start + skip).min(n - 1);
                let mut allocated = false;
                while j < n {
                    let e = &mut self.tables[j][pred.indices[j] as usize];
                    if e.u == 0 {
                        *e = IttEntry {
                            tag: pred.tags[j],
                            target: actual,
                            ctr: 1,
                            u: 0,
                        };
                        allocated = true;
                        break;
                    }
                    j += 1;
                }
                if !allocated {
                    for j in start..n {
                        let e = &mut self.tables[j][pred.indices[j] as usize];
                        e.u = e.u.saturating_sub(1);
                    }
                }
            }
        }
    }

    /// Storage in bits (targets accounted as 24-bit compressed, as real
    /// implementations store region-relative targets).
    pub fn storage_bits(&self) -> u64 {
        let per = u64::from(self.params.tag_bits) + 24 + 2 + 2;
        let tagged = self.params.num_tables as u64 * (1u64 << self.params.log_entries) * per;
        let base = (1u64 << self.params.log_base) * 26;
        tagged + base
    }

    /// Storage in KiB.
    pub fn storage_kb(&self) -> f64 {
        self.storage_bits() as f64 / 8192.0
    }

    /// Serializes the mutable state (tagged tables, base table, allocator
    /// LFSR, update counter).
    pub fn save_state(&self, w: &mut sim_isa::StateWriter) {
        w.put_usize(self.tables.len());
        for t in &self.tables {
            w.put_usize(t.len());
            for e in t {
                w.put_u16(e.tag);
                w.put_addr(e.target);
                w.put_u8(e.ctr);
                w.put_u8(e.u);
            }
        }
        w.put_usize(self.base.len());
        for b in &self.base {
            w.put_addr(b.target);
            w.put_u8(b.ctr);
        }
        w.put_u32(self.lfsr);
        w.put_u64(self.updates);
    }

    /// Restores state written by [`Ittage::save_state`].
    pub fn restore_state(&mut self, r: &mut sim_isa::StateReader) {
        let nt = r.get_usize();
        assert_eq!(nt, self.tables.len(), "ITTAGE table-count mismatch");
        for t in &mut self.tables {
            let ne = r.get_usize();
            assert_eq!(ne, t.len(), "ITTAGE table geometry mismatch");
            for e in t.iter_mut() {
                e.tag = r.get_u16();
                e.target = r.get_addr();
                e.ctr = r.get_u8();
                e.u = r.get_u8();
            }
        }
        let nb = r.get_usize();
        assert_eq!(nb, self.base.len(), "ITTAGE base geometry mismatch");
        for b in &mut self.base {
            b.target = r.get_addr();
            b.ctr = r.get_u8();
        }
        self.lfsr = r.get_u32();
        self.updates = r.get_u64();
    }
}

impl IttagePrediction {
    /// Serializes a prediction held by an in-flight branch record.
    pub fn save_state(&self, w: &mut sim_isa::StateWriter) {
        match self.target {
            Some(t) => {
                w.put_bool(true);
                w.put_addr(t);
            }
            None => w.put_bool(false),
        }
        w.put_i8(self.provider);
        w.put_u8(self.ctr);
        for i in self.indices {
            w.put_u16(i);
        }
        for t in self.tags {
            w.put_u16(t);
        }
        w.put_u32(self.base_idx);
    }

    /// Decodes a prediction written by [`IttagePrediction::save_state`].
    pub fn load_state(r: &mut sim_isa::StateReader) -> Self {
        let target = r.get_bool().then(|| r.get_addr());
        let provider = r.get_i8();
        let ctr = r.get_u8();
        let mut indices = [0u16; MAX_ITT_TABLES];
        for i in &mut indices {
            *i = r.get_u16();
        }
        let mut tags = [0u16; MAX_ITT_TABLES];
        for t in &mut tags {
            *t = r.get_u16();
        }
        let base_idx = r.get_u32();
        IttagePrediction {
            target,
            provider,
            ctr,
            indices,
            tags,
            base_idx,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fresh() -> (Ittage, HistoryState) {
        let i = Ittage::new(IttageParams::alt_4k());
        let h = i.new_history();
        (i, h)
    }

    #[test]
    fn cold_predicts_nothing() {
        let (i, h) = fresh();
        assert_eq!(i.predict(&h, Addr::new(0x100)).target, None);
    }

    #[test]
    fn learns_monomorphic_target() {
        let (mut i, mut h) = fresh();
        let pc = Addr::new(0x100);
        let t = Addr::new(0x4000);
        for _ in 0..20 {
            let p = i.predict(&h, pc);
            i.update(pc, &p, t);
            push_target_history(&mut h, t);
        }
        assert_eq!(i.predict(&h, pc).target, Some(t));
    }

    #[test]
    fn learns_history_correlated_targets() {
        // Target alternates A,B,A,B — pure pc indexing can't exceed 50%,
        // path history disambiguates.
        let (mut i, mut h) = fresh();
        let pc = Addr::new(0x200);
        let a = Addr::new(0x5000);
        let b = Addr::new(0x6000);
        let mut correct = 0;
        for k in 0..3000u32 {
            let t = if k % 2 == 0 { a } else { b };
            let p = i.predict(&h, pc);
            if k >= 1500 && p.target == Some(t) {
                correct += 1;
            }
            i.update(pc, &p, t);
            push_target_history(&mut h, t);
        }
        assert!(
            correct > 1350,
            "alternating targets must be learned: {correct}/1500"
        );
    }

    #[test]
    fn scrambled_targets_stay_hard() {
        let (mut i, mut h) = fresh();
        let pc = Addr::new(0x300);
        let targets: Vec<Addr> = (0..8).map(|k| Addr::new(0x7000 + k * 0x100)).collect();
        let mut x = 0x1234_5678_9abc_def0u64;
        let mut correct = 0;
        for k in 0..4000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let t = targets[(x % 8) as usize];
            let p = i.predict(&h, pc);
            if k >= 2000 && p.target == Some(t) {
                correct += 1;
            }
            i.update(pc, &p, t);
            push_target_history(&mut h, t);
        }
        let acc = correct as f64 / 2000.0;
        assert!(acc < 0.5, "8-way scramble must stay hard: {acc}");
    }

    #[test]
    fn storage_budgets() {
        let main = Ittage::new(IttageParams::main_64k());
        assert!(
            (40.0..70.0).contains(&main.storage_kb()),
            "{}",
            main.storage_kb()
        );
        let alt = Ittage::new(IttageParams::alt_4k());
        assert!(
            (2.0..5.0).contains(&alt.storage_kb()),
            "{}",
            alt.storage_kb()
        );
    }
}
