//! TAGE-SC-L: the composite conditional predictor (TAGE + statistical
//! corrector + loop predictor), with full provider attribution.
//!
//! Provider attribution drives the paper's Figs. 6, 7 and 9: every
//! prediction reports whether it came from the bimodal table (and whether
//! the bimodal had missed recently), the HitBank, the AltBank, the loop
//! predictor or the statistical corrector.

use crate::history::{HistCheckpoint, HistoryState};
use crate::loop_pred::{LoopPrediction, LoopPredictor};
use crate::sc::{Sc, ScParams, ScPrediction};
use crate::tage::{Tage, TageParams, TagePrediction, TageProvider};
use serde::{Deserialize, Serialize};
use sim_isa::Addr;

/// Which TAGE-SC-L component provided the final direction — the categories
/// of the paper's Figs. 6 and 7.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Provider {
    /// Bimodal, with no miss among its last 8 predictions.
    Bimodal,
    /// Bimodal, with ≥1 miss among its last 8 predictions
    /// (`bimodal >1in8` in the paper).
    BimodalLow8,
    /// Longest matching tagged table.
    HitBank,
    /// Second-longest matching tagged table.
    AltBank,
    /// Loop predictor.
    LoopPred,
    /// Statistical corrector (reverted TAGE).
    Sc,
}

impl Provider {
    /// All providers, in the paper's Fig. 7 order.
    pub const ALL: [Provider; 6] = [
        Provider::HitBank,
        Provider::AltBank,
        Provider::Bimodal,
        Provider::BimodalLow8,
        Provider::Sc,
        Provider::LoopPred,
    ];
}

impl std::fmt::Display for Provider {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Provider::Bimodal => "bimodal",
            Provider::BimodalLow8 => "bimodal(>1in8)",
            Provider::HitBank => "HitBank",
            Provider::AltBank => "AltBank",
            Provider::LoopPred => "LP",
            Provider::Sc => "SC",
        };
        f.write_str(s)
    }
}

/// Size presets for the composite predictor.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum SclPreset {
    /// 64 KB main predictor (Table II).
    Main64K,
    /// 8 KB alternate-path predictor (Alt-BP, §IV-F).
    Alt8K,
    /// 128 KB predictor (Fig. 16's `TAGE-SC-Lx2`).
    Big128K,
}

/// One complete TAGE-SC-L prediction with provider attribution and all the
/// state needed for the eventual update.
#[derive(Clone, Copy, Debug)]
pub struct SclPrediction {
    /// Final predicted direction.
    pub taken: bool,
    /// Final provider.
    pub provider: Provider,
    /// Underlying TAGE detail.
    pub tage: TagePrediction,
    /// Underlying SC detail (its `sum` feeds Fig. 6b).
    pub sc: ScPrediction,
    /// Underlying loop-predictor detail.
    pub lp: LoopPrediction,
    /// The bimodal's last-8 register held ≥1 miss at prediction time
    /// (needed by the baseline TAGE-Conf estimator regardless of the final
    /// provider).
    pub bim_low8: bool,
}

impl SclPrediction {
    /// The provider counter value used for confidence bucketing: the TAGE
    /// provider counter for TAGE/bimodal providers, the SC sum for SC, the
    /// loop confidence for LP.
    pub fn confidence_value(&self) -> i32 {
        match self.provider {
            Provider::Sc => self.sc.sum,
            Provider::LoopPred => i32::from(self.lp.conf),
            _ => i32::from(self.tage.provider_ctr),
        }
    }
}

/// The TAGE-SC-L composite. Tables live here; speculative history lives in
/// a caller-owned [`HistoryState`] (see [`TageScL::new_history`]), so the
/// UCP engine can run an alternate-path history against the same tables.
#[derive(Clone, Debug)]
pub struct TageScL {
    tage: Tage,
    sc: Sc,
    lp: LoopPredictor,
    /// Correctness of the last 8 bimodal-provided predictions (bit set =
    /// misprediction).
    bim_miss_hist: u8,
    sc_fold_base: usize,
    preset: SclPreset,
}

impl TageScL {
    /// Creates a predictor of the given size class.
    pub fn new(preset: SclPreset) -> Self {
        let (tp, sp, lp) = match preset {
            SclPreset::Main64K => (
                TageParams::main_64k(),
                ScParams::main_64k(),
                LoopPredictor::default_64_entry(),
            ),
            SclPreset::Alt8K => (
                TageParams::alt_8k(),
                ScParams::alt_8k(),
                LoopPredictor::new(8, 4),
            ),
            SclPreset::Big128K => (
                TageParams::big_128k(),
                ScParams::big_128k(),
                LoopPredictor::default_64_entry(),
            ),
        };
        let sc_fold_base = tp.fold_specs().len();
        TageScL {
            tage: Tage::new(tp),
            sc: Sc::new(sp),
            lp,
            bim_miss_hist: 0,
            sc_fold_base,
            preset,
        }
    }

    /// The preset this predictor was built with.
    pub fn preset(&self) -> SclPreset {
        self.preset
    }

    /// Builds a [`HistoryState`] with this predictor's fold layout
    /// (TAGE folds first, then SC folds).
    pub fn new_history(&self) -> HistoryState {
        let mut specs = self.tage.params().fold_specs();
        specs.extend(self.sc.params().fold_specs());
        HistoryState::new(&specs)
    }

    /// Predicts the conditional branch at `pc` against `hist`.
    pub fn predict(&self, hist: &HistoryState, pc: Addr) -> SclPrediction {
        let tage = self.tage.predict(hist, pc, 0);
        let lp = self.lp.predict(pc);
        // Loop predictor overrides when confident and globally useful.
        if lp.hit && self.lp.useful() {
            // SC is still computed for training and Fig. 6b statistics.
            let sc = self
                .sc
                .predict(hist, pc, self.sc_fold_base, tage.taken, centered(&tage));
            return SclPrediction {
                taken: lp.taken,
                provider: Provider::LoopPred,
                tage,
                sc,
                lp,
                bim_low8: self.bim_miss_hist != 0,
            };
        }
        let sc = self
            .sc
            .predict(hist, pc, self.sc_fold_base, tage.taken, centered(&tage));
        let (taken, provider) = if sc.used {
            (sc.taken, Provider::Sc)
        } else {
            let p = match tage.provider {
                TageProvider::Hit => Provider::HitBank,
                TageProvider::Alt => Provider::AltBank,
                TageProvider::Bimodal => {
                    if self.bim_miss_hist != 0 {
                        Provider::BimodalLow8
                    } else {
                        Provider::Bimodal
                    }
                }
            };
            (tage.taken, p)
        };
        SclPrediction {
            taken,
            provider,
            tage,
            sc,
            lp,
            bim_low8: self.bim_miss_hist != 0,
        }
    }

    /// Trains all components with the resolved outcome. `pred` must be the
    /// value returned by [`TageScL::predict`] for this dynamic branch.
    pub fn update(&mut self, pc: Addr, pred: &SclPrediction, taken: bool) {
        let tage_mispred = pred.tage.taken != taken;
        self.lp.update(pc, taken, pred.tage.taken, tage_mispred);
        self.sc.update(&pred.sc, taken, pred.tage.taken);
        self.tage.update(pc, &pred.tage, taken);
        if matches!(pred.provider, Provider::Bimodal | Provider::BimodalLow8) {
            self.bim_miss_hist = (self.bim_miss_hist << 1) | u8::from(pred.taken != taken);
        }
    }

    /// Convenience: checkpoint the given history (same as
    /// [`HistoryState::checkpoint`]).
    pub fn checkpoint(hist: &HistoryState) -> HistCheckpoint {
        hist.checkpoint()
    }

    /// Total storage in bits.
    pub fn storage_bits(&self) -> u64 {
        self.tage.storage_bits() + self.sc.storage_bits() + self.lp.storage_bits() + 8
    }

    /// Total storage in KiB.
    pub fn storage_kb(&self) -> f64 {
        self.storage_bits() as f64 / 8192.0
    }
}

impl TageScL {
    /// Serializes the composite's mutable state (all three component
    /// predictors plus the bimodal last-8 register). The preset/geometry
    /// is not stored; restore targets must be built with the same preset.
    pub fn save_state(&self, w: &mut sim_isa::StateWriter) {
        self.tage.save_state(w);
        self.sc.save_state(w);
        self.lp.save_state(w);
        w.put_u8(self.bim_miss_hist);
    }

    /// Restores state written by [`TageScL::save_state`].
    pub fn restore_state(&mut self, r: &mut sim_isa::StateReader) {
        self.tage.restore_state(r);
        self.sc.restore_state(r);
        self.lp.restore_state(r);
        self.bim_miss_hist = r.get_u8();
    }
}

impl SclPrediction {
    /// Serializes a prediction held by an in-flight branch record.
    pub fn save_state(&self, w: &mut sim_isa::StateWriter) {
        w.put_bool(self.taken);
        w.put_u8(match self.provider {
            Provider::Bimodal => 0,
            Provider::BimodalLow8 => 1,
            Provider::HitBank => 2,
            Provider::AltBank => 3,
            Provider::LoopPred => 4,
            Provider::Sc => 5,
        });
        self.tage.save_state(w);
        self.sc.save_state(w);
        self.lp.save_state(w);
        w.put_bool(self.bim_low8);
    }

    /// Decodes a prediction written by [`SclPrediction::save_state`].
    pub fn load_state(r: &mut sim_isa::StateReader) -> Self {
        let taken = r.get_bool();
        let provider = match r.get_u8() {
            0 => Provider::Bimodal,
            1 => Provider::BimodalLow8,
            2 => Provider::HitBank,
            3 => Provider::AltBank,
            4 => Provider::LoopPred,
            5 => Provider::Sc,
            b => panic!("checkpoint state corrupt: SCL provider {b}"),
        };
        let tage = TagePrediction::load_state(r);
        let sc = ScPrediction::load_state(r);
        let lp = LoopPrediction::load_state(r);
        let bim_low8 = r.get_bool();
        SclPrediction {
            taken,
            provider,
            tage,
            sc,
            lp,
            bim_low8,
        }
    }
}

#[inline]
fn centered(t: &TagePrediction) -> i32 {
    // Map the provider counter to a signed confidence term. Bimodal
    // counters (−2..=1) are widened to roughly match tagged ones (−4..=3).
    match t.provider {
        TageProvider::Bimodal => (2 * i32::from(t.provider_ctr) + 1) * 2,
        _ => 2 * i32::from(t.provider_ctr) + 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fresh() -> (TageScL, HistoryState) {
        let p = TageScL::new(SclPreset::Alt8K);
        let h = p.new_history();
        (p, h)
    }

    #[test]
    fn storage_budgets_match_paper() {
        let main = TageScL::new(SclPreset::Main64K);
        assert!(
            (52.0..70.0).contains(&main.storage_kb()),
            "64 KB class, got {:.1} KB",
            main.storage_kb()
        );
        let alt = TageScL::new(SclPreset::Alt8K);
        assert!(
            (6.0..9.5).contains(&alt.storage_kb()),
            "8 KB class, got {:.1} KB",
            alt.storage_kb()
        );
        let big = TageScL::new(SclPreset::Big128K);
        assert!(
            big.storage_kb() > 1.8 * main.storage_kb(),
            "128 KB ≈ 2× 64 KB"
        );
    }

    #[test]
    fn cold_prediction_is_bimodal() {
        let (p, h) = fresh();
        let pr = p.predict(&h, Addr::new(0x1000));
        assert!(matches!(
            pr.provider,
            Provider::Bimodal | Provider::BimodalLow8
        ));
    }

    #[test]
    fn learns_biased_branch_to_high_accuracy() {
        let (mut p, mut h) = fresh();
        let pc = Addr::new(0x2000);
        let mut correct = 0;
        for i in 0..2000 {
            let pr = p.predict(&h, pc);
            let outcome = true;
            if i >= 100 && pr.taken == outcome {
                correct += 1;
            }
            p.update(pc, &pr, outcome);
            h.push(outcome);
        }
        assert!(
            correct >= 1899,
            "always-taken must be ~100%: {correct}/1900"
        );
    }

    #[test]
    fn learns_alternating_pattern() {
        let (mut p, mut h) = fresh();
        let pc = Addr::new(0x3000);
        let mut correct = 0;
        for i in 0..4000u32 {
            let outcome = (i / 2) % 2 == 0; // period-4 pattern TTNN
            let pr = p.predict(&h, pc);
            if i >= 2000 && pr.taken == outcome {
                correct += 1;
            }
            p.update(pc, &pr, outcome);
            h.push(outcome);
        }
        assert!(correct > 1800, "period-4 pattern: {correct}/2000");
    }

    #[test]
    fn random_branch_stays_near_chance() {
        let (mut p, mut h) = fresh();
        let pc = Addr::new(0x4000);
        let mut correct = 0;
        let mut x = 88172645463325252u64;
        for i in 0..4000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let outcome = x & 1 == 1;
            let pr = p.predict(&h, pc);
            if i >= 2000 && pr.taken == outcome {
                correct += 1;
            }
            p.update(pc, &pr, outcome);
            h.push(outcome);
        }
        let acc = correct as f64 / 2000.0;
        assert!(acc < 0.65, "xorshift branch must stay hard: {acc}");
    }

    #[test]
    fn provider_attribution_covers_tagged_banks() {
        let (mut p, mut h) = fresh();
        let mut saw_hitbank = false;
        // Train several pattern branches to populate tagged tables.
        for i in 0..6000u32 {
            let pc = Addr::new(0x5000 + u64::from(i % 8) * 4);
            let outcome = (i / (1 + i % 3)) % 2 == 0;
            let pr = p.predict(&h, pc);
            if pr.provider == Provider::HitBank {
                saw_hitbank = true;
            }
            p.update(pc, &pr, outcome);
            h.push(outcome);
        }
        assert!(
            saw_hitbank,
            "trained predictor must produce HitBank predictions"
        );
    }

    #[test]
    fn confidence_value_tracks_provider() {
        let (p, h) = fresh();
        let pr = p.predict(&h, Addr::new(0x100));
        // Cold bimodal: ctr 0.
        assert_eq!(pr.confidence_value(), 0);
    }

    #[test]
    fn checkpoint_restore_respects_predictions() {
        let (mut p, mut h) = fresh();
        let pc = Addr::new(0x700);
        for i in 0..500u32 {
            let pr = p.predict(&h, pc);
            let outcome = i % 2 == 0;
            p.update(pc, &pr, outcome);
            h.push(outcome);
        }
        let cp = h.checkpoint();
        let before = p.predict(&h, pc).taken;
        // Wrong-path speculation.
        for _ in 0..10 {
            h.push(true);
        }
        h.restore(&cp);
        let after = p.predict(&h, pc).taken;
        assert_eq!(
            before, after,
            "restore must reproduce the pre-speculation prediction"
        );
    }
}
