//! Statistical corrector (the SC in TAGE-SC-L): a GEHL-style adder tree
//! that can revert TAGE's direction when the statistical evidence against
//! it is strong.

use crate::history::{FoldSpec, HistoryState};
use sim_isa::Addr;

/// Upper bound on SC tables.
pub const MAX_SC_TABLES: usize = 8;

const CTR_MAX: i8 = 31;
const CTR_MIN: i8 = -32;

/// Geometry of the statistical corrector.
#[derive(Clone, Debug)]
pub struct ScParams {
    /// Number of global-history GEHL tables.
    pub num_tables: usize,
    /// log2 entries per table.
    pub log_entries: u32,
    /// History length per table.
    pub hist_len: Vec<u32>,
    /// log2 entries of the (pc, tage-direction)-indexed bias table.
    pub log_bias: u32,
}

impl ScParams {
    /// ~5.4 KB corrector for the 64 KB TAGE-SC-L.
    pub fn main_64k() -> Self {
        ScParams {
            num_tables: 6,
            log_entries: 10,
            hist_len: vec![3, 6, 12, 21, 36, 60],
            log_bias: 10,
        }
    }

    /// ~0.8 KB corrector for the 8 KB alternate TAGE-SC-L.
    pub fn alt_8k() -> Self {
        ScParams {
            num_tables: 3,
            log_entries: 8,
            hist_len: vec![4, 10, 24],
            log_bias: 8,
        }
    }

    /// ~10.8 KB corrector for the 128 KB TAGE-SC-L.
    pub fn big_128k() -> Self {
        ScParams {
            num_tables: 6,
            log_entries: 11,
            hist_len: vec![3, 6, 12, 21, 36, 60],
            log_bias: 11,
        }
    }

    /// Fold specs this corrector needs (one per GEHL table).
    pub fn fold_specs(&self) -> Vec<FoldSpec> {
        self.hist_len
            .iter()
            .map(|&olen| FoldSpec {
                olen,
                clen: self.log_entries,
            })
            .collect()
    }
}

/// One SC decision, kept by the pipeline for the update.
#[derive(Clone, Copy, Debug)]
pub struct ScPrediction {
    /// Signed sum of the adder tree (TAGE-biased); the paper's Fig. 6b
    /// buckets its absolute value.
    pub sum: i32,
    /// SC's direction (`sum >= 0`).
    pub taken: bool,
    /// SC disagreed with TAGE *and* cleared the confidence threshold, so
    /// its direction is the final prediction.
    pub used: bool,
    pub(crate) indices: [u16; MAX_SC_TABLES],
    pub(crate) bias_idx: u32,
}

/// The statistical corrector.
#[derive(Clone, Debug)]
pub struct Sc {
    params: ScParams,
    tables: Vec<Vec<i8>>,
    bias: Vec<i8>,
    /// Dynamic use threshold.
    thr: i32,
    /// Threshold-training counter.
    tc: i8,
}

impl Sc {
    /// Creates an empty corrector.
    ///
    /// # Panics
    ///
    /// Panics on inconsistent parameters.
    pub fn new(params: ScParams) -> Self {
        assert_eq!(params.hist_len.len(), params.num_tables);
        assert!(params.num_tables <= MAX_SC_TABLES);
        Sc {
            tables: vec![vec![0; 1 << params.log_entries]; params.num_tables],
            bias: vec![0; 1 << params.log_bias],
            thr: 12,
            tc: 0,
            params,
        }
    }

    /// The geometry.
    pub fn params(&self) -> &ScParams {
        &self.params
    }

    #[inline]
    fn index(&self, pc: Addr, hist: &HistoryState, t: usize, fold_base: usize) -> u16 {
        let pcs = pc.raw() >> 2;
        let mask = (1u64 << self.params.log_entries) - 1;
        let h = u64::from(hist.folded(fold_base + t));
        ((pcs ^ h ^ (t as u64 * 0x9e37)) & mask) as u16
    }

    #[inline]
    fn bias_index(&self, pc: Addr, tage_taken: bool) -> u32 {
        let pcs = pc.raw() >> 2;
        let mask = (1u64 << self.params.log_bias) - 1;
        (((pcs << 1) | u64::from(tage_taken)) & mask) as u32
    }

    /// Computes the SC decision. `tage_centered` is the TAGE provider
    /// counter mapped to a signed "confidence" term (`2*ctr + 1`, in
    /// `-7..=7` for tagged counters).
    pub fn predict(
        &self,
        hist: &HistoryState,
        pc: Addr,
        fold_base: usize,
        tage_taken: bool,
        tage_centered: i32,
    ) -> ScPrediction {
        let mut indices = [0u16; MAX_SC_TABLES];
        let mut sum: i32 = tage_centered * 6;
        let bias_idx = self.bias_index(pc, tage_taken);
        sum += 2 * i32::from(self.bias[bias_idx as usize]) + 1;
        for (t, slot) in indices.iter_mut().enumerate().take(self.params.num_tables) {
            let i = self.index(pc, hist, t, fold_base);
            *slot = i;
            sum += 2 * i32::from(self.tables[t][i as usize]) + 1;
        }
        let taken = sum >= 0;
        let used = taken != tage_taken && sum.unsigned_abs() as i32 >= self.thr;
        ScPrediction {
            sum,
            taken,
            used,
            indices,
            bias_idx,
        }
    }

    /// Trains the corrector with the resolved outcome.
    pub fn update(&mut self, p: &ScPrediction, taken: bool, tage_taken: bool) {
        // Adaptive threshold: learn from disagreements.
        if p.taken != tage_taken {
            if p.taken == taken {
                self.tc = (self.tc - 1).max(-64);
            } else {
                self.tc = (self.tc + 1).min(63);
            }
            if self.tc == 63 {
                self.thr = (self.thr + 2).min(120);
                self.tc = 0;
            } else if self.tc == -64 {
                self.thr = (self.thr - 2).max(4);
                self.tc = 0;
            }
        }
        // GEHL update rule: train on a wrong final direction or a weak sum.
        let final_taken = if p.used { p.taken } else { tage_taken };
        if final_taken != taken || p.sum.unsigned_abs() as i32 <= self.thr * 3 {
            let b = &mut self.bias[p.bias_idx as usize];
            *b = bump6(*b, taken);
            for t in 0..self.params.num_tables {
                let c = &mut self.tables[t][p.indices[t] as usize];
                *c = bump6(*c, taken);
            }
        }
    }

    /// Storage in bits: 6-bit counters plus the threshold machinery.
    pub fn storage_bits(&self) -> u64 {
        let gehl = self.params.num_tables as u64 * (1u64 << self.params.log_entries) * 6;
        let bias = (1u64 << self.params.log_bias) * 6;
        gehl + bias + 16
    }
}

impl Sc {
    /// Serializes the mutable state (GEHL tables, bias table, dynamic
    /// threshold).
    pub fn save_state(&self, w: &mut sim_isa::StateWriter) {
        w.put_usize(self.tables.len());
        for t in &self.tables {
            w.put_usize(t.len());
            for &c in t {
                w.put_i8(c);
            }
        }
        w.put_usize(self.bias.len());
        for &b in &self.bias {
            w.put_i8(b);
        }
        w.put_i32(self.thr);
        w.put_i8(self.tc);
    }

    /// Restores state written by [`Sc::save_state`].
    pub fn restore_state(&mut self, r: &mut sim_isa::StateReader) {
        let nt = r.get_usize();
        assert_eq!(nt, self.tables.len(), "SC table-count mismatch");
        for t in &mut self.tables {
            let ne = r.get_usize();
            assert_eq!(ne, t.len(), "SC table geometry mismatch");
            for c in t.iter_mut() {
                *c = r.get_i8();
            }
        }
        let nb = r.get_usize();
        assert_eq!(nb, self.bias.len(), "SC bias geometry mismatch");
        for b in &mut self.bias {
            *b = r.get_i8();
        }
        self.thr = r.get_i32();
        self.tc = r.get_i8();
    }
}

impl ScPrediction {
    /// Serializes a prediction held by an in-flight branch record.
    pub fn save_state(&self, w: &mut sim_isa::StateWriter) {
        w.put_i32(self.sum);
        w.put_bool(self.taken);
        w.put_bool(self.used);
        for i in self.indices {
            w.put_u16(i);
        }
        w.put_u32(self.bias_idx);
    }

    /// Decodes a prediction written by [`ScPrediction::save_state`].
    pub fn load_state(r: &mut sim_isa::StateReader) -> Self {
        let sum = r.get_i32();
        let taken = r.get_bool();
        let used = r.get_bool();
        let mut indices = [0u16; MAX_SC_TABLES];
        for i in &mut indices {
            *i = r.get_u16();
        }
        let bias_idx = r.get_u32();
        ScPrediction {
            sum,
            taken,
            used,
            indices,
            bias_idx,
        }
    }
}

#[inline]
fn bump6(c: i8, taken: bool) -> i8 {
    if taken {
        (c + 1).min(CTR_MAX)
    } else {
        (c - 1).max(CTR_MIN)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sc_and_hist() -> (Sc, HistoryState) {
        let sc = Sc::new(ScParams::alt_8k());
        let h = HistoryState::new(&sc.params().fold_specs());
        (sc, h)
    }

    #[test]
    fn cold_sc_agrees_with_tage() {
        let (sc, h) = sc_and_hist();
        let p = sc.predict(&h, Addr::new(0x100), 0, true, 7);
        assert!(!p.used, "cold SC must not override a confident TAGE");
        assert!(p.taken);
    }

    #[test]
    fn sc_learns_to_revert_a_consistently_wrong_tage() {
        let (mut sc, mut h) = sc_and_hist();
        let pc = Addr::new(0x204);
        // TAGE keeps saying taken (weak counter), reality is not-taken.
        for _ in 0..300 {
            let p = sc.predict(&h, pc, 0, true, 1);
            sc.update(&p, false, true);
            h.push(false);
        }
        let p = sc.predict(&h, pc, 0, true, 1);
        assert!(p.used, "SC must now override (sum {})", p.sum);
        assert!(!p.taken);
    }

    #[test]
    fn strong_tage_term_resists_noise() {
        let (sc, h) = sc_and_hist();
        // Saturated TAGE counter → centered 7 → +42 bias toward TAGE.
        let p = sc.predict(&h, Addr::new(0x300), 0, false, -7);
        assert!(!p.taken);
        assert!(p.sum < 0);
    }

    #[test]
    fn update_moves_sum_toward_outcome() {
        let (mut sc, h) = sc_and_hist();
        let pc = Addr::new(0x400);
        let before = sc.predict(&h, pc, 0, true, 0).sum;
        for _ in 0..10 {
            let p = sc.predict(&h, pc, 0, true, 0);
            sc.update(&p, true, true);
        }
        let after = sc.predict(&h, pc, 0, true, 0).sum;
        assert!(after > before, "{after} vs {before}");
    }

    #[test]
    fn storage_accounting() {
        let main = Sc::new(ScParams::main_64k());
        let kb = main.storage_bits() as f64 / 8192.0;
        assert!((4.0..7.0).contains(&kb), "main SC ≈ 5.4 KB, got {kb}");
        let alt = Sc::new(ScParams::alt_8k());
        assert!(alt.storage_bits() / 8192 < 2);
    }
}
