//! Hard-to-predict (H2P) branch classification from branch-predictor
//! confidence.
//!
//! Two estimators, as compared in the paper's Fig. 9 and Fig. 12b:
//!
//! * [`TageConf`] — Seznec's storage-free TAGE confidence (HPCA 2011): a
//!   prediction is high-confidence iff the providing counter is saturated,
//!   except when the bimodal provides and mispredicted within its last 8
//!   predictions. It does not distinguish HitBank from AltBank and knows
//!   nothing about SC or LP.
//! * [`UcpConf`] — the paper's §IV-A extension: AltBank and SC providers
//!   are always low-confidence, LP is always high-confidence, and
//!   HitBank/bimodal use counter saturation (plus the >1-in-8 rule).
//!
//! Both are stateless views over [`SclPrediction`]; the paper's point is
//! precisely that no extra storage is needed.

use crate::tage::TageProvider;
use crate::tage_sc_l::{Provider, SclPrediction};

/// A classifier that decides whether a conditional-branch prediction is
/// hard to predict (low confidence) and should trigger alternate-path
/// prefetching.
pub trait ConfidenceEstimator: std::fmt::Debug + Send + Sync {
    /// A short display name (`TAGE-Conf`, `UCP-Conf`).
    fn name(&self) -> &'static str;

    /// `true` if this prediction should be treated as H2P.
    fn is_h2p(&self, p: &SclPrediction) -> bool;
}

/// Seznec's original storage-free TAGE confidence estimator.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TageConf;

impl ConfidenceEstimator for TageConf {
    fn name(&self) -> &'static str {
        "TAGE-Conf"
    }

    fn is_h2p(&self, p: &SclPrediction) -> bool {
        // The original heuristic looks only at the TAGE part: saturated
        // provider counter = high confidence, regardless of bank; bimodal
        // additionally requires a clean last-8 record.
        match p.tage.provider {
            TageProvider::Bimodal => !p.tage.provider_saturated() || p.bim_low8,
            TageProvider::Hit | TageProvider::Alt => !p.tage.provider_saturated(),
        }
    }
}

/// The paper's improved confidence estimator (§IV-A).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct UcpConf;

impl ConfidenceEstimator for UcpConf {
    fn name(&self) -> &'static str {
        "UCP-Conf"
    }

    fn is_h2p(&self, p: &SclPrediction) -> bool {
        match p.provider {
            // (1) bimodal with a miss in its last 8 predictions.
            Provider::BimodalLow8 => true,
            // (2) bimodal or HitBank with a non-saturated counter.
            Provider::Bimodal | Provider::HitBank => !p.tage.provider_saturated(),
            // (3) any AltBank prediction.
            Provider::AltBank => true,
            // (4) any SC prediction.
            Provider::Sc => true,
            // LP predictions are high-confidence (<3% miss rate, Fig. 6b).
            Provider::LoopPred => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loop_pred::LoopPrediction;
    use crate::sc::ScPrediction;
    use crate::tage::{TagePrediction, MAX_TABLES};

    fn base_pred(provider: Provider, tage_provider: TageProvider, ctr: i8) -> SclPrediction {
        let tage = TagePrediction {
            taken: true,
            provider: tage_provider,
            provider_ctr: ctr,
            hit_bank: 3,
            alt_bank: 1,
            hit_taken: true,
            alt_taken: true,
            bim_taken: true,
            bim_ctr: 1,
            newly_alloc: false,
            // Private fields are crate-visible in tests via constructor:
            ..dummy_tage()
        };
        SclPrediction {
            taken: true,
            provider,
            tage,
            sc: dummy_sc(),
            lp: LoopPrediction {
                hit: false,
                taken: false,
                conf: 0,
                ..dummy_lp()
            },
            bim_low8: false,
        }
    }

    fn dummy_tage() -> TagePrediction {
        // Build via a real predictor to obtain a valid value.
        let t = crate::tage::Tage::new(crate::tage::TageParams {
            num_tables: 2,
            log_entries: 4,
            tag_bits: 5,
            hist_len: vec![4, 8],
            log_bimodal: 4,
            u_reset_period: 1 << 20,
        });
        let h = t.new_history();
        let _ = MAX_TABLES;
        t.predict(&h, sim_isa::Addr::new(0x40), 0)
    }

    fn dummy_sc() -> ScPrediction {
        let sc = crate::sc::Sc::new(crate::sc::ScParams::alt_8k());
        let h = crate::history::HistoryState::new(&sc.params().fold_specs());
        sc.predict(&h, sim_isa::Addr::new(0x40), 0, true, 0)
    }

    fn dummy_lp() -> LoopPrediction {
        crate::loop_pred::LoopPredictor::new(2, 2).predict(sim_isa::Addr::new(0x40))
    }

    #[test]
    fn ucp_conf_flags_altbank_always() {
        for ctr in [-4i8, -1, 0, 3] {
            let p = base_pred(Provider::AltBank, TageProvider::Alt, ctr);
            assert!(UcpConf.is_h2p(&p), "AltBank ctr {ctr} must be H2P");
        }
    }

    #[test]
    fn ucp_conf_flags_sc_always() {
        let p = base_pred(Provider::Sc, TageProvider::Hit, 3);
        assert!(UcpConf.is_h2p(&p));
    }

    #[test]
    fn ucp_conf_trusts_lp() {
        let p = base_pred(Provider::LoopPred, TageProvider::Hit, 0);
        assert!(!UcpConf.is_h2p(&p));
    }

    #[test]
    fn ucp_conf_saturation_rule_for_hitbank() {
        let sat = base_pred(Provider::HitBank, TageProvider::Hit, 3);
        assert!(!UcpConf.is_h2p(&sat));
        let weak = base_pred(Provider::HitBank, TageProvider::Hit, 1);
        assert!(UcpConf.is_h2p(&weak));
    }

    #[test]
    fn ucp_conf_bimodal_low8() {
        let p = base_pred(Provider::BimodalLow8, TageProvider::Bimodal, 1);
        assert!(UcpConf.is_h2p(&p));
        let clean = base_pred(Provider::Bimodal, TageProvider::Bimodal, 1);
        assert!(
            !UcpConf.is_h2p(&clean),
            "saturated clean bimodal is confident"
        );
    }

    #[test]
    fn tage_conf_does_not_single_out_altbank() {
        // Saturated AltBank counter: TAGE-Conf calls it confident,
        // UCP-Conf calls it H2P. This gap is the paper's coverage win.
        let p = base_pred(Provider::AltBank, TageProvider::Alt, 3);
        assert!(!TageConf.is_h2p(&p));
        assert!(UcpConf.is_h2p(&p));
    }

    #[test]
    fn tage_conf_bimodal_last8_rule() {
        let mut p = base_pred(Provider::Bimodal, TageProvider::Bimodal, 1);
        assert!(!TageConf.is_h2p(&p));
        p.bim_low8 = true;
        assert!(TageConf.is_h2p(&p));
    }

    #[test]
    fn names() {
        assert_eq!(TageConf.name(), "TAGE-Conf");
        assert_eq!(UcpConf.name(), "UCP-Conf");
    }
}
