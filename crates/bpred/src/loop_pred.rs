//! Loop predictor: recognizes branches with a constant trip count and
//! predicts their exit iteration (the L in TAGE-SC-L).

use sim_isa::Addr;

const CONF_MAX: u8 = 7;
const CONF_USE: u8 = 7;

/// Minimum learned trip count before the predictor dares to override
/// TAGE: short loops are in-flight-speculation hazards (see DESIGN.md on
/// the retire-time iteration simplification).
const MIN_TRIP: u16 = 8;

#[derive(Clone, Copy, Debug, Default)]
struct LoopEntry {
    tag: u16,
    valid: bool,
    /// Trip count observed on the last completed trip.
    past_iter: u16,
    /// Iterations observed in the current trip.
    curr_iter: u16,
    /// Confidence that `past_iter` is stable.
    conf: u8,
    /// Age for replacement.
    age: u8,
    /// Body direction (direction taken on non-exit iterations).
    dir: bool,
}

/// A loop-prediction result, kept for the update.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LoopPrediction {
    /// A confident entry produced a prediction.
    pub hit: bool,
    /// Predicted direction (valid when `hit`).
    pub taken: bool,
    /// Entry confidence (for the paper's Fig. 6b buckets).
    pub conf: u8,
    pub(crate) set: u16,
    pub(crate) way: u8,
}

/// Seznec-style loop predictor, 4-way set-associative.
///
/// Iteration state advances at update (retire) time; see DESIGN.md for the
/// speculative-iteration simplification.
#[derive(Clone, Debug)]
pub struct LoopPredictor {
    entries: Vec<LoopEntry>,
    sets: usize,
    ways: usize,
    /// Usefulness of the loop predictor vs TAGE (`WITHLOOP`).
    with_loop: i8,
    tick: u8,
}

impl LoopPredictor {
    /// Creates a loop predictor with `sets` × `ways` entries.
    ///
    /// # Panics
    ///
    /// Panics if `sets` is not a power of two or either dimension is zero.
    pub fn new(sets: usize, ways: usize) -> Self {
        assert!(sets.is_power_of_two() && sets > 0 && ways > 0);
        LoopPredictor {
            entries: vec![LoopEntry::default(); sets * ways],
            sets,
            ways,
            with_loop: -1,
            tick: 0,
        }
    }

    /// Default TAGE-SC-L geometry: 64 entries.
    pub fn default_64_entry() -> Self {
        LoopPredictor::new(16, 4)
    }

    #[inline]
    fn set_and_tag(&self, pc: Addr) -> (usize, u16) {
        let v = pc.raw() >> 2;
        (
            (v as usize) & (self.sets - 1),
            ((v >> self.sets.trailing_zeros()) & 0x3fff) as u16,
        )
    }

    fn find(&self, pc: Addr) -> Option<(usize, usize)> {
        let (set, tag) = self.set_and_tag(pc);
        (0..self.ways).map(|w| (set, w)).find(|&(s, w)| {
            let e = &self.entries[s * self.ways + w];
            e.valid && e.tag == tag
        })
    }

    /// Predicts the branch at `pc`. `hit` is only set when the entry is
    /// confident enough to override TAGE.
    pub fn predict(&self, pc: Addr) -> LoopPrediction {
        if let Some((s, w)) = self.find(pc) {
            let e = &self.entries[s * self.ways + w];
            if e.conf >= CONF_USE && e.past_iter >= MIN_TRIP {
                let exit_now = e.curr_iter + 1 >= e.past_iter;
                return LoopPrediction {
                    hit: true,
                    taken: if exit_now { !e.dir } else { e.dir },
                    conf: e.conf,
                    set: s as u16,
                    way: w as u8,
                };
            }
            return LoopPrediction {
                hit: false,
                taken: e.dir,
                conf: e.conf,
                set: s as u16,
                way: w as u8,
            };
        }
        LoopPrediction {
            hit: false,
            taken: false,
            conf: 0,
            set: u16::MAX,
            way: 0,
        }
    }

    /// `true` when loop predictions should override TAGE (the `WITHLOOP`
    /// usefulness counter is non-negative).
    pub fn useful(&self) -> bool {
        self.with_loop >= 0
    }

    /// Trains on a resolved conditional branch. `tage_taken` is TAGE's
    /// direction for the same instance (trains `WITHLOOP`);
    /// `tage_mispredicted` gates new allocations.
    pub fn update(&mut self, pc: Addr, taken: bool, tage_taken: bool, tage_mispredicted: bool) {
        let (set, tag) = self.set_and_tag(pc);
        if let Some((s, w)) = self.find(pc) {
            let lp = self.predict(pc);
            let e = &mut self.entries[s * self.ways + w];
            // WITHLOOP trains whenever the loop predictor would have
            // disagreed with TAGE.
            if lp.hit && lp.taken != tage_taken {
                self.with_loop = if lp.taken == taken {
                    (self.with_loop + 1).min(7)
                } else {
                    (self.with_loop - 1).max(-8)
                };
            }
            if taken == e.dir {
                e.curr_iter = e.curr_iter.saturating_add(1);
                if e.curr_iter > e.past_iter && e.conf > 0 && e.past_iter > 0 {
                    // Ran past the learned trip count: trip unstable.
                    e.conf = 0;
                    e.past_iter = 0;
                }
                e.age = e.age.saturating_add(1).min(7);
            } else {
                // Exit iteration.
                let trip = e.curr_iter + 1;
                if e.past_iter == trip {
                    e.conf = (e.conf + 1).min(CONF_MAX);
                } else {
                    e.past_iter = trip;
                    e.conf = 0;
                }
                e.curr_iter = 0;
            }
            return;
        }
        // Allocate on a TAGE misprediction (a loop exit TAGE failed on).
        if tage_mispredicted {
            self.tick = self.tick.wrapping_add(1);
            if !self.tick.is_multiple_of(4) {
                return;
            }
            let base = set * self.ways;
            if let Some(victim) = (0..self.ways).min_by_key(|&w| {
                let e = &self.entries[base + w];
                if e.valid {
                    1 + u16::from(e.age) + u16::from(e.conf) * 8
                } else {
                    0
                }
            }) {
                self.entries[base + victim] = LoopEntry {
                    tag,
                    valid: true,
                    past_iter: 0,
                    curr_iter: 0,
                    conf: 0,
                    age: 0,
                    // The direction seen now is the exit direction; the
                    // body direction is its opposite for a loop branch.
                    dir: !taken,
                };
            }
        }
    }

    /// Storage in bits: each entry ≈ tag(14) + past(16) + curr(16) +
    /// conf(3) + age(3) + dir(1) + valid(1).
    pub fn storage_bits(&self) -> u64 {
        (self.sets * self.ways) as u64 * 54 + 4
    }

    /// Serializes the mutable state (entries, `WITHLOOP`, allocation tick).
    pub fn save_state(&self, w: &mut sim_isa::StateWriter) {
        w.put_usize(self.entries.len());
        for e in &self.entries {
            w.put_u16(e.tag);
            w.put_bool(e.valid);
            w.put_u16(e.past_iter);
            w.put_u16(e.curr_iter);
            w.put_u8(e.conf);
            w.put_u8(e.age);
            w.put_bool(e.dir);
        }
        w.put_i8(self.with_loop);
        w.put_u8(self.tick);
    }

    /// Restores state written by [`LoopPredictor::save_state`].
    pub fn restore_state(&mut self, r: &mut sim_isa::StateReader) {
        let n = r.get_usize();
        assert_eq!(n, self.entries.len(), "loop-predictor geometry mismatch");
        for e in &mut self.entries {
            e.tag = r.get_u16();
            e.valid = r.get_bool();
            e.past_iter = r.get_u16();
            e.curr_iter = r.get_u16();
            e.conf = r.get_u8();
            e.age = r.get_u8();
            e.dir = r.get_bool();
        }
        self.with_loop = r.get_i8();
        self.tick = r.get_u8();
    }
}

impl LoopPrediction {
    /// Serializes a prediction held by an in-flight branch record.
    pub fn save_state(&self, w: &mut sim_isa::StateWriter) {
        w.put_bool(self.hit);
        w.put_bool(self.taken);
        w.put_u8(self.conf);
        w.put_u16(self.set);
        w.put_u8(self.way);
    }

    /// Decodes a prediction written by [`LoopPrediction::save_state`].
    pub fn load_state(r: &mut sim_isa::StateReader) -> Self {
        LoopPrediction {
            hit: r.get_bool(),
            taken: r.get_bool(),
            conf: r.get_u8(),
            set: r.get_u16(),
            way: r.get_u8(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Train a fixed-trip loop: `trip-1` taken iterations then one not.
    fn train(lp: &mut LoopPredictor, pc: Addr, trip: u16, reps: usize) {
        for _ in 0..reps {
            for i in 0..trip {
                let taken = i + 1 < trip;
                // Claim TAGE said "taken" and mispredicted the exits so
                // allocation happens.
                lp.update(pc, taken, true, !taken);
            }
        }
    }

    #[test]
    fn learns_fixed_trip_count() {
        let mut lp = LoopPredictor::default_64_entry();
        let pc = Addr::new(0x100);
        train(&mut lp, pc, 10, 24);
        // Start of a fresh trip: predict the body then the exit.
        for i in 0..10u16 {
            let p = lp.predict(pc);
            let expect = i + 1 < 10;
            assert!(p.hit, "entry must be confident at iter {i}");
            assert_eq!(p.taken, expect, "iteration {i}");
            lp.update(pc, expect, true, false);
        }
    }

    #[test]
    fn unstable_trip_never_confident() {
        let mut lp = LoopPredictor::default_64_entry();
        let pc = Addr::new(0x200);
        // Alternate trip counts 5 and 9.
        for r in 0..30 {
            let trip = if r % 2 == 0 { 5 } else { 9 };
            for i in 0..trip {
                let taken = i + 1 < trip;
                lp.update(pc, taken, true, !taken);
            }
        }
        let p = lp.predict(pc);
        assert!(!p.hit, "variable trips must not reach confidence");
    }

    #[test]
    fn with_loop_counter_moves() {
        let mut lp = LoopPredictor::default_64_entry();
        let pc = Addr::new(0x300);
        assert!(!lp.useful(), "starts negative");
        train(&mut lp, pc, 12, 30);
        // Exits where TAGE is wrong and LP right push WITHLOOP up.
        for _ in 0..20 {
            for i in 0..12u16 {
                let taken = i + 1 < 12;
                let tage_taken = true; // TAGE misses every exit
                lp.update(pc, taken, tage_taken, !taken);
            }
        }
        assert!(lp.useful(), "LP beat TAGE repeatedly");
    }

    #[test]
    fn miss_returns_no_hit() {
        let lp = LoopPredictor::default_64_entry();
        assert!(!lp.predict(Addr::new(0x999c)).hit);
    }

    #[test]
    fn storage_is_small() {
        let lp = LoopPredictor::default_64_entry();
        assert!(lp.storage_bits() / 8 < 1024, "LP must stay well under 1 KB");
    }
}
