//! Branch prediction for the UCP reproduction.
//!
//! Implements the full predictor stack of the paper's Table II and §IV:
//!
//! * [`TageScL`] — the conditional predictor (TAGE + statistical corrector
//!   plus loop predictor) at 64 KB (main), 8 KB (Alt-BP) and 128 KB
//!   (Fig. 16's doubled budget), with per-prediction **provider
//!   attribution** (HitBank, AltBank, bimodal, bimodal>1in8, SC, LP),
//! * [`Ittage`] — the indirect-target predictor at 64 KB (main) and 4 KB
//!   (Alt-Ind),
//! * [`TageConf`] / [`UcpConf`] — the storage-free H2P confidence
//!   estimators compared in Fig. 9,
//! * [`HistoryState`] — speculative global/path history with folded views
//!   and O(1) checkpoint/restore, shared by all of the above.
//!
//! Tables and histories are deliberately separated: the UCP engine runs an
//! *alternate-path* history against the same Alt-BP tables, exactly as
//! §IV-C of the paper describes.
//!
//! # Examples
//!
//! ```
//! use ucp_bpred::{SclPreset, TageScL};
//! use sim_isa::Addr;
//!
//! let mut bp = TageScL::new(SclPreset::Main64K);
//! let mut hist = bp.new_history();
//! let pc = Addr::new(0x1000);
//! for i in 0..100u32 {
//!     let pred = bp.predict(&hist, pc);
//!     let outcome = i % 2 == 0;
//!     bp.update(pc, &pred, outcome);
//!     hist.push(outcome);
//! }
//! ```

pub mod bimodal;
pub mod confidence;
pub mod history;
pub mod ittage;
pub mod loop_pred;
pub mod sc;
pub mod tage;
pub mod tage_sc_l;

pub use bimodal::Bimodal;
pub use confidence::{ConfidenceEstimator, TageConf, UcpConf};
pub use history::{FoldSpec, HistCheckpoint, HistoryState};
pub use ittage::{push_target_history, Ittage, IttageParams, IttagePrediction};
pub use loop_pred::{LoopPrediction, LoopPredictor};
pub use sc::{Sc, ScParams, ScPrediction};
pub use tage::{Tage, TageParams, TagePrediction, TageProvider};
pub use tage_sc_l::{Provider, SclPrediction, SclPreset, TageScL};
