//! TAGE: tagged geometric-history-length predictor (Seznec & Michaud).
//!
//! The prediction is provided by the longest-history tagged table whose tag
//! matches (the *HitBank*); the second-longest match is the *AltBank*. The
//! paper's confidence estimator cares precisely about which of
//! HitBank/AltBank/bimodal provided the prediction and whether the
//! provider's counter was saturated, so [`TagePrediction`] carries all of
//! that.

use crate::bimodal::Bimodal;
use crate::history::{FoldSpec, HistoryState};
use sim_isa::Addr;

/// Upper bound on tagged tables (fixed-size arrays in [`TagePrediction`]).
pub const MAX_TABLES: usize = 14;

/// Geometry of a TAGE predictor.
#[derive(Clone, Debug)]
pub struct TageParams {
    /// Number of tagged tables.
    pub num_tables: usize,
    /// log2 entries per tagged table.
    pub log_entries: u32,
    /// Tag width in bits (≤ 15).
    pub tag_bits: u32,
    /// Geometric history lengths, shortest first.
    pub hist_len: Vec<u32>,
    /// log2 entries of the bimodal base table.
    pub log_bimodal: u32,
    /// Updates between halvings of all usefulness counters.
    pub u_reset_period: u64,
}

impl TageParams {
    /// ~53 KB TAGE used inside the 64 KB TAGE-SC-L.
    pub fn main_64k() -> Self {
        TageParams {
            num_tables: 12,
            log_entries: 11,
            tag_bits: 11,
            hist_len: vec![4, 6, 10, 16, 26, 42, 67, 107, 171, 274, 438, 640],
            log_bimodal: 14,
            u_reset_period: 256 * 1024,
        }
    }

    /// ~6.5 KB TAGE used inside the 8 KB alternate-path TAGE-SC-L (Alt-BP).
    pub fn alt_8k() -> Self {
        TageParams {
            num_tables: 6,
            log_entries: 9,
            tag_bits: 9,
            hist_len: vec![4, 9, 18, 36, 72, 144],
            log_bimodal: 12,
            u_reset_period: 64 * 1024,
        }
    }

    /// ~106 KB TAGE used inside the 128 KB TAGE-SC-L (Fig. 16's
    /// doubled-budget predictor).
    pub fn big_128k() -> Self {
        TageParams {
            num_tables: 12,
            log_entries: 12,
            tag_bits: 12,
            hist_len: vec![4, 6, 10, 16, 26, 42, 67, 107, 171, 274, 438, 640],
            log_bimodal: 15,
            u_reset_period: 512 * 1024,
        }
    }

    /// Fold specs this predictor needs in its [`HistoryState`]
    /// (3 per table: index, tag part 1, tag part 2).
    pub fn fold_specs(&self) -> Vec<FoldSpec> {
        let mut v = Vec::with_capacity(self.num_tables * 3);
        for &olen in &self.hist_len {
            v.push(FoldSpec {
                olen,
                clen: self.log_entries,
            });
            v.push(FoldSpec {
                olen,
                clen: self.tag_bits,
            });
            v.push(FoldSpec {
                olen,
                clen: self.tag_bits - 1,
            });
        }
        v
    }
}

#[derive(Clone, Copy, Debug, Default)]
struct TageEntry {
    ctr: i8, // 3-bit signed: -4..=3
    tag: u16,
    u: u8, // 2-bit usefulness
    /// Entry has been allocated (models tag-mismatch on cold entries;
    /// free in hardware, where cold tags simply never match).
    valid: bool,
}

/// Which component of TAGE provided the final direction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TageProvider {
    /// No tagged match (or the alternate fell through to bimodal).
    Bimodal,
    /// Longest tag match provided the prediction.
    Hit,
    /// Newly-allocated HitBank was overridden by the AltBank.
    Alt,
}

/// Everything about one TAGE prediction, kept by the pipeline and passed
/// back to [`Tage::update`] at branch resolution.
#[derive(Clone, Copy, Debug)]
pub struct TagePrediction {
    /// Final predicted direction.
    pub taken: bool,
    /// Component that provided the direction.
    pub provider: TageProvider,
    /// Counter of the providing component (bimodal counter in `-2..=1`,
    /// tagged counter in `-4..=3`).
    pub provider_ctr: i8,
    /// Index of the longest matching table, or -1.
    pub hit_bank: i8,
    /// Index of the second-longest matching table, or -1.
    pub alt_bank: i8,
    /// Direction from the hit bank (valid if `hit_bank >= 0`).
    pub hit_taken: bool,
    /// Direction from the alternate chain (alt bank, else bimodal).
    pub alt_taken: bool,
    /// Bimodal direction and counter.
    pub bim_taken: bool,
    /// Bimodal counter in `-2..=1`.
    pub bim_ctr: i8,
    /// The hit entry looked newly allocated (weak counter, `u == 0`).
    pub newly_alloc: bool,
    pub(crate) indices: [u16; MAX_TABLES],
    pub(crate) tags: [u16; MAX_TABLES],
}

impl TagePrediction {
    /// `true` if the providing counter is saturated (the paper's
    /// high-confidence criterion for HitBank/bimodal providers).
    pub fn provider_saturated(&self) -> bool {
        match self.provider {
            TageProvider::Bimodal => self.provider_ctr == -2 || self.provider_ctr == 1,
            TageProvider::Hit | TageProvider::Alt => {
                self.provider_ctr == -4 || self.provider_ctr == 3
            }
        }
    }
}

/// A TAGE predictor (tables only; history lives in a [`HistoryState`]
/// owned by the caller, enabling independent predicted-path and
/// alternate-path histories as §IV-C of the paper requires).
#[derive(Clone, Debug)]
pub struct Tage {
    params: TageParams,
    bimodal: Bimodal,
    tables: Vec<Vec<TageEntry>>,
    use_alt_on_na: i8,
    lfsr: u32,
    updates: u64,
}

impl Tage {
    /// Creates an empty predictor.
    ///
    /// # Panics
    ///
    /// Panics if the parameter shape is inconsistent.
    pub fn new(params: TageParams) -> Self {
        assert_eq!(params.hist_len.len(), params.num_tables);
        assert!(params.num_tables <= MAX_TABLES);
        assert!(params.tag_bits >= 2 && params.tag_bits <= 15);
        let entries = 1usize << params.log_entries;
        Tage {
            bimodal: Bimodal::new(params.log_bimodal),
            tables: vec![vec![TageEntry::default(); entries]; params.num_tables],
            use_alt_on_na: 0,
            lfsr: 0xACE1_1234,
            updates: 0,
            params,
        }
    }

    /// The geometry.
    pub fn params(&self) -> &TageParams {
        &self.params
    }

    /// Creates a [`HistoryState`] shaped for this predictor alone (the
    /// TAGE-SC-L composite builds a combined one instead).
    pub fn new_history(&self) -> HistoryState {
        HistoryState::new(&self.params.fold_specs())
    }

    #[inline]
    fn index(&self, pc: Addr, hist: &HistoryState, t: usize, fold_base: usize) -> u16 {
        let pcs = pc.raw() >> 2;
        let mask = (1u64 << self.params.log_entries) - 1;
        let h = u64::from(hist.folded(fold_base + t * 3));
        ((pcs ^ (pcs >> (self.params.log_entries as u64 - (t as u64 % 4))) ^ h) & mask) as u16
    }

    #[inline]
    fn tag(&self, pc: Addr, hist: &HistoryState, t: usize, fold_base: usize) -> u16 {
        let pcs = pc.raw() >> 2;
        let mask = (1u64 << self.params.tag_bits) - 1;
        let h1 = u64::from(hist.folded(fold_base + t * 3 + 1));
        let h2 = u64::from(hist.folded(fold_base + t * 3 + 2));
        ((pcs ^ h1 ^ (h2 << 1)) & mask) as u16
    }

    /// Predicts the direction of the conditional branch at `pc` given a
    /// history whose folds start at `fold_base` (0 when using
    /// [`Tage::new_history`]).
    pub fn predict(&self, hist: &HistoryState, pc: Addr, fold_base: usize) -> TagePrediction {
        let n = self.params.num_tables;
        let mut indices = [0u16; MAX_TABLES];
        let mut tags = [0u16; MAX_TABLES];
        let mut hit: i8 = -1;
        let mut alt: i8 = -1;
        for t in 0..n {
            indices[t] = self.index(pc, hist, t, fold_base);
            tags[t] = self.tag(pc, hist, t, fold_base);
            let e = &self.tables[t][indices[t] as usize];
            if e.valid && e.tag == tags[t] {
                alt = hit;
                hit = t as i8;
            }
        }
        let bim_ctr = self.bimodal.counter(pc);
        let bim_taken = bim_ctr >= 0;
        let (taken, provider, provider_ctr, hit_taken, alt_taken, newly_alloc);
        if hit >= 0 {
            let e = self.tables[hit as usize][indices[hit as usize] as usize];
            hit_taken = e.ctr >= 0;
            newly_alloc = e.u == 0 && (e.ctr == 0 || e.ctr == -1);
            let (a_taken, a_ctr, a_is_table) = if alt >= 0 {
                let a = self.tables[alt as usize][indices[alt as usize] as usize];
                (a.ctr >= 0, a.ctr, true)
            } else {
                (bim_taken, bim_ctr, false)
            };
            alt_taken = a_taken;
            if newly_alloc && self.use_alt_on_na >= 0 {
                taken = a_taken;
                if a_is_table {
                    provider = TageProvider::Alt;
                    provider_ctr = a_ctr;
                } else {
                    provider = TageProvider::Bimodal;
                    provider_ctr = bim_ctr;
                }
            } else {
                taken = hit_taken;
                provider = TageProvider::Hit;
                provider_ctr = e.ctr;
            }
        } else {
            hit_taken = bim_taken;
            alt_taken = bim_taken;
            newly_alloc = false;
            taken = bim_taken;
            provider = TageProvider::Bimodal;
            provider_ctr = bim_ctr;
        }
        TagePrediction {
            taken,
            provider,
            provider_ctr,
            hit_bank: hit,
            alt_bank: alt,
            hit_taken,
            alt_taken,
            bim_taken,
            bim_ctr,
            newly_alloc,
            indices,
            tags,
        }
    }

    #[inline]
    fn next_rand(&mut self) -> u32 {
        // xorshift32 — deterministic allocation tie-breaking.
        let mut x = self.lfsr;
        x ^= x << 13;
        x ^= x >> 17;
        x ^= x << 5;
        self.lfsr = x;
        x
    }

    /// Trains the predictor with the resolved outcome. `pred` must be the
    /// value returned by [`Tage::predict`] for this dynamic branch.
    pub fn update(&mut self, pc: Addr, pred: &TagePrediction, taken: bool) {
        self.updates += 1;
        if self.updates.is_multiple_of(self.params.u_reset_period) {
            for t in &mut self.tables {
                for e in t.iter_mut() {
                    e.u >>= 1;
                }
            }
        }

        let n = self.params.num_tables;
        let mispred = pred.taken != taken;

        // Allocation: on a misprediction, try to allocate in a longer table.
        let alloc_start = (i16::from(pred.hit_bank) + 1) as usize;
        if mispred && alloc_start < n {
            let start = alloc_start;
            // Randomize the first candidate to spread allocations.
            let skip = (self.next_rand() as usize) % 2;
            let mut allocated = false;
            let mut j = start + skip.min(n - 1 - start);
            while j < n {
                let e = &mut self.tables[j][pred.indices[j] as usize];
                if e.u == 0 {
                    *e = TageEntry {
                        ctr: if taken { 0 } else { -1 },
                        tag: pred.tags[j],
                        u: 0,
                        valid: true,
                    };
                    allocated = true;
                    break;
                }
                j += 1;
            }
            if !allocated {
                for j in start..n {
                    let e = &mut self.tables[j][pred.indices[j] as usize];
                    e.u = e.u.saturating_sub(1);
                }
            }
        }

        // Counter updates.
        if pred.hit_bank >= 0 {
            let hb = pred.hit_bank as usize;
            {
                let e = &mut self.tables[hb][pred.indices[hb] as usize];
                e.ctr = bump3(e.ctr, taken);
            }
            if pred.newly_alloc {
                // Also train the alternate chain while the hit entry is cold.
                if pred.alt_bank >= 0 {
                    let ab = pred.alt_bank as usize;
                    let e = &mut self.tables[ab][pred.indices[ab] as usize];
                    e.ctr = bump3(e.ctr, taken);
                } else {
                    self.bimodal.update(pc, taken);
                }
                // use_alt_on_na learns whether alt beats a cold hit entry.
                if pred.hit_taken != pred.alt_taken {
                    self.use_alt_on_na = if pred.alt_taken == taken {
                        (self.use_alt_on_na + 1).min(7)
                    } else {
                        (self.use_alt_on_na - 1).max(-8)
                    };
                }
            }
            // Usefulness: the hit entry is useful when it disagrees with
            // the alternate and is right.
            if pred.hit_taken != pred.alt_taken {
                let e = &mut self.tables[hb][pred.indices[hb] as usize];
                if pred.hit_taken == taken {
                    e.u = (e.u + 1).min(3);
                } else {
                    e.u = e.u.saturating_sub(1);
                }
            }
        } else {
            self.bimodal.update(pc, taken);
        }
    }

    /// Total storage in bits (tagged tables + bimodal).
    pub fn storage_bits(&self) -> u64 {
        let per_entry = 3 + 2 + u64::from(self.params.tag_bits);
        let tagged = self.params.num_tables as u64 * (1u64 << self.params.log_entries) * per_entry;
        tagged + self.bimodal.storage_bits()
    }
}

impl Tage {
    /// Serializes the mutable state (tables, bimodal, allocator LFSR,
    /// update counter). Geometry is reconstructed from params, not stored.
    pub fn save_state(&self, w: &mut sim_isa::StateWriter) {
        self.bimodal.save_state(w);
        w.put_usize(self.tables.len());
        for t in &self.tables {
            w.put_usize(t.len());
            for e in t {
                w.put_i8(e.ctr);
                w.put_u16(e.tag);
                w.put_u8(e.u);
                w.put_bool(e.valid);
            }
        }
        w.put_i8(self.use_alt_on_na);
        w.put_u32(self.lfsr);
        w.put_u64(self.updates);
    }

    /// Restores state written by [`Tage::save_state`].
    pub fn restore_state(&mut self, r: &mut sim_isa::StateReader) {
        self.bimodal.restore_state(r);
        let nt = r.get_usize();
        assert_eq!(nt, self.tables.len(), "TAGE table-count mismatch");
        for t in &mut self.tables {
            let ne = r.get_usize();
            assert_eq!(ne, t.len(), "TAGE table geometry mismatch");
            for e in t.iter_mut() {
                e.ctr = r.get_i8();
                e.tag = r.get_u16();
                e.u = r.get_u8();
                e.valid = r.get_bool();
            }
        }
        self.use_alt_on_na = r.get_i8();
        self.lfsr = r.get_u32();
        self.updates = r.get_u64();
    }
}

impl TagePrediction {
    /// Serializes a prediction held by an in-flight branch record.
    pub fn save_state(&self, w: &mut sim_isa::StateWriter) {
        w.put_bool(self.taken);
        w.put_u8(match self.provider {
            TageProvider::Bimodal => 0,
            TageProvider::Hit => 1,
            TageProvider::Alt => 2,
        });
        w.put_i8(self.provider_ctr);
        w.put_i8(self.hit_bank);
        w.put_i8(self.alt_bank);
        w.put_bool(self.hit_taken);
        w.put_bool(self.alt_taken);
        w.put_bool(self.bim_taken);
        w.put_i8(self.bim_ctr);
        w.put_bool(self.newly_alloc);
        for i in self.indices {
            w.put_u16(i);
        }
        for t in self.tags {
            w.put_u16(t);
        }
    }

    /// Decodes a prediction written by [`TagePrediction::save_state`].
    pub fn load_state(r: &mut sim_isa::StateReader) -> Self {
        let taken = r.get_bool();
        let provider = match r.get_u8() {
            0 => TageProvider::Bimodal,
            1 => TageProvider::Hit,
            2 => TageProvider::Alt,
            b => panic!("checkpoint state corrupt: TAGE provider {b}"),
        };
        let provider_ctr = r.get_i8();
        let hit_bank = r.get_i8();
        let alt_bank = r.get_i8();
        let hit_taken = r.get_bool();
        let alt_taken = r.get_bool();
        let bim_taken = r.get_bool();
        let bim_ctr = r.get_i8();
        let newly_alloc = r.get_bool();
        let mut indices = [0u16; MAX_TABLES];
        for i in &mut indices {
            *i = r.get_u16();
        }
        let mut tags = [0u16; MAX_TABLES];
        for t in &mut tags {
            *t = r.get_u16();
        }
        TagePrediction {
            taken,
            provider,
            provider_ctr,
            hit_bank,
            alt_bank,
            hit_taken,
            alt_taken,
            bim_taken,
            bim_ctr,
            newly_alloc,
            indices,
            tags,
        }
    }
}

#[inline]
fn bump3(c: i8, taken: bool) -> i8 {
    if taken {
        (c + 1).min(3)
    } else {
        (c - 1).max(-4)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> (Tage, HistoryState) {
        let t = Tage::new(TageParams {
            num_tables: 4,
            log_entries: 7,
            tag_bits: 8,
            hist_len: vec![4, 8, 16, 32],
            log_bimodal: 8,
            u_reset_period: 1 << 20,
        });
        let h = t.new_history();
        (t, h)
    }

    #[test]
    fn cold_predictor_uses_bimodal() {
        let (t, h) = small();
        let p = t.predict(&h, Addr::new(0x400), 0);
        assert_eq!(p.provider, TageProvider::Bimodal);
        assert_eq!(p.hit_bank, -1);
    }

    #[test]
    fn learns_a_strong_bias() {
        let (mut t, mut h) = small();
        let pc = Addr::new(0x400);
        for _ in 0..64 {
            let p = t.predict(&h, pc, 0);
            t.update(pc, &p, true);
            h.push(true);
        }
        let p = t.predict(&h, pc, 0);
        assert!(p.taken);
        assert!(p.provider_saturated());
    }

    #[test]
    fn learns_a_history_pattern_bimodal_cannot() {
        // Alternating T,N,T,N ... with a 2-deep history is trivially
        // TAGE-predictable but 50% for bimodal.
        let (mut t, mut h) = small();
        let pc = Addr::new(0x880);
        let mut correct_late = 0;
        for i in 0..4000u32 {
            let outcome = i % 2 == 0;
            let p = t.predict(&h, pc, 0);
            if i >= 2000 && p.taken == outcome {
                correct_late += 1;
            }
            t.update(pc, &p, outcome);
            h.push(outcome);
        }
        assert!(
            correct_late > 1900,
            "TAGE should nail the pattern: {correct_late}/2000"
        );
    }

    #[test]
    fn tagged_provider_appears_after_training() {
        let (mut t, mut h) = small();
        let pc = Addr::new(0x880);
        let mut tagged = 0;
        for i in 0..4000u32 {
            let outcome = (i / 2) % 2 == 0; // TTNN: bimodal cannot settle
            let p = t.predict(&h, pc, 0);
            if i >= 3000 && p.provider != TageProvider::Bimodal {
                tagged += 1;
            }
            t.update(pc, &p, outcome);
            h.push(outcome);
        }
        assert!(
            tagged > 700,
            "pattern must mostly come from tagged tables: {tagged}/1000"
        );
    }

    #[test]
    fn update_with_checkpointed_prediction_is_consistent() {
        // predict → push → (later) update must not panic and must train.
        let (mut t, mut h) = small();
        let pc = Addr::new(0x120);
        let p1 = t.predict(&h, pc, 0);
        h.push(true);
        let p2 = t.predict(&h, pc, 0);
        h.push(true);
        t.update(pc, &p1, true);
        t.update(pc, &p2, true);
    }

    #[test]
    fn storage_accounting() {
        let t = Tage::new(TageParams::main_64k());
        let kb = t.storage_bits() as f64 / 8.0 / 1024.0;
        assert!(
            (40.0..70.0).contains(&kb),
            "64K-class TAGE ≈ 53 KB, got {kb:.1}"
        );
        let a = Tage::new(TageParams::alt_8k());
        let kb = a.storage_bits() as f64 / 8.0 / 1024.0;
        assert!(
            (4.0..8.0).contains(&kb),
            "8K-class TAGE ≈ 6 KB, got {kb:.1}"
        );
    }

    #[test]
    fn provider_saturated_rules() {
        let p = TagePrediction {
            taken: true,
            provider: TageProvider::Bimodal,
            provider_ctr: 1,
            hit_bank: -1,
            alt_bank: -1,
            hit_taken: true,
            alt_taken: true,
            bim_taken: true,
            bim_ctr: 1,
            newly_alloc: false,
            indices: [0; MAX_TABLES],
            tags: [0; MAX_TABLES],
        };
        assert!(p.provider_saturated());
        let weak = TagePrediction {
            provider_ctr: 0,
            ..p
        };
        assert!(!weak.provider_saturated());
        let hit_sat = TagePrediction {
            provider: TageProvider::Hit,
            provider_ctr: -4,
            ..p
        };
        assert!(hit_sat.provider_saturated());
        let hit_weak = TagePrediction {
            provider: TageProvider::Hit,
            provider_ctr: 1,
            ..p
        };
        assert!(!hit_weak.provider_saturated());
    }
}
