//! Bimodal base predictor: a table of 2-bit saturating counters.

use sim_isa::Addr;

/// A classic bimodal predictor with 2-bit counters in `-2..=1`
/// (negative = not taken), matching the counter ranges the paper's Fig. 6a
/// reports for the TAGE base predictor.
#[derive(Clone, Debug)]
pub struct Bimodal {
    ctrs: Vec<i8>,
    mask: u64,
}

impl Bimodal {
    /// Creates a bimodal table with `2^log_entries` counters.
    ///
    /// # Panics
    ///
    /// Panics if `log_entries` is 0 or > 24.
    pub fn new(log_entries: u32) -> Self {
        assert!((1..=24).contains(&log_entries));
        let n = 1usize << log_entries;
        Bimodal {
            ctrs: vec![0; n],
            mask: (n - 1) as u64,
        }
    }

    #[inline]
    fn index(&self, pc: Addr) -> usize {
        ((pc.raw() >> 2) & self.mask) as usize
    }

    /// The raw counter for `pc` (in `-2..=1`).
    #[inline]
    pub fn counter(&self, pc: Addr) -> i8 {
        self.ctrs[self.index(pc)]
    }

    /// Predicted direction for `pc`.
    #[inline]
    pub fn predict(&self, pc: Addr) -> bool {
        self.counter(pc) >= 0
    }

    /// `true` if the counter for `pc` is saturated (−2 or 1).
    #[inline]
    pub fn saturated(&self, pc: Addr) -> bool {
        let c = self.counter(pc);
        c == -2 || c == 1
    }

    /// Trains the counter toward `taken`.
    pub fn update(&mut self, pc: Addr, taken: bool) {
        let i = self.index(pc);
        let c = &mut self.ctrs[i];
        *c = if taken {
            (*c + 1).min(1)
        } else {
            (*c - 1).max(-2)
        };
    }

    /// Storage in bits (2 bits per counter).
    pub fn storage_bits(&self) -> u64 {
        self.ctrs.len() as u64 * 2
    }

    /// Serializes the counter table (checkpoint path).
    pub fn save_state(&self, w: &mut sim_isa::StateWriter) {
        w.put_usize(self.ctrs.len());
        for &c in &self.ctrs {
            w.put_i8(c);
        }
    }

    /// Restores counters written by [`Bimodal::save_state`].
    pub fn restore_state(&mut self, r: &mut sim_isa::StateReader) {
        let n = r.get_usize();
        assert_eq!(n, self.ctrs.len(), "bimodal geometry mismatch");
        for c in &mut self.ctrs {
            *c = r.get_i8();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_saturate() {
        let mut b = Bimodal::new(4);
        let pc = Addr::new(0x100);
        for _ in 0..5 {
            b.update(pc, true);
        }
        assert_eq!(b.counter(pc), 1);
        assert!(b.saturated(pc));
        assert!(b.predict(pc));
        for _ in 0..5 {
            b.update(pc, false);
        }
        assert_eq!(b.counter(pc), -2);
        assert!(!b.predict(pc));
    }

    #[test]
    fn weak_states_not_saturated() {
        let mut b = Bimodal::new(4);
        let pc = Addr::new(0x100);
        assert!(
            !b.saturated(pc),
            "initial weak-not-taken is 0? counter starts 0 = weak taken"
        );
        b.update(pc, false);
        assert_eq!(b.counter(pc), -1);
        assert!(!b.saturated(pc));
    }

    #[test]
    fn distinct_pcs_map_to_distinct_counters() {
        let mut b = Bimodal::new(6);
        b.update(Addr::new(0x100), true);
        b.update(Addr::new(0x100), true);
        assert!(b.predict(Addr::new(0x100)));
        assert!(b.counter(Addr::new(0x104)) == 0, "neighbour untouched");
    }

    #[test]
    fn storage_bits() {
        assert_eq!(Bimodal::new(12).storage_bits(), 8192);
    }
}
