//! Property-based tests for the branch predictors: determinism,
//! checkpoint/restore transparency, training convergence and confidence
//! classification consistency under random branch streams.

use proptest::prelude::*;
use sim_isa::Addr;
use ucp_bpred::{
    push_target_history, ConfidenceEstimator, Ittage, IttageParams, Provider, SclPreset, TageConf,
    TageScL, UcpConf,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Predicting is a pure function of (tables, history): repeated calls
    /// without updates return identical predictions.
    #[test]
    fn predict_is_pure(outcomes in proptest::collection::vec(any::<bool>(), 1..300), pc in 1u64..4096) {
        let mut bp = TageScL::new(SclPreset::Alt8K);
        let mut h = bp.new_history();
        let pc = Addr::new(pc * 4);
        for &o in &outcomes {
            let a = bp.predict(&h, pc);
            let b = bp.predict(&h, pc);
            prop_assert_eq!(a.taken, b.taken);
            prop_assert_eq!(a.provider, b.provider);
            bp.update(pc, &a, o);
            h.push(o);
        }
    }

    /// Two predictors fed identical streams stay bit-identical in their
    /// observable behaviour.
    #[test]
    fn training_is_deterministic(
        stream in proptest::collection::vec((0u64..64, any::<bool>()), 1..400),
    ) {
        let mut bp1 = TageScL::new(SclPreset::Alt8K);
        let mut h1 = bp1.new_history();
        let mut bp2 = TageScL::new(SclPreset::Alt8K);
        let mut h2 = bp2.new_history();
        for &(pc_i, o) in &stream {
            let pc = Addr::new(0x100 + pc_i * 4);
            let p1 = bp1.predict(&h1, pc);
            let p2 = bp2.predict(&h2, pc);
            prop_assert_eq!(p1.taken, p2.taken);
            bp1.update(pc, &p1, o);
            bp2.update(pc, &p2, o);
            h1.push(o);
            h2.push(o);
        }
    }

    /// An always-taken branch converges to near-perfect accuracy whatever
    /// noise preceded it.
    #[test]
    fn converges_on_constant_branch(noise in proptest::collection::vec(any::<bool>(), 0..100)) {
        let mut bp = TageScL::new(SclPreset::Alt8K);
        let mut h = bp.new_history();
        let pc = Addr::new(0x2000);
        for &o in &noise {
            let p = bp.predict(&h, pc);
            bp.update(pc, &p, o);
            h.push(o);
        }
        let mut correct = 0;
        for _ in 0..200 {
            let p = bp.predict(&h, pc);
            correct += u32::from(p.taken);
            bp.update(pc, &p, true);
            h.push(true);
        }
        prop_assert!(correct >= 190, "constant branch must converge: {correct}/200");
    }

    /// Confidence estimators are consistent with the provider taxonomy:
    /// UCP-Conf never trusts AltBank or SC, always trusts LP.
    #[test]
    fn ucp_conf_taxonomy(
        stream in proptest::collection::vec((0u64..32, any::<bool>()), 50..300),
    ) {
        let mut bp = TageScL::new(SclPreset::Alt8K);
        let mut h = bp.new_history();
        for &(pc_i, o) in &stream {
            let pc = Addr::new(0x100 + pc_i * 4);
            let p = bp.predict(&h, pc);
            match p.provider {
                Provider::AltBank | Provider::Sc => prop_assert!(UcpConf.is_h2p(&p)),
                Provider::LoopPred => prop_assert!(!UcpConf.is_h2p(&p)),
                _ => {}
            }
            // Both estimators agree on saturated clean bimodal = confident.
            if p.provider == Provider::Bimodal && p.tage.provider_saturated() && !p.bim_low8 {
                prop_assert!(!TageConf.is_h2p(&p));
                prop_assert!(!UcpConf.is_h2p(&p));
            }
            bp.update(pc, &p, o);
            h.push(o);
        }
    }

    /// ITTAGE only ever predicts targets it has been trained with.
    #[test]
    fn ittage_predicts_only_seen_targets(
        stream in proptest::collection::vec(0u8..4, 20..200),
    ) {
        let mut it = Ittage::new(IttageParams::alt_4k());
        let mut h = it.new_history();
        let pc = Addr::new(0x300);
        let targets: Vec<Addr> = (0..4).map(|k| Addr::new(0x8000 + k * 0x40)).collect();
        for &k in &stream {
            let p = it.predict(&h, pc);
            if let Some(t) = p.target {
                prop_assert!(targets.contains(&t), "invented target {t}");
            }
            let actual = targets[k as usize];
            it.update(pc, &p, actual);
            push_target_history(&mut h, actual);
        }
    }

    /// Checkpoint/restore leaves a predictor's view of any history-derived
    /// prediction unchanged.
    #[test]
    fn checkpoint_transparency(
        pre in proptest::collection::vec(any::<bool>(), 1..200),
        spec in proptest::collection::vec(any::<bool>(), 1..60),
    ) {
        let bp = TageScL::new(SclPreset::Alt8K);
        let mut h = bp.new_history();
        for &o in &pre {
            h.push(o);
        }
        let pc = Addr::new(0x500);
        let before = bp.predict(&h, pc);
        let cp = h.checkpoint();
        for &o in &spec {
            h.push(o);
        }
        h.restore(&cp);
        let after = bp.predict(&h, pc);
        prop_assert_eq!(before.taken, after.taken);
        prop_assert_eq!(before.provider, after.provider);
        prop_assert_eq!(before.sc.sum, after.sc.sum);
    }
}
