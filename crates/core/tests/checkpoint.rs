//! Checkpoint/restore property tests: a killed run resumed from its
//! newest checkpoint must be bit-identical to an uninterrupted one, torn
//! checkpoint writes must quarantine and fall back, and the determinism
//! auditor must localize an injected divergence.
//!
//! These live in an integration test (not `mod tests`) deliberately: the
//! pipeline's accounting invariant panics under `cfg(test)` but returns
//! [`ucp_core::SimError::InvariantViolation`] in all other builds, and
//! `replay_verify` relies on the structured error.

use std::sync::Arc;
use ucp_core::snapshot::{ckpt_root, latest_valid_checkpoint, remove_run_checkpoints, run_slug};
use ucp_core::{replay_verify, CheckpointPolicy, RunOutput, SimConfig, Simulator};
use ucp_telemetry::fault::FaultPlan;
use ucp_workloads::WorkloadSpec;

const WARMUP: u64 = 5_000;
const MEASURE: u64 = 20_000;
const DIGEST_EVERY: u64 = 4_000;

fn json<T: serde::Serialize>(v: &T) -> String {
    serde_json::to_string(v).expect("serializes")
}

fn run_dir(spec: &WorkloadSpec, cfg: &SimConfig) -> std::path::PathBuf {
    ckpt_root().join(run_slug(&spec.name, spec.seed, &json(cfg), WARMUP, MEASURE))
}

fn reference_run(spec: &WorkloadSpec, cfg: &SimConfig) -> RunOutput {
    let prog = spec.build();
    let mut sim = Simulator::new(&prog, spec.seed, cfg);
    sim.set_digest_interval(Some(DIGEST_EVERY));
    sim.run_full(WARMUP, MEASURE).expect("reference run")
}

/// Runs `spec` with checkpointing armed and "crashes" (drops the
/// simulator without `finish_checkpointing`), leaving checkpoints on
/// disk exactly as a killed process would.
fn crashed_run(
    spec: &WorkloadSpec,
    cfg: &SimConfig,
    policy: CheckpointPolicy,
    fault: Option<Arc<FaultPlan>>,
) {
    let prog = spec.build();
    let mut sim = Simulator::new(&prog, spec.seed, cfg);
    sim.set_digest_interval(Some(DIGEST_EVERY));
    let resumed = sim.arm_checkpointing(spec, WARMUP, MEASURE, policy, fault);
    assert!(
        resumed.is_none(),
        "directory was cleaned; nothing to resume"
    );
    sim.run_full(WARMUP, MEASURE).expect("interrupted run");
    // Crash: no finish_checkpointing — the checkpoints survive.
}

fn resumed_run(spec: &WorkloadSpec, cfg: &SimConfig, policy: CheckpointPolicy) -> (u64, RunOutput) {
    let prog = spec.build();
    let mut sim = Simulator::new(&prog, spec.seed, cfg);
    sim.set_digest_interval(Some(DIGEST_EVERY));
    let resumed = sim
        .arm_checkpointing(spec, WARMUP, MEASURE, policy, None)
        .expect("a valid checkpoint must be found");
    let out = sim.run_full(WARMUP, MEASURE).expect("resumed run");
    sim.finish_checkpointing();
    (resumed, out)
}

#[test]
fn resume_from_checkpoint_is_bit_identical_across_seeds() {
    let cfg = SimConfig::baseline();
    for seed in [1u64, 2, 3] {
        let spec = WorkloadSpec::tiny(&format!("ckpt-id-s{seed}"), seed);
        let dir = run_dir(&spec, &cfg);
        remove_run_checkpoints(&dir);

        let reference = reference_run(&spec, &cfg);
        let policy = CheckpointPolicy {
            every: 6_000,
            keep: 2,
        };
        crashed_run(&spec, &cfg, policy, None);
        assert!(
            latest_valid_checkpoint(&dir).is_some(),
            "crash left checkpoints behind (seed {seed})"
        );

        let (resumed, out) = resumed_run(&spec, &cfg, policy);
        assert!(
            resumed >= policy.every,
            "resumed mid-run, not from cycle zero (seed {seed}, resumed at {resumed})"
        );
        assert_eq!(
            json(&out.stats),
            json(&reference.stats),
            "stats bit-identical (seed {seed})"
        );
        assert_eq!(
            json(&out.intervals),
            json(&reference.intervals),
            "interval series bit-identical (seed {seed})"
        );
        assert_eq!(
            out.telemetry, reference.telemetry,
            "telemetry bit-identical (seed {seed})"
        );
        assert_eq!(
            out.digests, reference.digests,
            "digest stream bit-identical (seed {seed})"
        );
        assert!(!dir.exists(), "completed run removed its checkpoints");
    }
}

#[test]
fn torn_checkpoint_write_quarantines_and_falls_back() {
    let cfg = SimConfig::baseline();
    let spec = WorkloadSpec::tiny("ckpt-torn", 9);
    let dir = run_dir(&spec, &cfg);
    remove_run_checkpoints(&dir);

    let reference = reference_run(&spec, &cfg);
    // Every checkpoint write from the 3rd onward is torn mid-write, so
    // only the first two land intact. keep must retain them.
    let plan = Arc::new(FaultPlan::parse("torn_write:3").expect("valid plan"));
    let policy = CheckpointPolicy {
        every: 6_000,
        keep: 10,
    };
    crashed_run(&spec, &cfg, policy, Some(plan));

    let (resumed, out) = resumed_run(&spec, &cfg, policy);
    assert!(
        resumed >= policy.every && resumed < 3 * policy.every,
        "resumed from the 2nd (newest intact) checkpoint, got {resumed}"
    );
    assert_eq!(
        json(&out.stats),
        json(&reference.stats),
        "stats bit-identical"
    );
    assert_eq!(
        out.digests, reference.digests,
        "digest stream bit-identical"
    );
    // resumed_run's finish_checkpointing removed the run directory —
    // quarantined torn files included.
    assert!(!dir.exists());
}

#[test]
fn torn_newest_checkpoint_is_quarantined_on_disk() {
    let cfg = SimConfig::baseline();
    let spec = WorkloadSpec::tiny("ckpt-quar", 11);
    let dir = run_dir(&spec, &cfg);
    remove_run_checkpoints(&dir);

    let plan = Arc::new(FaultPlan::parse("torn_write:3").expect("valid plan"));
    let policy = CheckpointPolicy {
        every: 6_000,
        keep: 10,
    };
    crashed_run(&spec, &cfg, policy, Some(plan));

    let intact_before: Vec<_> = std::fs::read_dir(&dir)
        .expect("run dir exists")
        .flatten()
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .collect();
    assert!(
        intact_before.iter().any(|n| n.starts_with("ckpt-")),
        "checkpoints written: {intact_before:?}"
    );

    // Loading must reject (and quarantine) every torn checkpoint and
    // return the newest intact one.
    let (meta, _) = latest_valid_checkpoint(&dir).expect("an intact checkpoint survives");
    assert!(
        meta.committed < 3 * policy.every,
        "third and later checkpoints were torn, got {}",
        meta.committed
    );
    let names: Vec<_> = std::fs::read_dir(&dir)
        .expect("run dir exists")
        .flatten()
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .collect();
    assert!(
        names.iter().any(|n| n.contains("quarantined")),
        "torn checkpoints quarantined aside: {names:?}"
    );
    remove_run_checkpoints(&dir);
}

#[test]
fn injected_kill_after_first_checkpoint_resumes_bit_identically() {
    let cfg = SimConfig::baseline();
    let spec = WorkloadSpec::tiny("ckpt-kill", 21);
    let dir = run_dir(&spec, &cfg);
    remove_run_checkpoints(&dir);

    let reference = reference_run(&spec, &cfg);
    // The `kill` site panics right after the first checkpoint write
    // lands — an actual mid-run death, unlike crashed_run above, which
    // runs to completion and merely skips the cleanup.
    let plan = Arc::new(FaultPlan::parse("kill:1:1").expect("valid plan"));
    let policy = CheckpointPolicy {
        every: 6_000,
        keep: 3,
    };
    let prog = spec.build();
    let killed = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let mut sim = Simulator::new(&prog, spec.seed, &cfg);
        sim.set_digest_interval(Some(DIGEST_EVERY));
        sim.arm_checkpointing(&spec, WARMUP, MEASURE, policy, Some(plan));
        sim.run_full(WARMUP, MEASURE).map(|_| ())
    }));
    assert!(killed.is_err(), "kill site must panic mid-run");
    let (meta, _) = latest_valid_checkpoint(&dir).expect("the checkpoint written before the kill");
    assert!(
        meta.committed >= policy.every && meta.committed < 2 * policy.every,
        "died right after the first checkpoint, got {}",
        meta.committed
    );

    let (resumed, out) = resumed_run(&spec, &cfg, policy);
    assert_eq!(resumed, meta.committed);
    assert_eq!(
        json(&out.stats),
        json(&reference.stats),
        "stats bit-identical"
    );
    assert_eq!(
        out.digests, reference.digests,
        "digest stream bit-identical"
    );
    assert!(!dir.exists(), "completed run removed its checkpoints");
}

#[test]
fn replay_verify_clean_run_is_deterministic() {
    let spec = WorkloadSpec::tiny("replay-clean", 5);
    let report = replay_verify(
        &spec,
        &SimConfig::baseline(),
        WARMUP,
        MEASURE,
        DIGEST_EVERY,
        None,
    )
    .expect("clean replay");
    assert!(report.is_deterministic(), "{:?}", report.first_divergence);
    assert!(
        report.intervals_compared >= 4,
        "digest cadence produced samples: {}",
        report.intervals_compared
    );
    assert_eq!(report.workload, "replay-clean");
}

#[test]
fn replay_verify_names_first_divergent_interval_on_skewed_run() {
    let spec = WorkloadSpec::tiny("replay-skew", 5);
    let plan = FaultPlan::parse("invariant:1").expect("valid plan");
    let report = replay_verify(
        &spec,
        &SimConfig::baseline(),
        WARMUP,
        MEASURE,
        DIGEST_EVERY,
        Some(&plan),
    )
    .expect("skewed replay");
    let d = report.first_divergence.expect("skew must diverge");
    // The skew perturbs state at the start of the measurement window
    // (WARMUP committed), so the pre-warmup digest sample still matches
    // and the first divergent one lands after it.
    assert!(
        d.committed > DIGEST_EVERY,
        "first sample (pre-skew) matches, got divergence at {}",
        d.committed
    );
    assert!(
        d.committed >= WARMUP,
        "divergence at/after the measurement window opens, got {}",
        d.committed
    );
    assert_ne!(d.digest_a, d.digest_b);
}
