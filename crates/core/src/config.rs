//! Simulator configuration: the paper's Table II baseline plus every knob
//! the evaluation sweeps (µ-op cache model, L1I prefetcher, idealizations,
//! MRC, and the UCP engine itself).

use serde::{Deserialize, Serialize};
use ucp_bpred::SclPreset;
use ucp_frontend::{BtbConfig, UopCacheConfig};
use ucp_mem::HierarchyConfig;
use ucp_prefetch::InstPrefetcher as _;

/// How the µ-op cache is modelled.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum UopCacheModel {
    /// No µ-op cache: every µ-op flows through L1I + decoders
    /// (the Fig. 2/Fig. 10 baseline denominator).
    None,
    /// A real µ-op cache with the given geometry.
    Real(UopCacheConfig),
    /// An ideal µ-op cache: every lookup hits (the blue line of Fig. 4).
    Ideal,
}

impl UopCacheModel {
    /// The Table II 4Kops cache.
    pub fn kops_4() -> Self {
        UopCacheModel::Real(UopCacheConfig::kops_4())
    }
}

/// Frontend widths and penalties (Table II, "Frontend Stages" plus §V).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct FrontendConfig {
    /// Fetch-block windows looked up per cycle (2 windows/cycle in Fig. 1).
    pub windows_per_cycle: u32,
    /// µ-ops the µ-op cache can deliver per cycle (8 µ/cycle in Fig. 1).
    pub uops_from_cache_per_cycle: u32,
    /// Decode width on the slow path (6-wide).
    pub decode_width: u32,
    /// Dispatch width (6-wide).
    pub dispatch_width: u32,
    /// FTQ capacity in fetch blocks (192 addresses-worth in Table II).
    pub ftq_entries: usize,
    /// µ-op queue capacity.
    pub uop_queue_entries: usize,
    /// Extra pipeline depth of the µ-op cache path (µ-op cache hit →
    /// dispatch-ready), in cycles.
    pub uop_path_delay: u64,
    /// Extra pipeline depth of the L1I + decoder path, in cycles.
    pub decode_path_delay: u64,
    /// Penalty for switching between stream and build modes (§V: 1 cycle).
    pub mode_switch_penalty: u64,
    /// Consecutive µ-op cache hits in build mode before switching back to
    /// stream mode.
    pub stream_switch_hits: u32,
    /// Address-generation stall when a taken branch misses the BTB and is
    /// discovered at (pre)decode.
    pub btb_resteer_penalty: u64,
    /// Cycles between a mispredicted branch completing and address
    /// generation restarting on the corrected path.
    pub redirect_penalty: u64,
    /// L1I demand fetches issued per cycle from the FTQ (even/odd
    /// interleaved L1I: 2 lines/cycle).
    pub l1i_fetches_per_cycle: u32,
}

impl Default for FrontendConfig {
    fn default() -> Self {
        FrontendConfig {
            windows_per_cycle: 2,
            uops_from_cache_per_cycle: 8,
            decode_width: 6,
            dispatch_width: 6,
            ftq_entries: 96, // 192 addresses ≈ 96 two-window blocks
            uop_queue_entries: 64,
            uop_path_delay: 2,
            decode_path_delay: 5,
            mode_switch_penalty: 1,
            stream_switch_hits: 3,
            btb_resteer_penalty: 6,
            redirect_penalty: 2,
            l1i_fetches_per_cycle: 2,
        }
    }
}

/// Backend widths and latencies (Table II, "Backend Stages").
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct BackendConfig {
    /// Reorder-buffer entries.
    pub rob_entries: usize,
    /// Commit width.
    pub commit_width: u32,
    /// ALU latency.
    pub lat_alu: u64,
    /// Multiply latency.
    pub lat_mul: u64,
    /// Divide latency.
    pub lat_div: u64,
    /// FP add latency.
    pub lat_fp_add: u64,
    /// FP multiply latency.
    pub lat_fp_mul: u64,
    /// Branch execute latency.
    pub lat_branch: u64,
}

impl Default for BackendConfig {
    fn default() -> Self {
        BackendConfig {
            rob_entries: 512,
            commit_width: 10,
            lat_alu: 1,
            lat_mul: 3,
            lat_div: 18,
            lat_fp_add: 3,
            lat_fp_mul: 4,
            lat_branch: 1,
        }
    }
}

/// Which baseline L1I prefetcher to attach (§III-C / Fig. 5).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum PrefetcherKind {
    /// No standalone prefetcher.
    None,
    /// FNL+MMA.
    FnlMma,
    /// FNL+MMA++.
    FnlMmaPlusPlus,
    /// D-JOLT.
    DJolt,
    /// Entangling prefetcher (cost-effective).
    Ep,
    /// Wrong-path-aware entangling prefetcher.
    EpPlusPlus,
}

impl PrefetcherKind {
    /// The Fig. 5 lineup, in the paper's order.
    pub const ALL: [PrefetcherKind; 6] = [
        PrefetcherKind::None,
        PrefetcherKind::FnlMma,
        PrefetcherKind::FnlMmaPlusPlus,
        PrefetcherKind::DJolt,
        PrefetcherKind::Ep,
        PrefetcherKind::EpPlusPlus,
    ];

    /// Display name matching the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            PrefetcherKind::None => "NONE",
            PrefetcherKind::FnlMma => "FNL-MMA",
            PrefetcherKind::FnlMmaPlusPlus => "FNL-MMA++",
            PrefetcherKind::DJolt => "D-JOLT",
            PrefetcherKind::Ep => "EP",
            PrefetcherKind::EpPlusPlus => "EP++",
        }
    }
}

/// Which confidence estimator triggers UCP (Fig. 12b).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ConfKind {
    /// Seznec's original TAGE confidence.
    Tage,
    /// The paper's extended estimator.
    Ucp,
}

/// The UCP engine configuration (§IV).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct UcpConfig {
    /// Master switch.
    pub enabled: bool,
    /// Attach the 4 KB Alt-Ind ITTAGE (UCP vs UCP-NoIND, Fig. 12a).
    pub use_alt_ind: bool,
    /// Prefetch only into the L1I, skipping decode + µ-op cache fill
    /// (UCP-TillL1I, Fig. 15).
    pub till_l1i: bool,
    /// Share the 6 demand decoders instead of dedicated alt-decoders
    /// (UCP-SharedDecoders, §VI-F).
    pub shared_decoders: bool,
    /// Ignore BTB bank conflicts (UCP-NoBTBConflict, §VI-F).
    pub ideal_btb_banking: bool,
    /// Stopping-heuristic threshold (§IV-E; 500 in the paper, swept in
    /// Fig. 15).
    pub stop_threshold: u32,
    /// Confidence estimator used to detect H2P triggers.
    pub conf: ConfKind,
    /// Alt-FTQ capacity (24 entries, §IV-F).
    pub alt_ftq_entries: usize,
    /// µ-op cache MSHR entries (32, §IV-F).
    pub uop_mshr_entries: usize,
    /// Alternate decode queue capacity (32, §IV-F).
    pub alt_decode_queue: usize,
    /// Dedicated alternate decoders (6, §IV-F).
    pub alt_decoders: u32,
}

impl Default for UcpConfig {
    fn default() -> Self {
        UcpConfig {
            enabled: false,
            use_alt_ind: true,
            till_l1i: false,
            shared_decoders: false,
            ideal_btb_banking: false,
            stop_threshold: 500,
            conf: ConfKind::Ucp,
            alt_ftq_entries: 24,
            uop_mshr_entries: 32,
            alt_decode_queue: 32,
            alt_decoders: 6,
        }
    }
}

/// The complete simulator configuration.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SimConfig {
    /// Frontend widths and penalties.
    pub frontend: FrontendConfig,
    /// Backend widths and latencies.
    pub backend: BackendConfig,
    /// Memory hierarchy.
    pub mem: HierarchyConfig,
    /// BTB geometry.
    pub btb: BtbConfig,
    /// Main conditional predictor preset.
    pub bpred: SclPreset,
    /// µ-op cache model.
    pub uop_cache: UopCacheModel,
    /// Standalone L1I prefetcher.
    pub prefetcher: PrefetcherKind,
    /// Fig. 5's `L1I-Hits` idealization: any line resident in the L1I
    /// counts as a µ-op cache hit.
    pub l1i_hits_ideal: bool,
    /// Fig. 5's `IdealBRCond-N`: after a conditional misprediction, all
    /// fetches count as µ-op cache hits until `N` conditional branches
    /// have been fetched.
    pub ideal_brcond: Option<u32>,
    /// Attach a Misprediction Recovery Cache with this many entries
    /// (Fig. 16).
    pub mrc_entries: Option<usize>,
    /// The UCP engine.
    pub ucp: UcpConfig,
}

impl SimConfig {
    /// The paper's Table II baseline: Alder Lake-class core, 4Kops µ-op
    /// cache, 64 KB TAGE-SC-L, 64 KB ITTAGE, 64K-entry BTB, no prefetcher,
    /// UCP off.
    pub fn baseline() -> Self {
        SimConfig {
            frontend: FrontendConfig::default(),
            backend: BackendConfig::default(),
            mem: HierarchyConfig::alder_lake(),
            btb: BtbConfig::baseline(),
            bpred: SclPreset::Main64K,
            uop_cache: UopCacheModel::kops_4(),
            prefetcher: PrefetcherKind::None,
            l1i_hits_ideal: false,
            ideal_brcond: None,
            mrc_entries: None,
            ucp: UcpConfig::default(),
        }
    }

    /// Baseline without a µ-op cache (Fig. 2 / Fig. 10 denominator).
    pub fn no_uop_cache() -> Self {
        SimConfig {
            uop_cache: UopCacheModel::None,
            ..SimConfig::baseline()
        }
    }

    /// Baseline + the full UCP proposal (Alt-BP + Alt-Ind, dedicated
    /// decoders, threshold 500, UCP-Conf, 32 BTB banks).
    pub fn ucp() -> Self {
        let mut c = SimConfig::baseline();
        c.ucp.enabled = true;
        c.btb = BtbConfig::ucp_32_banks();
        c
    }

    /// UCP without the dedicated indirect predictor (8.95 KB flavour).
    pub fn ucp_no_ind() -> Self {
        let mut c = SimConfig::ucp();
        c.ucp.use_alt_ind = false;
        c
    }

    /// The *additional* storage this configuration uses on top of the
    /// no-extras baseline, in KB — the x-axis of Fig. 16.
    pub fn extra_storage_kb(&self) -> f64 {
        let mut bits = 0.0f64;
        if self.ucp.enabled {
            // Alt-BP 8 KB + Alt-FTQ 0.14 KB + µ-op MSHR 0.19 KB + PQ
            // 0.25 KB + alt decode queue 0.12 KB + Alt-RAS 0.06 KB
            // (§IV-F), plus Alt-Ind 4 KB if present.
            let alt_bp = ucp_bpred::TageScL::new(SclPreset::Alt8K).storage_bits() as f64;
            bits += alt_bp + (0.14 + 0.19 + 0.25 + 0.12 + 0.06) * 8192.0;
            if self.ucp.use_alt_ind {
                bits +=
                    ucp_bpred::Ittage::new(ucp_bpred::IttageParams::alt_4k()).storage_bits() as f64;
            }
        }
        bits += match self.prefetcher {
            PrefetcherKind::None => 0,
            PrefetcherKind::FnlMma => ucp_prefetch::FnlMma::new(false).storage_bits(),
            PrefetcherKind::FnlMmaPlusPlus => ucp_prefetch::FnlMma::new(true).storage_bits(),
            PrefetcherKind::DJolt => ucp_prefetch::DJolt::new().storage_bits(),
            PrefetcherKind::Ep => ucp_prefetch::Entangling::new(false).storage_bits(),
            PrefetcherKind::EpPlusPlus => ucp_prefetch::Entangling::new(true).storage_bits(),
        } as f64;
        if let Some(entries) = self.mrc_entries {
            bits += ucp_prefetch::Mrc::new(entries).storage_bits() as f64;
        }
        // Larger-than-baseline µ-op cache counts its delta.
        if let UopCacheModel::Real(cfg) = &self.uop_cache {
            let base = UopCacheConfig::kops_4().storage_bits() as f64;
            let this = cfg.storage_bits() as f64;
            if this > base {
                bits += this - base;
            }
        }
        // Larger-than-baseline main predictor counts its delta.
        if self.bpred == SclPreset::Big128K {
            let base = ucp_bpred::TageScL::new(SclPreset::Main64K).storage_bits() as f64;
            bits += ucp_bpred::TageScL::new(SclPreset::Big128K).storage_bits() as f64 - base;
        }
        bits / 8192.0
    }

    /// Self-check printout of the Table II parameters actually
    /// instantiated (the `table2` harness).
    pub fn describe_table2(&self) -> String {
        let uc = match &self.uop_cache {
            UopCacheModel::None => "none".to_owned(),
            UopCacheModel::Ideal => "ideal".to_owned(),
            UopCacheModel::Real(c) => format!(
                "{} ops, {} sets, {} ways, {} uops/entry",
                c.capacity_uops(),
                c.sets,
                c.ways,
                c.uops_per_entry
            ),
        };
        format!(
            "BTB: {} entries, {} banks, {}-way\n\
             Cond predictor: {:?}\n\
             uop cache: {uc}\n\
             Frontend: {} windows/cycle, decode {}, dispatch {}, FTQ {} blocks\n\
             Backend: ROB {}, commit {}\n\
             L1I: {} KB {}c | L1D: {} KB {}c | L2: {} KB {}c | LLC: {} KB {}c",
            self.btb.total_entries,
            self.btb.banks,
            self.btb.ways,
            self.bpred,
            self.frontend.windows_per_cycle,
            self.frontend.decode_width,
            self.frontend.dispatch_width,
            self.frontend.ftq_entries,
            self.backend.rob_entries,
            self.backend.commit_width,
            self.mem.l1i.capacity_bytes() / 1024,
            self.mem.l1i.latency,
            self.mem.l1d.capacity_bytes() / 1024,
            self.mem.l1d.latency,
            self.mem.l2.capacity_bytes() / 1024,
            self.mem.l2.latency,
            self.mem.llc.capacity_bytes() / 1024,
            self.mem.llc.latency,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_matches_table_ii() {
        let c = SimConfig::baseline();
        assert_eq!(c.btb.total_entries, 64 * 1024);
        assert_eq!(c.btb.banks, 16);
        assert_eq!(c.backend.rob_entries, 512);
        assert_eq!(c.mem.l1i.capacity_bytes(), 32 * 1024);
        match &c.uop_cache {
            UopCacheModel::Real(u) => assert_eq!(u.capacity_uops(), 4096),
            other => panic!("{other:?}"),
        }
        assert!(!c.ucp.enabled);
    }

    #[test]
    fn ucp_preset_doubles_banks() {
        let c = SimConfig::ucp();
        assert!(c.ucp.enabled);
        assert_eq!(c.btb.banks, 32);
        assert_eq!(c.ucp.stop_threshold, 500);
    }

    #[test]
    fn ucp_storage_overheads_match_paper() {
        // §IV-F: 12.95 KB with Alt-Ind, 8.95 KB without.
        let with_ind = SimConfig::ucp().extra_storage_kb();
        let without = SimConfig::ucp_no_ind().extra_storage_kb();
        assert!((11.0..15.0).contains(&with_ind), "got {with_ind:.2} KB");
        assert!((7.5..10.5).contains(&without), "got {without:.2} KB");
        assert!(with_ind - without > 3.0, "Alt-Ind ≈ 4 KB");
    }

    #[test]
    fn baseline_has_no_extra_storage() {
        assert_eq!(SimConfig::baseline().extra_storage_kb(), 0.0);
    }

    #[test]
    fn prefetcher_storage_counted() {
        let mut c = SimConfig::baseline();
        c.prefetcher = PrefetcherKind::DJolt;
        assert!(c.extra_storage_kb() > 100.0);
    }

    #[test]
    fn describe_table2_mentions_key_numbers() {
        let d = SimConfig::baseline().describe_table2();
        assert!(d.contains("65536 entries"));
        assert!(d.contains("4096 ops"));
        assert!(d.contains("ROB 512"));
    }
}
