//! Mid-run checkpoint/restore and the determinism auditor.
//!
//! A checkpoint is the *complete* mutable state of a [`crate::Simulator`]
//! — pipeline, predictors, µ-op cache, UCP engine, memory hierarchy,
//! statistics and telemetry — serialized with the [`sim_isa::StateWriter`]
//! codec and wrapped in the result cache's integrity envelope (checksummed
//! header + atomic rename), so a torn or corrupted checkpoint is detected
//! on read and quarantined rather than silently restored.
//!
//! File layout inside the envelope payload:
//!
//! ```text
//! <CheckpointMeta as one JSON line>\n
//! <raw component state bytes>
//! ```
//!
//! The meta line embeds the workload spec and simulator config as JSON, so
//! offline tools (`ucp-bisect`) can rebuild the exact simulation from the
//! checkpoint directory alone. Checkpoints are named
//! `ckpt-<committed>.bin` under a per-run directory keyed by a slug of
//! (workload, seed, config, run lengths); a keep-last-k policy bounds disk
//! use.

use crate::error::SimError;
use serde::{Deserialize, Serialize};
use sim_isa::{fnv1a64, StateReader, StateWriter};
use std::path::{Path, PathBuf};
use ucp_telemetry::envelope::{quarantine, read_envelope_bytes, write_envelope_bytes};
use ucp_telemetry::{CacheReadError, FaultPlan};

/// Checkpoint format version; bumped whenever any component's serialized
/// layout changes. Doubles as the envelope `model_version`, so stale
/// checkpoints fail integrity verification instead of mis-restoring.
pub const CKPT_VERSION: u32 = 1;

/// Default number of checkpoints retained per run.
pub const DEFAULT_CKPT_KEEP: usize = 3;

/// A component that can serialize and restore its full mutable state.
///
/// Implementations must be *total*: every field that can influence future
/// simulation behaviour is written by `save_state` and overwritten by
/// `restore_state` (geometry/configuration is excluded — it is rebuilt
/// from the config and asserted on restore). Telemetry handles are
/// excluded too: they are rebound on attach, and the registry contents are
/// checkpointed separately at the simulator level.
pub trait Checkpointable {
    /// Stable identifier used in digests and divergence reports.
    fn component_id(&self) -> &'static str;

    /// Serializes the mutable state into `w`.
    fn save_state(&self, w: &mut StateWriter);

    /// Restores state written by `save_state`. The receiver must have been
    /// built from the same configuration.
    fn restore_state(&mut self, r: &mut StateReader);

    /// 64-bit FNV-1a digest of the serialized state.
    fn state_digest(&self) -> u64 {
        let mut w = StateWriter::new();
        self.save_state(&mut w);
        fnv1a64(&w.into_bytes())
    }
}

/// Everything needed to identify and resume a checkpoint, stored as the
/// first (JSON) line of the payload.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CheckpointMeta {
    /// Checkpoint format version ([`CKPT_VERSION`]).
    pub version: u32,
    /// Workload name.
    pub workload: String,
    /// The full `WorkloadSpec`, as JSON.
    pub spec_json: String,
    /// The full `SimConfig`, as JSON.
    pub cfg_json: String,
    /// Workload seed actually used (suite retries perturb the spec seed).
    pub seed: u64,
    /// Warm-up length of the interrupted run (instructions) — replaying
    /// tools need it to open the measurement window at the same boundary.
    pub warmup: u64,
    /// Measured length of the interrupted run (instructions).
    pub measure: u64,
    /// Instructions committed at capture time (whole run).
    pub committed: u64,
    /// Machine cycle at capture time.
    pub cycle: u64,
    /// FNV-1a digest of the state bytes that follow the meta line.
    pub digest: u64,
}

/// One determinism-auditor sample: the machine digest after `committed`
/// instructions.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DigestRecord {
    /// Instructions committed (whole run) when the digest was taken.
    pub committed: u64,
    /// Machine cycle when the digest was taken.
    pub cycle: u64,
    /// FNV-1a digest of the full serialized machine state.
    pub digest: u64,
}

/// `UCP_CKPT` policy: checkpoint every `every` committed instructions,
/// keep the newest `keep` on disk.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CheckpointPolicy {
    /// Checkpoint interval in committed instructions.
    pub every: u64,
    /// Checkpoints retained per run directory.
    pub keep: usize,
}

/// Reads `UCP_CKPT`: `Ok(None)` disables checkpointing (unset, empty,
/// `0`, `off`), otherwise `<instructions>[:<keep>]` (keep defaults to
/// [`DEFAULT_CKPT_KEEP`]).
///
/// # Errors
///
/// Malformed values are a hard configuration error, consistent with
/// `UCP_WATCHDOG` and `UCP_FAULT`.
pub fn ckpt_from_env() -> Result<Option<CheckpointPolicy>, String> {
    let Ok(s) = std::env::var("UCP_CKPT") else {
        return Ok(None);
    };
    let s = s.trim().to_ascii_lowercase();
    if s.is_empty() || s == "off" || s == "0" {
        return Ok(None);
    }
    let err = || {
        format!(
            "UCP_CKPT=`{s}` is not a checkpoint interval; \
             expected `<instructions>[:<keep>]`, `0`, or `off`"
        )
    };
    let (every_s, keep_s) = match s.split_once(':') {
        Some((e, k)) => (e, Some(k)),
        None => (s.as_str(), None),
    };
    let every = every_s.parse::<u64>().map_err(|_| err())?;
    if every == 0 {
        return Ok(None);
    }
    let keep = match keep_s {
        Some(k) => match k.parse::<usize>() {
            Ok(n) if n >= 1 => n,
            _ => return Err(err()),
        },
        None => DEFAULT_CKPT_KEEP,
    };
    Ok(Some(CheckpointPolicy { every, keep }))
}

/// Reads `UCP_DIGEST`: `Ok(None)` disables the determinism auditor
/// (unset, empty, `0`, `off`), otherwise the digest interval in committed
/// instructions.
///
/// # Errors
///
/// Malformed values are a hard configuration error, consistent with
/// `UCP_WATCHDOG` and `UCP_CKPT`.
pub fn digest_from_env() -> Result<Option<u64>, String> {
    let Ok(s) = std::env::var("UCP_DIGEST") else {
        return Ok(None);
    };
    let s = s.trim().to_ascii_lowercase();
    if s.is_empty() || s == "off" {
        return Ok(None);
    }
    match s.parse::<u64>() {
        Ok(0) => Ok(None),
        Ok(n) => Ok(Some(n)),
        Err(_) => Err(format!(
            "UCP_DIGEST=`{s}` is not an instruction count; \
             expected an integer, `0`, or `off`"
        )),
    }
}

/// Root directory for checkpoints: `UCP_CKPT_DIR`, else
/// `target/ucp-ckpt`.
pub fn ckpt_root() -> PathBuf {
    std::env::var("UCP_CKPT_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from("target").join("ucp-ckpt"))
}

/// Stable per-run directory slug: a digest of everything that determines
/// the simulated trajectory. Suite retries perturb the seed, so a retry
/// never resumes a checkpoint from a different trajectory.
pub fn run_slug(workload: &str, seed: u64, cfg_json: &str, warmup: u64, measure: u64) -> String {
    let key = format!("{workload}|{seed:#x}|{cfg_json}|w{warmup}|m{measure}");
    format!("{workload}-{:016x}", fnv1a64(key.as_bytes()))
}

/// Path of the checkpoint taken at `committed` instructions.
pub fn checkpoint_path(dir: &Path, committed: u64) -> PathBuf {
    dir.join(format!("ckpt-{committed:012}.bin"))
}

fn committed_of(path: &Path) -> Option<u64> {
    let name = path.file_name()?.to_str()?;
    let n = name.strip_prefix("ckpt-")?.strip_suffix(".bin")?;
    n.parse().ok()
}

/// Checkpoints in `dir`, sorted by committed-instruction count ascending.
/// Quarantined and foreign files are ignored.
pub fn list_checkpoints(dir: &Path) -> Vec<(u64, PathBuf)> {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return Vec::new();
    };
    let mut out: Vec<(u64, PathBuf)> = entries
        .flatten()
        .filter_map(|e| {
            let p = e.path();
            committed_of(&p).map(|c| (c, p))
        })
        .collect();
    out.sort_unstable();
    out
}

/// Serializes a checkpoint payload: meta line + state bytes.
pub fn compose_checkpoint(meta: &CheckpointMeta, state: &[u8]) -> Vec<u8> {
    let meta_line = serde_json::to_string(meta).expect("checkpoint meta serializes");
    let mut payload = Vec::with_capacity(meta_line.len() + 1 + state.len());
    payload.extend_from_slice(meta_line.as_bytes());
    payload.push(b'\n');
    payload.extend_from_slice(state);
    payload
}

/// Splits an envelope payload back into meta and state bytes, verifying
/// the meta's own state digest (defence in depth below the envelope
/// checksum, and the hook the divergence bisector keys on).
pub fn parse_checkpoint(payload: &[u8]) -> Result<(CheckpointMeta, Vec<u8>), String> {
    let split = payload
        .iter()
        .position(|&b| b == b'\n')
        .ok_or("checkpoint payload has no meta line")?;
    let meta_line = std::str::from_utf8(&payload[..split])
        .map_err(|e| format!("checkpoint meta line is not UTF-8: {e}"))?;
    let meta: CheckpointMeta =
        serde_json::from_str(meta_line).map_err(|e| format!("unparseable checkpoint meta: {e}"))?;
    if meta.version != CKPT_VERSION {
        return Err(format!(
            "checkpoint version {} (current {CKPT_VERSION})",
            meta.version
        ));
    }
    let state = payload[split + 1..].to_vec();
    let digest = fnv1a64(&state);
    if digest != meta.digest {
        return Err(format!(
            "state digest {digest:#018x} != meta digest {:#018x}",
            meta.digest
        ));
    }
    Ok((meta, state))
}

/// Writes a checkpoint atomically inside the integrity envelope and prunes
/// the directory down to the newest `keep` checkpoints. `fault` lets the
/// injection harness tear this write (the `torn_write` site).
///
/// # Errors
///
/// Returns [`SimError::Io`] on any filesystem failure.
pub fn write_checkpoint(
    dir: &Path,
    meta: &CheckpointMeta,
    state: &[u8],
    keep: usize,
    fault: Option<&FaultPlan>,
) -> Result<PathBuf, SimError> {
    let io_err = |path: &Path, e: std::io::Error| SimError::Io {
        path: path.display().to_string(),
        detail: e.to_string(),
    };
    std::fs::create_dir_all(dir).map_err(|e| io_err(dir, e))?;
    let path = checkpoint_path(dir, meta.committed);
    let payload = compose_checkpoint(meta, state);
    write_envelope_bytes(&path, CKPT_VERSION, &payload, fault).map_err(|e| io_err(&path, e))?;
    // Keep-last-k: drop the oldest beyond `keep` (the just-written one is
    // always newest by construction — commit counts only grow).
    let all = list_checkpoints(dir);
    if all.len() > keep {
        for (_, old) in &all[..all.len() - keep] {
            if let Err(e) = std::fs::remove_file(old) {
                eprintln!("[ucp-ckpt] could not prune {}: {e}", old.display());
            }
        }
    }
    Ok(path)
}

/// Loads the newest checkpoint in `dir` that passes integrity
/// verification. Corrupt checkpoints are quarantined (renamed aside) and
/// the next-older one is tried — the crash-recovery path after a torn
/// write. Returns `None` when no valid checkpoint exists.
pub fn latest_valid_checkpoint(dir: &Path) -> Option<(CheckpointMeta, Vec<u8>)> {
    for (_, path) in list_checkpoints(dir).into_iter().rev() {
        match read_envelope_bytes(&path, CKPT_VERSION) {
            Ok(payload) => match parse_checkpoint(&payload) {
                Ok(ok) => return Some(ok),
                Err(detail) => reject(&path, &detail),
            },
            Err(CacheReadError::Missing) => continue,
            Err(CacheReadError::Corrupt(detail)) => reject(&path, &detail),
        }
    }
    None
}

fn reject(path: &Path, detail: &str) {
    match quarantine(path) {
        Some(q) => eprintln!(
            "[ucp-ckpt] corrupt checkpoint {}: {detail}; quarantined as {}",
            path.display(),
            q.display()
        ),
        None => eprintln!(
            "[ucp-ckpt] corrupt checkpoint {}: {detail}; could not quarantine",
            path.display()
        ),
    }
}

/// Removes a run's checkpoint directory (called after a successful run —
/// its checkpoints can never be resumed again).
pub fn remove_run_checkpoints(dir: &Path) {
    if dir.exists() {
        let _ = std::fs::remove_dir_all(dir);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta(committed: u64, state: &[u8]) -> CheckpointMeta {
        CheckpointMeta {
            version: CKPT_VERSION,
            workload: "t".into(),
            spec_json: "{}".into(),
            cfg_json: "{}".into(),
            seed: 7,
            warmup: 0,
            measure: 1000,
            committed,
            cycle: committed * 2,
            digest: fnv1a64(state),
        }
    }

    #[test]
    fn payload_round_trips() {
        let state = vec![1u8, 2, 3, 4, 5];
        let m = meta(100, &state);
        let payload = compose_checkpoint(&m, &state);
        let (back, state2) = parse_checkpoint(&payload).unwrap();
        assert_eq!(back.committed, 100);
        assert_eq!(state2, state);
    }

    #[test]
    fn digest_mismatch_is_rejected() {
        let state = vec![1u8, 2, 3];
        let mut m = meta(5, &state);
        m.digest ^= 1;
        let payload = compose_checkpoint(&m, &state);
        assert!(parse_checkpoint(&payload).unwrap_err().contains("digest"));
    }

    #[test]
    fn write_prune_and_load_newest() {
        let dir = std::env::temp_dir().join(format!("ucp-ckpt-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        for committed in [10u64, 20, 30, 40, 50] {
            let state = committed.to_le_bytes().to_vec();
            write_checkpoint(&dir, &meta(committed, &state), &state, 3, None).unwrap();
        }
        let listed = list_checkpoints(&dir);
        assert_eq!(
            listed.iter().map(|(c, _)| *c).collect::<Vec<_>>(),
            vec![30, 40, 50],
            "keep-last-3"
        );
        let (m, state) = latest_valid_checkpoint(&dir).unwrap();
        assert_eq!(m.committed, 50);
        assert_eq!(state, 50u64.to_le_bytes().to_vec());
        // Corrupt the newest: loader must quarantine it and fall back.
        let (_, newest) = listed.last().unwrap().clone();
        std::fs::write(&newest, b"garbage").unwrap();
        let (m, _) = latest_valid_checkpoint(&dir).unwrap();
        assert_eq!(m.committed, 40, "fell back past the corrupt newest");
        assert!(!newest.exists(), "corrupt checkpoint was quarantined");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn slug_depends_on_every_input() {
        let a = run_slug("w", 1, "{}", 100, 200);
        assert_ne!(a, run_slug("w", 2, "{}", 100, 200));
        assert_ne!(a, run_slug("w", 1, "{\"x\":1}", 100, 200));
        assert_ne!(a, run_slug("w", 1, "{}", 101, 200));
        assert_ne!(a, run_slug("w", 1, "{}", 100, 201));
        assert_eq!(a, run_slug("w", 1, "{}", 100, 200));
        assert!(a.starts_with("w-"));
    }

    #[test]
    fn ckpt_env_parses_strictly() {
        // Env mutation: keep every UCP_CKPT case in this one test.
        std::env::remove_var("UCP_CKPT");
        assert_eq!(ckpt_from_env().unwrap(), None);
        std::env::set_var("UCP_CKPT", "50000");
        assert_eq!(
            ckpt_from_env().unwrap(),
            Some(CheckpointPolicy {
                every: 50_000,
                keep: DEFAULT_CKPT_KEEP
            })
        );
        std::env::set_var("UCP_CKPT", "50000:5");
        assert_eq!(
            ckpt_from_env().unwrap(),
            Some(CheckpointPolicy {
                every: 50_000,
                keep: 5
            })
        );
        std::env::set_var("UCP_CKPT", "off");
        assert_eq!(ckpt_from_env().unwrap(), None);
        std::env::set_var("UCP_CKPT", "0");
        assert_eq!(ckpt_from_env().unwrap(), None);
        for bad in ["soon", "10:", "10:0", ":3", "1e4"] {
            std::env::set_var("UCP_CKPT", bad);
            let e = ckpt_from_env().unwrap_err();
            assert!(e.contains("expected"), "{bad}: {e}");
        }
        std::env::remove_var("UCP_CKPT");
    }

    #[test]
    fn digest_env_parses_strictly() {
        // Env mutation: keep every UCP_DIGEST case in this one test.
        std::env::remove_var("UCP_DIGEST");
        assert_eq!(digest_from_env().unwrap(), None);
        std::env::set_var("UCP_DIGEST", "10000");
        assert_eq!(digest_from_env().unwrap(), Some(10_000));
        std::env::set_var("UCP_DIGEST", "off");
        assert_eq!(digest_from_env().unwrap(), None);
        std::env::set_var("UCP_DIGEST", "0");
        assert_eq!(digest_from_env().unwrap(), None);
        std::env::set_var("UCP_DIGEST", "often");
        assert!(digest_from_env().unwrap_err().contains("expected"));
        std::env::remove_var("UCP_DIGEST");
    }
}
