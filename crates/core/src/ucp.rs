//! The UCP engine: alternate-path µ-op cache prefetching (§IV).
//!
//! On a low-confidence (H2P) conditional prediction, the engine starts
//! walking the *alternate* path — the direction the main predictor did not
//! choose — using its own small predictors (Alt-BP, Alt-Ind, Alt-RAS) and
//! the shared banked BTB. Generated fetch blocks flow through the Alt-FTQ,
//! a µ-op cache tag check, the µ-op cache MSHR and the L1I prefetch queue;
//! returning lines are decoded by dedicated alternate decoders and
//! inserted into the µ-op cache, ready to accelerate the pipeline refill if
//! the H2P branch indeed mispredicts.
//!
//! The stopping heuristic accumulates the paper's Table I weights into a
//! saturating counter and terminates the walk at a threshold (500 by
//! default, swept in Fig. 15), on a BTB miss, on an indirect branch without
//! Alt-Ind, or after 63 branch-free instructions.

use crate::config::{ConfKind, UcpConfig};
use crate::stats::UcpStats;
use sim_isa::{Addr, BranchClass};
use ucp_bpred::{
    push_target_history, ConfidenceEstimator, HistCheckpoint, HistoryState, Ittage, IttageParams,
    IttagePrediction, Provider, SclPrediction, SclPreset, TageConf, TageScL, UcpConf,
};
use ucp_frontend::{BoundedQueue, Btb, Ras, UopCache};
use ucp_mem::Hierarchy;
use ucp_telemetry::{Category, Counter, Telemetry, Tracer};
use ucp_workloads::Program;

/// A fetch block generated on the alternate path.
#[derive(Clone, Copy, Debug)]
pub struct AltBlock {
    /// First instruction address.
    pub start: Addr,
    /// Instructions in the block (≤ 8, within one 32 B window).
    pub n: u8,
    /// The H2P trigger instance that generated this block.
    pub trigger: u64,
}

#[derive(Clone, Copy, Debug)]
struct PendingPf {
    block: AltBlock,
    ready: u64,
}

/// The active alternate-path walk.
#[derive(Debug)]
struct AltWalk {
    pc: Addr,
    hist: HistoryState,
    path_hist: HistoryState,
    weight: u32,
    threshold: u32,
    insts_since_branch: u32,
    trigger: u64,
    /// 3-bit saturating BTB-conflict delay counter (§IV-C).
    conflict_ctr: u8,
}

/// Why a walk ended (maps to [`UcpStats`] counters).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum StopReason {
    Threshold,
    BtbMiss,
    Indirect,
    NoBranch,
}

/// Per-cycle outputs the pipeline needs from the engine.
#[derive(Clone, Copy, Debug, Default)]
pub struct UcpCycleOut {
    /// The alternate path saturated its conflict counter and wins the BTB
    /// banks next cycle; the demand path loses one prediction window.
    pub demand_window_steal: bool,
}

/// Telemetry handles for the `ucp.*` namespace; detached until
/// [`UcpEngine::attach_telemetry`]. These mirror the [`UcpStats`] fields
/// the engine already keeps — the duplication is deliberate: `stats` is
/// windowed by the pipeline's measurement delta, while the registry delta
/// is computed independently so cross-layer reports share one mechanism.
#[derive(Debug, Default)]
struct UcpTelemetry {
    tracer: Tracer,
    walks_started: Counter,
    walks_preempted: Counter,
    walks_stopped: Counter,
    lines_prefetched: Counter,
    entries_inserted: Counter,
    filtered_present: Counter,
    demand_steals: Counter,
    btb_conflicts: Counter,
}

impl UcpTelemetry {
    fn bound_to(t: &Telemetry) -> Self {
        UcpTelemetry {
            tracer: t.tracer.clone(),
            walks_started: t.registry.counter("ucp.walks_started"),
            walks_preempted: t.registry.counter("ucp.walks_preempted"),
            walks_stopped: t.registry.counter("ucp.walks_stopped"),
            lines_prefetched: t.registry.counter("ucp.lines_prefetched"),
            entries_inserted: t.registry.counter("ucp.entries_inserted"),
            filtered_present: t.registry.counter("ucp.filtered_present"),
            demand_steals: t.registry.counter("ucp.demand_window_steals"),
            btb_conflicts: t.registry.counter("ucp.btb_conflicts"),
        }
    }
}

/// The UCP alternate-path prefetch engine.
#[derive(Debug)]
pub struct UcpEngine {
    cfg: UcpConfig,
    alt_bp: TageScL,
    /// Predicted-path GHR mirror for Alt-BP (§IV-C: "Alt-BP implements two
    /// GHRs"; the second is cloned per walk).
    alt_bp_mirror: HistoryState,
    alt_ind: Option<Ittage>,
    alt_ind_mirror: HistoryState,
    alt_ras: Ras,
    walk: Option<AltWalk>,
    alt_ftq: BoundedQueue<AltBlock>,
    l1i_pq: BoundedQueue<AltBlock>,
    pending: Vec<PendingPf>,
    decode_q: BoundedQueue<AltBlock>,
    decode_progress: u32,
    trigger_seq: u64,
    /// Trigger instances considered "current" for timeliness accounting.
    recent_triggers: std::collections::VecDeque<u64>,
    /// Statistics (drained into `SimStats` by the pipeline).
    pub stats: UcpStats,
    tele: UcpTelemetry,
}

impl UcpEngine {
    /// Creates the engine with the 8 KB Alt-BP and, if configured, the
    /// 4 KB Alt-Ind and a 16-entry Alt-RAS.
    pub fn new(cfg: UcpConfig) -> Self {
        let alt_bp = TageScL::new(SclPreset::Alt8K);
        let alt_bp_mirror = alt_bp.new_history();
        let alt_ind = cfg.use_alt_ind.then(|| Ittage::new(IttageParams::alt_4k()));
        let alt_ind_mirror = match &alt_ind {
            Some(i) => i.new_history(),
            // A minimal placeholder history keeps checkpoint plumbing
            // uniform when Alt-Ind is absent.
            None => Ittage::new(IttageParams::alt_4k()).new_history(),
        };
        UcpEngine {
            alt_bp_mirror,
            alt_bp,
            alt_ind,
            alt_ind_mirror,
            alt_ras: Ras::new(16),
            walk: None,
            alt_ftq: BoundedQueue::new(cfg.alt_ftq_entries),
            l1i_pq: BoundedQueue::new(8),
            pending: Vec::with_capacity(cfg.uop_mshr_entries),
            decode_q: BoundedQueue::new(cfg.alt_decode_queue),
            decode_progress: 0,
            trigger_seq: 0,
            recent_triggers: std::collections::VecDeque::with_capacity(16),
            stats: UcpStats::default(),
            tele: UcpTelemetry::default(),
            cfg,
        }
    }

    /// Binds the `ucp.*` counters and the `Ucp` trace category to `t`'s
    /// registry and tracer.
    pub fn attach_telemetry(&mut self, t: &Telemetry) {
        self.tele = UcpTelemetry::bound_to(t);
    }

    /// The configuration.
    pub fn config(&self) -> &UcpConfig {
        &self.cfg
    }

    // ---- predicted-path mirror maintenance (called by the demand BPU) ----

    /// Mirrors a conditional-outcome push and returns the Alt-BP's own
    /// prediction for training at resolution.
    pub fn on_cond_predicted(&mut self, pc: Addr, predicted_taken: bool) -> SclPrediction {
        let p = self.alt_bp.predict(&self.alt_bp_mirror, pc);
        self.alt_bp_mirror.push(predicted_taken);
        p
    }

    /// Mirrors a taken-transfer target push and returns the Alt-Ind
    /// prediction (for indirect branches) for training at resolution.
    pub fn on_taken_target(
        &mut self,
        pc: Addr,
        target: Addr,
        indirect: bool,
    ) -> Option<IttagePrediction> {
        let pred = if indirect {
            self.alt_ind
                .as_ref()
                .map(|i| i.predict(&self.alt_ind_mirror, pc))
        } else {
            None
        };
        push_target_history(&mut self.alt_ind_mirror, target);
        pred
    }

    /// Checkpoints the mirror histories (stored in the branch record).
    pub fn checkpoints(&self) -> (HistCheckpoint, HistCheckpoint) {
        (
            self.alt_bp_mirror.checkpoint(),
            self.alt_ind_mirror.checkpoint(),
        )
    }

    /// Restores the mirrors on a pipeline flush, pushes the corrected
    /// outcome, and aborts any in-flight alternate work (the paper:
    /// terminating the alternate path only requires flushing the Alt-FTQ).
    pub fn on_flush(
        &mut self,
        cps: (HistCheckpoint, HistCheckpoint),
        actual_cond: Option<bool>,
        actual_target: Option<Addr>,
    ) {
        self.alt_bp_mirror.restore(&cps.0);
        self.alt_ind_mirror.restore(&cps.1);
        if let Some(t) = actual_cond {
            self.alt_bp_mirror.push(t);
        }
        if let Some(t) = actual_target {
            push_target_history(&mut self.alt_ind_mirror, t);
        }
        self.walk = None;
        self.alt_ftq.clear();
        // In-flight memory requests complete into the µ-op cache (the
        // lines were requested; fills proceed), mirroring real hardware
        // where MSHR entries drain; the decode queue survives too.
    }

    // ---- training (called at branch resolution) ----

    /// Trains Alt-BP with the resolved conditional outcome.
    pub fn train_cond(&mut self, pc: Addr, pred: &SclPrediction, taken: bool) {
        self.alt_bp.update(pc, pred, taken);
    }

    /// Trains Alt-Ind with the resolved indirect target.
    pub fn train_indirect(&mut self, pc: Addr, pred: &IttagePrediction, target: Addr) {
        if let Some(ind) = self.alt_ind.as_mut() {
            ind.update(pc, pred, target);
        }
    }

    // ---- triggering ----

    /// Classifies a main-path prediction as H2P under the configured
    /// estimator.
    pub fn is_h2p(&self, scl: &SclPrediction) -> bool {
        match self.cfg.conf {
            ConfKind::Tage => TageConf.is_h2p(scl),
            ConfKind::Ucp => UcpConf.is_h2p(scl),
        }
    }

    /// Starts (or restarts) an alternate-path walk at `alt_target`,
    /// opposite to the predicted direction of the H2P branch. The current
    /// walk, if any, is preempted (§IV-E case 1).
    pub fn trigger(&mut self, alt_target: Addr, h2p_predicted_taken: bool, main_ras: &Ras) {
        if self.walk.is_some() {
            self.stats.preempted += 1;
            self.tele.walks_preempted.inc();
        }
        self.trigger_seq += 1;
        self.stats.walks_started += 1;
        self.tele.walks_started.inc();
        let trigger_seq = self.trigger_seq;
        self.tele.tracer.emit(Category::Ucp, "walk_start", || {
            format!(
                "target={:#x} trigger={trigger_seq} h2p_taken={h2p_predicted_taken}",
                alt_target.raw()
            )
        });
        if self.recent_triggers.len() >= 16 {
            self.recent_triggers.pop_front();
        }
        self.recent_triggers.push_back(self.trigger_seq);
        // Alternate GHR: copy the pre-H2P predicted-path history... the
        // mirror already holds the history *including* the H2P branch's
        // predicted outcome (pushed by on_cond_predicted). Clone it and
        // flip the last outcome by re-pushing the opposite on a fresh copy:
        // we instead clone the mirror and push the *opposite* outcome on
        // top of the pre-branch state, which the caller guarantees by
        // triggering before mirroring the predicted outcome.
        let mut hist = self.alt_bp_mirror.clone();
        hist.push(!h2p_predicted_taken);
        let mut path_hist = self.alt_ind_mirror.clone();
        push_target_history(&mut path_hist, alt_target);
        self.alt_ras.copy_from(main_ras);
        self.walk = Some(AltWalk {
            pc: alt_target,
            hist,
            path_hist,
            weight: 0,
            threshold: self.cfg.stop_threshold,
            insts_since_branch: 0,
            trigger: self.trigger_seq,
            conflict_ctr: 0,
        });
    }

    /// Records a demand hit on a prefetched entry (timeliness accounting).
    pub fn record_entry_use(&mut self, trigger: u64) {
        if self.recent_triggers.contains(&trigger) {
            self.stats.timely_used += 1;
        } else {
            self.stats.late_used += 1;
        }
    }

    /// `true` while a walk is generating addresses.
    pub fn walking(&self) -> bool {
        self.walk.is_some()
    }

    fn stop_walk(&mut self, reason: StopReason) {
        self.tele.walks_stopped.inc();
        self.tele
            .tracer
            .emit(Category::Ucp, "walk_stop", || format!("reason={reason:?}"));
        match reason {
            StopReason::Threshold => self.stats.stopped_threshold += 1,
            StopReason::BtbMiss => self.stats.stopped_btb_miss += 1,
            StopReason::Indirect => self.stats.stopped_indirect += 1,
            StopReason::NoBranch => self.stats.stopped_no_branch += 1,
        }
        self.walk = None;
    }

    /// One engine cycle: advance the walk by one block, run the tag-check /
    /// prefetch / fill / decode pipeline.
    ///
    /// `demand_uop_banks` are the µ-op cache tag banks the demand path used
    /// this cycle; `demand_btb_banks` is a bitmask of BTB banks the demand
    /// BPU used; `demand_in_stream_mode` gates shared decoders.
    #[allow(clippy::too_many_arguments)]
    pub fn cycle(
        &mut self,
        now: u64,
        prog: &Program,
        btb: &Btb,
        uop_cache: Option<&mut UopCache>,
        hier: &mut Hierarchy,
        demand_uop_banks: [bool; 2],
        demand_btb_banks: u64,
        demand_in_stream_mode: bool,
    ) -> UcpCycleOut {
        let mut out = UcpCycleOut::default();
        self.step_walk(prog, btb, demand_btb_banks, &mut out);
        self.tag_check(uop_cache.as_deref(), demand_uop_banks);
        self.issue_prefetch(now, hier);
        self.fill(now);
        self.alt_decode(prog, uop_cache, demand_in_stream_mode);
        out
    }

    /// Generates one alternate-path fetch block.
    fn step_walk(
        &mut self,
        prog: &Program,
        btb: &Btb,
        demand_btb_banks: u64,
        out: &mut UcpCycleOut,
    ) {
        let Some(mut walk) = self.walk.take() else {
            return;
        };
        if self.alt_ftq.is_full() {
            self.walk = Some(walk);
            return;
        }
        // BTB bank arbitration at block granularity: the walk needs the
        // bank of its current PC; a conflict delays it unless the 3-bit
        // counter saturated (§IV-C).
        if !self.cfg.ideal_btb_banking {
            let bank = btb.bank_of(walk.pc);
            if demand_btb_banks & (1u64 << (bank as u64 % 64)) != 0 {
                if walk.conflict_ctr >= 7 {
                    out.demand_window_steal = true;
                    self.stats.demand_steals += 1;
                    self.tele.demand_steals.inc();
                    self.tele
                        .tracer
                        .emit(Category::Ucp, "demand_window_steal", || {
                            format!("pc={:#x}", walk.pc.raw())
                        });
                    walk.conflict_ctr = 0;
                } else {
                    walk.conflict_ctr += 1;
                    self.stats.btb_conflicts += 1;
                    self.tele.btb_conflicts.inc();
                    self.walk = Some(walk);
                    return;
                }
            }
        }

        let start = walk.pc;
        let window_end = Addr::new(start.uop_window().raw() + 32);
        let mut pc = start;
        let mut n: u8 = 0;
        let mut next = start;
        let mut stop: Option<StopReason> = None;
        loop {
            if pc == window_end || n == 8 {
                next = pc;
                break;
            }
            // Walked off the code image: nothing to prefetch here.
            if prog.inst_at(pc).is_none() {
                stop = Some(StopReason::BtbMiss);
                next = pc;
                break;
            }
            n += 1;
            walk.insts_since_branch += 1;
            if let Some(entry) = btb.probe(pc) {
                walk.insts_since_branch = 0;
                match entry.class {
                    BranchClass::CondDirect => {
                        let pred = self.alt_bp.predict(&walk.hist, pc);
                        let w = cond_stop_weight(&pred);
                        walk.weight = walk.weight.saturating_add(w);
                        if w == 1 {
                            // High-confidence branches extend the allowance.
                            walk.threshold = walk.threshold.saturating_add(1);
                        }
                        walk.hist.push(pred.taken);
                        if pred.taken {
                            push_target_history(&mut walk.path_hist, entry.target);
                            next = entry.target;
                            break;
                        }
                    }
                    BranchClass::UncondDirect => {
                        push_target_history(&mut walk.path_hist, entry.target);
                        next = entry.target;
                        break;
                    }
                    BranchClass::Call => {
                        self.alt_ras.push(pc.next_inst());
                        push_target_history(&mut walk.path_hist, entry.target);
                        next = entry.target;
                        break;
                    }
                    BranchClass::Return => {
                        walk.weight = walk.weight.saturating_add(1);
                        match self.alt_ras.pop() {
                            Some(ra) => {
                                push_target_history(&mut walk.path_hist, ra);
                                next = ra;
                            }
                            None => stop = Some(StopReason::BtbMiss),
                        }
                        break;
                    }
                    BranchClass::IndirectJump | BranchClass::IndirectCall => {
                        match &self.alt_ind {
                            Some(ind) => {
                                walk.weight = walk.weight.saturating_add(1);
                                let p = ind.predict(&walk.path_hist, pc);
                                match p.target.or(Some(entry.target)).filter(|t| !t.is_null()) {
                                    Some(t) => {
                                        if entry.class == BranchClass::IndirectCall {
                                            self.alt_ras.push(pc.next_inst());
                                        }
                                        push_target_history(&mut walk.path_hist, t);
                                        next = t;
                                    }
                                    None => stop = Some(StopReason::Indirect),
                                }
                            }
                            None => stop = Some(StopReason::Indirect),
                        }
                        break;
                    }
                }
            }
            pc = pc.next_inst();
            next = pc;
        }

        if n > 0 {
            let blk = AltBlock {
                start,
                n,
                trigger: walk.trigger,
            };
            let _ = self.alt_ftq.push(blk);
        }
        walk.pc = next;

        if stop.is_none() && walk.weight >= walk.threshold {
            stop = Some(StopReason::Threshold);
        }
        if stop.is_none() && walk.insts_since_branch >= 63 {
            stop = Some(StopReason::NoBranch);
        }
        match stop {
            Some(r) => self.stop_walk(r),
            None => self.walk = Some(walk),
        }
    }

    /// One µ-op cache tag check per cycle, arbitrated against demand.
    fn tag_check(&mut self, uop_cache: Option<&UopCache>, demand_banks: [bool; 2]) {
        let Some(blk) = self.alt_ftq.front().copied() else {
            return;
        };
        if self.pending.len() >= self.cfg.uop_mshr_entries || self.l1i_pq.is_full() {
            return;
        }
        if let Some(uc) = uop_cache {
            let bank = uc.bank_of(blk.start);
            if demand_banks[bank] {
                // Demand wins the banked tag array; retry next cycle.
                return;
            }
            if uc.probe(blk.start) {
                self.stats.filtered_present += 1;
                self.tele.filtered_present.inc();
                let _ = self.alt_ftq.pop();
                return;
            }
        }
        let _ = self.alt_ftq.pop();
        let _ = self.l1i_pq.push(blk);
    }

    /// One L1I prefetch request per cycle.
    fn issue_prefetch(&mut self, now: u64, hier: &mut Hierarchy) {
        let Some(blk) = self.l1i_pq.front().copied() else {
            return;
        };
        match hier.access_inst(blk.start.line(), now, true) {
            Ok(acc) => {
                let _ = self.l1i_pq.pop();
                self.stats.lines_prefetched += 1;
                self.tele.lines_prefetched.inc();
                self.tele.tracer.emit(Category::Ucp, "line_prefetch", || {
                    format!(
                        "line={:#x} trigger={} ready={}",
                        blk.start.line().raw(),
                        blk.trigger,
                        acc.ready
                    )
                });
                self.pending.push(PendingPf {
                    block: blk,
                    ready: acc.ready,
                });
            }
            Err(_) => { /* L1I MSHR full; retry next cycle */ }
        }
    }

    /// Moves completed prefetches into the alternate decode queue.
    fn fill(&mut self, now: u64) {
        let mut i = 0;
        while i < self.pending.len() {
            if self.pending[i].ready <= now {
                let pf = self.pending.swap_remove(i);
                if self.cfg.till_l1i {
                    // UCP-TillL1I: the line is in the L1I; no µ-op fill.
                    continue;
                }
                if self.decode_q.push(pf.block).is_err() {
                    // Decode queue full: the line misses its window
                    // (stays in L1I only).
                    continue;
                }
            } else {
                i += 1;
            }
        }
    }

    /// Decodes queued alternate blocks and inserts µ-op cache entries.
    fn alt_decode(
        &mut self,
        prog: &Program,
        uop_cache: Option<&mut UopCache>,
        demand_in_stream_mode: bool,
    ) {
        let Some(uc) = uop_cache else {
            return;
        };
        if self.cfg.till_l1i {
            return;
        }
        let mut budget = if self.cfg.shared_decoders {
            // Shared decoders: the alternate path decodes only while the
            // demand path is streaming from the µ-op cache (§VI-F).
            if demand_in_stream_mode {
                self.cfg.alt_decoders
            } else {
                0
            }
        } else {
            self.cfg.alt_decoders
        };
        while budget > 0 {
            let Some(blk) = self.decode_q.front().copied() else {
                break;
            };
            let remaining = u32::from(blk.n) - self.decode_progress;
            let take = remaining.min(budget);
            self.decode_progress += take;
            budget -= take;
            self.stats.alt_decoded_uops += u64::from(take);
            if self.decode_progress >= u32::from(blk.n) {
                let _ = self.decode_q.pop();
                self.decode_progress = 0;
                for spec in
                    crate::pipeline::build_entries(prog, blk.start, blk.n, true, blk.trigger)
                {
                    uc.insert(spec);
                    self.stats.entries_inserted += 1;
                    self.tele.entries_inserted.inc();
                }
                self.tele.tracer.emit(Category::Ucp, "alt_fill", || {
                    format!(
                        "start={:#x} n={} trigger={}",
                        blk.start.raw(),
                        blk.n,
                        blk.trigger
                    )
                });
            }
        }
    }

    // ---- checkpointing ----

    fn save_block(w: &mut sim_isa::StateWriter, b: &AltBlock) {
        w.put_addr(b.start);
        w.put_u8(b.n);
        w.put_u64(b.trigger);
    }

    fn load_block(r: &mut sim_isa::StateReader) -> AltBlock {
        AltBlock {
            start: r.get_addr(),
            n: r.get_u8(),
            trigger: r.get_u64(),
        }
    }

    fn save_queue(w: &mut sim_isa::StateWriter, q: &BoundedQueue<AltBlock>) {
        w.put_usize(q.len());
        for b in q.iter() {
            Self::save_block(w, b);
        }
    }

    fn restore_queue(r: &mut sim_isa::StateReader, q: &mut BoundedQueue<AltBlock>) {
        q.clear();
        for _ in 0..r.get_usize() {
            let b = Self::load_block(r);
            q.push(b).expect("alt queue geometry mismatch");
        }
    }

    /// Serializes the engine's mutable state: both alternate predictors,
    /// the predicted-path mirrors, the Alt-RAS, the in-flight walk, and all
    /// queues. Telemetry handles are rebound on attach, not checkpointed.
    pub fn save_state(&self, w: &mut sim_isa::StateWriter) {
        w.mark(0x7cb0);
        self.alt_bp.save_state(w);
        self.alt_bp_mirror.save_state(w);
        w.put_bool(self.alt_ind.is_some());
        if let Some(ind) = &self.alt_ind {
            ind.save_state(w);
        }
        self.alt_ind_mirror.save_state(w);
        self.alt_ras.save_state(w);
        w.put_bool(self.walk.is_some());
        if let Some(walk) = &self.walk {
            w.put_addr(walk.pc);
            walk.hist.save_state(w);
            walk.path_hist.save_state(w);
            w.put_u32(walk.weight);
            w.put_u32(walk.threshold);
            w.put_u32(walk.insts_since_branch);
            w.put_u64(walk.trigger);
            w.put_u8(walk.conflict_ctr);
        }
        Self::save_queue(w, &self.alt_ftq);
        Self::save_queue(w, &self.l1i_pq);
        w.put_usize(self.pending.len());
        for p in &self.pending {
            Self::save_block(w, &p.block);
            w.put_u64(p.ready);
        }
        Self::save_queue(w, &self.decode_q);
        w.put_u32(self.decode_progress);
        w.put_u64(self.trigger_seq);
        w.put_usize(self.recent_triggers.len());
        for &t in &self.recent_triggers {
            w.put_u64(t);
        }
        self.stats.save_state(w);
        w.mark(0x7cb1);
    }

    /// Restores state written by [`UcpEngine::save_state`].
    pub fn restore_state(&mut self, r: &mut sim_isa::StateReader) {
        r.check(0x7cb0);
        self.alt_bp.restore_state(r);
        self.alt_bp_mirror.restore_state(r);
        let has_ind = r.get_bool();
        assert_eq!(
            has_ind,
            self.alt_ind.is_some(),
            "UCP Alt-Ind configuration mismatch"
        );
        if let Some(ind) = self.alt_ind.as_mut() {
            ind.restore_state(r);
        }
        self.alt_ind_mirror.restore_state(r);
        self.alt_ras.restore_state(r);
        self.walk = if r.get_bool() {
            let pc = r.get_addr();
            // HistoryState carries geometry; clone the same-geometry
            // mirrors and overwrite their contents.
            let mut hist = self.alt_bp_mirror.clone();
            hist.restore_state(r);
            let mut path_hist = self.alt_ind_mirror.clone();
            path_hist.restore_state(r);
            Some(AltWalk {
                pc,
                hist,
                path_hist,
                weight: r.get_u32(),
                threshold: r.get_u32(),
                insts_since_branch: r.get_u32(),
                trigger: r.get_u64(),
                conflict_ctr: r.get_u8(),
            })
        } else {
            None
        };
        Self::restore_queue(r, &mut self.alt_ftq);
        Self::restore_queue(r, &mut self.l1i_pq);
        self.pending.clear();
        for _ in 0..r.get_usize() {
            let block = Self::load_block(r);
            let ready = r.get_u64();
            self.pending.push(PendingPf { block, ready });
        }
        Self::restore_queue(r, &mut self.decode_q);
        self.decode_progress = r.get_u32();
        self.trigger_seq = r.get_u64();
        self.recent_triggers.clear();
        for _ in 0..r.get_usize() {
            self.recent_triggers.push_back(r.get_u64());
        }
        self.stats.restore_state(r);
        r.check(0x7cb1);
    }
}

/// The paper's Table I stopping weights for conditional predictions on the
/// alternate path.
pub fn cond_stop_weight(p: &SclPrediction) -> u32 {
    match p.provider {
        Provider::Bimodal => match p.tage.provider_ctr {
            -2 | 1 => 1,
            _ => 2,
        },
        Provider::BimodalLow8 => match p.tage.provider_ctr {
            -2 | 1 => 2,
            _ => 6,
        },
        Provider::HitBank => match p.tage.provider_ctr {
            -4 | 3 => 1,
            -3 | 2 => 3,
            -2 | 1 => 4,
            _ => 6,
        },
        Provider::AltBank => match p.tage.provider_ctr {
            -4 | 3 => 5,
            _ => 7,
        },
        Provider::LoopPred => 1,
        Provider::Sc => {
            let m = p.sc.sum.unsigned_abs();
            if m >= 128 {
                3
            } else if m >= 64 {
                6
            } else if m >= 32 {
                8
            } else {
                10
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pred_with(provider: Provider, ctr: i8, sc_sum: i32) -> SclPrediction {
        let bp = TageScL::new(SclPreset::Alt8K);
        let h = bp.new_history();
        let mut p = bp.predict(&h, Addr::new(0x40));
        p.provider = provider;
        p.tage.provider_ctr = ctr;
        p.sc.sum = sc_sum;
        p
    }

    #[test]
    fn table1_weights() {
        assert_eq!(cond_stop_weight(&pred_with(Provider::Bimodal, 1, 0)), 1);
        assert_eq!(cond_stop_weight(&pred_with(Provider::Bimodal, 0, 0)), 2);
        assert_eq!(
            cond_stop_weight(&pred_with(Provider::BimodalLow8, -2, 0)),
            2
        );
        assert_eq!(
            cond_stop_weight(&pred_with(Provider::BimodalLow8, -1, 0)),
            6
        );
        assert_eq!(cond_stop_weight(&pred_with(Provider::HitBank, 3, 0)), 1);
        assert_eq!(cond_stop_weight(&pred_with(Provider::HitBank, -3, 0)), 3);
        assert_eq!(cond_stop_weight(&pred_with(Provider::HitBank, 1, 0)), 4);
        assert_eq!(cond_stop_weight(&pred_with(Provider::HitBank, 0, 0)), 6);
        assert_eq!(cond_stop_weight(&pred_with(Provider::AltBank, 3, 0)), 5);
        assert_eq!(cond_stop_weight(&pred_with(Provider::AltBank, 0, 0)), 7);
        assert_eq!(cond_stop_weight(&pred_with(Provider::LoopPred, 0, 0)), 1);
        assert_eq!(cond_stop_weight(&pred_with(Provider::Sc, 0, 200)), 3);
        assert_eq!(cond_stop_weight(&pred_with(Provider::Sc, 0, -70)), 6);
        assert_eq!(cond_stop_weight(&pred_with(Provider::Sc, 0, 40)), 8);
        assert_eq!(cond_stop_weight(&pred_with(Provider::Sc, 0, 10)), 10);
    }

    #[test]
    fn trigger_and_preempt() {
        let mut e = UcpEngine::new(UcpConfig {
            enabled: true,
            ..UcpConfig::default()
        });
        let ras = Ras::new(64);
        e.trigger(Addr::new(0x1000), true, &ras);
        assert!(e.walking());
        assert_eq!(e.stats.walks_started, 1);
        e.trigger(Addr::new(0x2000), false, &ras);
        assert_eq!(e.stats.preempted, 1);
        assert_eq!(e.stats.walks_started, 2);
    }

    #[test]
    fn flush_aborts_walk_and_clears_ftq() {
        let mut e = UcpEngine::new(UcpConfig {
            enabled: true,
            ..UcpConfig::default()
        });
        let ras = Ras::new(64);
        let cps = e.checkpoints();
        e.trigger(Addr::new(0x1000), true, &ras);
        e.on_flush(cps, Some(true), None);
        assert!(!e.walking());
        assert!(e.alt_ftq.is_empty());
    }

    #[test]
    fn timeliness_window() {
        let mut e = UcpEngine::new(UcpConfig {
            enabled: true,
            ..UcpConfig::default()
        });
        let ras = Ras::new(64);
        e.trigger(Addr::new(0x1000), true, &ras); // trigger 1
        e.record_entry_use(1);
        assert_eq!(e.stats.timely_used, 1);
        for i in 0..17 {
            e.trigger(Addr::new(0x1000 + i * 4), true, &ras);
        }
        // Trigger 1 has aged out of the 16-deep window.
        e.record_entry_use(1);
        assert_eq!(e.stats.late_used, 1);
    }

    #[test]
    fn mirror_predictions_are_returned_for_training() {
        let mut e = UcpEngine::new(UcpConfig {
            enabled: true,
            ..UcpConfig::default()
        });
        let pc = Addr::new(0x400);
        for i in 0..200u32 {
            let p = e.on_cond_predicted(pc, i % 2 == 0);
            e.train_cond(pc, &p, i % 2 == 0);
        }
        // After training, the Alt-BP should track the alternating pattern.
        let p = e.on_cond_predicted(pc, true);
        let _ = p;
    }
}
