//! The UCP reproduction's core: a cycle-level CPU-frontend simulator with
//! an event-time out-of-order backend, and the paper's contribution — the
//! UCP alternate-path µ-op cache prefetch engine — plus configuration,
//! statistics and an experiment runner.
//!
//! The model follows the paper's ChampSim setup (§V): a decoupled frontend
//! (FDP) with a stream/build µ-op cache, Table II's Alder Lake-class core
//! and memory hierarchy, TAGE-SC-L + ITTAGE + banked BTB prediction, and
//! the full §IV UCP machinery (H2P triggering, alternate walker with
//! Alt-BP/Alt-Ind/Alt-RAS, Table I stopping weights, Alt-FTQ → tag check →
//! MSHR → L1I PQ → alt decoders → µ-op cache fill).
//!
//! # Quickstart
//!
//! ```
//! use ucp_core::{SimConfig, Simulator};
//! use ucp_workloads::WorkloadSpec;
//!
//! let spec = WorkloadSpec::tiny("demo", 1);
//! let base = Simulator::run_spec(&spec, &SimConfig::baseline(), 10_000, 50_000);
//! let ucp = Simulator::run_spec(&spec, &SimConfig::ucp(), 10_000, 50_000);
//! println!("baseline IPC {:.3}, UCP IPC {:.3}", base.ipc(), ucp.ipc());
//! ```

pub mod config;
pub mod error;
pub mod experiment;
pub mod pipeline;
pub mod snapshot;
pub mod stats;
pub mod ucp;

pub use config::{
    BackendConfig, ConfKind, FrontendConfig, PrefetcherKind, SimConfig, UcpConfig, UopCacheModel,
};
pub use error::{watchdog_from_env, DiagSnapshot, SimError, DEFAULT_WATCHDOG_CYCLES};
pub use experiment::{
    align_by_workload, replay_verify, run_lengths, run_suite, run_suite_outcome, speedups_pct,
    PersistFn, ReplayDivergence, ReplayReport, RunResult, SuiteOptions, SuiteOutcome,
    WorkloadOutcome,
};
pub use pipeline::{RunOutput, Simulator};
pub use snapshot::{
    ckpt_from_env, digest_from_env, CheckpointMeta, CheckpointPolicy, Checkpointable, DigestRecord,
    CKPT_VERSION,
};
pub use stats::{geomean_speedup_pct, BucketCount, H2pCounts, SimStats, UcpStats};
pub use ucp::UcpEngine;
