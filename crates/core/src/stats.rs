//! Simulation statistics: everything the paper's tables and figures need.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use ucp_bpred::Provider;

/// A counter pair (events, mispredictions) used by the Fig. 6 buckets.
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct BucketCount {
    /// Predictions observed in this bucket.
    pub preds: u64,
    /// Of those, mispredictions.
    pub misses: u64,
}

impl BucketCount {
    /// Miss rate in percent; 0 when empty.
    pub fn miss_rate_pct(&self) -> f64 {
        if self.preds == 0 {
            0.0
        } else {
            100.0 * self.misses as f64 / self.preds as f64
        }
    }
}

/// H2P classification counters for one confidence estimator (Fig. 9).
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct H2pCounts {
    /// Conditional predictions marked H2P.
    pub marked: u64,
    /// Marked predictions that actually mispredicted.
    pub marked_mispredicted: u64,
    /// All conditional mispredictions.
    pub mispredicted: u64,
}

impl H2pCounts {
    /// Coverage: mispredictions that were marked H2P, in percent.
    pub fn coverage_pct(&self) -> f64 {
        if self.mispredicted == 0 {
            0.0
        } else {
            100.0 * self.marked_mispredicted as f64 / self.mispredicted as f64
        }
    }

    /// Accuracy: marked H2P predictions that mispredicted, in percent.
    pub fn accuracy_pct(&self) -> f64 {
        if self.marked == 0 {
            0.0
        } else {
            100.0 * self.marked_mispredicted as f64 / self.marked as f64
        }
    }
}

/// UCP engine statistics (§VI-C/D and Fig. 13–15).
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct UcpStats {
    /// Alternate paths started (H2P triggers).
    pub walks_started: u64,
    /// Walks stopped by the saturating-weight threshold.
    pub stopped_threshold: u64,
    /// Walks stopped by a BTB miss (weight ∞).
    pub stopped_btb_miss: u64,
    /// Walks stopped by an indirect branch without Alt-Ind.
    pub stopped_indirect: u64,
    /// Walks stopped by the branch-free instruction counter.
    pub stopped_no_branch: u64,
    /// Walks preempted by a newer H2P trigger.
    pub preempted: u64,
    /// Cache lines prefetched by the alternate path.
    pub lines_prefetched: u64,
    /// µ-op cache entries inserted by the alternate path.
    pub entries_inserted: u64,
    /// Prefetched entries first-used while their trigger was recent
    /// (timely, the Fig. 14 numerator).
    pub timely_used: u64,
    /// Prefetched entries first-used later (the "used even though the
    /// alternate path was wrong for this instance" 8% statistic).
    pub late_used: u64,
    /// Tag checks filtered because the entry was already cached.
    pub filtered_present: u64,
    /// Alternate-path BTB bank conflicts observed.
    pub btb_conflicts: u64,
    /// Demand windows the alternate path stole after saturating the
    /// 3-bit conflict counter.
    pub demand_steals: u64,
    /// µ-ops decoded by the alternate decoders.
    pub alt_decoded_uops: u64,
}

impl UcpStats {
    /// Counter-wise difference `self - earlier` (measurement windowing).
    pub fn delta_since(&self, earlier: &UcpStats) -> UcpStats {
        UcpStats {
            walks_started: self.walks_started - earlier.walks_started,
            stopped_threshold: self.stopped_threshold - earlier.stopped_threshold,
            stopped_btb_miss: self.stopped_btb_miss - earlier.stopped_btb_miss,
            stopped_indirect: self.stopped_indirect - earlier.stopped_indirect,
            stopped_no_branch: self.stopped_no_branch - earlier.stopped_no_branch,
            preempted: self.preempted - earlier.preempted,
            lines_prefetched: self.lines_prefetched - earlier.lines_prefetched,
            entries_inserted: self.entries_inserted - earlier.entries_inserted,
            timely_used: self.timely_used - earlier.timely_used,
            late_used: self.late_used - earlier.late_used,
            filtered_present: self.filtered_present - earlier.filtered_present,
            btb_conflicts: self.btb_conflicts - earlier.btb_conflicts,
            demand_steals: self.demand_steals - earlier.demand_steals,
            alt_decoded_uops: self.alt_decoded_uops - earlier.alt_decoded_uops,
        }
    }

    /// Prefetch accuracy at entry granularity (Fig. 14): timely / inserted.
    pub fn prefetch_accuracy_pct(&self) -> f64 {
        if self.entries_inserted == 0 {
            0.0
        } else {
            100.0 * self.timely_used as f64 / self.entries_inserted as f64
        }
    }

    /// Share of inserted entries used late (§VI-D's 8%).
    pub fn late_use_pct(&self) -> f64 {
        if self.entries_inserted == 0 {
            0.0
        } else {
            100.0 * self.late_used as f64 / self.entries_inserted as f64
        }
    }

    /// Serializes every counter, in declaration order.
    pub fn save_state(&self, w: &mut sim_isa::StateWriter) {
        for v in [
            self.walks_started,
            self.stopped_threshold,
            self.stopped_btb_miss,
            self.stopped_indirect,
            self.stopped_no_branch,
            self.preempted,
            self.lines_prefetched,
            self.entries_inserted,
            self.timely_used,
            self.late_used,
            self.filtered_present,
            self.btb_conflicts,
            self.demand_steals,
            self.alt_decoded_uops,
        ] {
            w.put_u64(v);
        }
    }

    /// Restores state written by [`UcpStats::save_state`].
    pub fn restore_state(&mut self, r: &mut sim_isa::StateReader) {
        for slot in [
            &mut self.walks_started,
            &mut self.stopped_threshold,
            &mut self.stopped_btb_miss,
            &mut self.stopped_indirect,
            &mut self.stopped_no_branch,
            &mut self.preempted,
            &mut self.lines_prefetched,
            &mut self.entries_inserted,
            &mut self.timely_used,
            &mut self.late_used,
            &mut self.filtered_present,
            &mut self.btb_conflicts,
            &mut self.demand_steals,
            &mut self.alt_decoded_uops,
        ] {
            *slot = r.get_u64();
        }
    }
}

/// Full per-run statistics.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct SimStats {
    /// Instructions committed in the measurement window.
    pub instructions: u64,
    /// Cycles elapsed in the measurement window.
    pub cycles: u64,
    /// µ-ops delivered from the µ-op cache.
    pub uops_from_uop_cache: u64,
    /// µ-ops delivered through L1I + decoders.
    pub uops_from_decode: u64,
    /// Stream↔build mode switches.
    pub mode_switches: u64,
    /// Conditional branches resolved.
    pub cond_branches: u64,
    /// Conditional branch mispredictions.
    pub cond_mispredicts: u64,
    /// Indirect-branch mispredictions (including returns).
    pub indirect_mispredicts: u64,
    /// BTB-miss re-steers charged.
    pub btb_resteers: u64,
    /// L1I demand accesses / misses (measurement window).
    pub l1i_accesses: u64,
    /// L1I demand misses.
    pub l1i_misses: u64,
    /// µ-op cache demand lookups (window granularity).
    pub uop_lookups: u64,
    /// µ-op cache demand hits.
    pub uop_hits: u64,
    /// Prefetches issued by the standalone L1I prefetcher.
    pub l1i_prefetches_issued: u64,
    /// µ-ops streamed by the MRC on misprediction hits.
    pub mrc_streamed_uops: u64,
    /// Per-(provider, counter-bucket) misprediction counts (Fig. 6).
    #[serde(with = "map_as_pairs")]
    pub provider_buckets: BTreeMap<(Provider, i32), BucketCount>,
    /// Per-provider totals (Fig. 7).
    #[serde(with = "map_as_pairs")]
    pub provider_totals: BTreeMap<Provider, BucketCount>,
    /// TAGE-Conf H2P classification (Fig. 9).
    pub h2p_tage: H2pCounts,
    /// UCP-Conf H2P classification (Fig. 9).
    pub h2p_ucp: H2pCounts,
    /// UCP engine statistics.
    pub ucp: UcpStats,
}

impl SimStats {
    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }

    /// µ-op cache hit rate at the µ-op level, in percent: the fraction of
    /// delivered µ-ops that came from the µ-op cache (the paper's Fig. 3
    /// per-instruction hit rate).
    pub fn uop_hit_rate_pct(&self) -> f64 {
        let total = self.uops_from_uop_cache + self.uops_from_decode;
        if total == 0 {
            0.0
        } else {
            100.0 * self.uops_from_uop_cache as f64 / total as f64
        }
    }

    /// Mode switches per kilo-instruction (Fig. 3).
    pub fn switch_pki(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            1000.0 * self.mode_switches as f64 / self.instructions as f64
        }
    }

    /// Conditional-branch MPKI (Fig. 11).
    pub fn cond_mpki(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            1000.0 * self.cond_mispredicts as f64 / self.instructions as f64
        }
    }

    /// L1I miss rate in percent.
    pub fn l1i_miss_rate_pct(&self) -> f64 {
        if self.l1i_accesses == 0 {
            0.0
        } else {
            100.0 * self.l1i_misses as f64 / self.l1i_accesses as f64
        }
    }

    /// Records one resolved conditional prediction into the Fig. 6/7
    /// buckets. `value` is the provider-specific confidence value
    /// (counter, SC sum, or loop confidence); SC sums are bucketed by
    /// magnitude range like the paper's Fig. 6b.
    pub fn record_provider(&mut self, provider: Provider, value: i32, mispredicted: bool) {
        let bucket_key = match provider {
            Provider::Sc => {
                let m = value.unsigned_abs();
                if m < 32 {
                    0
                } else if m < 64 {
                    32
                } else if m < 128 {
                    64
                } else {
                    128
                }
            }
            _ => value,
        };
        let b = self
            .provider_buckets
            .entry((provider, bucket_key))
            .or_default();
        b.preds += 1;
        b.misses += u64::from(mispredicted);
        let t = self.provider_totals.entry(provider).or_default();
        t.preds += 1;
        t.misses += u64::from(mispredicted);
    }

    /// Share of all mispredictions attributed to `provider`, in percent
    /// (Fig. 7).
    pub fn provider_miss_share_pct(&self, provider: Provider) -> f64 {
        let total: u64 = self.provider_totals.values().map(|b| b.misses).sum();
        if total == 0 {
            return 0.0;
        }
        let own = self.provider_totals.get(&provider).map_or(0, |b| b.misses);
        100.0 * own as f64 / total as f64
    }
}

/// Serializes `BTreeMap`s with non-string keys as vectors of pairs, so
/// statistics round-trip through JSON (used by the figure-result cache).
mod map_as_pairs {
    use serde::{DeError, Deserialize, Serialize, Value};
    use std::collections::BTreeMap;

    pub fn to_value<K, V>(map: &BTreeMap<K, V>) -> Value
    where
        K: Serialize,
        V: Serialize,
    {
        Value::Seq(
            map.iter()
                .map(|(k, v)| Value::Seq(vec![k.to_value(), v.to_value()]))
                .collect(),
        )
    }

    pub fn from_value<K, V>(v: &Value) -> Result<BTreeMap<K, V>, DeError>
    where
        K: Deserialize + Ord,
        V: Deserialize,
    {
        serde::as_seq(v, "pair list")?
            .iter()
            .map(|pair| {
                let s = serde::as_seq(pair, "[key, value] pair")?;
                if s.len() != 2 {
                    return Err(DeError::new("expected [key, value] pair"));
                }
                Ok((K::from_value(&s[0])?, V::from_value(&s[1])?))
            })
            .collect()
    }
}

/// Geometric mean of per-workload speedups `new/base`, as a percentage
/// improvement (the paper's headline metric).
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn geomean_speedup_pct(base_ipc: &[f64], new_ipc: &[f64]) -> f64 {
    assert_eq!(base_ipc.len(), new_ipc.len());
    if base_ipc.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = base_ipc
        .iter()
        .zip(new_ipc)
        .map(|(&b, &n)| (n / b).ln())
        .sum();
    ((log_sum / base_ipc.len() as f64).exp() - 1.0) * 100.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ipc_and_rates() {
        let s = SimStats {
            instructions: 1000,
            cycles: 500,
            uops_from_uop_cache: 700,
            uops_from_decode: 300,
            mode_switches: 5,
            cond_mispredicts: 3,
            ..SimStats::default()
        };
        assert!((s.ipc() - 2.0).abs() < 1e-9);
        assert!((s.uop_hit_rate_pct() - 70.0).abs() < 1e-9);
        assert!((s.switch_pki() - 5.0).abs() < 1e-9);
        assert!((s.cond_mpki() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn empty_stats_do_not_divide_by_zero() {
        let s = SimStats::default();
        assert_eq!(s.ipc(), 0.0);
        assert_eq!(s.uop_hit_rate_pct(), 0.0);
        assert_eq!(s.cond_mpki(), 0.0);
        assert_eq!(s.ucp.prefetch_accuracy_pct(), 0.0);
    }

    #[test]
    fn provider_buckets_accumulate() {
        let mut s = SimStats::default();
        s.record_provider(Provider::HitBank, 3, false);
        s.record_provider(Provider::HitBank, 3, true);
        s.record_provider(Provider::AltBank, -1, true);
        let b = s.provider_buckets[&(Provider::HitBank, 3)];
        assert_eq!(b.preds, 2);
        assert_eq!(b.misses, 1);
        assert!((b.miss_rate_pct() - 50.0).abs() < 1e-9);
        assert!((s.provider_miss_share_pct(Provider::AltBank) - 50.0).abs() < 1e-9);
    }

    #[test]
    fn sc_values_bucket_by_magnitude() {
        let mut s = SimStats::default();
        s.record_provider(Provider::Sc, -40, true);
        s.record_provider(Provider::Sc, 45, false);
        assert_eq!(s.provider_buckets[&(Provider::Sc, 32)].preds, 2);
    }

    #[test]
    fn h2p_math() {
        let h = H2pCounts {
            marked: 200,
            marked_mispredicted: 30,
            mispredicted: 60,
        };
        assert!((h.coverage_pct() - 50.0).abs() < 1e-9);
        assert!((h.accuracy_pct() - 15.0).abs() < 1e-9);
    }

    #[test]
    fn geomean_speedup() {
        let base = [1.0, 2.0];
        let new = [1.1, 2.2];
        let g = geomean_speedup_pct(&base, &new);
        assert!((g - 10.0).abs() < 1e-6, "{g}");
        assert_eq!(geomean_speedup_pct(&[], &[]), 0.0);
    }

    #[test]
    fn sim_stats_round_trip_through_json() {
        let mut s = SimStats {
            cycles: 123_456,
            instructions: 654_321,
            ..Default::default()
        };
        s.record_provider(Provider::HitBank, -17, true);
        s.record_provider(Provider::Sc, 45, false);
        s.h2p_tage = H2pCounts {
            marked: 9,
            marked_mispredicted: 3,
            mispredicted: 5,
        };
        s.ucp.entries_inserted = 42;
        let text = serde_json::to_string(&s).unwrap();
        let back: SimStats = serde_json::from_str(&text).unwrap();
        // SimStats has no PartialEq (it never needs one at runtime);
        // re-serializing proves field-for-field equality instead.
        assert_eq!(serde_json::to_string(&back).unwrap(), text);
        assert_eq!(back.cycles, 123_456);
        assert_eq!(back.provider_buckets[&(Provider::Sc, 32)].preds, 1);
    }

    #[test]
    fn ucp_accuracy_math() {
        let u = UcpStats {
            entries_inserted: 100,
            timely_used: 67,
            late_used: 8,
            ..UcpStats::default()
        };
        assert!((u.prefetch_accuracy_pct() - 67.0).abs() < 1e-9);
        assert!((u.late_use_pct() - 8.0).abs() < 1e-9);
    }
}
