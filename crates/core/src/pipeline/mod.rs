//! The cycle-level pipeline: decoupled branch-prediction-driven address
//! generation (FDP), stream/build µ-op cache frontend, event-time
//! out-of-order backend, and all the evaluation idealizations.
//!
//! # Model summary (see DESIGN.md §3 for the rationale)
//!
//! * **Address generation** walks the *predicted* path through the real
//!   static code: the BTB supplies branch targets, TAGE-SC-L directions,
//!   ITTAGE indirect targets and the RAS return addresses. The oracle
//!   stream is consulted only to classify each prediction as
//!   correct/incorrect — after the first misprediction the walker is on
//!   the wrong path and keeps generating (and fetching, and polluting)
//!   until the branch resolves, exactly like a decoupled frontend.
//! * **Fetch/deliver** consumes FTQ blocks: stream mode hits the µ-op
//!   cache (8 µ-ops, 2 windows per cycle); a miss switches to build mode
//!   (1-cycle penalty) where blocks are read from the L1I, decoded 6-wide
//!   and rebuilt into µ-op cache entries under the paper's termination
//!   rules; enough consecutive µ-op cache hits switch back.
//! * **Dispatch/backend**: µ-ops younger than an unresolved misprediction
//!   are squashed at dispatch; everything else enters the event-time
//!   backend. A mispredicted branch's completion flushes the frontend and
//!   redirects it to the corrected — i.e. the *alternate* — path, whose
//!   refill speed is precisely what UCP accelerates.

pub mod backend;

use crate::config::{PrefetcherKind, SimConfig, UopCacheModel};
use crate::error::{watchdog_from_env, DiagSnapshot, SimError};
use crate::snapshot::{
    ckpt_from_env, ckpt_root, digest_from_env, latest_valid_checkpoint, remove_run_checkpoints,
    run_slug, write_checkpoint, CheckpointMeta, CheckpointPolicy, DigestRecord, CKPT_VERSION,
};
use crate::stats::{SimStats, UcpStats};
use crate::ucp::UcpEngine;
use backend::Backend;
use sim_isa::{fnv1a64, Addr, BranchClass, DynInst, InstKind, StateReader, StateWriter};
use std::collections::{BinaryHeap, HashMap, VecDeque};
use std::path::PathBuf;
use std::sync::Arc;
use ucp_bpred::{
    push_target_history, ConfidenceEstimator, HistCheckpoint, HistoryState, Ittage, IttageParams,
    IttagePrediction, SclPrediction, TageConf, TageScL, UcpConf,
};
use ucp_frontend::{BoundedQueue, Btb, EntryEnd, Ras, RasCheckpoint, UopCache, UopEntrySpec};
use ucp_mem::{CacheStats, Hierarchy, HitLevel};
use ucp_prefetch::{DJolt, Entangling, FnlMma, InstPrefetcher, Mrc, NoPrefetch};
use ucp_telemetry::interval::{IntervalRecord, IntervalSampler, INSTRET_PATH};
use ucp_telemetry::{
    AccountingBreakdown, Category, Counter, CycleAccounting, CycleCause, FaultPlan, Histogram,
    RegistrySnapshot, Telemetry,
};
use ucp_workloads::{Oracle, Program, WorkloadSpec};

/// Builds µ-op cache entries for `n` instructions starting at `start`,
/// applying the paper's termination rules: entries never cross the 32 B
/// window (callers pass window-bounded blocks), never exceed 8 µ-ops, and
/// split when a third branch would need a target slot.
pub(crate) fn build_entries(
    prog: &Program,
    start: Addr,
    n: u8,
    prefetched: bool,
    trigger: u64,
) -> Vec<UopEntrySpec> {
    let mut out = Vec::with_capacity(2);
    let mut entry_start = start;
    let mut count: u8 = 0;
    let mut branches: u8 = 0;
    for i in 0..n {
        let pc = start.offset_insts(u64::from(i));
        let is_branch = prog.inst_at(pc).is_some_and(|x| x.is_branch());
        if is_branch && branches == 2 {
            // Third branch: terminate and start a new entry in the same
            // region (another way of the same set).
            out.push(UopEntrySpec {
                start: entry_start,
                num_uops: count,
                end: EntryEnd::BranchSlots,
                prefetched,
                trigger,
            });
            entry_start = pc;
            count = 0;
            branches = 0;
        }
        count += 1;
        branches += u8::from(is_branch);
    }
    if count > 0 {
        out.push(UopEntrySpec {
            start: entry_start,
            num_uops: count,
            end: EntryEnd::WindowBoundary,
            prefetched,
            trigger,
        });
    }
    out
}

/// Frontend delivery mode (§II).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Mode {
    /// µ-op cache streaming (fast path).
    Stream,
    /// L1I + decoders (slow path), building µ-op cache entries.
    Build,
}

/// The kind of branch a prediction record tracks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum RecKind {
    Cond,
    Indirect { is_call: bool },
    Return,
}

/// One in-flight branch prediction.
struct PredRecord {
    pc: Addr,
    kind: RecKind,
    /// Correct-path position (`None` on the wrong path).
    pos: Option<u64>,
    actual_taken: bool,
    actual_next: Addr,
    mispredicted: bool,
    /// Indirect with no known target: fetch stalls until execution.
    no_target: bool,
    cp_bp: HistCheckpoint,
    cp_it: HistCheckpoint,
    cp_ras: RasCheckpoint,
    cp_alt: Option<(HistCheckpoint, HistCheckpoint)>,
    scl: Option<SclPrediction>,
    itt: Option<IttagePrediction>,
    alt_scl: Option<SclPrediction>,
    alt_itt: Option<IttagePrediction>,
    h2p_tage: bool,
    h2p_ucp: bool,
}

const MAX_BLOCK_RECS: usize = 4;

/// One FTQ fetch block (≤ 8 instructions inside one 32 B window).
#[derive(Clone, Copy, Debug)]
struct FetchBlock {
    start: Addr,
    n: u8,
    n_cond: u8,
    /// Correct-path position of the first instruction.
    pos: Option<u64>,
    /// Index of the first wrong-path instruction (`u8::MAX` = none).
    diverge_at: u8,
    /// L1I data-ready cycle once fetch was issued.
    fetch_ready: Option<u64>,
    /// (instruction offset, record id) pairs for branches in this block.
    recs: [(u8, u64); MAX_BLOCK_RECS],
    n_recs: u8,
}

impl FetchBlock {
    fn rec_at(&self, offset: u8) -> Option<u64> {
        self.recs[..self.n_recs as usize]
            .iter()
            .find(|&&(o, _)| o == offset)
            .map(|&(_, id)| id)
    }
}

/// One µ-op waiting to dispatch.
#[derive(Clone, Copy, Debug)]
struct UopQEntry {
    /// Correct-path position (`None` = wrong path, squashed at dispatch).
    pos: Option<u64>,
    ready: u64,
    rec: Option<u64>,
}

/// Baselines captured when the measurement window opens. They live on
/// the simulator (not on `run_full`'s stack) so that a checkpoint taken
/// mid-window carries them, and a restored run closes the window against
/// the *original* baselines — bit-identical to an uninterrupted run.
struct MeasureState {
    start_cycle: u64,
    start_committed: u64,
    l1i0: CacheStats,
    ucp0: Option<UcpStats>,
    reg0: RegistrySnapshot,
}

/// An armed checkpoint writer (`UCP_CKPT`): destination directory,
/// cadence, retention, and the metadata identifying this run's exact
/// trajectory (embedded in every checkpoint so offline tools can rebuild
/// the simulation from the file alone).
struct CkptSink {
    dir: PathBuf,
    every: u64,
    keep: usize,
    workload: String,
    spec_json: String,
    cfg_json: String,
    seed: u64,
    warmup: u64,
    measure: u64,
    fault: Option<Arc<FaultPlan>>,
}

/// The simulator's own telemetry handles (`pipeline.*`, plus the
/// `frontend.*`/`prefetch.*` counters whose increment sites live in the
/// pipeline rather than in the component crates).
struct SimTelemetry {
    handle: Telemetry,
    flushes: Counter,
    resteers: Counter,
    mode_switches: Counter,
    l1i_prefetches: Counter,
    committed: Counter,
    ftq_occupancy: Histogram,
    accounting: CycleAccounting,
}

impl SimTelemetry {
    fn bound_to(handle: Telemetry) -> Self {
        SimTelemetry {
            flushes: handle.registry.counter("pipeline.flushes"),
            resteers: handle.registry.counter("pipeline.btb_resteers"),
            mode_switches: handle.registry.counter("frontend.uopc.mode_switches"),
            l1i_prefetches: handle.registry.counter("prefetch.l1i_issued"),
            committed: handle.registry.counter(INSTRET_PATH),
            ftq_occupancy: handle.registry.histogram("frontend.ftq.occupancy"),
            accounting: CycleAccounting::bound_to(&handle.registry),
            handle,
        }
    }
}

/// Everything one instrumented run produces: aggregate statistics, the
/// measurement-window telemetry delta, and the interval time series
/// (empty when sampling is disabled via `UCP_INTERVAL=0`).
#[derive(Clone, Debug, Default)]
pub struct RunOutput {
    /// Aggregate statistics over the measurement window.
    pub stats: SimStats,
    /// Registry delta over the measurement window.
    pub telemetry: RegistrySnapshot,
    /// Interval samples covering the measurement window, oldest first.
    pub intervals: Vec<IntervalRecord>,
    /// Determinism-auditor digest samples over the whole run, oldest
    /// first (empty unless `UCP_DIGEST` or
    /// [`Simulator::set_digest_interval`] enabled the auditor).
    pub digests: Vec<DigestRecord>,
}

/// The full-machine simulator for one workload.
pub struct Simulator<'p> {
    cfg: SimConfig,
    prog: &'p Program,
    oracle: Oracle<'p>,
    stream: VecDeque<DynInst>,
    stream_base: u64,
    now: u64,

    bp: TageScL,
    bp_hist: HistoryState,
    ittage: Ittage,
    it_hist: HistoryState,
    btb: Btb,
    ras: Ras,
    uop_cache: Option<UopCache>,
    uop_ideal: bool,
    hier: Hierarchy,
    prefetcher: Box<dyn InstPrefetcher>,
    prefetch_pq: BoundedQueue<Addr>,
    mrc: Option<Mrc>,
    mrc_filling: bool,
    mrc_stream_left: u32,
    ucp: Option<UcpEngine>,

    // Address generation.
    agen_pc: Addr,
    agen_pos: Option<u64>,
    agen_stall_until: u64,
    agen_dead: bool,
    agen_window_penalty: u32,
    pending_mispredict: Option<u64>,
    demand_btb_banks: u64,

    ftq: BoundedQueue<FetchBlock>,
    uopq: BoundedQueue<UopQEntry>,
    mode: Mode,
    fetch_stall_until: u64,
    consec_uop_hits: u32,
    head_delivered: u8,
    ideal_brcond_left: u32,
    demand_uop_banks: [bool; 2],

    // Determinism: only ever accessed by key — HashMap iteration order
    // must not influence simulation, and `save_state` serializes the
    // entries sorted so it cannot leak into checkpoint bytes either.
    records: HashMap<u64, PredRecord>,
    rec_order: VecDeque<u64>,
    next_rec_id: u64,

    backend: Backend,
    resolve_q: BinaryHeap<std::cmp::Reverse<(u64, u64)>>,

    committed: u64,
    last_commit_cycle: u64,
    last_retired_pc: Option<Addr>,
    measuring: bool,
    measure_state: Option<MeasureState>,
    stats: SimStats,
    tele: SimTelemetry,
    sampler: Option<IntervalSampler>,

    // Checkpointing (`UCP_CKPT`) and the determinism auditor
    // (`UCP_DIGEST`).
    ckpt: Option<CkptSink>,
    last_ckpt_committed: u64,
    digest_every: Option<u64>,
    last_digest_committed: u64,
    digests: Vec<DigestRecord>,

    // Resilience: hang watchdog window (None = disabled) and the
    // deterministic fault-injection hooks (`UCP_FAULT`).
    watchdog: Option<u64>,
    hang_injected: bool,
    skew_invariant: bool,
    skew_applied: bool,

    // Per-cycle attribution scratch, reset at the top of `cycle()`.
    delivered_uop: bool,
    delivered_decode: bool,
    deliver_blocked: Option<CycleCause>,
    agen_stall_kind: CycleCause,
}

impl<'p> Simulator<'p> {
    /// Creates a simulator for `prog` under `cfg`, with the workload's
    /// behavioural `seed`. Telemetry comes from the environment
    /// (`UCP_TRACE`); use [`Simulator::with_telemetry`] to supply a handle
    /// whose registry and trace buffer you keep.
    pub fn new(prog: &'p Program, seed: u64, cfg: &SimConfig) -> Self {
        Simulator::with_telemetry(prog, seed, cfg, Telemetry::from_env())
    }

    /// Creates a simulator wired to `telemetry`: every layer (µ-op cache,
    /// UCP engine, memory hierarchy, L1I prefetcher, the pipeline itself)
    /// registers its counters in `telemetry.registry` and emits trace
    /// events through `telemetry.tracer`.
    pub fn with_telemetry(
        prog: &'p Program,
        seed: u64,
        cfg: &SimConfig,
        telemetry: Telemetry,
    ) -> Self {
        let bp = TageScL::new(cfg.bpred);
        let bp_hist = bp.new_history();
        let ittage = Ittage::new(IttageParams::main_64k());
        let it_hist = ittage.new_history();
        let (mut uop_cache, uop_ideal) = match &cfg.uop_cache {
            UopCacheModel::None => (None, false),
            UopCacheModel::Ideal => (None, true),
            UopCacheModel::Real(c) => (Some(UopCache::new(c.clone())), false),
        };
        if let Some(uc) = uop_cache.as_mut() {
            uc.attach_telemetry(&telemetry);
        }
        let mut prefetcher: Box<dyn InstPrefetcher> = match cfg.prefetcher {
            PrefetcherKind::None => Box::new(NoPrefetch),
            PrefetcherKind::FnlMma => Box::new(FnlMma::new(false)),
            PrefetcherKind::FnlMmaPlusPlus => Box::new(FnlMma::new(true)),
            PrefetcherKind::DJolt => Box::new(DJolt::new()),
            PrefetcherKind::Ep => Box::new(Entangling::new(false)),
            PrefetcherKind::EpPlusPlus => Box::new(Entangling::new(true)),
        };
        prefetcher.attach_telemetry(&telemetry);
        let mut hier = Hierarchy::new(&cfg.mem);
        hier.attach_telemetry(&telemetry);
        let ucp = cfg.ucp.enabled.then(|| {
            let mut u = UcpEngine::new(cfg.ucp.clone());
            u.attach_telemetry(&telemetry);
            u
        });
        let entry = prog.entry();
        Simulator {
            oracle: Oracle::new(prog, seed),
            stream: VecDeque::with_capacity(4096),
            stream_base: 0,
            now: 0,
            bp,
            bp_hist,
            ittage,
            it_hist,
            btb: Btb::new(cfg.btb.clone()),
            ras: Ras::new(64),
            uop_cache,
            uop_ideal,
            hier,
            prefetcher,
            prefetch_pq: BoundedQueue::new(32),
            mrc: cfg.mrc_entries.map(Mrc::new),
            mrc_filling: false,
            mrc_stream_left: 0,
            ucp,
            agen_pc: entry,
            agen_pos: Some(0),
            agen_stall_until: 0,
            agen_dead: false,
            agen_window_penalty: 0,
            pending_mispredict: None,
            demand_btb_banks: 0,
            ftq: BoundedQueue::new(cfg.frontend.ftq_entries),
            uopq: BoundedQueue::new(cfg.frontend.uop_queue_entries),
            mode: Mode::Build,
            fetch_stall_until: 0,
            consec_uop_hits: 0,
            head_delivered: 0,
            ideal_brcond_left: 0,
            demand_uop_banks: [false; 2],
            records: HashMap::with_capacity(1024),
            rec_order: VecDeque::with_capacity(1024),
            next_rec_id: 1,
            backend: Backend::new(cfg.backend.clone()),
            resolve_q: BinaryHeap::new(),
            committed: 0,
            last_commit_cycle: 0,
            last_retired_pc: None,
            measuring: false,
            measure_state: None,
            stats: SimStats::default(),
            tele: SimTelemetry::bound_to(telemetry),
            // Constructors cannot return Result without breaking every
            // embedding; malformed env knobs are hard errors here. Suite
            // runners validate the environment first and surface
            // `SimError::BadConfig` before any Simulator is built.
            sampler: IntervalSampler::from_env().unwrap_or_else(|e| panic!("{e}")),
            ckpt: None,
            last_ckpt_committed: 0,
            digest_every: digest_from_env().unwrap_or_else(|e| panic!("{e}")),
            last_digest_committed: 0,
            digests: Vec::new(),
            watchdog: watchdog_from_env().unwrap_or_else(|e| panic!("{e}")),
            hang_injected: false,
            skew_invariant: false,
            skew_applied: false,
            delivered_uop: false,
            delivered_decode: false,
            deliver_blocked: None,
            agen_stall_kind: CycleCause::Drained,
            prog,
            cfg: cfg.clone(),
        }
    }

    /// Replaces the interval sampler (constructed from `UCP_INTERVAL` by
    /// default). `None` disables sampling; tools like `trace_dump` pass
    /// an explicit sampler to force it on.
    pub fn set_interval_sampling(&mut self, sampler: Option<IntervalSampler>) {
        self.sampler = sampler;
    }

    /// Replaces the hang-watchdog window (constructed from `UCP_WATCHDOG`
    /// by default). `None` disables hang detection — a livelocked
    /// pipeline then spins until killed externally.
    pub fn set_watchdog(&mut self, cycles: Option<u64>) {
        self.watchdog = cycles;
    }

    /// Fault-injection hook (`UCP_FAULT=hang:...`): stops all retirement,
    /// so the hang watchdog must terminate the run with
    /// [`SimError::Hang`].
    pub fn inject_hang(&mut self) {
        self.hang_injected = true;
    }

    /// Fault-injection hook (`UCP_FAULT=invariant:...`): skews the
    /// end-of-run cycle-accounting total by one cycle, forcing
    /// [`SimError::InvariantViolation`].
    pub fn inject_invariant_skew(&mut self) {
        self.skew_invariant = true;
    }

    /// Captures the machine state for failure diagnostics.
    fn diag_snapshot(&self) -> DiagSnapshot {
        DiagSnapshot {
            cycle: self.now,
            committed: self.committed,
            last_commit_cycle: self.last_commit_cycle,
            last_retired_pc: self.last_retired_pc.map(Addr::raw),
            agen_pc: self.agen_pc.raw(),
            agen_dead: self.agen_dead,
            pending_mispredict: self.pending_mispredict.is_some(),
            ftq_depth: self.ftq.len(),
            uopq_depth: self.uopq.len(),
            rob_occupancy: self.backend.occupancy(),
            accounting: AccountingBreakdown::from_snapshot(&self.tele.handle.registry.snapshot()),
            state_digest: self.state_digest(),
        }
    }

    /// The hang watchdog: no retirement for a full window means the
    /// pipeline is livelocked (always a simulator bug, never a workload
    /// property) — terminate with a diagnostic snapshot instead of
    /// spinning forever.
    fn hang_check(&self) -> Result<(), SimError> {
        match self.watchdog {
            Some(window) if self.now - self.last_commit_cycle >= window => Err(SimError::Hang {
                workload: String::new(),
                window,
                snapshot: Box::new(self.diag_snapshot()),
            }),
            _ => Ok(()),
        }
    }

    /// The telemetry handle this simulator reports into.
    pub fn telemetry(&self) -> &Telemetry {
        &self.tele.handle
    }

    /// Convenience: build the workload's program and run it, panicking on
    /// any [`SimError`] (tests and tools that prefer a crash to a
    /// degraded result).
    pub fn run_spec(spec: &WorkloadSpec, cfg: &SimConfig, warmup: u64, measure: u64) -> SimStats {
        Simulator::run_spec_full(spec, cfg, warmup, measure).0
    }

    /// Like [`Simulator::run_spec`], but also returns the telemetry
    /// registry's measurement-window delta (what suite runners persist).
    /// Panics on any [`SimError`].
    pub fn run_spec_full(
        spec: &WorkloadSpec,
        cfg: &SimConfig,
        warmup: u64,
        measure: u64,
    ) -> (SimStats, RegistrySnapshot) {
        let out = Simulator::run_spec_output(spec, cfg, warmup, measure)
            .unwrap_or_else(|e| panic!("{e}"));
        (out.stats, out.telemetry)
    }

    /// Like [`Simulator::run_spec_full`], but returns the full
    /// [`RunOutput`] including the interval time series, and reports
    /// failures as [`SimError`] instead of panicking. This is the entry
    /// point the fault-isolated suite runner uses.
    pub fn run_spec_output(
        spec: &WorkloadSpec,
        cfg: &SimConfig,
        warmup: u64,
        measure: u64,
    ) -> Result<RunOutput, SimError> {
        let prog = spec.build();
        let mut sim = Simulator::new(&prog, spec.seed, cfg);
        sim.init_checkpointing(spec, warmup, measure, None)?;
        let out = sim.run_full(warmup, measure)?;
        sim.finish_checkpointing();
        Ok(out)
    }

    /// Runs `warmup` instructions with statistics off, then `measure`
    /// instructions with statistics on, and returns the collected stats.
    ///
    /// # Panics
    ///
    /// Panics on any [`SimError`] — hang-watchdog expiry, accounting
    /// invariant violation. Fallible callers use
    /// [`Simulator::run_full`].
    pub fn run(&mut self, warmup: u64, measure: u64) -> SimStats {
        self.run_instrumented(warmup, measure).0
    }

    /// [`Simulator::run`] plus the telemetry registry's delta over the
    /// measurement window. Registry counters tick through warm-up too (they
    /// are not gated on `measuring`); the window is carved out by
    /// snapshotting at the measurement boundary and diffing at the end —
    /// the same pattern as the L1I and UCP statistics below. Panics on
    /// any [`SimError`].
    pub fn run_instrumented(&mut self, warmup: u64, measure: u64) -> (SimStats, RegistrySnapshot) {
        let out = self
            .run_full(warmup, measure)
            .unwrap_or_else(|e| panic!("{e}"));
        (out.stats, out.telemetry)
    }

    /// [`Simulator::run_instrumented`] plus the interval time series, and
    /// the point where failures become structured: the hang watchdog is
    /// checked every cycle, and the end-of-run cycle-accounting invariant
    /// (per-category cycles tile the measured total) is reported as
    /// [`SimError::InvariantViolation`] instead of aborting the process —
    /// one bad workload must not kill a 30-workload suite. Under
    /// `cfg(test)` the invariant stays a hard assert so unit tests fail
    /// loudly at the exact site.
    pub fn run_full(&mut self, warmup: u64, measure: u64) -> Result<RunOutput, SimError> {
        // A simulator restored from a mid-measurement checkpoint re-enters
        // here with `measuring` already true — both loop guards and the
        // restored `measure_state` make the resumed run retrace exactly
        // the cycles the interrupted one would have executed.
        while self.committed < warmup && !self.measuring {
            self.hang_check()?;
            self.cycle();
            self.maybe_digest();
            self.maybe_checkpoint()?;
        }
        if !self.measuring {
            self.begin_measurement();
        }
        let end = self
            .measure_state
            .as_ref()
            .expect("measurement window open")
            .start_committed
            + measure;
        while self.committed < end {
            self.hang_check()?;
            self.cycle();
            self.maybe_digest();
            self.maybe_checkpoint()?;
        }
        let ms = self.measure_state.take().expect("measurement window open");
        self.measuring = false;
        self.stats.cycles = self.now - ms.start_cycle;
        self.stats.instructions = self.committed - ms.start_committed;
        let l1i = *self.hier.l1i_stats();
        self.stats.l1i_accesses = (l1i.hits + l1i.misses) - (ms.l1i0.hits + ms.l1i0.misses);
        self.stats.l1i_misses = l1i.misses - ms.l1i0.misses;
        if let (Some(u), Some(u0)) = (self.ucp.as_ref(), ms.ucp0.as_ref()) {
            self.stats.ucp = u.stats.delta_since(u0);
        }
        let telemetry = self.tele.handle.registry.snapshot().delta_since(&ms.reg0);
        let intervals = match self.sampler.take() {
            Some(mut s) => {
                s.finish(self.now, &self.tele.handle.registry);
                s.into_records()
            }
            None => Vec::new(),
        };
        let stats = std::mem::take(&mut self.stats);
        // The charger runs exactly once per cycle, so over the window the
        // categories must tile the measured cycles exactly. A violation
        // here is always an attribution bug, never a workload property.
        // Unit tests keep the hard assert (fail loudly at the site);
        // everything else gets a structured error the suite runner can
        // isolate to the one affected workload.
        let mut breakdown = AccountingBreakdown::from_snapshot(&telemetry);
        if self.skew_invariant {
            // Fault injection: desynchronise the independently-counted
            // total from the per-category sum.
            breakdown.total += 1;
        }
        let violation = match breakdown.verify() {
            Err(e) => Some(e),
            Ok(()) if breakdown.total != stats.cycles => Some(format!(
                "cycle accounting charged {} cycles but the window ran {}",
                breakdown.total, stats.cycles,
            )),
            Ok(()) => None,
        };
        if let Some(detail) = violation {
            #[cfg(test)]
            panic!("cycle accounting: {detail}");
            #[cfg(not(test))]
            return Err(SimError::InvariantViolation {
                workload: String::new(),
                detail,
                snapshot: Box::new(self.diag_snapshot()),
            });
        }
        Ok(RunOutput {
            stats,
            telemetry,
            intervals,
            digests: std::mem::take(&mut self.digests),
        })
    }

    /// Opens the measurement window: statistics on, baselines snapshotted
    /// (warm-up may overshoot by up to one commit width; measurement runs
    /// from the actual boundary).
    fn begin_measurement(&mut self) {
        self.measuring = true;
        let reg0 = self.tele.handle.registry.snapshot();
        if let Some(s) = self.sampler.as_mut() {
            s.begin(self.now, &self.tele.handle.registry);
        }
        self.measure_state = Some(MeasureState {
            start_cycle: self.now,
            start_committed: self.committed,
            l1i0: *self.hier.l1i_stats(),
            ucp0: self.ucp.as_ref().map(|u| u.stats.clone()),
            reg0,
        });
    }

    /// The materialized correct-path instruction at absolute position `pos`.
    fn oracle_at(&mut self, pos: u64) -> DynInst {
        while self.stream_base + self.stream.len() as u64 <= pos {
            self.stream.push_back(self.oracle.next_inst());
        }
        self.stream[(pos - self.stream_base) as usize]
    }

    /// One machine cycle.
    fn cycle(&mut self) {
        if self.tele.handle.tracer.is_active() {
            self.tele.handle.tracer.set_cycle(self.now);
        }
        self.demand_uop_banks = [false; 2];
        self.delivered_uop = false;
        self.delivered_decode = false;
        self.deliver_blocked = None;
        if self.skew_invariant && self.measuring && !self.skew_applied {
            // Fault injection: perturb one statistic at the start of the
            // measurement window, so the determinism auditor's digest
            // stream visibly diverges from a clean run at this interval
            // (the end-of-run accounting skew alone never touches the
            // serialized state).
            self.stats.mode_switches += 1;
            self.skew_applied = true;
        }
        self.process_resolutions();
        self.commit_stage();
        self.dispatch_stage();
        self.fetch_schedule_stage();
        self.deliver_stage();
        self.ucp_stage();
        self.agen_stage();
        self.l1i_prefetch_stage();
        self.tele.accounting.charge(self.classify_cycle());
        self.tele.ftq_occupancy.observe(self.ftq.len() as u64);
        self.now += 1;
        if let Some(s) = self.sampler.as_mut() {
            s.tick(self.now, &self.tele.handle.registry);
        }
        // Livelock detection lives in the run loops (`hang_check`), which
        // report a structured `SimError::Hang` instead of asserting here.
    }

    /// Attributes the cycle that just executed to one [`CycleCause`],
    /// applying the precedence order documented in
    /// `ucp_telemetry::accounting`: delivery beats every stall, then the
    /// most specific recorded blocker wins.
    fn classify_cycle(&self) -> CycleCause {
        if self.delivered_uop {
            return CycleCause::DeliverUop;
        }
        if self.delivered_decode {
            return CycleCause::DeliverDecode;
        }
        if self.now < self.fetch_stall_until {
            // Covers both an in-progress mode-switch penalty window and
            // the cycle the switch itself was taken.
            return CycleCause::ModeSwitch;
        }
        if let Some(cause) = self.deliver_blocked {
            return cause;
        }
        if self.ftq.is_empty() {
            if self.agen_dead {
                // No-target indirect/return: the frontend drains until
                // the branch executes and redirects.
                return CycleCause::Drained;
            }
            if self.now < self.agen_stall_until {
                // Either a BTB-miss re-steer bubble or a flush-redirect
                // penalty; `agen_stall_kind` remembers which stalled us.
                return self.agen_stall_kind;
            }
            return CycleCause::FtqEmpty;
        }
        CycleCause::Drained
    }

    // ------------------------------------------------------------------
    // Resolution & flush
    // ------------------------------------------------------------------

    fn process_resolutions(&mut self) {
        // Lazily drop ids of records that resolved without a flush.
        while let Some(&id) = self.rec_order.front() {
            if self.records.contains_key(&id) {
                break;
            }
            self.rec_order.pop_front();
        }
        while let Some(&std::cmp::Reverse((t, id))) = self.resolve_q.peek() {
            if t > self.now {
                break;
            }
            self.resolve_q.pop();
            self.resolve(id);
        }
    }

    fn resolve(&mut self, id: u64) {
        let Some(rec) = self.records.remove(&id) else {
            return; // already freed by an older flush
        };
        debug_assert!(rec.pos.is_some(), "wrong-path records never resolve");
        // Train predictors with the architectural outcome.
        match rec.kind {
            RecKind::Cond => {
                if let Some(scl) = &rec.scl {
                    self.bp.update(rec.pc, scl, rec.actual_taken);
                    if self.measuring {
                        self.stats.cond_branches += 1;
                        self.stats.cond_mispredicts += u64::from(rec.mispredicted);
                        self.stats.record_provider(
                            scl.provider,
                            scl.confidence_value(),
                            rec.mispredicted,
                        );
                        self.stats.h2p_tage.marked += u64::from(rec.h2p_tage);
                        self.stats.h2p_ucp.marked += u64::from(rec.h2p_ucp);
                        if rec.mispredicted {
                            self.stats.h2p_tage.mispredicted += 1;
                            self.stats.h2p_ucp.mispredicted += 1;
                            self.stats.h2p_tage.marked_mispredicted += u64::from(rec.h2p_tage);
                            self.stats.h2p_ucp.marked_mispredicted += u64::from(rec.h2p_ucp);
                        }
                    }
                }
                if let (Some(ucp), Some(alt)) = (self.ucp.as_mut(), rec.alt_scl.as_ref()) {
                    ucp.train_cond(rec.pc, alt, rec.actual_taken);
                }
                if rec.actual_taken {
                    // Keep the BTB's taken target fresh (and allocate
                    // never-taken-before branches).
                    self.btb
                        .insert(rec.pc, rec.actual_next, BranchClass::CondDirect);
                }
            }
            RecKind::Indirect { is_call } => {
                if let Some(itt) = &rec.itt {
                    self.ittage.update(rec.pc, itt, rec.actual_next);
                }
                if let (Some(ucp), Some(alt)) = (self.ucp.as_mut(), rec.alt_itt.as_ref()) {
                    ucp.train_indirect(rec.pc, alt, rec.actual_next);
                }
                self.btb.insert(
                    rec.pc,
                    rec.actual_next,
                    if is_call {
                        BranchClass::IndirectCall
                    } else {
                        BranchClass::IndirectJump
                    },
                );
                if self.measuring && rec.mispredicted && !rec.no_target {
                    self.stats.indirect_mispredicts += 1;
                }
            }
            RecKind::Return => {
                if self.measuring && rec.mispredicted {
                    self.stats.indirect_mispredicts += 1;
                }
            }
        }
        if rec.mispredicted {
            self.do_flush(rec, id);
        }
    }

    fn do_flush(&mut self, rec: PredRecord, rec_id: u64) {
        let pos = rec.pos.expect("flush on a correct-path record");
        self.tele.flushes.inc();
        self.tele
            .handle
            .tracer
            .emit(Category::Pipeline, "flush", || {
                format!(
                    "pc={:#x} kind={:?} next={:#x}",
                    rec.pc.raw(),
                    rec.kind,
                    rec.actual_next.raw()
                )
            });
        // Restore speculative state to just before this branch, then apply
        // the architectural outcome.
        self.bp_hist.restore(&rec.cp_bp);
        self.it_hist.restore(&rec.cp_it);
        self.ras.restore(&rec.cp_ras);
        let transferred = rec.actual_next != rec.pc.next_inst() || rec.kind != RecKind::Cond;
        if rec.kind == RecKind::Cond {
            self.bp_hist.push(rec.actual_taken);
        }
        if transferred {
            push_target_history(&mut self.it_hist, rec.actual_next);
        }
        match rec.kind {
            RecKind::Indirect { is_call: true } => self.ras.push(rec.pc.next_inst()),
            RecKind::Return => {
                let _ = self.ras.pop();
            }
            _ => {}
        }
        if let Some(ucp) = self.ucp.as_mut() {
            let cps = rec.cp_alt.expect("UCP checkpoints present when enabled");
            ucp.on_flush(
                cps,
                (rec.kind == RecKind::Cond).then_some(rec.actual_taken),
                transferred.then_some(rec.actual_next),
            );
        }
        // Free every younger record (creation order is id order, so pop
        // from the back until we reach the flushed record itself).
        while let Some(&id) = self.rec_order.back() {
            self.rec_order.pop_back();
            self.records.remove(&id);
            if id == rec_id {
                break;
            }
        }
        self.ftq.clear();
        self.uopq.clear();
        self.head_delivered = 0;
        self.agen_pc = rec.actual_next;
        self.agen_pos = Some(pos + 1);
        self.agen_dead = false;
        self.pending_mispredict = None;
        self.agen_stall_until = self.now + self.cfg.frontend.redirect_penalty;
        self.agen_stall_kind = CycleCause::Drained;
        self.prefetcher.on_redirect();
        if rec.kind == RecKind::Cond {
            if let Some(n) = self.cfg.ideal_brcond {
                self.ideal_brcond_left = n;
            }
            if let Some(mrc) = self.mrc.as_mut() {
                if let Some(uops) = mrc.lookup(rec.actual_next) {
                    self.mrc_stream_left = uops;
                    if self.measuring {
                        self.stats.mrc_streamed_uops += u64::from(uops);
                    }
                }
                mrc.allocate(rec.actual_next);
                self.mrc_filling = true;
            }
        }
    }

    // ------------------------------------------------------------------
    // Commit & dispatch
    // ------------------------------------------------------------------

    fn commit_stage(&mut self) {
        if self.hang_injected {
            // Fault injection: retirement is wedged; the watchdog must
            // notice and raise `SimError::Hang`.
            return;
        }
        let retired = self.backend.commit(self.now);
        for e in &retired {
            debug_assert_eq!(e.pos, self.stream_base, "in-order commit");
            self.last_retired_pc = Some(self.stream[0].pc);
            self.stream.pop_front();
            self.stream_base += 1;
            self.committed += 1;
            if self.mrc_filling {
                if let Some(mrc) = self.mrc.as_mut() {
                    mrc.fill_uop();
                }
            }
        }
        if !retired.is_empty() {
            self.tele.committed.add(retired.len() as u64);
            self.last_commit_cycle = self.now;
        }
    }

    fn dispatch_stage(&mut self) {
        let mut budget = self.cfg.frontend.dispatch_width;
        while budget > 0 {
            let Some(e) = self.uopq.front().copied() else {
                break;
            };
            if e.ready > self.now {
                break;
            }
            let Some(pos) = e.pos else {
                // Wrong-path µ-op: squashed at dispatch.
                self.uopq.pop();
                budget -= 1;
                continue;
            };
            if !self.backend.has_space() {
                break;
            }
            let d = self.oracle_at(pos);
            let mem_ready = match d.inst.kind {
                InstKind::Load => match self.hier.access_data(d.mem_addr, self.now + 1, false) {
                    Ok(a) => Some(a.ready),
                    Err(_) => break, // L1D MSHR full: retry next cycle
                },
                InstKind::Store => {
                    // Stores update cache state in the background.
                    let _ = self.hier.access_data(d.mem_addr, self.now + 1, true);
                    None
                }
                _ => None,
            };
            let complete = self.backend.dispatch(self.now, &d, pos, mem_ready, e.rec);
            if let Some(rec) = e.rec {
                self.resolve_q.push(std::cmp::Reverse((complete, rec)));
            }
            self.uopq.pop();
            budget -= 1;
        }
    }

    // ------------------------------------------------------------------
    // Fetch scheduling (FDP run-ahead) and delivery
    // ------------------------------------------------------------------

    /// Issues L1I fetches for FTQ blocks ahead of delivery — this is what
    /// makes the frontend *decoupled*: L1I misses (including wrong-path
    /// ones) overlap, and the standalone prefetcher observes the stream.
    #[allow(clippy::explicit_counter_loop)] // `scanned` caps work, `i` indexes
    fn fetch_schedule_stage(&mut self) {
        let mut issued = 0;
        let mut scanned = 0;
        for i in 0..self.ftq.len() {
            if issued >= self.cfg.frontend.l1i_fetches_per_cycle || scanned >= 8 {
                break;
            }
            let Some(blk) = self.ftq.get(i).copied() else {
                break;
            };
            scanned += 1;
            if blk.fetch_ready.is_some() {
                continue;
            }
            // Blocks already resident in the µ-op cache skip the L1I.
            if !self.uop_ideal {
                if let Some(uc) = &self.uop_cache {
                    if uc.probe(blk.start) {
                        self.demand_uop_banks[uc.bank_of(blk.start)] = true;
                        if let Some(b) = self.ftq.get_mut(i) {
                            b.fetch_ready = Some(self.now);
                        }
                        continue;
                    }
                }
            } else {
                if let Some(b) = self.ftq.get_mut(i) {
                    b.fetch_ready = Some(self.now);
                }
                continue;
            }
            match self.hier.access_inst(blk.start, self.now, false) {
                Ok(acc) => {
                    self.prefetcher
                        .on_access(blk.start.line(), acc.level == HitLevel::L1);
                    if let Some(b) = self.ftq.get_mut(i) {
                        b.fetch_ready = Some(acc.ready);
                    }
                    issued += 1;
                }
                Err(_) => break, // MSHR full
            }
        }
    }

    /// `true` if the head block should be treated as a µ-op cache hit.
    fn head_block_hits(&mut self, blk: &FetchBlock) -> (bool, bool, u64) {
        // Returns (hit, counts_as_forced, trigger_of_prefetched_entry).
        if self.uop_ideal {
            return (true, true, 0);
        }
        if self.ideal_brcond_left > 0 || self.mrc_stream_left > 0 {
            return (true, true, 0);
        }
        if let Some(uc) = self.uop_cache.as_mut() {
            self.demand_uop_banks[uc.bank_of(blk.start)] = true;
            if self.measuring {
                self.stats.uop_lookups += 1;
            }
            if let Some(hit) = uc.lookup(blk.start) {
                if hit.num_uops >= blk.n {
                    if self.measuring {
                        self.stats.uop_hits += 1;
                    }
                    let trig = if hit.first_prefetch_use {
                        hit.trigger
                    } else {
                        0
                    };
                    return (true, false, trig);
                }
            }
            if self.cfg.l1i_hits_ideal && self.hier.probe_l1i(blk.start) {
                return (true, true, 0);
            }
            (false, false, 0)
        } else {
            (false, false, 0)
        }
    }

    fn deliver_block_uops(&mut self, blk: FetchBlock, ready: u64, from_cache: bool) -> bool {
        // Room check first: a block is delivered atomically.
        if self.uopq.free() < blk.n as usize {
            self.deliver_blocked = Some(CycleCause::BackendFull);
            return false;
        }
        for i in 0..blk.n {
            let pos = if i < blk.diverge_at {
                blk.pos.map(|p| p + u64::from(i))
            } else {
                None
            };
            let rec = blk.rec_at(i);
            self.uopq
                .push(UopQEntry { pos, ready, rec })
                .expect("room checked above");
        }
        if from_cache {
            self.delivered_uop = true;
        } else {
            self.delivered_decode = true;
        }
        if self.measuring {
            if from_cache {
                self.stats.uops_from_uop_cache += u64::from(blk.n);
            } else {
                self.stats.uops_from_decode += u64::from(blk.n);
            }
        }
        true
    }

    fn switch_mode(&mut self, to: Mode) {
        self.mode = to;
        self.consec_uop_hits = 0;
        self.fetch_stall_until = self.now + 1 + self.cfg.frontend.mode_switch_penalty;
        if self.measuring {
            self.stats.mode_switches += 1;
        }
        self.tele.mode_switches.inc();
        self.tele
            .handle
            .tracer
            .emit(Category::Frontend, "mode_switch", || format!("to={to:?}"));
    }

    fn deliver_stage(&mut self) {
        if self.now < self.fetch_stall_until {
            return;
        }
        let mut cache_uops = self.cfg.frontend.uops_from_cache_per_cycle;
        let mut decode_uops = self.cfg.frontend.decode_width;
        let mut windows = self.cfg.frontend.windows_per_cycle;
        let has_uop_path = self.uop_ideal || self.uop_cache.is_some();
        #[allow(clippy::while_let_loop)] // body also breaks mid-iteration
        loop {
            let Some(blk) = self.ftq.front().copied() else {
                break;
            };
            match self.mode {
                Mode::Stream => {
                    if windows == 0 || cache_uops < u32::from(blk.n) {
                        break;
                    }
                    let (hit, forced, trig) = self.head_block_hits(&blk);
                    if hit {
                        if !self.deliver_block_uops(
                            blk,
                            self.now + self.cfg.frontend.uop_path_delay,
                            true,
                        ) {
                            break;
                        }
                        if trig != 0 {
                            if let Some(ucp) = self.ucp.as_mut() {
                                ucp.record_entry_use(trig);
                            }
                        }
                        if forced {
                            self.consume_forced(&blk);
                        }
                        self.ftq.pop();
                        windows -= 1;
                        cache_uops -= u32::from(blk.n);
                        continue;
                    }
                    self.switch_mode(Mode::Build);
                    break;
                }
                Mode::Build => {
                    // Parallel µ-op cache probe at block starts.
                    if has_uop_path
                        && self.head_delivered == 0
                        && windows > 0
                        && cache_uops >= u32::from(blk.n)
                    {
                        let (hit, forced, trig) = self.head_block_hits(&blk);
                        if hit {
                            if !self.deliver_block_uops(
                                blk,
                                self.now + self.cfg.frontend.uop_path_delay,
                                true,
                            ) {
                                break;
                            }
                            if trig != 0 {
                                if let Some(ucp) = self.ucp.as_mut() {
                                    ucp.record_entry_use(trig);
                                }
                            }
                            if forced {
                                self.consume_forced(&blk);
                            }
                            self.ftq.pop();
                            windows -= 1;
                            cache_uops -= u32::from(blk.n);
                            self.consec_uop_hits += 1;
                            if self.consec_uop_hits >= self.cfg.frontend.stream_switch_hits {
                                self.switch_mode(Mode::Stream);
                                break;
                            }
                            continue;
                        }
                    }
                    // Decode (slow) path.
                    self.consec_uop_hits = 0;
                    let ready = match blk.fetch_ready {
                        Some(r) => r,
                        None => match self.hier.access_inst(blk.start, self.now, false) {
                            Ok(acc) => {
                                self.prefetcher
                                    .on_access(blk.start.line(), acc.level == HitLevel::L1);
                                if let Some(b) = self.ftq.front_mut() {
                                    b.fetch_ready = Some(acc.ready);
                                }
                                acc.ready
                            }
                            Err(_) => {
                                // L1I MSHR full: the instruction fetch
                                // itself cannot even be issued.
                                self.deliver_blocked = Some(CycleCause::L1iMiss);
                                break;
                            }
                        },
                    };
                    if ready > self.now {
                        self.deliver_blocked = Some(CycleCause::L1iMiss);
                        break;
                    }
                    let remaining = blk.n - self.head_delivered;
                    let take = (remaining as u32).min(decode_uops) as u8;
                    if take == 0 {
                        break;
                    }
                    // Deliver `take` µ-ops of the head block.
                    if self.uopq.free() < take as usize {
                        self.deliver_blocked = Some(CycleCause::BackendFull);
                        break;
                    }
                    let base_ready = self.now + self.cfg.frontend.decode_path_delay;
                    for k in 0..take {
                        let i = self.head_delivered + k;
                        let pos = if i < blk.diverge_at {
                            blk.pos.map(|p| p + u64::from(i))
                        } else {
                            None
                        };
                        let rec = blk.rec_at(i);
                        self.uopq
                            .push(UopQEntry {
                                pos,
                                ready: base_ready,
                                rec,
                            })
                            .expect("room checked");
                    }
                    self.delivered_decode = true;
                    if self.measuring {
                        self.stats.uops_from_decode += u64::from(take);
                    }
                    decode_uops -= u32::from(take);
                    self.head_delivered += take;
                    if self.head_delivered == blk.n {
                        // Block fully decoded: build µ-op cache entries.
                        if let Some(uc) = self.uop_cache.as_mut() {
                            for spec in build_entries(self.prog, blk.start, blk.n, false, 0) {
                                uc.insert(spec);
                            }
                        }
                        self.consume_forced(&blk);
                        self.ftq.pop();
                        self.head_delivered = 0;
                    }
                    if decode_uops == 0 {
                        break;
                    }
                }
            }
        }
    }

    /// Decrements the IdealBRCond / MRC forced-hit allowances by the
    /// contents of a delivered block.
    fn consume_forced(&mut self, blk: &FetchBlock) {
        if self.ideal_brcond_left > 0 {
            self.ideal_brcond_left = self.ideal_brcond_left.saturating_sub(u32::from(blk.n_cond));
        }
        if self.mrc_stream_left > 0 {
            self.mrc_stream_left = self.mrc_stream_left.saturating_sub(u32::from(blk.n));
        }
    }

    // ------------------------------------------------------------------
    // UCP engine
    // ------------------------------------------------------------------

    fn ucp_stage(&mut self) {
        let Some(ucp) = self.ucp.as_mut() else {
            return;
        };
        let out = ucp.cycle(
            self.now,
            self.prog,
            &self.btb,
            self.uop_cache.as_mut(),
            &mut self.hier,
            self.demand_uop_banks,
            self.demand_btb_banks,
            self.mode == Mode::Stream,
        );
        if out.demand_window_steal {
            self.agen_window_penalty = 1;
        }
    }

    // ------------------------------------------------------------------
    // Address generation (the BPU of Fig. 1)
    // ------------------------------------------------------------------

    fn agen_stage(&mut self) {
        self.demand_btb_banks = 0;
        if self.now < self.agen_stall_until || self.agen_dead {
            return;
        }
        let mut windows = self.cfg.frontend.windows_per_cycle;
        if self.agen_window_penalty > 0 {
            windows = windows.saturating_sub(self.agen_window_penalty);
            self.agen_window_penalty = 0;
        }
        for _ in 0..windows {
            if self.ftq.is_full() || self.agen_dead || self.now < self.agen_stall_until {
                break;
            }
            if let Some(blk) = self.gen_block() {
                let _ = self.ftq.push(blk);
            } else {
                break;
            }
        }
    }

    fn new_record(&mut self, rec: PredRecord) -> u64 {
        let id = self.next_rec_id;
        self.next_rec_id += 1;
        self.records.insert(id, rec);
        self.rec_order.push_back(id);
        id
    }

    /// Generates one fetch block along the current (predicted) path.
    fn gen_block(&mut self) -> Option<FetchBlock> {
        let start = self.agen_pc;
        let window_end = Addr::new(start.uop_window().raw() + 32);
        let pos0 = self.agen_pos;
        let mut pc = start;
        let mut cur_pos = pos0;
        let mut n: u8 = 0;
        let mut n_cond: u8 = 0;
        let mut diverge_at = u8::MAX;
        // `next` is definitely assigned on every loop exit path.
        let next;
        let mut recs = [(0u8, 0u64); MAX_BLOCK_RECS];
        let mut n_recs: u8 = 0;

        loop {
            if pc == window_end || n == 8 {
                next = pc;
                break;
            }
            let Some(inst) = self.prog.inst_at(pc) else {
                // Wrong path walked off the code image: nothing to fetch.
                self.agen_dead = true;
                next = pc;
                break;
            };
            let inst = *inst;
            let Some(class) = inst.kind.branch_class() else {
                n += 1;
                pc = pc.next_inst();
                if let Some(p) = cur_pos {
                    cur_pos = Some(p + 1);
                }
                continue;
            };
            // Branch: make sure we can attach a record if one is needed.
            let needs_record = !matches!(class, BranchClass::UncondDirect | BranchClass::Call);
            if needs_record && n_recs as usize == MAX_BLOCK_RECS {
                next = pc;
                break;
            }
            let offset = n;
            n += 1;
            n_cond += u8::from(class == BranchClass::CondDirect);
            self.demand_btb_banks |= 1u64 << (self.btb.bank_of(pc) as u64 % 64);
            let btb_entry = self.btb.lookup(pc);

            // BTB-miss re-steer modelling (discovered at predecode): charge
            // the re-steer bubble for taken control flow.
            let btb_missed = btb_entry.is_none();

            // Checkpoints before any speculative update for this branch.
            let cp_bp = self.bp_hist.checkpoint();
            let cp_it = self.it_hist.checkpoint();
            let cp_ras = self.ras.checkpoint();
            let cp_alt = self.ucp.as_ref().map(|u| u.checkpoints());

            let (
                predicted_taken,
                predicted_next,
                kind,
                scl,
                itt,
                alt_scl,
                alt_itt,
                h2p_t,
                h2p_u,
                no_target,
            );
            match class {
                BranchClass::CondDirect => {
                    let target = inst.kind.direct_target().expect("cond direct");
                    let p = self.bp.predict(&self.bp_hist, pc);
                    let h2p_tage_f = TageConf.is_h2p(&p);
                    let h2p_ucp_f = UcpConf.is_h2p(&p);
                    // UCP trigger happens before the mirror push (the
                    // alternate GHR starts from the pre-branch state).
                    let mut a_scl = None;
                    if let Some(ucp) = self.ucp.as_mut() {
                        // Trigger only on the demand path the paper's
                        // model fetches: ChampSim's frontend stops at an
                        // unresolved misprediction, so wrong-path H2P
                        // branches never preempt a live walk there.
                        if cur_pos.is_some() && ucp.is_h2p(&p) {
                            let alt_target = if p.taken {
                                pc.next_inst()
                            } else {
                                btb_entry.map(|e| e.target).unwrap_or(target)
                            };
                            ucp.trigger(alt_target, p.taken, &self.ras);
                        }
                        a_scl = Some(ucp.on_cond_predicted(pc, p.taken));
                    }
                    self.bp_hist.push(p.taken);
                    predicted_taken = p.taken;
                    predicted_next = if p.taken { target } else { pc.next_inst() };
                    if p.taken {
                        push_target_history(&mut self.it_hist, target);
                        if let Some(ucp) = self.ucp.as_mut() {
                            let _ = ucp.on_taken_target(pc, target, false);
                        }
                        if btb_missed {
                            self.charge_resteer();
                            self.btb.insert(pc, target, class);
                        }
                    }
                    kind = RecKind::Cond;
                    scl = Some(p);
                    itt = None;
                    alt_scl = a_scl;
                    alt_itt = None;
                    h2p_t = h2p_tage_f;
                    h2p_u = h2p_ucp_f;
                    no_target = false;
                }
                BranchClass::UncondDirect | BranchClass::Call => {
                    let target = inst.kind.direct_target().expect("direct");
                    if class == BranchClass::Call {
                        self.ras.push(pc.next_inst());
                    }
                    push_target_history(&mut self.it_hist, target);
                    if let Some(ucp) = self.ucp.as_mut() {
                        let _ = ucp.on_taken_target(pc, target, false);
                    }
                    if btb_missed {
                        self.charge_resteer();
                        self.btb.insert(pc, target, class);
                    }
                    // Direct unconditional flow cannot mispredict: no record.
                    next = target;
                    if let Some(p) = cur_pos {
                        // Verify against the oracle (must always match).
                        let d = self.oracle_at(p);
                        debug_assert_eq!(d.pc, pc, "agen desynchronized from the oracle");
                        debug_assert_eq!(d.next_pc, target);
                    }
                    self.agen_pos = if diverge_at != u8::MAX {
                        None
                    } else {
                        cur_pos.map(|p| p + 1)
                    };
                    self.agen_pc = next;
                    return Some(FetchBlock {
                        start,
                        n,
                        n_cond,
                        pos: pos0,
                        diverge_at,
                        fetch_ready: None,
                        recs,
                        n_recs,
                    });
                }
                BranchClass::Return => {
                    let ras_target = self.ras.pop();
                    let fallback = btb_entry.map(|e| e.target).filter(|t| !t.is_null());
                    let t = ras_target.or(fallback);
                    if btb_missed {
                        self.charge_resteer();
                        self.btb.insert(pc, t.unwrap_or(Addr::NULL), class);
                    }
                    match t {
                        Some(t) => {
                            predicted_taken = true;
                            predicted_next = t;
                            push_target_history(&mut self.it_hist, t);
                            if let Some(ucp) = self.ucp.as_mut() {
                                let _ = ucp.on_taken_target(pc, t, false);
                            }
                            no_target = false;
                        }
                        None => {
                            predicted_taken = true;
                            predicted_next = Addr::NULL;
                            no_target = true;
                        }
                    }
                    kind = RecKind::Return;
                    scl = None;
                    itt = None;
                    alt_scl = None;
                    alt_itt = None;
                    h2p_t = false;
                    h2p_u = false;
                }
                BranchClass::IndirectJump | BranchClass::IndirectCall => {
                    let is_call = class == BranchClass::IndirectCall;
                    let p = self.ittage.predict(&self.it_hist, pc);
                    let fallback = btb_entry.map(|e| e.target).filter(|t| !t.is_null());
                    let t = p.target.or(fallback);
                    if btb_missed {
                        self.charge_resteer();
                    }
                    let mut a_itt = None;
                    match t {
                        Some(t) => {
                            if is_call {
                                self.ras.push(pc.next_inst());
                            }
                            if let Some(ucp) = self.ucp.as_mut() {
                                a_itt = ucp.on_taken_target(pc, t, true);
                            }
                            push_target_history(&mut self.it_hist, t);
                            predicted_taken = true;
                            predicted_next = t;
                            no_target = false;
                        }
                        None => {
                            predicted_taken = true;
                            predicted_next = Addr::NULL;
                            no_target = true;
                        }
                    }
                    kind = RecKind::Indirect { is_call };
                    scl = None;
                    itt = Some(p);
                    alt_scl = None;
                    alt_itt = a_itt;
                    h2p_t = false;
                    h2p_u = false;
                }
            }

            // Oracle comparison (only meaningful on the correct path).
            let (actual_taken, actual_next, mispredicted) = match cur_pos {
                Some(p) => {
                    let d = self.oracle_at(p);
                    let mis = no_target || d.next_pc != predicted_next;
                    (d.taken, d.next_pc, mis)
                }
                None => (predicted_taken, predicted_next, false),
            };

            let id = self.new_record(PredRecord {
                pc,
                kind,
                pos: cur_pos,
                actual_taken,
                actual_next,
                mispredicted,
                no_target,
                cp_bp,
                cp_it,
                cp_ras,
                cp_alt,
                scl,
                itt,
                alt_scl,
                alt_itt,
                h2p_tage: h2p_t,
                h2p_ucp: h2p_u,
            });
            recs[n_recs as usize] = (offset, id);
            n_recs += 1;

            if mispredicted && self.pending_mispredict.is_none() {
                self.pending_mispredict = Some(id);
                if no_target {
                    if self.measuring {
                        self.stats.btb_resteers += 1;
                    }
                    self.tele.resteers.inc();
                }
            }

            if no_target {
                // Cannot continue without a target: fetch stalls until the
                // branch executes (resolution redirects).
                self.agen_dead = true;
                pc = pc.next_inst();
                next = pc;
                break;
            }

            // Advance the walk along the predicted path.
            let was_on_correct = cur_pos.is_some();
            if was_on_correct && mispredicted {
                // Everything after this instruction is wrong-path.
                if diverge_at == u8::MAX {
                    diverge_at = n;
                }
                cur_pos = None;
            } else if let Some(p) = cur_pos {
                cur_pos = Some(p + 1);
            }

            pc = pc.next_inst();
            if predicted_taken {
                next = predicted_next;
                break;
            }
        }

        self.agen_pc = next;
        self.agen_pos = if diverge_at != u8::MAX { None } else { cur_pos };
        if n == 0 {
            return None;
        }
        Some(FetchBlock {
            start,
            n,
            n_cond,
            pos: pos0,
            diverge_at,
            fetch_ready: None,
            recs,
            n_recs,
        })
    }

    fn charge_resteer(&mut self) {
        self.agen_stall_until =
            (self.now + self.cfg.frontend.btb_resteer_penalty).max(self.agen_stall_until);
        self.agen_stall_kind = CycleCause::Resteer;
        if self.measuring {
            self.stats.btb_resteers += 1;
        }
        self.tele.resteers.inc();
        self.tele
            .handle
            .tracer
            .emit(Category::Frontend, "btb_resteer", String::new);
    }

    // ------------------------------------------------------------------
    // Standalone L1I prefetcher queue
    // ------------------------------------------------------------------

    fn l1i_prefetch_stage(&mut self) {
        let mut buf = Vec::new();
        self.prefetcher.drain(&mut buf);
        for line in buf {
            let _ = self.prefetch_pq.push(line);
        }
        if let Some(&line) = self.prefetch_pq.front() {
            if self.hier.probe_l1i(line) {
                self.prefetch_pq.pop();
            } else if self.hier.access_inst(line, self.now, true).is_ok() {
                self.prefetch_pq.pop();
                if self.measuring {
                    self.stats.l1i_prefetches_issued += 1;
                }
                self.tele.l1i_prefetches.inc();
                self.tele
                    .handle
                    .tracer
                    .emit(Category::Prefetch, "l1i_issue", || {
                        format!("line={:#x}", line.raw())
                    });
            }
        }
    }

    // ------------------------------------------------------------------
    // Checkpoint/restore and the determinism auditor
    // ------------------------------------------------------------------

    /// Arms `UCP_CKPT` checkpointing for this run and, when a valid
    /// checkpoint of the *same trajectory* (workload, seed, config, run
    /// lengths) exists on disk, restores the newest one instead of
    /// re-simulating from cycle zero. Returns the committed-instruction
    /// count resumed from, if any. `fault` arms the `torn_write` site on
    /// every checkpoint write.
    ///
    /// # Errors
    ///
    /// [`SimError::BadConfig`] for a malformed `UCP_CKPT` value.
    pub fn init_checkpointing(
        &mut self,
        spec: &WorkloadSpec,
        warmup: u64,
        measure: u64,
        fault: Option<Arc<FaultPlan>>,
    ) -> Result<Option<u64>, SimError> {
        match ckpt_from_env().map_err(|detail| SimError::BadConfig { detail })? {
            Some(policy) => Ok(self.arm_checkpointing(spec, warmup, measure, policy, fault)),
            None => Ok(None),
        }
    }

    /// [`Simulator::init_checkpointing`] with an explicit policy instead
    /// of the environment knob (tests, offline tools).
    pub fn arm_checkpointing(
        &mut self,
        spec: &WorkloadSpec,
        warmup: u64,
        measure: u64,
        policy: CheckpointPolicy,
        fault: Option<Arc<FaultPlan>>,
    ) -> Option<u64> {
        let spec_json = serde_json::to_string(spec).expect("workload spec serializes");
        let cfg_json = serde_json::to_string(&self.cfg).expect("sim config serializes");
        let dir = ckpt_root().join(run_slug(&spec.name, spec.seed, &cfg_json, warmup, measure));
        let mut resumed = None;
        if let Some((meta, state)) = latest_valid_checkpoint(&dir) {
            // The slug already keys the directory by trajectory; verify
            // anyway — a slug collision must not resume a foreign machine.
            if meta.spec_json == spec_json && meta.cfg_json == cfg_json && meta.seed == spec.seed {
                let mut r = StateReader::new(&state);
                self.restore_state(&mut r);
                r.finish();
                self.last_ckpt_committed = meta.committed;
                eprintln!(
                    "[ucp-ckpt] resuming {} (seed {}) at {} committed instructions",
                    spec.name, spec.seed, meta.committed
                );
                resumed = Some(meta.committed);
            } else {
                eprintln!(
                    "[ucp-ckpt] ignoring checkpoint for a different run in {}",
                    dir.display()
                );
            }
        }
        self.ckpt = Some(CkptSink {
            dir,
            every: policy.every,
            keep: policy.keep,
            workload: spec.name.clone(),
            spec_json,
            cfg_json,
            seed: spec.seed,
            warmup,
            measure,
            fault,
        });
        resumed
    }

    /// Drops this run's checkpoints (a completed run can never be resumed
    /// again) and disarms the writer.
    pub fn finish_checkpointing(&mut self) {
        if let Some(sink) = self.ckpt.take() {
            remove_run_checkpoints(&sink.dir);
        }
    }

    /// The directory the armed checkpoint writer targets, if any.
    pub fn checkpoint_dir(&self) -> Option<&std::path::Path> {
        self.ckpt.as_ref().map(|s| s.dir.as_path())
    }

    /// Writes a checkpoint if the armed cadence says one is due.
    fn maybe_checkpoint(&mut self) -> Result<(), SimError> {
        let Some(every) = self.ckpt.as_ref().map(|s| s.every) else {
            return Ok(());
        };
        if self.committed < self.last_ckpt_committed + every {
            return Ok(());
        }
        let mut w = StateWriter::new();
        self.save_state(&mut w);
        let state = w.into_bytes();
        let sink = self.ckpt.as_ref().expect("checkpoint sink armed");
        let meta = CheckpointMeta {
            version: CKPT_VERSION,
            workload: sink.workload.clone(),
            spec_json: sink.spec_json.clone(),
            cfg_json: sink.cfg_json.clone(),
            seed: sink.seed,
            warmup: sink.warmup,
            measure: sink.measure,
            committed: self.committed,
            cycle: self.now,
            digest: fnv1a64(&state),
        };
        write_checkpoint(&sink.dir, &meta, &state, sink.keep, sink.fault.as_deref())?;
        // Fault injection (`UCP_FAULT=kill:<nth>`): die right after the
        // nth checkpoint write lands — the canonical mid-run kill the
        // resume path must recover from. The write above is atomic and
        // complete, so the checkpoint left behind is intact.
        let killed = sink.fault.as_deref().is_some_and(|p| p.should_fire("kill"));
        self.last_ckpt_committed = self.committed;
        if killed {
            panic!(
                "injected fault: killed after checkpoint at {} committed instructions",
                self.committed
            );
        }
        Ok(())
    }

    /// Records a determinism-auditor digest if the cadence says one is
    /// due. Retirement advances up to a commit width per cycle, so the
    /// threshold tracker jumps past every boundary the cycle crossed —
    /// one sample per crossing cycle, deterministically placed.
    fn maybe_digest(&mut self) {
        let Some(every) = self.digest_every else {
            return;
        };
        if self.committed < self.last_digest_committed + every {
            return;
        }
        while self.committed >= self.last_digest_committed + every {
            self.last_digest_committed += every;
        }
        let digest = self.state_digest();
        self.digests.push(DigestRecord {
            committed: self.committed,
            cycle: self.now,
            digest,
        });
    }

    /// FNV-1a digest of the complete serialized machine state.
    pub fn state_digest(&self) -> u64 {
        let mut w = StateWriter::new();
        self.save_state(&mut w);
        fnv1a64(w.bytes())
    }

    /// The determinism auditor's digest samples so far.
    pub fn digests(&self) -> &[DigestRecord] {
        &self.digests
    }

    /// Replaces the digest cadence (constructed from `UCP_DIGEST` by
    /// default). `None` disables the determinism auditor.
    pub fn set_digest_interval(&mut self, every: Option<u64>) {
        self.digest_every = every;
    }

    /// Instructions committed so far (whole run, not the window).
    pub fn committed(&self) -> u64 {
        self.committed
    }

    /// Public diagnostics capture — the divergence bisector dumps a
    /// replayed and a recorded machine side by side through this.
    pub fn diagnostics(&self) -> DiagSnapshot {
        self.diag_snapshot()
    }

    /// Runs cycles until `target` committed instructions (whole-run
    /// count), opening the measurement window at the `warmup` boundary
    /// exactly as [`Simulator::run_full`] would, but never closing it —
    /// the divergence bisector's replay primitive. No checkpoints are
    /// written.
    ///
    /// # Errors
    ///
    /// [`SimError::Hang`] when the watchdog expires.
    pub fn run_to_committed(&mut self, target: u64, warmup: u64) -> Result<(), SimError> {
        while self.committed < target {
            if self.committed >= warmup && !self.measuring {
                self.begin_measurement();
            }
            self.hang_check()?;
            self.cycle();
            self.maybe_digest();
        }
        Ok(())
    }

    /// Restores the machine from raw checkpoint state bytes.
    ///
    /// # Panics
    ///
    /// Panics if the bytes do not describe a machine built from the same
    /// workload and configuration (geometry asserts), or are truncated or
    /// corrupt (the integrity envelope normally rejects those first).
    pub fn restore_from_bytes(&mut self, state: &[u8]) {
        let mut r = StateReader::new(state);
        self.restore_state(&mut r);
        r.finish();
    }

    fn cause_code(c: CycleCause) -> u8 {
        CycleCause::ALL
            .iter()
            .position(|&x| x == c)
            .expect("every cause is in ALL") as u8
    }

    fn cause_from_code(code: u8) -> CycleCause {
        CycleCause::ALL[code as usize]
    }

    fn save_rec_kind(w: &mut StateWriter, k: RecKind) {
        w.put_u8(match k {
            RecKind::Cond => 0,
            RecKind::Indirect { is_call: false } => 1,
            RecKind::Indirect { is_call: true } => 2,
            RecKind::Return => 3,
        });
    }

    fn load_rec_kind(r: &mut StateReader) -> RecKind {
        match r.get_u8() {
            0 => RecKind::Cond,
            1 => RecKind::Indirect { is_call: false },
            2 => RecKind::Indirect { is_call: true },
            3 => RecKind::Return,
            k => panic!("checkpoint state corrupt: record kind {k}"),
        }
    }

    fn save_record(w: &mut StateWriter, rec: &PredRecord) {
        w.put_addr(rec.pc);
        Self::save_rec_kind(w, rec.kind);
        w.put_opt_u64(rec.pos);
        w.put_bool(rec.actual_taken);
        w.put_addr(rec.actual_next);
        w.put_bool(rec.mispredicted);
        w.put_bool(rec.no_target);
        rec.cp_bp.save_state(w);
        rec.cp_it.save_state(w);
        rec.cp_ras.save_state(w);
        w.put_bool(rec.cp_alt.is_some());
        if let Some((a, b)) = &rec.cp_alt {
            a.save_state(w);
            b.save_state(w);
        }
        w.put_bool(rec.scl.is_some());
        if let Some(p) = &rec.scl {
            p.save_state(w);
        }
        w.put_bool(rec.itt.is_some());
        if let Some(p) = &rec.itt {
            p.save_state(w);
        }
        w.put_bool(rec.alt_scl.is_some());
        if let Some(p) = &rec.alt_scl {
            p.save_state(w);
        }
        w.put_bool(rec.alt_itt.is_some());
        if let Some(p) = &rec.alt_itt {
            p.save_state(w);
        }
        w.put_bool(rec.h2p_tage);
        w.put_bool(rec.h2p_ucp);
    }

    fn load_record(r: &mut StateReader) -> PredRecord {
        PredRecord {
            pc: r.get_addr(),
            kind: Self::load_rec_kind(r),
            pos: r.get_opt_u64(),
            actual_taken: r.get_bool(),
            actual_next: r.get_addr(),
            mispredicted: r.get_bool(),
            no_target: r.get_bool(),
            cp_bp: HistCheckpoint::load_state(r),
            cp_it: HistCheckpoint::load_state(r),
            cp_ras: RasCheckpoint::load_state(r),
            cp_alt: r
                .get_bool()
                .then(|| (HistCheckpoint::load_state(r), HistCheckpoint::load_state(r))),
            scl: r.get_bool().then(|| SclPrediction::load_state(r)),
            itt: r.get_bool().then(|| IttagePrediction::load_state(r)),
            alt_scl: r.get_bool().then(|| SclPrediction::load_state(r)),
            alt_itt: r.get_bool().then(|| IttagePrediction::load_state(r)),
            h2p_tage: r.get_bool(),
            h2p_ucp: r.get_bool(),
        }
    }

    fn save_block(w: &mut StateWriter, b: &FetchBlock) {
        w.put_addr(b.start);
        w.put_u8(b.n);
        w.put_u8(b.n_cond);
        w.put_opt_u64(b.pos);
        w.put_u8(b.diverge_at);
        w.put_opt_u64(b.fetch_ready);
        w.put_u8(b.n_recs);
        for &(o, id) in &b.recs {
            w.put_u8(o);
            w.put_u64(id);
        }
    }

    fn load_block(r: &mut StateReader) -> FetchBlock {
        let start = r.get_addr();
        let n = r.get_u8();
        let n_cond = r.get_u8();
        let pos = r.get_opt_u64();
        let diverge_at = r.get_u8();
        let fetch_ready = r.get_opt_u64();
        let n_recs = r.get_u8();
        let mut recs = [(0u8, 0u64); MAX_BLOCK_RECS];
        for slot in &mut recs {
            *slot = (r.get_u8(), r.get_u64());
        }
        FetchBlock {
            start,
            n,
            n_cond,
            pos,
            diverge_at,
            fetch_ready,
            recs,
            n_recs,
        }
    }

    /// Serializes the complete mutable machine state, every component in
    /// declaration order. Geometry and configuration are never written —
    /// a restore target must be built from the same `SimConfig` and
    /// workload (asserted where cheap). Container iteration is forced
    /// into a deterministic order (records sorted by id, the resolution
    /// heap sorted) so identical machines always produce identical bytes.
    pub fn save_state(&self, w: &mut StateWriter) {
        w.mark(0x5349_4d30);
        // Workload state: the oracle RNG and the materialized stream
        // (instructions are rebuilt from the program on restore).
        self.oracle.save_state(w);
        w.put_u64(self.stream_base);
        w.put_usize(self.stream.len());
        for d in &self.stream {
            w.put_addr(d.pc);
            w.put_addr(d.next_pc);
            w.put_bool(d.taken);
            w.put_addr(d.mem_addr);
        }
        w.put_u64(self.now);
        // Predictors.
        self.bp.save_state(w);
        self.bp_hist.save_state(w);
        self.ittage.save_state(w);
        self.it_hist.save_state(w);
        self.btb.save_state(w);
        self.ras.save_state(w);
        w.mark(0x5349_4d31);
        // µ-op cache, memory hierarchy, prefetchers, UCP engine.
        w.put_bool(self.uop_cache.is_some());
        if let Some(uc) = &self.uop_cache {
            uc.save_state(w);
        }
        self.hier.save_state(w);
        self.prefetcher.save_state(w);
        w.put_usize(self.prefetch_pq.len());
        for &line in self.prefetch_pq.iter() {
            w.put_addr(line);
        }
        w.put_bool(self.mrc.is_some());
        if let Some(m) = &self.mrc {
            m.save_state(w);
        }
        w.put_bool(self.mrc_filling);
        w.put_u32(self.mrc_stream_left);
        w.put_bool(self.ucp.is_some());
        if let Some(u) = &self.ucp {
            u.save_state(w);
        }
        w.mark(0x5349_4d32);
        // Address generation.
        w.put_addr(self.agen_pc);
        w.put_opt_u64(self.agen_pos);
        w.put_u64(self.agen_stall_until);
        w.put_bool(self.agen_dead);
        w.put_u32(self.agen_window_penalty);
        w.put_opt_u64(self.pending_mispredict);
        w.put_u64(self.demand_btb_banks);
        w.put_u8(Self::cause_code(self.agen_stall_kind));
        // FTQ, µ-op queue and delivery state.
        w.put_usize(self.ftq.len());
        for b in self.ftq.iter() {
            Self::save_block(w, b);
        }
        w.put_usize(self.uopq.len());
        for e in self.uopq.iter() {
            w.put_opt_u64(e.pos);
            w.put_u64(e.ready);
            w.put_opt_u64(e.rec);
        }
        w.put_u8(match self.mode {
            Mode::Stream => 0,
            Mode::Build => 1,
        });
        w.put_u64(self.fetch_stall_until);
        w.put_u32(self.consec_uop_hits);
        w.put_u8(self.head_delivered);
        w.put_u32(self.ideal_brcond_left);
        // In-flight prediction records, sorted by id — HashMap iteration
        // order must never leak into the checkpoint bytes.
        let mut ids: Vec<u64> = self.records.keys().copied().collect();
        ids.sort_unstable();
        w.put_usize(ids.len());
        for id in ids {
            w.put_u64(id);
            Self::save_record(w, &self.records[&id]);
        }
        w.put_usize(self.rec_order.len());
        for &id in &self.rec_order {
            w.put_u64(id);
        }
        w.put_u64(self.next_rec_id);
        // Backend and the resolution calendar (heap iteration order is
        // arbitrary for equal keys; serialize sorted).
        self.backend.save_state(w);
        let mut rq: Vec<(u64, u64)> = self.resolve_q.iter().map(|x| x.0).collect();
        rq.sort_unstable();
        w.put_usize(rq.len());
        for (t, id) in rq {
            w.put_u64(t);
            w.put_u64(id);
        }
        w.mark(0x5349_4d33);
        // Commit bookkeeping and the measurement window.
        w.put_u64(self.committed);
        w.put_u64(self.last_commit_cycle);
        w.put_opt_u64(self.last_retired_pc.map(Addr::raw));
        w.put_bool(self.measuring);
        w.put_bool(self.measure_state.is_some());
        if let Some(ms) = &self.measure_state {
            w.put_u64(ms.start_cycle);
            w.put_u64(ms.start_committed);
            w.put_u64(ms.l1i0.hits);
            w.put_u64(ms.l1i0.misses);
            w.put_u64(ms.l1i0.fills);
            w.put_u64(ms.l1i0.prefetch_fills);
            w.put_u64(ms.l1i0.prefetch_useful);
            w.put_bool(ms.ucp0.is_some());
            if let Some(u0) = &ms.ucp0 {
                u0.save_state(w);
            }
            w.put_str(&serde_json::to_string(&ms.reg0).expect("snapshot serializes"));
        }
        // Aggregate statistics and the registry contents go through serde
        // — both are wide, growing structs whose JSON form already has a
        // stable field order.
        w.put_str(&serde_json::to_string(&self.stats).expect("stats serialize"));
        w.put_str(
            &serde_json::to_string(&self.tele.handle.registry.snapshot())
                .expect("registry snapshot serializes"),
        );
        w.put_bool(self.sampler.is_some());
        if let Some(s) = &self.sampler {
            w.put_str(&serde_json::to_string(&s.export_state()).expect("sampler state serializes"));
        }
        // Fault-injection progress and the determinism auditor.
        w.put_bool(self.skew_applied);
        w.put_u64(self.last_digest_committed);
        w.put_usize(self.digests.len());
        for d in &self.digests {
            w.put_u64(d.committed);
            w.put_u64(d.cycle);
            w.put_u64(d.digest);
        }
        w.mark(0x5349_4d34);
    }

    /// Restores state written by [`Simulator::save_state`]. The receiver
    /// must have been built from the same program, seed and `SimConfig`.
    ///
    /// # Panics
    ///
    /// Panics on any geometry or configuration mismatch, and on corrupt
    /// or truncated state (the integrity envelope rejects those before
    /// this runs; the suite layer catches the rest at its unwind
    /// boundary).
    pub fn restore_state(&mut self, r: &mut StateReader) {
        r.check(0x5349_4d30);
        self.oracle.restore_state(r);
        self.stream_base = r.get_u64();
        let n = r.get_usize();
        self.stream.clear();
        for _ in 0..n {
            let pc = r.get_addr();
            let next_pc = r.get_addr();
            let taken = r.get_bool();
            let mem_addr = r.get_addr();
            let inst = *self
                .prog
                .inst_at(pc)
                .expect("checkpoint stream pc outside the program");
            self.stream.push_back(DynInst {
                pc,
                inst,
                next_pc,
                taken,
                mem_addr,
            });
        }
        self.now = r.get_u64();
        self.bp.restore_state(r);
        self.bp_hist.restore_state(r);
        self.ittage.restore_state(r);
        self.it_hist.restore_state(r);
        self.btb.restore_state(r);
        self.ras.restore_state(r);
        r.check(0x5349_4d31);
        let has_uc = r.get_bool();
        assert_eq!(
            has_uc,
            self.uop_cache.is_some(),
            "µ-op cache configuration mismatch"
        );
        if let Some(uc) = self.uop_cache.as_mut() {
            uc.restore_state(r);
        }
        self.hier.restore_state(r);
        self.prefetcher.restore_state(r);
        let n = r.get_usize();
        self.prefetch_pq.clear();
        for _ in 0..n {
            self.prefetch_pq
                .push(r.get_addr())
                .expect("prefetch queue geometry mismatch");
        }
        let has_mrc = r.get_bool();
        assert_eq!(has_mrc, self.mrc.is_some(), "MRC configuration mismatch");
        if let Some(m) = self.mrc.as_mut() {
            m.restore_state(r);
        }
        self.mrc_filling = r.get_bool();
        self.mrc_stream_left = r.get_u32();
        let has_ucp = r.get_bool();
        assert_eq!(has_ucp, self.ucp.is_some(), "UCP configuration mismatch");
        if let Some(u) = self.ucp.as_mut() {
            u.restore_state(r);
        }
        r.check(0x5349_4d32);
        self.agen_pc = r.get_addr();
        self.agen_pos = r.get_opt_u64();
        self.agen_stall_until = r.get_u64();
        self.agen_dead = r.get_bool();
        self.agen_window_penalty = r.get_u32();
        self.pending_mispredict = r.get_opt_u64();
        self.demand_btb_banks = r.get_u64();
        self.agen_stall_kind = Self::cause_from_code(r.get_u8());
        let n = r.get_usize();
        self.ftq.clear();
        for _ in 0..n {
            let b = Self::load_block(r);
            self.ftq.push(b).expect("FTQ geometry mismatch");
        }
        let n = r.get_usize();
        self.uopq.clear();
        for _ in 0..n {
            let e = UopQEntry {
                pos: r.get_opt_u64(),
                ready: r.get_u64(),
                rec: r.get_opt_u64(),
            };
            self.uopq.push(e).expect("µ-op queue geometry mismatch");
        }
        self.mode = match r.get_u8() {
            0 => Mode::Stream,
            1 => Mode::Build,
            m => panic!("checkpoint state corrupt: mode {m}"),
        };
        self.fetch_stall_until = r.get_u64();
        self.consec_uop_hits = r.get_u32();
        self.head_delivered = r.get_u8();
        self.ideal_brcond_left = r.get_u32();
        let n = r.get_usize();
        self.records.clear();
        for _ in 0..n {
            let id = r.get_u64();
            let rec = Self::load_record(r);
            self.records.insert(id, rec);
        }
        let n = r.get_usize();
        self.rec_order.clear();
        for _ in 0..n {
            self.rec_order.push_back(r.get_u64());
        }
        self.next_rec_id = r.get_u64();
        self.backend.restore_state(r);
        let n = r.get_usize();
        self.resolve_q.clear();
        for _ in 0..n {
            let t = r.get_u64();
            let id = r.get_u64();
            self.resolve_q.push(std::cmp::Reverse((t, id)));
        }
        r.check(0x5349_4d33);
        self.committed = r.get_u64();
        self.last_commit_cycle = r.get_u64();
        self.last_retired_pc = r.get_opt_u64().map(Addr::new);
        self.measuring = r.get_bool();
        self.measure_state = r.get_bool().then(|| {
            let start_cycle = r.get_u64();
            let start_committed = r.get_u64();
            let l1i0 = CacheStats {
                hits: r.get_u64(),
                misses: r.get_u64(),
                fills: r.get_u64(),
                prefetch_fills: r.get_u64(),
                prefetch_useful: r.get_u64(),
            };
            let ucp0 = r.get_bool().then(|| {
                let mut u = UcpStats::default();
                u.restore_state(r);
                u
            });
            let reg0: RegistrySnapshot =
                serde_json::from_str(r.get_str()).expect("checkpoint registry baseline parses");
            MeasureState {
                start_cycle,
                start_committed,
                l1i0,
                ucp0,
                reg0,
            }
        });
        self.stats = serde_json::from_str(r.get_str()).expect("checkpoint stats parse");
        let snap: RegistrySnapshot =
            serde_json::from_str(r.get_str()).expect("checkpoint registry snapshot parses");
        self.tele.handle.registry.restore(&snap);
        let has_sampler = r.get_bool();
        assert_eq!(
            has_sampler,
            self.sampler.is_some(),
            "interval sampler configuration mismatch \
             (UCP_INTERVAL must match the checkpointed run)"
        );
        if let Some(s) = self.sampler.as_mut() {
            let st = serde_json::from_str(r.get_str()).expect("checkpoint sampler state parses");
            s.import_state(st);
        }
        self.skew_applied = r.get_bool();
        self.last_digest_committed = r.get_u64();
        let n = r.get_usize();
        self.digests.clear();
        for _ in 0..n {
            self.digests.push(DigestRecord {
                committed: r.get_u64(),
                cycle: r.get_u64(),
                digest: r.get_u64(),
            });
        }
        r.check(0x5349_4d34);
        // Per-cycle scratch is not serialized (it is dead between cycles
        // and reset at the top of `cycle()`); clear it defensively.
        self.demand_uop_banks = [false; 2];
        self.delivered_uop = false;
        self.delivered_decode = false;
        self.deliver_blocked = None;
    }
}

impl crate::snapshot::Checkpointable for Simulator<'_> {
    fn component_id(&self) -> &'static str {
        "simulator"
    }

    fn save_state(&self, w: &mut StateWriter) {
        Simulator::save_state(self, w);
    }

    fn restore_state(&mut self, r: &mut StateReader) {
        Simulator::restore_state(self, r);
    }
}
