//! The cycle-level pipeline: decoupled branch-prediction-driven address
//! generation (FDP), stream/build µ-op cache frontend, event-time
//! out-of-order backend, and all the evaluation idealizations.
//!
//! # Model summary (see DESIGN.md §3 for the rationale)
//!
//! * **Address generation** walks the *predicted* path through the real
//!   static code: the BTB supplies branch targets, TAGE-SC-L directions,
//!   ITTAGE indirect targets and the RAS return addresses. The oracle
//!   stream is consulted only to classify each prediction as
//!   correct/incorrect — after the first misprediction the walker is on
//!   the wrong path and keeps generating (and fetching, and polluting)
//!   until the branch resolves, exactly like a decoupled frontend.
//! * **Fetch/deliver** consumes FTQ blocks: stream mode hits the µ-op
//!   cache (8 µ-ops, 2 windows per cycle); a miss switches to build mode
//!   (1-cycle penalty) where blocks are read from the L1I, decoded 6-wide
//!   and rebuilt into µ-op cache entries under the paper's termination
//!   rules; enough consecutive µ-op cache hits switch back.
//! * **Dispatch/backend**: µ-ops younger than an unresolved misprediction
//!   are squashed at dispatch; everything else enters the event-time
//!   backend. A mispredicted branch's completion flushes the frontend and
//!   redirects it to the corrected — i.e. the *alternate* — path, whose
//!   refill speed is precisely what UCP accelerates.

pub mod backend;

use crate::config::{PrefetcherKind, SimConfig, UopCacheModel};
use crate::error::{watchdog_from_env, DiagSnapshot, SimError};
use crate::stats::SimStats;
use crate::ucp::UcpEngine;
use backend::Backend;
use sim_isa::{Addr, BranchClass, DynInst, InstKind};
use std::collections::{BinaryHeap, HashMap, VecDeque};
use ucp_bpred::{
    push_target_history, ConfidenceEstimator, HistCheckpoint, HistoryState, Ittage, IttageParams,
    IttagePrediction, SclPrediction, TageConf, TageScL, UcpConf,
};
use ucp_frontend::{BoundedQueue, Btb, EntryEnd, Ras, RasCheckpoint, UopCache, UopEntrySpec};
use ucp_mem::{Hierarchy, HitLevel};
use ucp_prefetch::{DJolt, Entangling, FnlMma, InstPrefetcher, Mrc, NoPrefetch};
use ucp_telemetry::interval::{IntervalRecord, IntervalSampler, INSTRET_PATH};
use ucp_telemetry::{
    AccountingBreakdown, Category, Counter, CycleAccounting, CycleCause, Histogram,
    RegistrySnapshot, Telemetry,
};
use ucp_workloads::{Oracle, Program, WorkloadSpec};

/// Builds µ-op cache entries for `n` instructions starting at `start`,
/// applying the paper's termination rules: entries never cross the 32 B
/// window (callers pass window-bounded blocks), never exceed 8 µ-ops, and
/// split when a third branch would need a target slot.
pub(crate) fn build_entries(
    prog: &Program,
    start: Addr,
    n: u8,
    prefetched: bool,
    trigger: u64,
) -> Vec<UopEntrySpec> {
    let mut out = Vec::with_capacity(2);
    let mut entry_start = start;
    let mut count: u8 = 0;
    let mut branches: u8 = 0;
    for i in 0..n {
        let pc = start.offset_insts(u64::from(i));
        let is_branch = prog.inst_at(pc).is_some_and(|x| x.is_branch());
        if is_branch && branches == 2 {
            // Third branch: terminate and start a new entry in the same
            // region (another way of the same set).
            out.push(UopEntrySpec {
                start: entry_start,
                num_uops: count,
                end: EntryEnd::BranchSlots,
                prefetched,
                trigger,
            });
            entry_start = pc;
            count = 0;
            branches = 0;
        }
        count += 1;
        branches += u8::from(is_branch);
    }
    if count > 0 {
        out.push(UopEntrySpec {
            start: entry_start,
            num_uops: count,
            end: EntryEnd::WindowBoundary,
            prefetched,
            trigger,
        });
    }
    out
}

/// Frontend delivery mode (§II).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Mode {
    /// µ-op cache streaming (fast path).
    Stream,
    /// L1I + decoders (slow path), building µ-op cache entries.
    Build,
}

/// The kind of branch a prediction record tracks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum RecKind {
    Cond,
    Indirect { is_call: bool },
    Return,
}

/// One in-flight branch prediction.
struct PredRecord {
    pc: Addr,
    kind: RecKind,
    /// Correct-path position (`None` on the wrong path).
    pos: Option<u64>,
    actual_taken: bool,
    actual_next: Addr,
    mispredicted: bool,
    /// Indirect with no known target: fetch stalls until execution.
    no_target: bool,
    cp_bp: HistCheckpoint,
    cp_it: HistCheckpoint,
    cp_ras: RasCheckpoint,
    cp_alt: Option<(HistCheckpoint, HistCheckpoint)>,
    scl: Option<SclPrediction>,
    itt: Option<IttagePrediction>,
    alt_scl: Option<SclPrediction>,
    alt_itt: Option<IttagePrediction>,
    h2p_tage: bool,
    h2p_ucp: bool,
}

const MAX_BLOCK_RECS: usize = 4;

/// One FTQ fetch block (≤ 8 instructions inside one 32 B window).
#[derive(Clone, Copy, Debug)]
struct FetchBlock {
    start: Addr,
    n: u8,
    n_cond: u8,
    /// Correct-path position of the first instruction.
    pos: Option<u64>,
    /// Index of the first wrong-path instruction (`u8::MAX` = none).
    diverge_at: u8,
    /// L1I data-ready cycle once fetch was issued.
    fetch_ready: Option<u64>,
    /// (instruction offset, record id) pairs for branches in this block.
    recs: [(u8, u64); MAX_BLOCK_RECS],
    n_recs: u8,
}

impl FetchBlock {
    fn rec_at(&self, offset: u8) -> Option<u64> {
        self.recs[..self.n_recs as usize]
            .iter()
            .find(|&&(o, _)| o == offset)
            .map(|&(_, id)| id)
    }
}

/// One µ-op waiting to dispatch.
#[derive(Clone, Copy, Debug)]
struct UopQEntry {
    /// Correct-path position (`None` = wrong path, squashed at dispatch).
    pos: Option<u64>,
    ready: u64,
    rec: Option<u64>,
}

/// The simulator's own telemetry handles (`pipeline.*`, plus the
/// `frontend.*`/`prefetch.*` counters whose increment sites live in the
/// pipeline rather than in the component crates).
struct SimTelemetry {
    handle: Telemetry,
    flushes: Counter,
    resteers: Counter,
    mode_switches: Counter,
    l1i_prefetches: Counter,
    committed: Counter,
    ftq_occupancy: Histogram,
    accounting: CycleAccounting,
}

impl SimTelemetry {
    fn bound_to(handle: Telemetry) -> Self {
        SimTelemetry {
            flushes: handle.registry.counter("pipeline.flushes"),
            resteers: handle.registry.counter("pipeline.btb_resteers"),
            mode_switches: handle.registry.counter("frontend.uopc.mode_switches"),
            l1i_prefetches: handle.registry.counter("prefetch.l1i_issued"),
            committed: handle.registry.counter(INSTRET_PATH),
            ftq_occupancy: handle.registry.histogram("frontend.ftq.occupancy"),
            accounting: CycleAccounting::bound_to(&handle.registry),
            handle,
        }
    }
}

/// Everything one instrumented run produces: aggregate statistics, the
/// measurement-window telemetry delta, and the interval time series
/// (empty when sampling is disabled via `UCP_INTERVAL=0`).
#[derive(Clone, Debug, Default)]
pub struct RunOutput {
    /// Aggregate statistics over the measurement window.
    pub stats: SimStats,
    /// Registry delta over the measurement window.
    pub telemetry: RegistrySnapshot,
    /// Interval samples covering the measurement window, oldest first.
    pub intervals: Vec<IntervalRecord>,
}

/// The full-machine simulator for one workload.
pub struct Simulator<'p> {
    cfg: SimConfig,
    prog: &'p Program,
    oracle: Oracle<'p>,
    stream: VecDeque<DynInst>,
    stream_base: u64,
    now: u64,

    bp: TageScL,
    bp_hist: HistoryState,
    ittage: Ittage,
    it_hist: HistoryState,
    btb: Btb,
    ras: Ras,
    uop_cache: Option<UopCache>,
    uop_ideal: bool,
    hier: Hierarchy,
    prefetcher: Box<dyn InstPrefetcher>,
    prefetch_pq: BoundedQueue<Addr>,
    mrc: Option<Mrc>,
    mrc_filling: bool,
    mrc_stream_left: u32,
    ucp: Option<UcpEngine>,

    // Address generation.
    agen_pc: Addr,
    agen_pos: Option<u64>,
    agen_stall_until: u64,
    agen_dead: bool,
    agen_window_penalty: u32,
    pending_mispredict: Option<u64>,
    demand_btb_banks: u64,

    ftq: BoundedQueue<FetchBlock>,
    uopq: BoundedQueue<UopQEntry>,
    mode: Mode,
    fetch_stall_until: u64,
    consec_uop_hits: u32,
    head_delivered: u8,
    ideal_brcond_left: u32,
    demand_uop_banks: [bool; 2],

    records: HashMap<u64, PredRecord>,
    rec_order: VecDeque<u64>,
    next_rec_id: u64,

    backend: Backend,
    resolve_q: BinaryHeap<std::cmp::Reverse<(u64, u64)>>,

    committed: u64,
    last_commit_cycle: u64,
    last_retired_pc: Option<Addr>,
    measuring: bool,
    stats: SimStats,
    tele: SimTelemetry,
    sampler: Option<IntervalSampler>,

    // Resilience: hang watchdog window (None = disabled) and the
    // deterministic fault-injection hooks (`UCP_FAULT`).
    watchdog: Option<u64>,
    hang_injected: bool,
    skew_invariant: bool,

    // Per-cycle attribution scratch, reset at the top of `cycle()`.
    delivered_uop: bool,
    delivered_decode: bool,
    deliver_blocked: Option<CycleCause>,
    agen_stall_kind: CycleCause,
}

impl<'p> Simulator<'p> {
    /// Creates a simulator for `prog` under `cfg`, with the workload's
    /// behavioural `seed`. Telemetry comes from the environment
    /// (`UCP_TRACE`); use [`Simulator::with_telemetry`] to supply a handle
    /// whose registry and trace buffer you keep.
    pub fn new(prog: &'p Program, seed: u64, cfg: &SimConfig) -> Self {
        Simulator::with_telemetry(prog, seed, cfg, Telemetry::from_env())
    }

    /// Creates a simulator wired to `telemetry`: every layer (µ-op cache,
    /// UCP engine, memory hierarchy, L1I prefetcher, the pipeline itself)
    /// registers its counters in `telemetry.registry` and emits trace
    /// events through `telemetry.tracer`.
    pub fn with_telemetry(
        prog: &'p Program,
        seed: u64,
        cfg: &SimConfig,
        telemetry: Telemetry,
    ) -> Self {
        let bp = TageScL::new(cfg.bpred);
        let bp_hist = bp.new_history();
        let ittage = Ittage::new(IttageParams::main_64k());
        let it_hist = ittage.new_history();
        let (mut uop_cache, uop_ideal) = match &cfg.uop_cache {
            UopCacheModel::None => (None, false),
            UopCacheModel::Ideal => (None, true),
            UopCacheModel::Real(c) => (Some(UopCache::new(c.clone())), false),
        };
        if let Some(uc) = uop_cache.as_mut() {
            uc.attach_telemetry(&telemetry);
        }
        let mut prefetcher: Box<dyn InstPrefetcher> = match cfg.prefetcher {
            PrefetcherKind::None => Box::new(NoPrefetch),
            PrefetcherKind::FnlMma => Box::new(FnlMma::new(false)),
            PrefetcherKind::FnlMmaPlusPlus => Box::new(FnlMma::new(true)),
            PrefetcherKind::DJolt => Box::new(DJolt::new()),
            PrefetcherKind::Ep => Box::new(Entangling::new(false)),
            PrefetcherKind::EpPlusPlus => Box::new(Entangling::new(true)),
        };
        prefetcher.attach_telemetry(&telemetry);
        let mut hier = Hierarchy::new(&cfg.mem);
        hier.attach_telemetry(&telemetry);
        let ucp = cfg.ucp.enabled.then(|| {
            let mut u = UcpEngine::new(cfg.ucp.clone());
            u.attach_telemetry(&telemetry);
            u
        });
        let entry = prog.entry();
        Simulator {
            oracle: Oracle::new(prog, seed),
            stream: VecDeque::with_capacity(4096),
            stream_base: 0,
            now: 0,
            bp,
            bp_hist,
            ittage,
            it_hist,
            btb: Btb::new(cfg.btb.clone()),
            ras: Ras::new(64),
            uop_cache,
            uop_ideal,
            hier,
            prefetcher,
            prefetch_pq: BoundedQueue::new(32),
            mrc: cfg.mrc_entries.map(Mrc::new),
            mrc_filling: false,
            mrc_stream_left: 0,
            ucp,
            agen_pc: entry,
            agen_pos: Some(0),
            agen_stall_until: 0,
            agen_dead: false,
            agen_window_penalty: 0,
            pending_mispredict: None,
            demand_btb_banks: 0,
            ftq: BoundedQueue::new(cfg.frontend.ftq_entries),
            uopq: BoundedQueue::new(cfg.frontend.uop_queue_entries),
            mode: Mode::Build,
            fetch_stall_until: 0,
            consec_uop_hits: 0,
            head_delivered: 0,
            ideal_brcond_left: 0,
            demand_uop_banks: [false; 2],
            records: HashMap::with_capacity(1024),
            rec_order: VecDeque::with_capacity(1024),
            next_rec_id: 1,
            backend: Backend::new(cfg.backend.clone()),
            resolve_q: BinaryHeap::new(),
            committed: 0,
            last_commit_cycle: 0,
            last_retired_pc: None,
            measuring: false,
            stats: SimStats::default(),
            tele: SimTelemetry::bound_to(telemetry),
            // Constructors cannot return Result without breaking every
            // embedding; malformed env knobs are hard errors here. Suite
            // runners validate the environment first and surface
            // `SimError::BadConfig` before any Simulator is built.
            sampler: IntervalSampler::from_env().unwrap_or_else(|e| panic!("{e}")),
            watchdog: watchdog_from_env().unwrap_or_else(|e| panic!("{e}")),
            hang_injected: false,
            skew_invariant: false,
            delivered_uop: false,
            delivered_decode: false,
            deliver_blocked: None,
            agen_stall_kind: CycleCause::Drained,
            prog,
            cfg: cfg.clone(),
        }
    }

    /// Replaces the interval sampler (constructed from `UCP_INTERVAL` by
    /// default). `None` disables sampling; tools like `trace_dump` pass
    /// an explicit sampler to force it on.
    pub fn set_interval_sampling(&mut self, sampler: Option<IntervalSampler>) {
        self.sampler = sampler;
    }

    /// Replaces the hang-watchdog window (constructed from `UCP_WATCHDOG`
    /// by default). `None` disables hang detection — a livelocked
    /// pipeline then spins until killed externally.
    pub fn set_watchdog(&mut self, cycles: Option<u64>) {
        self.watchdog = cycles;
    }

    /// Fault-injection hook (`UCP_FAULT=hang:...`): stops all retirement,
    /// so the hang watchdog must terminate the run with
    /// [`SimError::Hang`].
    pub fn inject_hang(&mut self) {
        self.hang_injected = true;
    }

    /// Fault-injection hook (`UCP_FAULT=invariant:...`): skews the
    /// end-of-run cycle-accounting total by one cycle, forcing
    /// [`SimError::InvariantViolation`].
    pub fn inject_invariant_skew(&mut self) {
        self.skew_invariant = true;
    }

    /// Captures the machine state for failure diagnostics.
    fn diag_snapshot(&self) -> DiagSnapshot {
        DiagSnapshot {
            cycle: self.now,
            committed: self.committed,
            last_commit_cycle: self.last_commit_cycle,
            last_retired_pc: self.last_retired_pc.map(Addr::raw),
            agen_pc: self.agen_pc.raw(),
            agen_dead: self.agen_dead,
            pending_mispredict: self.pending_mispredict.is_some(),
            ftq_depth: self.ftq.len(),
            uopq_depth: self.uopq.len(),
            rob_occupancy: self.backend.occupancy(),
            accounting: AccountingBreakdown::from_snapshot(&self.tele.handle.registry.snapshot()),
        }
    }

    /// The hang watchdog: no retirement for a full window means the
    /// pipeline is livelocked (always a simulator bug, never a workload
    /// property) — terminate with a diagnostic snapshot instead of
    /// spinning forever.
    fn hang_check(&self) -> Result<(), SimError> {
        match self.watchdog {
            Some(window) if self.now - self.last_commit_cycle >= window => Err(SimError::Hang {
                workload: String::new(),
                window,
                snapshot: Box::new(self.diag_snapshot()),
            }),
            _ => Ok(()),
        }
    }

    /// The telemetry handle this simulator reports into.
    pub fn telemetry(&self) -> &Telemetry {
        &self.tele.handle
    }

    /// Convenience: build the workload's program and run it, panicking on
    /// any [`SimError`] (tests and tools that prefer a crash to a
    /// degraded result).
    pub fn run_spec(spec: &WorkloadSpec, cfg: &SimConfig, warmup: u64, measure: u64) -> SimStats {
        Simulator::run_spec_full(spec, cfg, warmup, measure).0
    }

    /// Like [`Simulator::run_spec`], but also returns the telemetry
    /// registry's measurement-window delta (what suite runners persist).
    /// Panics on any [`SimError`].
    pub fn run_spec_full(
        spec: &WorkloadSpec,
        cfg: &SimConfig,
        warmup: u64,
        measure: u64,
    ) -> (SimStats, RegistrySnapshot) {
        let out = Simulator::run_spec_output(spec, cfg, warmup, measure)
            .unwrap_or_else(|e| panic!("{e}"));
        (out.stats, out.telemetry)
    }

    /// Like [`Simulator::run_spec_full`], but returns the full
    /// [`RunOutput`] including the interval time series, and reports
    /// failures as [`SimError`] instead of panicking. This is the entry
    /// point the fault-isolated suite runner uses.
    pub fn run_spec_output(
        spec: &WorkloadSpec,
        cfg: &SimConfig,
        warmup: u64,
        measure: u64,
    ) -> Result<RunOutput, SimError> {
        let prog = spec.build();
        let mut sim = Simulator::new(&prog, spec.seed, cfg);
        sim.run_full(warmup, measure)
    }

    /// Runs `warmup` instructions with statistics off, then `measure`
    /// instructions with statistics on, and returns the collected stats.
    ///
    /// # Panics
    ///
    /// Panics on any [`SimError`] — hang-watchdog expiry, accounting
    /// invariant violation. Fallible callers use
    /// [`Simulator::run_full`].
    pub fn run(&mut self, warmup: u64, measure: u64) -> SimStats {
        self.run_instrumented(warmup, measure).0
    }

    /// [`Simulator::run`] plus the telemetry registry's delta over the
    /// measurement window. Registry counters tick through warm-up too (they
    /// are not gated on `measuring`); the window is carved out by
    /// snapshotting at the measurement boundary and diffing at the end —
    /// the same pattern as the L1I and UCP statistics below. Panics on
    /// any [`SimError`].
    pub fn run_instrumented(&mut self, warmup: u64, measure: u64) -> (SimStats, RegistrySnapshot) {
        let out = self
            .run_full(warmup, measure)
            .unwrap_or_else(|e| panic!("{e}"));
        (out.stats, out.telemetry)
    }

    /// [`Simulator::run_instrumented`] plus the interval time series, and
    /// the point where failures become structured: the hang watchdog is
    /// checked every cycle, and the end-of-run cycle-accounting invariant
    /// (per-category cycles tile the measured total) is reported as
    /// [`SimError::InvariantViolation`] instead of aborting the process —
    /// one bad workload must not kill a 30-workload suite. Under
    /// `cfg(test)` the invariant stays a hard assert so unit tests fail
    /// loudly at the exact site.
    pub fn run_full(&mut self, warmup: u64, measure: u64) -> Result<RunOutput, SimError> {
        while self.committed < warmup {
            self.hang_check()?;
            self.cycle();
        }
        // Open the measurement window (warm-up may overshoot by up to one
        // commit width; measure from the actual boundary).
        self.measuring = true;
        let start_cycle = self.now;
        let start_committed = self.committed;
        let l1i0 = *self.hier.l1i_stats();
        let ucp0 = self.ucp.as_ref().map(|u| u.stats.clone());
        let reg0 = self.tele.handle.registry.snapshot();
        if let Some(s) = self.sampler.as_mut() {
            s.begin(self.now, &self.tele.handle.registry);
        }
        let end = start_committed + measure;
        while self.committed < end {
            self.hang_check()?;
            self.cycle();
        }
        self.stats.cycles = self.now - start_cycle;
        self.stats.instructions = self.committed - start_committed;
        let l1i = *self.hier.l1i_stats();
        self.stats.l1i_accesses = (l1i.hits + l1i.misses) - (l1i0.hits + l1i0.misses);
        self.stats.l1i_misses = l1i.misses - l1i0.misses;
        if let (Some(u), Some(u0)) = (self.ucp.as_ref(), ucp0.as_ref()) {
            self.stats.ucp = u.stats.delta_since(u0);
        }
        let telemetry = self.tele.handle.registry.snapshot().delta_since(&reg0);
        let intervals = match self.sampler.take() {
            Some(mut s) => {
                s.finish(self.now, &self.tele.handle.registry);
                s.into_records()
            }
            None => Vec::new(),
        };
        let stats = std::mem::take(&mut self.stats);
        // The charger runs exactly once per cycle, so over the window the
        // categories must tile the measured cycles exactly. A violation
        // here is always an attribution bug, never a workload property.
        // Unit tests keep the hard assert (fail loudly at the site);
        // everything else gets a structured error the suite runner can
        // isolate to the one affected workload.
        let mut breakdown = AccountingBreakdown::from_snapshot(&telemetry);
        if self.skew_invariant {
            // Fault injection: desynchronise the independently-counted
            // total from the per-category sum.
            breakdown.total += 1;
        }
        let violation = match breakdown.verify() {
            Err(e) => Some(e),
            Ok(()) if breakdown.total != stats.cycles => Some(format!(
                "cycle accounting charged {} cycles but the window ran {}",
                breakdown.total, stats.cycles,
            )),
            Ok(()) => None,
        };
        if let Some(detail) = violation {
            #[cfg(test)]
            panic!("cycle accounting: {detail}");
            #[cfg(not(test))]
            return Err(SimError::InvariantViolation {
                workload: String::new(),
                detail,
                snapshot: Box::new(self.diag_snapshot()),
            });
        }
        Ok(RunOutput {
            stats,
            telemetry,
            intervals,
        })
    }

    /// The materialized correct-path instruction at absolute position `pos`.
    fn oracle_at(&mut self, pos: u64) -> DynInst {
        while self.stream_base + self.stream.len() as u64 <= pos {
            self.stream.push_back(self.oracle.next_inst());
        }
        self.stream[(pos - self.stream_base) as usize]
    }

    /// One machine cycle.
    fn cycle(&mut self) {
        if self.tele.handle.tracer.is_active() {
            self.tele.handle.tracer.set_cycle(self.now);
        }
        self.demand_uop_banks = [false; 2];
        self.delivered_uop = false;
        self.delivered_decode = false;
        self.deliver_blocked = None;
        self.process_resolutions();
        self.commit_stage();
        self.dispatch_stage();
        self.fetch_schedule_stage();
        self.deliver_stage();
        self.ucp_stage();
        self.agen_stage();
        self.l1i_prefetch_stage();
        self.tele.accounting.charge(self.classify_cycle());
        self.tele.ftq_occupancy.observe(self.ftq.len() as u64);
        self.now += 1;
        if let Some(s) = self.sampler.as_mut() {
            s.tick(self.now, &self.tele.handle.registry);
        }
        // Livelock detection lives in the run loops (`hang_check`), which
        // report a structured `SimError::Hang` instead of asserting here.
    }

    /// Attributes the cycle that just executed to one [`CycleCause`],
    /// applying the precedence order documented in
    /// `ucp_telemetry::accounting`: delivery beats every stall, then the
    /// most specific recorded blocker wins.
    fn classify_cycle(&self) -> CycleCause {
        if self.delivered_uop {
            return CycleCause::DeliverUop;
        }
        if self.delivered_decode {
            return CycleCause::DeliverDecode;
        }
        if self.now < self.fetch_stall_until {
            // Covers both an in-progress mode-switch penalty window and
            // the cycle the switch itself was taken.
            return CycleCause::ModeSwitch;
        }
        if let Some(cause) = self.deliver_blocked {
            return cause;
        }
        if self.ftq.is_empty() {
            if self.agen_dead {
                // No-target indirect/return: the frontend drains until
                // the branch executes and redirects.
                return CycleCause::Drained;
            }
            if self.now < self.agen_stall_until {
                // Either a BTB-miss re-steer bubble or a flush-redirect
                // penalty; `agen_stall_kind` remembers which stalled us.
                return self.agen_stall_kind;
            }
            return CycleCause::FtqEmpty;
        }
        CycleCause::Drained
    }

    // ------------------------------------------------------------------
    // Resolution & flush
    // ------------------------------------------------------------------

    fn process_resolutions(&mut self) {
        // Lazily drop ids of records that resolved without a flush.
        while let Some(&id) = self.rec_order.front() {
            if self.records.contains_key(&id) {
                break;
            }
            self.rec_order.pop_front();
        }
        while let Some(&std::cmp::Reverse((t, id))) = self.resolve_q.peek() {
            if t > self.now {
                break;
            }
            self.resolve_q.pop();
            self.resolve(id);
        }
    }

    fn resolve(&mut self, id: u64) {
        let Some(rec) = self.records.remove(&id) else {
            return; // already freed by an older flush
        };
        debug_assert!(rec.pos.is_some(), "wrong-path records never resolve");
        // Train predictors with the architectural outcome.
        match rec.kind {
            RecKind::Cond => {
                if let Some(scl) = &rec.scl {
                    self.bp.update(rec.pc, scl, rec.actual_taken);
                    if self.measuring {
                        self.stats.cond_branches += 1;
                        self.stats.cond_mispredicts += u64::from(rec.mispredicted);
                        self.stats.record_provider(
                            scl.provider,
                            scl.confidence_value(),
                            rec.mispredicted,
                        );
                        self.stats.h2p_tage.marked += u64::from(rec.h2p_tage);
                        self.stats.h2p_ucp.marked += u64::from(rec.h2p_ucp);
                        if rec.mispredicted {
                            self.stats.h2p_tage.mispredicted += 1;
                            self.stats.h2p_ucp.mispredicted += 1;
                            self.stats.h2p_tage.marked_mispredicted += u64::from(rec.h2p_tage);
                            self.stats.h2p_ucp.marked_mispredicted += u64::from(rec.h2p_ucp);
                        }
                    }
                }
                if let (Some(ucp), Some(alt)) = (self.ucp.as_mut(), rec.alt_scl.as_ref()) {
                    ucp.train_cond(rec.pc, alt, rec.actual_taken);
                }
                if rec.actual_taken {
                    // Keep the BTB's taken target fresh (and allocate
                    // never-taken-before branches).
                    self.btb
                        .insert(rec.pc, rec.actual_next, BranchClass::CondDirect);
                }
            }
            RecKind::Indirect { is_call } => {
                if let Some(itt) = &rec.itt {
                    self.ittage.update(rec.pc, itt, rec.actual_next);
                }
                if let (Some(ucp), Some(alt)) = (self.ucp.as_mut(), rec.alt_itt.as_ref()) {
                    ucp.train_indirect(rec.pc, alt, rec.actual_next);
                }
                self.btb.insert(
                    rec.pc,
                    rec.actual_next,
                    if is_call {
                        BranchClass::IndirectCall
                    } else {
                        BranchClass::IndirectJump
                    },
                );
                if self.measuring && rec.mispredicted && !rec.no_target {
                    self.stats.indirect_mispredicts += 1;
                }
            }
            RecKind::Return => {
                if self.measuring && rec.mispredicted {
                    self.stats.indirect_mispredicts += 1;
                }
            }
        }
        if rec.mispredicted {
            self.do_flush(rec, id);
        }
    }

    fn do_flush(&mut self, rec: PredRecord, rec_id: u64) {
        let pos = rec.pos.expect("flush on a correct-path record");
        self.tele.flushes.inc();
        self.tele
            .handle
            .tracer
            .emit(Category::Pipeline, "flush", || {
                format!(
                    "pc={:#x} kind={:?} next={:#x}",
                    rec.pc.raw(),
                    rec.kind,
                    rec.actual_next.raw()
                )
            });
        // Restore speculative state to just before this branch, then apply
        // the architectural outcome.
        self.bp_hist.restore(&rec.cp_bp);
        self.it_hist.restore(&rec.cp_it);
        self.ras.restore(&rec.cp_ras);
        let transferred = rec.actual_next != rec.pc.next_inst() || rec.kind != RecKind::Cond;
        if rec.kind == RecKind::Cond {
            self.bp_hist.push(rec.actual_taken);
        }
        if transferred {
            push_target_history(&mut self.it_hist, rec.actual_next);
        }
        match rec.kind {
            RecKind::Indirect { is_call: true } => self.ras.push(rec.pc.next_inst()),
            RecKind::Return => {
                let _ = self.ras.pop();
            }
            _ => {}
        }
        if let Some(ucp) = self.ucp.as_mut() {
            let cps = rec.cp_alt.expect("UCP checkpoints present when enabled");
            ucp.on_flush(
                cps,
                (rec.kind == RecKind::Cond).then_some(rec.actual_taken),
                transferred.then_some(rec.actual_next),
            );
        }
        // Free every younger record (creation order is id order, so pop
        // from the back until we reach the flushed record itself).
        while let Some(&id) = self.rec_order.back() {
            self.rec_order.pop_back();
            self.records.remove(&id);
            if id == rec_id {
                break;
            }
        }
        self.ftq.clear();
        self.uopq.clear();
        self.head_delivered = 0;
        self.agen_pc = rec.actual_next;
        self.agen_pos = Some(pos + 1);
        self.agen_dead = false;
        self.pending_mispredict = None;
        self.agen_stall_until = self.now + self.cfg.frontend.redirect_penalty;
        self.agen_stall_kind = CycleCause::Drained;
        self.prefetcher.on_redirect();
        if rec.kind == RecKind::Cond {
            if let Some(n) = self.cfg.ideal_brcond {
                self.ideal_brcond_left = n;
            }
            if let Some(mrc) = self.mrc.as_mut() {
                if let Some(uops) = mrc.lookup(rec.actual_next) {
                    self.mrc_stream_left = uops;
                    if self.measuring {
                        self.stats.mrc_streamed_uops += u64::from(uops);
                    }
                }
                mrc.allocate(rec.actual_next);
                self.mrc_filling = true;
            }
        }
    }

    // ------------------------------------------------------------------
    // Commit & dispatch
    // ------------------------------------------------------------------

    fn commit_stage(&mut self) {
        if self.hang_injected {
            // Fault injection: retirement is wedged; the watchdog must
            // notice and raise `SimError::Hang`.
            return;
        }
        let retired = self.backend.commit(self.now);
        for e in &retired {
            debug_assert_eq!(e.pos, self.stream_base, "in-order commit");
            self.last_retired_pc = Some(self.stream[0].pc);
            self.stream.pop_front();
            self.stream_base += 1;
            self.committed += 1;
            if self.mrc_filling {
                if let Some(mrc) = self.mrc.as_mut() {
                    mrc.fill_uop();
                }
            }
        }
        if !retired.is_empty() {
            self.tele.committed.add(retired.len() as u64);
            self.last_commit_cycle = self.now;
        }
    }

    fn dispatch_stage(&mut self) {
        let mut budget = self.cfg.frontend.dispatch_width;
        while budget > 0 {
            let Some(e) = self.uopq.front().copied() else {
                break;
            };
            if e.ready > self.now {
                break;
            }
            let Some(pos) = e.pos else {
                // Wrong-path µ-op: squashed at dispatch.
                self.uopq.pop();
                budget -= 1;
                continue;
            };
            if !self.backend.has_space() {
                break;
            }
            let d = self.oracle_at(pos);
            let mem_ready = match d.inst.kind {
                InstKind::Load => match self.hier.access_data(d.mem_addr, self.now + 1, false) {
                    Ok(a) => Some(a.ready),
                    Err(_) => break, // L1D MSHR full: retry next cycle
                },
                InstKind::Store => {
                    // Stores update cache state in the background.
                    let _ = self.hier.access_data(d.mem_addr, self.now + 1, true);
                    None
                }
                _ => None,
            };
            let complete = self.backend.dispatch(self.now, &d, pos, mem_ready, e.rec);
            if let Some(rec) = e.rec {
                self.resolve_q.push(std::cmp::Reverse((complete, rec)));
            }
            self.uopq.pop();
            budget -= 1;
        }
    }

    // ------------------------------------------------------------------
    // Fetch scheduling (FDP run-ahead) and delivery
    // ------------------------------------------------------------------

    /// Issues L1I fetches for FTQ blocks ahead of delivery — this is what
    /// makes the frontend *decoupled*: L1I misses (including wrong-path
    /// ones) overlap, and the standalone prefetcher observes the stream.
    #[allow(clippy::explicit_counter_loop)] // `scanned` caps work, `i` indexes
    fn fetch_schedule_stage(&mut self) {
        let mut issued = 0;
        let mut scanned = 0;
        for i in 0..self.ftq.len() {
            if issued >= self.cfg.frontend.l1i_fetches_per_cycle || scanned >= 8 {
                break;
            }
            let Some(blk) = self.ftq.get(i).copied() else {
                break;
            };
            scanned += 1;
            if blk.fetch_ready.is_some() {
                continue;
            }
            // Blocks already resident in the µ-op cache skip the L1I.
            if !self.uop_ideal {
                if let Some(uc) = &self.uop_cache {
                    if uc.probe(blk.start) {
                        self.demand_uop_banks[uc.bank_of(blk.start)] = true;
                        if let Some(b) = self.ftq.get_mut(i) {
                            b.fetch_ready = Some(self.now);
                        }
                        continue;
                    }
                }
            } else {
                if let Some(b) = self.ftq.get_mut(i) {
                    b.fetch_ready = Some(self.now);
                }
                continue;
            }
            match self.hier.access_inst(blk.start, self.now, false) {
                Ok(acc) => {
                    self.prefetcher
                        .on_access(blk.start.line(), acc.level == HitLevel::L1);
                    if let Some(b) = self.ftq.get_mut(i) {
                        b.fetch_ready = Some(acc.ready);
                    }
                    issued += 1;
                }
                Err(_) => break, // MSHR full
            }
        }
    }

    /// `true` if the head block should be treated as a µ-op cache hit.
    fn head_block_hits(&mut self, blk: &FetchBlock) -> (bool, bool, u64) {
        // Returns (hit, counts_as_forced, trigger_of_prefetched_entry).
        if self.uop_ideal {
            return (true, true, 0);
        }
        if self.ideal_brcond_left > 0 || self.mrc_stream_left > 0 {
            return (true, true, 0);
        }
        if let Some(uc) = self.uop_cache.as_mut() {
            self.demand_uop_banks[uc.bank_of(blk.start)] = true;
            if self.measuring {
                self.stats.uop_lookups += 1;
            }
            if let Some(hit) = uc.lookup(blk.start) {
                if hit.num_uops >= blk.n {
                    if self.measuring {
                        self.stats.uop_hits += 1;
                    }
                    let trig = if hit.first_prefetch_use {
                        hit.trigger
                    } else {
                        0
                    };
                    return (true, false, trig);
                }
            }
            if self.cfg.l1i_hits_ideal && self.hier.probe_l1i(blk.start) {
                return (true, true, 0);
            }
            (false, false, 0)
        } else {
            (false, false, 0)
        }
    }

    fn deliver_block_uops(&mut self, blk: FetchBlock, ready: u64, from_cache: bool) -> bool {
        // Room check first: a block is delivered atomically.
        if self.uopq.free() < blk.n as usize {
            self.deliver_blocked = Some(CycleCause::BackendFull);
            return false;
        }
        for i in 0..blk.n {
            let pos = if i < blk.diverge_at {
                blk.pos.map(|p| p + u64::from(i))
            } else {
                None
            };
            let rec = blk.rec_at(i);
            self.uopq
                .push(UopQEntry { pos, ready, rec })
                .expect("room checked above");
        }
        if from_cache {
            self.delivered_uop = true;
        } else {
            self.delivered_decode = true;
        }
        if self.measuring {
            if from_cache {
                self.stats.uops_from_uop_cache += u64::from(blk.n);
            } else {
                self.stats.uops_from_decode += u64::from(blk.n);
            }
        }
        true
    }

    fn switch_mode(&mut self, to: Mode) {
        self.mode = to;
        self.consec_uop_hits = 0;
        self.fetch_stall_until = self.now + 1 + self.cfg.frontend.mode_switch_penalty;
        if self.measuring {
            self.stats.mode_switches += 1;
        }
        self.tele.mode_switches.inc();
        self.tele
            .handle
            .tracer
            .emit(Category::Frontend, "mode_switch", || format!("to={to:?}"));
    }

    fn deliver_stage(&mut self) {
        if self.now < self.fetch_stall_until {
            return;
        }
        let mut cache_uops = self.cfg.frontend.uops_from_cache_per_cycle;
        let mut decode_uops = self.cfg.frontend.decode_width;
        let mut windows = self.cfg.frontend.windows_per_cycle;
        let has_uop_path = self.uop_ideal || self.uop_cache.is_some();
        #[allow(clippy::while_let_loop)] // body also breaks mid-iteration
        loop {
            let Some(blk) = self.ftq.front().copied() else {
                break;
            };
            match self.mode {
                Mode::Stream => {
                    if windows == 0 || cache_uops < u32::from(blk.n) {
                        break;
                    }
                    let (hit, forced, trig) = self.head_block_hits(&blk);
                    if hit {
                        if !self.deliver_block_uops(
                            blk,
                            self.now + self.cfg.frontend.uop_path_delay,
                            true,
                        ) {
                            break;
                        }
                        if trig != 0 {
                            if let Some(ucp) = self.ucp.as_mut() {
                                ucp.record_entry_use(trig);
                            }
                        }
                        if forced {
                            self.consume_forced(&blk);
                        }
                        self.ftq.pop();
                        windows -= 1;
                        cache_uops -= u32::from(blk.n);
                        continue;
                    }
                    self.switch_mode(Mode::Build);
                    break;
                }
                Mode::Build => {
                    // Parallel µ-op cache probe at block starts.
                    if has_uop_path
                        && self.head_delivered == 0
                        && windows > 0
                        && cache_uops >= u32::from(blk.n)
                    {
                        let (hit, forced, trig) = self.head_block_hits(&blk);
                        if hit {
                            if !self.deliver_block_uops(
                                blk,
                                self.now + self.cfg.frontend.uop_path_delay,
                                true,
                            ) {
                                break;
                            }
                            if trig != 0 {
                                if let Some(ucp) = self.ucp.as_mut() {
                                    ucp.record_entry_use(trig);
                                }
                            }
                            if forced {
                                self.consume_forced(&blk);
                            }
                            self.ftq.pop();
                            windows -= 1;
                            cache_uops -= u32::from(blk.n);
                            self.consec_uop_hits += 1;
                            if self.consec_uop_hits >= self.cfg.frontend.stream_switch_hits {
                                self.switch_mode(Mode::Stream);
                                break;
                            }
                            continue;
                        }
                    }
                    // Decode (slow) path.
                    self.consec_uop_hits = 0;
                    let ready = match blk.fetch_ready {
                        Some(r) => r,
                        None => match self.hier.access_inst(blk.start, self.now, false) {
                            Ok(acc) => {
                                self.prefetcher
                                    .on_access(blk.start.line(), acc.level == HitLevel::L1);
                                if let Some(b) = self.ftq.front_mut() {
                                    b.fetch_ready = Some(acc.ready);
                                }
                                acc.ready
                            }
                            Err(_) => {
                                // L1I MSHR full: the instruction fetch
                                // itself cannot even be issued.
                                self.deliver_blocked = Some(CycleCause::L1iMiss);
                                break;
                            }
                        },
                    };
                    if ready > self.now {
                        self.deliver_blocked = Some(CycleCause::L1iMiss);
                        break;
                    }
                    let remaining = blk.n - self.head_delivered;
                    let take = (remaining as u32).min(decode_uops) as u8;
                    if take == 0 {
                        break;
                    }
                    // Deliver `take` µ-ops of the head block.
                    if self.uopq.free() < take as usize {
                        self.deliver_blocked = Some(CycleCause::BackendFull);
                        break;
                    }
                    let base_ready = self.now + self.cfg.frontend.decode_path_delay;
                    for k in 0..take {
                        let i = self.head_delivered + k;
                        let pos = if i < blk.diverge_at {
                            blk.pos.map(|p| p + u64::from(i))
                        } else {
                            None
                        };
                        let rec = blk.rec_at(i);
                        self.uopq
                            .push(UopQEntry {
                                pos,
                                ready: base_ready,
                                rec,
                            })
                            .expect("room checked");
                    }
                    self.delivered_decode = true;
                    if self.measuring {
                        self.stats.uops_from_decode += u64::from(take);
                    }
                    decode_uops -= u32::from(take);
                    self.head_delivered += take;
                    if self.head_delivered == blk.n {
                        // Block fully decoded: build µ-op cache entries.
                        if let Some(uc) = self.uop_cache.as_mut() {
                            for spec in build_entries(self.prog, blk.start, blk.n, false, 0) {
                                uc.insert(spec);
                            }
                        }
                        self.consume_forced(&blk);
                        self.ftq.pop();
                        self.head_delivered = 0;
                    }
                    if decode_uops == 0 {
                        break;
                    }
                }
            }
        }
    }

    /// Decrements the IdealBRCond / MRC forced-hit allowances by the
    /// contents of a delivered block.
    fn consume_forced(&mut self, blk: &FetchBlock) {
        if self.ideal_brcond_left > 0 {
            self.ideal_brcond_left = self.ideal_brcond_left.saturating_sub(u32::from(blk.n_cond));
        }
        if self.mrc_stream_left > 0 {
            self.mrc_stream_left = self.mrc_stream_left.saturating_sub(u32::from(blk.n));
        }
    }

    // ------------------------------------------------------------------
    // UCP engine
    // ------------------------------------------------------------------

    fn ucp_stage(&mut self) {
        let Some(ucp) = self.ucp.as_mut() else {
            return;
        };
        let out = ucp.cycle(
            self.now,
            self.prog,
            &self.btb,
            self.uop_cache.as_mut(),
            &mut self.hier,
            self.demand_uop_banks,
            self.demand_btb_banks,
            self.mode == Mode::Stream,
        );
        if out.demand_window_steal {
            self.agen_window_penalty = 1;
        }
    }

    // ------------------------------------------------------------------
    // Address generation (the BPU of Fig. 1)
    // ------------------------------------------------------------------

    fn agen_stage(&mut self) {
        self.demand_btb_banks = 0;
        if self.now < self.agen_stall_until || self.agen_dead {
            return;
        }
        let mut windows = self.cfg.frontend.windows_per_cycle;
        if self.agen_window_penalty > 0 {
            windows = windows.saturating_sub(self.agen_window_penalty);
            self.agen_window_penalty = 0;
        }
        for _ in 0..windows {
            if self.ftq.is_full() || self.agen_dead || self.now < self.agen_stall_until {
                break;
            }
            if let Some(blk) = self.gen_block() {
                let _ = self.ftq.push(blk);
            } else {
                break;
            }
        }
    }

    fn new_record(&mut self, rec: PredRecord) -> u64 {
        let id = self.next_rec_id;
        self.next_rec_id += 1;
        self.records.insert(id, rec);
        self.rec_order.push_back(id);
        id
    }

    /// Generates one fetch block along the current (predicted) path.
    fn gen_block(&mut self) -> Option<FetchBlock> {
        let start = self.agen_pc;
        let window_end = Addr::new(start.uop_window().raw() + 32);
        let pos0 = self.agen_pos;
        let mut pc = start;
        let mut cur_pos = pos0;
        let mut n: u8 = 0;
        let mut n_cond: u8 = 0;
        let mut diverge_at = u8::MAX;
        // `next` is definitely assigned on every loop exit path.
        let next;
        let mut recs = [(0u8, 0u64); MAX_BLOCK_RECS];
        let mut n_recs: u8 = 0;

        loop {
            if pc == window_end || n == 8 {
                next = pc;
                break;
            }
            let Some(inst) = self.prog.inst_at(pc) else {
                // Wrong path walked off the code image: nothing to fetch.
                self.agen_dead = true;
                next = pc;
                break;
            };
            let inst = *inst;
            let Some(class) = inst.kind.branch_class() else {
                n += 1;
                pc = pc.next_inst();
                if let Some(p) = cur_pos {
                    cur_pos = Some(p + 1);
                }
                continue;
            };
            // Branch: make sure we can attach a record if one is needed.
            let needs_record = !matches!(class, BranchClass::UncondDirect | BranchClass::Call);
            if needs_record && n_recs as usize == MAX_BLOCK_RECS {
                next = pc;
                break;
            }
            let offset = n;
            n += 1;
            n_cond += u8::from(class == BranchClass::CondDirect);
            self.demand_btb_banks |= 1u64 << (self.btb.bank_of(pc) as u64 % 64);
            let btb_entry = self.btb.lookup(pc);

            // BTB-miss re-steer modelling (discovered at predecode): charge
            // the re-steer bubble for taken control flow.
            let btb_missed = btb_entry.is_none();

            // Checkpoints before any speculative update for this branch.
            let cp_bp = self.bp_hist.checkpoint();
            let cp_it = self.it_hist.checkpoint();
            let cp_ras = self.ras.checkpoint();
            let cp_alt = self.ucp.as_ref().map(|u| u.checkpoints());

            let (
                predicted_taken,
                predicted_next,
                kind,
                scl,
                itt,
                alt_scl,
                alt_itt,
                h2p_t,
                h2p_u,
                no_target,
            );
            match class {
                BranchClass::CondDirect => {
                    let target = inst.kind.direct_target().expect("cond direct");
                    let p = self.bp.predict(&self.bp_hist, pc);
                    let h2p_tage_f = TageConf.is_h2p(&p);
                    let h2p_ucp_f = UcpConf.is_h2p(&p);
                    // UCP trigger happens before the mirror push (the
                    // alternate GHR starts from the pre-branch state).
                    let mut a_scl = None;
                    if let Some(ucp) = self.ucp.as_mut() {
                        // Trigger only on the demand path the paper's
                        // model fetches: ChampSim's frontend stops at an
                        // unresolved misprediction, so wrong-path H2P
                        // branches never preempt a live walk there.
                        if cur_pos.is_some() && ucp.is_h2p(&p) {
                            let alt_target = if p.taken {
                                pc.next_inst()
                            } else {
                                btb_entry.map(|e| e.target).unwrap_or(target)
                            };
                            ucp.trigger(alt_target, p.taken, &self.ras);
                        }
                        a_scl = Some(ucp.on_cond_predicted(pc, p.taken));
                    }
                    self.bp_hist.push(p.taken);
                    predicted_taken = p.taken;
                    predicted_next = if p.taken { target } else { pc.next_inst() };
                    if p.taken {
                        push_target_history(&mut self.it_hist, target);
                        if let Some(ucp) = self.ucp.as_mut() {
                            let _ = ucp.on_taken_target(pc, target, false);
                        }
                        if btb_missed {
                            self.charge_resteer();
                            self.btb.insert(pc, target, class);
                        }
                    }
                    kind = RecKind::Cond;
                    scl = Some(p);
                    itt = None;
                    alt_scl = a_scl;
                    alt_itt = None;
                    h2p_t = h2p_tage_f;
                    h2p_u = h2p_ucp_f;
                    no_target = false;
                }
                BranchClass::UncondDirect | BranchClass::Call => {
                    let target = inst.kind.direct_target().expect("direct");
                    if class == BranchClass::Call {
                        self.ras.push(pc.next_inst());
                    }
                    push_target_history(&mut self.it_hist, target);
                    if let Some(ucp) = self.ucp.as_mut() {
                        let _ = ucp.on_taken_target(pc, target, false);
                    }
                    if btb_missed {
                        self.charge_resteer();
                        self.btb.insert(pc, target, class);
                    }
                    // Direct unconditional flow cannot mispredict: no record.
                    next = target;
                    if let Some(p) = cur_pos {
                        // Verify against the oracle (must always match).
                        let d = self.oracle_at(p);
                        debug_assert_eq!(d.pc, pc, "agen desynchronized from the oracle");
                        debug_assert_eq!(d.next_pc, target);
                    }
                    self.agen_pos = if diverge_at != u8::MAX {
                        None
                    } else {
                        cur_pos.map(|p| p + 1)
                    };
                    self.agen_pc = next;
                    return Some(FetchBlock {
                        start,
                        n,
                        n_cond,
                        pos: pos0,
                        diverge_at,
                        fetch_ready: None,
                        recs,
                        n_recs,
                    });
                }
                BranchClass::Return => {
                    let ras_target = self.ras.pop();
                    let fallback = btb_entry.map(|e| e.target).filter(|t| !t.is_null());
                    let t = ras_target.or(fallback);
                    if btb_missed {
                        self.charge_resteer();
                        self.btb.insert(pc, t.unwrap_or(Addr::NULL), class);
                    }
                    match t {
                        Some(t) => {
                            predicted_taken = true;
                            predicted_next = t;
                            push_target_history(&mut self.it_hist, t);
                            if let Some(ucp) = self.ucp.as_mut() {
                                let _ = ucp.on_taken_target(pc, t, false);
                            }
                            no_target = false;
                        }
                        None => {
                            predicted_taken = true;
                            predicted_next = Addr::NULL;
                            no_target = true;
                        }
                    }
                    kind = RecKind::Return;
                    scl = None;
                    itt = None;
                    alt_scl = None;
                    alt_itt = None;
                    h2p_t = false;
                    h2p_u = false;
                }
                BranchClass::IndirectJump | BranchClass::IndirectCall => {
                    let is_call = class == BranchClass::IndirectCall;
                    let p = self.ittage.predict(&self.it_hist, pc);
                    let fallback = btb_entry.map(|e| e.target).filter(|t| !t.is_null());
                    let t = p.target.or(fallback);
                    if btb_missed {
                        self.charge_resteer();
                    }
                    let mut a_itt = None;
                    match t {
                        Some(t) => {
                            if is_call {
                                self.ras.push(pc.next_inst());
                            }
                            if let Some(ucp) = self.ucp.as_mut() {
                                a_itt = ucp.on_taken_target(pc, t, true);
                            }
                            push_target_history(&mut self.it_hist, t);
                            predicted_taken = true;
                            predicted_next = t;
                            no_target = false;
                        }
                        None => {
                            predicted_taken = true;
                            predicted_next = Addr::NULL;
                            no_target = true;
                        }
                    }
                    kind = RecKind::Indirect { is_call };
                    scl = None;
                    itt = Some(p);
                    alt_scl = None;
                    alt_itt = a_itt;
                    h2p_t = false;
                    h2p_u = false;
                }
            }

            // Oracle comparison (only meaningful on the correct path).
            let (actual_taken, actual_next, mispredicted) = match cur_pos {
                Some(p) => {
                    let d = self.oracle_at(p);
                    let mis = no_target || d.next_pc != predicted_next;
                    (d.taken, d.next_pc, mis)
                }
                None => (predicted_taken, predicted_next, false),
            };

            let id = self.new_record(PredRecord {
                pc,
                kind,
                pos: cur_pos,
                actual_taken,
                actual_next,
                mispredicted,
                no_target,
                cp_bp,
                cp_it,
                cp_ras,
                cp_alt,
                scl,
                itt,
                alt_scl,
                alt_itt,
                h2p_tage: h2p_t,
                h2p_ucp: h2p_u,
            });
            recs[n_recs as usize] = (offset, id);
            n_recs += 1;

            if mispredicted && self.pending_mispredict.is_none() {
                self.pending_mispredict = Some(id);
                if no_target {
                    if self.measuring {
                        self.stats.btb_resteers += 1;
                    }
                    self.tele.resteers.inc();
                }
            }

            if no_target {
                // Cannot continue without a target: fetch stalls until the
                // branch executes (resolution redirects).
                self.agen_dead = true;
                pc = pc.next_inst();
                next = pc;
                break;
            }

            // Advance the walk along the predicted path.
            let was_on_correct = cur_pos.is_some();
            if was_on_correct && mispredicted {
                // Everything after this instruction is wrong-path.
                if diverge_at == u8::MAX {
                    diverge_at = n;
                }
                cur_pos = None;
            } else if let Some(p) = cur_pos {
                cur_pos = Some(p + 1);
            }

            pc = pc.next_inst();
            if predicted_taken {
                next = predicted_next;
                break;
            }
        }

        self.agen_pc = next;
        self.agen_pos = if diverge_at != u8::MAX { None } else { cur_pos };
        if n == 0 {
            return None;
        }
        Some(FetchBlock {
            start,
            n,
            n_cond,
            pos: pos0,
            diverge_at,
            fetch_ready: None,
            recs,
            n_recs,
        })
    }

    fn charge_resteer(&mut self) {
        self.agen_stall_until =
            (self.now + self.cfg.frontend.btb_resteer_penalty).max(self.agen_stall_until);
        self.agen_stall_kind = CycleCause::Resteer;
        if self.measuring {
            self.stats.btb_resteers += 1;
        }
        self.tele.resteers.inc();
        self.tele
            .handle
            .tracer
            .emit(Category::Frontend, "btb_resteer", String::new);
    }

    // ------------------------------------------------------------------
    // Standalone L1I prefetcher queue
    // ------------------------------------------------------------------

    fn l1i_prefetch_stage(&mut self) {
        let mut buf = Vec::new();
        self.prefetcher.drain(&mut buf);
        for line in buf {
            let _ = self.prefetch_pq.push(line);
        }
        if let Some(&line) = self.prefetch_pq.front() {
            if self.hier.probe_l1i(line) {
                self.prefetch_pq.pop();
            } else if self.hier.access_inst(line, self.now, true).is_ok() {
                self.prefetch_pq.pop();
                if self.measuring {
                    self.stats.l1i_prefetches_issued += 1;
                }
                self.tele.l1i_prefetches.inc();
                self.tele
                    .handle
                    .tracer
                    .emit(Category::Prefetch, "l1i_issue", || {
                        format!("line={:#x}", line.raw())
                    });
            }
        }
    }
}
