//! Event-time out-of-order backend: ROB + register scoreboard, in-order
//! commit.
//!
//! Each dispatched µ-op computes its completion cycle from its producers'
//! completion cycles (dataflow) plus a latency-class delay; loads probe the
//! data hierarchy. Commit retires completed µ-ops in order at the commit
//! width. This is the ChampSim style of backend modelling: precise enough
//! to expose frontend starvation and misprediction-resolution timing, which
//! is what the paper's evaluation measures.

use crate::config::BackendConfig;
use sim_isa::{DynInst, ExecClass, InstKind};
use std::collections::VecDeque;

/// One ROB entry.
#[derive(Clone, Copy, Debug)]
pub struct RobEntry {
    /// Correct-path position of the instruction.
    pub pos: u64,
    /// Cycle at which execution completes.
    pub complete: u64,
    /// Prediction record to resolve at completion, if this is a branch.
    pub rec: Option<u64>,
}

/// The backend.
#[derive(Clone, Debug)]
pub struct Backend {
    cfg: BackendConfig,
    rob: VecDeque<RobEntry>,
    /// Completion cycle of the last writer of each architectural register.
    reg_avail: [u64; 64],
}

impl Backend {
    /// Creates an empty backend.
    pub fn new(cfg: BackendConfig) -> Self {
        Backend {
            rob: VecDeque::with_capacity(cfg.rob_entries),
            reg_avail: [0; 64],
            cfg,
        }
    }

    /// `true` if another µ-op can be dispatched this cycle.
    pub fn has_space(&self) -> bool {
        self.rob.len() < self.cfg.rob_entries
    }

    /// Current ROB occupancy.
    pub fn occupancy(&self) -> usize {
        self.rob.len()
    }

    /// Dispatches one µ-op at cycle `now`. For loads, `mem_ready` is the
    /// cycle the data hierarchy returns the value. Returns the µ-op's
    /// completion cycle.
    ///
    /// # Panics
    ///
    /// Panics if the ROB is full (callers check [`Backend::has_space`]).
    pub fn dispatch(
        &mut self,
        now: u64,
        d: &DynInst,
        pos: u64,
        mem_ready: Option<u64>,
        rec: Option<u64>,
    ) -> u64 {
        assert!(self.has_space(), "dispatch into a full ROB");
        // Operand readiness.
        let mut ready = now + 1;
        for s in d.inst.srcs.iter().flatten() {
            ready = ready.max(self.reg_avail[s.index()]);
        }
        let complete = match d.inst.kind {
            InstKind::Op(class) => {
                let lat = match class {
                    ExecClass::Alu => self.cfg.lat_alu,
                    ExecClass::Mul => self.cfg.lat_mul,
                    ExecClass::Div => self.cfg.lat_div,
                    ExecClass::FpAdd => self.cfg.lat_fp_add,
                    ExecClass::FpMul => self.cfg.lat_fp_mul,
                };
                ready + lat
            }
            InstKind::Load => {
                let m = mem_ready.unwrap_or(ready + 1);
                ready.max(m)
            }
            // Stores complete once address/data are ready; the write drains
            // in the background.
            InstKind::Store => ready + 1,
            // Control transfers resolve in the branch unit.
            _ => ready + self.cfg.lat_branch,
        };
        if let Some(dst) = d.inst.dst {
            self.reg_avail[dst.index()] = complete;
        }
        self.rob.push_back(RobEntry { pos, complete, rec });
        complete
    }

    /// Retires completed head entries, up to the commit width. Returns the
    /// retired entries in order.
    pub fn commit(&mut self, now: u64) -> Vec<RobEntry> {
        let mut out = Vec::new();
        for _ in 0..self.cfg.commit_width {
            match self.rob.front() {
                Some(e) if e.complete <= now => out.push(self.rob.pop_front().expect("front")),
                _ => break,
            }
        }
        out
    }

    /// The completion cycle of the oldest unfinished µ-op (for watchdogs).
    pub fn head_complete(&self) -> Option<u64> {
        self.rob.front().map(|e| e.complete)
    }

    /// Serializes the ROB and the register scoreboard.
    pub fn save_state(&self, w: &mut sim_isa::StateWriter) {
        w.put_usize(self.rob.len());
        for e in &self.rob {
            w.put_u64(e.pos);
            w.put_u64(e.complete);
            w.put_opt_u64(e.rec);
        }
        for &r in &self.reg_avail {
            w.put_u64(r);
        }
    }

    /// Restores state written by [`Backend::save_state`].
    pub fn restore_state(&mut self, r: &mut sim_isa::StateReader) {
        let n = r.get_usize();
        assert!(n <= self.cfg.rob_entries, "ROB geometry mismatch");
        self.rob.clear();
        for _ in 0..n {
            let pos = r.get_u64();
            let complete = r.get_u64();
            let rec = r.get_opt_u64();
            self.rob.push_back(RobEntry { pos, complete, rec });
        }
        for slot in &mut self.reg_avail {
            *slot = r.get_u64();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_isa::{Addr, Reg, StaticInst};

    fn dyn_inst(kind: InstKind, dst: Option<Reg>, srcs: &[Reg]) -> DynInst {
        let mut inst = StaticInst::new(kind);
        if let Some(d) = dst {
            inst = inst.with_dst(d);
        }
        let inst = inst.with_srcs(srcs);
        DynInst {
            pc: Addr::new(0x100),
            inst,
            next_pc: Addr::new(0x104),
            taken: false,
            mem_addr: Addr::NULL,
        }
    }

    fn backend() -> Backend {
        Backend::new(BackendConfig::default())
    }

    #[test]
    fn independent_ops_complete_quickly() {
        let mut b = backend();
        let c = b.dispatch(
            10,
            &dyn_inst(InstKind::Op(ExecClass::Alu), Some(Reg::new(1)), &[]),
            0,
            None,
            None,
        );
        assert_eq!(c, 12, "now+1 issue, +1 ALU");
    }

    #[test]
    fn dependency_chains_serialize() {
        let mut b = backend();
        let c1 = b.dispatch(
            0,
            &dyn_inst(InstKind::Op(ExecClass::Div), Some(Reg::new(1)), &[]),
            0,
            None,
            None,
        );
        let c2 = b.dispatch(
            0,
            &dyn_inst(
                InstKind::Op(ExecClass::Alu),
                Some(Reg::new(2)),
                &[Reg::new(1)],
            ),
            1,
            None,
            None,
        );
        assert_eq!(c2, c1 + 1, "consumer waits for the divide");
    }

    #[test]
    fn loads_wait_for_memory() {
        let mut b = backend();
        let c = b.dispatch(
            0,
            &dyn_inst(InstKind::Load, Some(Reg::new(3)), &[]),
            0,
            Some(200),
            None,
        );
        assert_eq!(c, 200);
    }

    #[test]
    fn commit_is_in_order_and_width_limited() {
        let mut b = Backend::new(BackendConfig {
            commit_width: 2,
            ..BackendConfig::default()
        });
        for i in 0..4 {
            b.dispatch(
                0,
                &dyn_inst(InstKind::Op(ExecClass::Alu), None, &[]),
                i,
                None,
                None,
            );
        }
        let retired = b.commit(100);
        assert_eq!(retired.len(), 2, "commit width");
        assert_eq!(retired[0].pos, 0);
        assert_eq!(retired[1].pos, 1);
        assert_eq!(b.commit(100).len(), 2);
    }

    #[test]
    fn incomplete_head_blocks_commit() {
        let mut b = backend();
        b.dispatch(
            0,
            &dyn_inst(InstKind::Op(ExecClass::Div), None, &[]),
            0,
            None,
            None,
        );
        b.dispatch(
            0,
            &dyn_inst(InstKind::Op(ExecClass::Alu), None, &[]),
            1,
            None,
            None,
        );
        // At cycle 3 the ALU op is done but the div head is not.
        assert!(b.commit(3).is_empty());
    }

    #[test]
    fn rob_space_bounded() {
        let mut b = Backend::new(BackendConfig {
            rob_entries: 2,
            ..BackendConfig::default()
        });
        assert!(b.has_space());
        b.dispatch(
            0,
            &dyn_inst(InstKind::Op(ExecClass::Alu), None, &[]),
            0,
            None,
            None,
        );
        b.dispatch(
            0,
            &dyn_inst(InstKind::Op(ExecClass::Alu), None, &[]),
            1,
            None,
            None,
        );
        assert!(!b.has_space());
        assert_eq!(b.occupancy(), 2);
    }

    #[test]
    fn branch_records_flow_through() {
        let mut b = backend();
        let target = Addr::new(0x200);
        b.dispatch(
            0,
            &dyn_inst(InstKind::CondBranch { target }, None, &[]),
            0,
            None,
            Some(99),
        );
        let retired = b.commit(100);
        assert_eq!(retired[0].rec, Some(99));
    }
}
