//! Experiment runner: runs configurations over workload suites, in
//! parallel across workloads, deterministically.

use crate::config::SimConfig;
use crate::pipeline::Simulator;
use crate::stats::SimStats;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use ucp_telemetry::interval::IntervalRecord;
use ucp_telemetry::RegistrySnapshot;
use ucp_workloads::WorkloadSpec;

/// Default warm-up instructions per run (the paper uses 50 M on 100 M-inst
/// traces; synthetic workloads reach steady state much sooner — see
/// DESIGN.md §1).
pub const DEFAULT_WARMUP: u64 = 1_000_000;

/// Default measured instructions per run.
pub const DEFAULT_MEASURE: u64 = 4_000_000;

/// Reads run length overrides from the environment
/// (`UCP_SIM_WARMUP`, `UCP_SIM_INSTRUCTIONS`), falling back to the
/// defaults scaled by `scale`.
pub fn run_lengths(scale: f64) -> (u64, u64) {
    let warmup = std::env::var("UCP_SIM_WARMUP")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or((DEFAULT_WARMUP as f64 * scale) as u64)
        .max(10_000);
    let measure = std::env::var("UCP_SIM_INSTRUCTIONS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or((DEFAULT_MEASURE as f64 * scale) as u64)
        .max(10_000);
    (warmup, measure)
}

/// One workload's result under one configuration.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RunResult {
    /// Workload name.
    pub workload: String,
    /// Collected statistics.
    pub stats: SimStats,
    /// Telemetry counters over the measurement window. Empty for results
    /// deserialized from caches written before telemetry existed
    /// (`#[serde(default)]` keeps those readable).
    #[serde(default)]
    pub telemetry: RegistrySnapshot,
    /// Interval time series over the measurement window (empty when
    /// sampling was off, or for results cached before it existed).
    #[serde(default)]
    pub intervals: Vec<IntervalRecord>,
}

/// Runs `cfg` over every workload in `suite`, in parallel, deterministically.
///
/// A pool of `min(available_parallelism, suite.len())` workers pulls
/// workload indices from a shared atomic cursor, so a slow workload never
/// holds idle threads hostage the way chunk barriers would. Each worker
/// writes into the slot matching its workload's suite index, so results
/// come back in suite order (and with per-workload determinism) regardless
/// of completion order — duplicate workload names included.
pub fn run_suite(
    suite: &[WorkloadSpec],
    cfg: &SimConfig,
    warmup: u64,
    measure: u64,
) -> Vec<RunResult> {
    let max_par = std::thread::available_parallelism().map_or(4, |n| n.get());
    let workers = max_par.max(1).min(suite.len().max(1));
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<RunResult>>> = (0..suite.len()).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(spec) = suite.get(i) else { break };
                let out = Simulator::run_spec_output(spec, cfg, warmup, measure);
                *slots[i].lock().expect("result slot poisoned") = Some(RunResult {
                    workload: spec.name.clone(),
                    stats: out.stats,
                    telemetry: out.telemetry,
                    intervals: out.intervals,
                });
            });
        }
    });
    slots
        .into_iter()
        .map(|s| {
            s.into_inner()
                .expect("result slot poisoned")
                .expect("all slots filled")
        })
        .collect()
}

/// Per-workload IPCs from a result set.
pub fn ipcs(results: &[RunResult]) -> Vec<f64> {
    results.iter().map(|r| r.stats.ipc()).collect()
}

/// Per-workload speedups `new/base − 1` in percent, paired by suite order.
///
/// # Panics
///
/// Panics if the result sets differ in length or workload order.
pub fn speedups_pct(base: &[RunResult], new: &[RunResult]) -> Vec<f64> {
    assert_eq!(base.len(), new.len());
    base.iter()
        .zip(new)
        .map(|(b, n)| {
            assert_eq!(b.workload, n.workload, "result sets must align");
            (n.stats.ipc() / b.stats.ipc() - 1.0) * 100.0
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ucp_workloads::WorkloadSpec;

    #[test]
    fn run_suite_preserves_order_and_determinism() {
        let suite = vec![WorkloadSpec::tiny("a", 1), WorkloadSpec::tiny("b", 2)];
        let cfg = SimConfig::baseline();
        let r1 = run_suite(&suite, &cfg, 5_000, 20_000);
        let r2 = run_suite(&suite, &cfg, 5_000, 20_000);
        assert_eq!(r1[0].workload, "a");
        assert_eq!(r1[1].workload, "b");
        assert_eq!(r1[0].stats.cycles, r2[0].stats.cycles, "deterministic");
        assert!((20_000..20_016).contains(&r1[1].stats.instructions));
    }

    #[test]
    fn run_suite_handles_duplicate_names() {
        // Same name, different seeds: slot indexing must not key on names.
        let suite = vec![
            WorkloadSpec::tiny("dup", 1),
            WorkloadSpec::tiny("dup", 2),
            WorkloadSpec::tiny("dup", 3),
            WorkloadSpec::tiny("other", 4),
        ];
        let cfg = SimConfig::baseline();
        let r = run_suite(&suite, &cfg, 5_000, 20_000);
        assert_eq!(r.len(), 4);
        assert_eq!(r[3].workload, "other");
        // Each slot must hold its own seed's run: seeds 1..3 diverge.
        let solo: Vec<u64> = suite
            .iter()
            .map(|s| Simulator::run_spec(s, &cfg, 5_000, 20_000).cycles)
            .collect();
        for (got, want) in r.iter().zip(&solo) {
            assert_eq!(got.stats.cycles, *want, "slot matched to wrong workload");
        }
    }

    #[test]
    fn run_suite_results_carry_telemetry() {
        let suite = vec![WorkloadSpec::tiny("a", 1)];
        let r = run_suite(&suite, &SimConfig::baseline(), 5_000, 20_000);
        let snap = &r[0].telemetry;
        assert!(!snap.is_empty(), "measurement window should tick counters");
        assert!(snap.counters.contains_key("frontend.uopc.hits"));
        // Cycle accounting rides in the same window delta and must tile
        // the measured cycles exactly.
        let b = ucp_telemetry::AccountingBreakdown::from_snapshot(snap);
        b.verify().expect("accounting invariant");
        assert_eq!(b.total, r[0].stats.cycles);
        // Default sampling is on: at least the final partial interval.
        assert!(!r[0].intervals.is_empty());
        let sampled: u64 = r[0].intervals.iter().map(|iv| iv.cycles()).sum();
        assert_eq!(sampled, r[0].stats.cycles, "intervals tile the window");
    }

    #[test]
    fn legacy_results_deserialize_without_telemetry() {
        // A cache entry written before RunResult.telemetry existed.
        let stats = SimStats::default();
        let mut v = serde_json::to_value(&RunResult {
            workload: "w".into(),
            stats,
            telemetry: RegistrySnapshot::default(),
            intervals: Vec::new(),
        })
        .unwrap();
        if let serde_json::Value::Map(entries) = &mut v {
            entries.retain(|(k, _)| k != "telemetry" && k != "intervals");
        }
        let back: RunResult = serde_json::from_value(v).unwrap();
        assert!(back.telemetry.is_empty());
        assert!(back.intervals.is_empty());
    }

    #[test]
    fn speedups_align_by_name() {
        let suite = vec![WorkloadSpec::tiny("a", 3)];
        let base = run_suite(&suite, &SimConfig::no_uop_cache(), 5_000, 20_000);
        let with = run_suite(&suite, &SimConfig::baseline(), 5_000, 20_000);
        let s = speedups_pct(&base, &with);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn run_lengths_env_override() {
        // No env set in tests: defaults scale.
        let (w, m) = run_lengths(0.5);
        assert_eq!(w, DEFAULT_WARMUP / 2);
        assert_eq!(m, DEFAULT_MEASURE / 2);
    }
}
