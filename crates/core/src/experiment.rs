//! Experiment runner: runs configurations over workload suites, in
//! parallel across workloads, deterministically.

use crate::config::SimConfig;
use crate::pipeline::Simulator;
use crate::stats::SimStats;
use serde::{Deserialize, Serialize};
use ucp_workloads::WorkloadSpec;

/// Default warm-up instructions per run (the paper uses 50 M on 100 M-inst
/// traces; synthetic workloads reach steady state much sooner — see
/// DESIGN.md §1).
pub const DEFAULT_WARMUP: u64 = 1_000_000;

/// Default measured instructions per run.
pub const DEFAULT_MEASURE: u64 = 4_000_000;

/// Reads run length overrides from the environment
/// (`UCP_SIM_WARMUP`, `UCP_SIM_INSTRUCTIONS`), falling back to the
/// defaults scaled by `scale`.
pub fn run_lengths(scale: f64) -> (u64, u64) {
    let warmup = std::env::var("UCP_SIM_WARMUP")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or((DEFAULT_WARMUP as f64 * scale) as u64)
        .max(10_000);
    let measure = std::env::var("UCP_SIM_INSTRUCTIONS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or((DEFAULT_MEASURE as f64 * scale) as u64)
        .max(10_000);
    (warmup, measure)
}

/// One workload's result under one configuration.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RunResult {
    /// Workload name.
    pub workload: String,
    /// Collected statistics.
    pub stats: SimStats,
}

/// Runs `cfg` over every workload in `suite`, in parallel (one thread per
/// workload, capped at the machine's parallelism). Results are returned in
/// suite order regardless of completion order.
pub fn run_suite(
    suite: &[WorkloadSpec],
    cfg: &SimConfig,
    warmup: u64,
    measure: u64,
) -> Vec<RunResult> {
    let max_par = std::thread::available_parallelism().map_or(4, |n| n.get());
    let mut results: Vec<Option<RunResult>> = (0..suite.len()).map(|_| None).collect();
    for chunk in suite.chunks(max_par.max(1)) {
        let chunk_start = suite
            .iter()
            .position(|s| s.name == chunk[0].name)
            .expect("chunk comes from suite");
        std::thread::scope(|scope| {
            let handles: Vec<_> = chunk
                .iter()
                .map(|spec| {
                    scope.spawn(move || {
                        let stats = Simulator::run_spec(spec, cfg, warmup, measure);
                        RunResult { workload: spec.name.clone(), stats }
                    })
                })
                .collect();
            for (i, h) in handles.into_iter().enumerate() {
                results[chunk_start + i] = Some(h.join().expect("simulation thread panicked"));
            }
        });
    }
    results.into_iter().map(|r| r.expect("all slots filled")).collect()
}

/// Per-workload IPCs from a result set.
pub fn ipcs(results: &[RunResult]) -> Vec<f64> {
    results.iter().map(|r| r.stats.ipc()).collect()
}

/// Per-workload speedups `new/base − 1` in percent, paired by suite order.
///
/// # Panics
///
/// Panics if the result sets differ in length or workload order.
pub fn speedups_pct(base: &[RunResult], new: &[RunResult]) -> Vec<f64> {
    assert_eq!(base.len(), new.len());
    base.iter()
        .zip(new)
        .map(|(b, n)| {
            assert_eq!(b.workload, n.workload, "result sets must align");
            (n.stats.ipc() / b.stats.ipc() - 1.0) * 100.0
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ucp_workloads::WorkloadSpec;

    #[test]
    fn run_suite_preserves_order_and_determinism() {
        let suite = vec![WorkloadSpec::tiny("a", 1), WorkloadSpec::tiny("b", 2)];
        let cfg = SimConfig::baseline();
        let r1 = run_suite(&suite, &cfg, 5_000, 20_000);
        let r2 = run_suite(&suite, &cfg, 5_000, 20_000);
        assert_eq!(r1[0].workload, "a");
        assert_eq!(r1[1].workload, "b");
        assert_eq!(r1[0].stats.cycles, r2[0].stats.cycles, "deterministic");
        assert!((20_000..20_016).contains(&r1[1].stats.instructions));
    }

    #[test]
    fn speedups_align_by_name() {
        let suite = vec![WorkloadSpec::tiny("a", 3)];
        let base = run_suite(&suite, &SimConfig::no_uop_cache(), 5_000, 20_000);
        let with = run_suite(&suite, &SimConfig::baseline(), 5_000, 20_000);
        let s = speedups_pct(&base, &with);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn run_lengths_env_override() {
        // No env set in tests: defaults scale.
        let (w, m) = run_lengths(0.5);
        assert_eq!(w, DEFAULT_WARMUP / 2);
        assert_eq!(m, DEFAULT_MEASURE / 2);
    }
}
