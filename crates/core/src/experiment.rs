//! Experiment runner: runs configurations over workload suites, in
//! parallel across workloads, deterministically — and fault-isolated:
//! one panicking, hanging or invariant-violating workload degrades the
//! suite instead of killing it.

use crate::config::SimConfig;
use crate::error::{watchdog_from_env, SimError};
use crate::pipeline::{RunOutput, Simulator};
use crate::snapshot::{ckpt_from_env, digest_from_env, DigestRecord};
use crate::stats::SimStats;
use serde::{Deserialize, Serialize};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use ucp_telemetry::fault::{global_plan, FaultPlan};
use ucp_telemetry::interval::IntervalRecord;
use ucp_telemetry::IntervalSampler;
use ucp_telemetry::RegistrySnapshot;
use ucp_workloads::WorkloadSpec;

/// Default warm-up instructions per run (the paper uses 50 M on 100 M-inst
/// traces; synthetic workloads reach steady state much sooner — see
/// DESIGN.md §1).
pub const DEFAULT_WARMUP: u64 = 1_000_000;

/// Default measured instructions per run.
pub const DEFAULT_MEASURE: u64 = 4_000_000;

/// Reads run length overrides from the environment
/// (`UCP_SIM_WARMUP`, `UCP_SIM_INSTRUCTIONS`), falling back to the
/// defaults scaled by `scale`.
pub fn run_lengths(scale: f64) -> (u64, u64) {
    let warmup = std::env::var("UCP_SIM_WARMUP")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or((DEFAULT_WARMUP as f64 * scale) as u64)
        .max(10_000);
    let measure = std::env::var("UCP_SIM_INSTRUCTIONS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or((DEFAULT_MEASURE as f64 * scale) as u64)
        .max(10_000);
    (warmup, measure)
}

/// Per-workload persistence hook for [`run_suite_outcome`]: invoked from
/// the worker thread with the workload's suite index and result as soon
/// as it completes.
pub type PersistFn<'a> = &'a (dyn Fn(usize, &RunResult) + Sync);

/// One workload's result under one configuration.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RunResult {
    /// Workload name.
    pub workload: String,
    /// Collected statistics.
    pub stats: SimStats,
    /// Telemetry counters over the measurement window. Empty for results
    /// deserialized from caches written before telemetry existed
    /// (`#[serde(default)]` keeps those readable).
    #[serde(default)]
    pub telemetry: RegistrySnapshot,
    /// Interval time series over the measurement window (empty when
    /// sampling was off, or for results cached before it existed).
    #[serde(default)]
    pub intervals: Vec<IntervalRecord>,
    /// Determinism-auditor digest samples (empty unless `UCP_DIGEST` was
    /// set, or for results cached before the auditor existed).
    #[serde(default)]
    pub digests: Vec<DigestRecord>,
}

/// How [`run_suite_outcome`] isolates, retries and resumes workloads.
#[derive(Clone, Default)]
pub struct SuiteOptions {
    /// Attempts per workload before giving up (0 or unset → 3). Only
    /// retryable failures ([`SimError::is_retryable`]) consume retries;
    /// deterministic ones fail on the first attempt.
    pub max_attempts: u32,
    /// Base of the exponential retry backoff in milliseconds
    /// (`base << (attempt − 1)`); 0 disables sleeping (tests).
    pub backoff_base_ms: u64,
    /// Resume support: slots already holding a result (from a previous,
    /// partially-persisted run) are not re-simulated. Shorter than the
    /// suite means the tail is unfilled.
    pub prefilled: Vec<Option<RunResult>>,
    /// Explicit fault plan (tests). `None` falls back to the
    /// process-global `UCP_FAULT` plan.
    pub fault: Option<Arc<FaultPlan>>,
    /// Hang-watchdog override: `Some(w)` replaces the `UCP_WATCHDOG`
    /// window on every simulator this run builds (`Some(None)`
    /// disables it).
    pub watchdog: Option<Option<u64>>,
}

impl SuiteOptions {
    fn attempts(&self) -> u32 {
        if self.max_attempts == 0 {
            3
        } else {
            self.max_attempts
        }
    }
}

/// One workload's fate after isolation and retries.
#[derive(Debug)]
pub struct WorkloadOutcome {
    /// Workload name.
    pub workload: String,
    /// Attempts spent (1 = first try succeeded; 0 = prefilled/resumed).
    pub attempts: u32,
    /// The result, or the error from the final attempt.
    pub outcome: Result<RunResult, SimError>,
}

/// A whole suite's fate: every workload accounted for, in suite order,
/// whether it succeeded, was resumed from a previous run, or failed.
#[derive(Debug, Default)]
pub struct SuiteOutcome {
    /// Per-workload outcomes, in suite order.
    pub outcomes: Vec<WorkloadOutcome>,
}

impl SuiteOutcome {
    /// Workloads that produced a result.
    pub fn completed(&self) -> usize {
        self.outcomes.iter().filter(|o| o.outcome.is_ok()).count()
    }

    /// Suite size.
    pub fn total(&self) -> usize {
        self.outcomes.len()
    }

    /// True when every workload completed.
    pub fn is_complete(&self) -> bool {
        self.completed() == self.total()
    }

    /// The failures, as `(suite index, error)`.
    pub fn failures(&self) -> Vec<(usize, &SimError)> {
        self.outcomes
            .iter()
            .enumerate()
            .filter_map(|(i, o)| o.outcome.as_ref().err().map(|e| (i, e)))
            .collect()
    }

    /// All results when complete; the first failure otherwise.
    pub fn into_results(self) -> Result<Vec<RunResult>, SimError> {
        self.outcomes
            .into_iter()
            .map(|o| o.outcome)
            .collect::<Result<Vec<_>, _>>()
    }
}

/// Salt for deterministic retry re-seeding: attempt `k ≥ 2` of a
/// retryable failure perturbs the workload seed by `salt · (k − 1)`, so
/// a seed-sensitive corner (or an injected transient fault) gets a
/// genuinely different roll while staying reproducible.
const RESEED_SALT: u64 = 0x9E37_79B9_7F4A_7C15;

/// Checks every environment knob a suite run depends on *before*
/// simulating anything, so a typo'd `UCP_WATCHDOG` is one clean
/// [`SimError::BadConfig`] instead of a panic inside a worker thread.
fn validate_env() -> Result<Option<Arc<FaultPlan>>, SimError> {
    watchdog_from_env().map_err(|detail| SimError::BadConfig { detail })?;
    IntervalSampler::from_env().map_err(|detail| SimError::BadConfig { detail })?;
    ckpt_from_env().map_err(|detail| SimError::BadConfig { detail })?;
    digest_from_env().map_err(|detail| SimError::BadConfig { detail })?;
    global_plan().map_err(|detail| SimError::BadConfig { detail })
}

/// One attempt at one workload, with the fault-injection hooks armed.
/// Panics (including injected ones) unwind to the caller's
/// `catch_unwind`.
fn run_one_attempt(
    spec: &WorkloadSpec,
    cfg: &SimConfig,
    warmup: u64,
    measure: u64,
    fault: Option<&Arc<FaultPlan>>,
    index: usize,
    watchdog: Option<Option<u64>>,
) -> Result<RunOutput, SimError> {
    if fault.is_some_and(|p| p.armed_at("panic", index)) {
        panic!("injected fault: panic at suite index {index}");
    }
    let prog = spec.build();
    let mut sim = Simulator::new(&prog, spec.seed, cfg);
    if let Some(w) = watchdog {
        sim.set_watchdog(w);
    }
    if fault.is_some_and(|p| p.armed_at("hang", index)) {
        sim.inject_hang();
    }
    if fault.is_some_and(|p| p.armed_at("invariant", index)) {
        sim.inject_invariant_skew();
    }
    // Under `UCP_CKPT` this resumes from the newest valid checkpoint of
    // a previous (killed) run of the same trajectory instead of
    // re-simulating from cycle zero. A failed attempt keeps its
    // checkpoints on disk for the next resume; only a completed run
    // removes them.
    sim.init_checkpointing(spec, warmup, measure, fault.cloned())?;
    let out = sim.run_full(warmup, measure)?;
    sim.finish_checkpointing();
    Ok(out)
}

/// Runs one workload to its final outcome: isolation boundary
/// (`catch_unwind`), bounded retries with exponential backoff, and
/// deterministic re-seeding on attempts ≥ 2.
fn run_one_isolated(
    spec: &WorkloadSpec,
    cfg: &SimConfig,
    warmup: u64,
    measure: u64,
    index: usize,
    opts: &SuiteOptions,
    fault: Option<&Arc<FaultPlan>>,
) -> WorkloadOutcome {
    let max_attempts = opts.attempts();
    let mut attempt = 0;
    let outcome = loop {
        attempt += 1;
        if attempt > 1 && opts.backoff_base_ms > 0 {
            let ms = opts.backoff_base_ms << (attempt - 2).min(16);
            std::thread::sleep(std::time::Duration::from_millis(ms));
        }
        let mut spec = spec.clone();
        if attempt > 1 {
            spec.seed ^= RESEED_SALT.wrapping_mul(attempt as u64 - 1);
        }
        let attempt_result = catch_unwind(AssertUnwindSafe(|| {
            run_one_attempt(&spec, cfg, warmup, measure, fault, index, opts.watchdog)
        }))
        .unwrap_or_else(|payload| {
            let payload = payload
                .downcast_ref::<&str>()
                .map(ToString::to_string)
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "<non-string panic payload>".to_string());
            Err(SimError::WorkloadPanic {
                workload: String::new(),
                payload,
            })
        });
        match attempt_result {
            Ok(out) => {
                break Ok(RunResult {
                    workload: spec.name.clone(),
                    stats: out.stats,
                    telemetry: out.telemetry,
                    intervals: out.intervals,
                    digests: out.digests,
                })
            }
            Err(e) => {
                let e = e.for_workload(&spec.name);
                if !e.is_retryable() || attempt >= max_attempts {
                    break Err(e);
                }
            }
        }
    };
    WorkloadOutcome {
        workload: spec.name.clone(),
        attempts: attempt,
        outcome,
    }
}

/// Runs `cfg` over every workload in `suite`, in parallel,
/// deterministically, with per-workload fault isolation.
///
/// A pool of `min(available_parallelism, suite.len())` workers pulls
/// workload indices from a shared atomic cursor, so a slow workload never
/// holds idle threads hostage the way chunk barriers would. Each worker
/// writes into the slot matching its workload's suite index, so results
/// come back in suite order (and with per-workload determinism) regardless
/// of completion order — duplicate workload names included.
///
/// Each workload runs behind a `catch_unwind` isolation boundary with
/// bounded retries ([`SuiteOptions::max_attempts`]); `persist`, when
/// given, is invoked from the worker as soon as a workload completes, so
/// a killed process loses at most the in-flight workloads (crash-resume
/// via [`SuiteOptions::prefilled`]).
///
/// # Errors
///
/// Only configuration problems fail the whole suite
/// ([`SimError::BadConfig`], checked before any simulation). Per-workload
/// failures land in the returned [`SuiteOutcome`].
pub fn run_suite_outcome(
    suite: &[WorkloadSpec],
    cfg: &SimConfig,
    warmup: u64,
    measure: u64,
    opts: &SuiteOptions,
    persist: Option<PersistFn<'_>>,
) -> Result<SuiteOutcome, SimError> {
    let env_plan = validate_env()?;
    let fault = opts.fault.clone().or(env_plan);
    let fault = fault.as_ref();
    let max_par = std::thread::available_parallelism().map_or(4, |n| n.get());
    let workers = max_par.max(1).min(suite.len().max(1));
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<WorkloadOutcome>>> =
        (0..suite.len()).map(|_| Mutex::new(None)).collect();
    for (i, r) in opts.prefilled.iter().enumerate().take(suite.len()) {
        if let Some(r) = r {
            *slots[i].lock().expect("result slot poisoned") = Some(WorkloadOutcome {
                workload: r.workload.clone(),
                attempts: 0,
                outcome: Ok(r.clone()),
            });
        }
    }
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(spec) = suite.get(i) else { break };
                if slots[i].lock().expect("result slot poisoned").is_some() {
                    continue; // resumed from a previous run
                }
                let outcome = run_one_isolated(spec, cfg, warmup, measure, i, opts, fault);
                if let (Some(persist), Ok(r)) = (persist, &outcome.outcome) {
                    persist(i, r);
                }
                *slots[i].lock().expect("result slot poisoned") = Some(outcome);
            });
        }
    });
    Ok(SuiteOutcome {
        outcomes: slots
            .into_iter()
            .map(|s| {
                s.into_inner()
                    .expect("result slot poisoned")
                    .expect("all slots filled")
            })
            .collect(),
    })
}

/// Runs `cfg` over every workload in `suite` with default isolation
/// options, returning the results only if every workload completed.
///
/// # Errors
///
/// [`SimError::BadConfig`] for malformed environment knobs, or the first
/// per-workload failure that survived retries.
pub fn run_suite(
    suite: &[WorkloadSpec],
    cfg: &SimConfig,
    warmup: u64,
    measure: u64,
) -> Result<Vec<RunResult>, SimError> {
    run_suite_outcome(suite, cfg, warmup, measure, &SuiteOptions::default(), None)?.into_results()
}

/// The first interval at which a replayed run's state digest stopped
/// matching the recorded run's.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReplayDivergence {
    /// Committed-instruction count of the first divergent digest sample
    /// (from run A; the runs agreed on every earlier sample).
    pub committed: u64,
    /// Cycle at which run A took the divergent sample.
    pub cycle_a: u64,
    /// Cycle at which run B took the divergent sample.
    pub cycle_b: u64,
    /// Run A's state digest at the divergent sample.
    pub digest_a: u64,
    /// Run B's state digest at the divergent sample.
    pub digest_b: u64,
}

/// Outcome of [`replay_verify`]: a run-vs-replay digest comparison.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ReplayReport {
    /// Workload name.
    pub workload: String,
    /// Digest samples compared (the shorter run bounds this).
    pub intervals_compared: usize,
    /// The first divergent interval, or `None` when every compared
    /// sample matched.
    pub first_divergence: Option<ReplayDivergence>,
}

impl ReplayReport {
    /// True when the replay matched the original at every compared
    /// sample.
    pub fn is_deterministic(&self) -> bool {
        self.first_divergence.is_none()
    }
}

/// The determinism auditor's replay mode: runs `spec` twice with a
/// rolling state digest every `every` committed instructions and reports
/// the first interval at which the two runs diverge.
///
/// A clean simulator is bit-deterministic, so the report normally shows
/// no divergence. `fault` with an `invariant` site armed at index 0
/// skews run A mid-flight (the `UCP_FAULT` invariant injection), which
/// the auditor then localizes to the first digest sample after the skew
/// — the self-test that proves the auditor can see real divergence.
///
/// # Errors
///
/// Any [`SimError`] from the underlying runs, except an invariant
/// violation in an intentionally-skewed run A (expected there; the
/// digests collected up to the violation are still compared).
pub fn replay_verify(
    spec: &WorkloadSpec,
    cfg: &SimConfig,
    warmup: u64,
    measure: u64,
    every: u64,
    fault: Option<&FaultPlan>,
) -> Result<ReplayReport, SimError> {
    let digests_of = |inject: bool| -> Result<Vec<DigestRecord>, SimError> {
        let prog = spec.build();
        let mut sim = Simulator::new(&prog, spec.seed, cfg);
        sim.set_digest_interval(Some(every));
        if inject {
            sim.inject_invariant_skew();
        }
        match sim.run_full(warmup, measure) {
            Ok(out) => Ok(out.digests),
            Err(SimError::InvariantViolation { .. }) if inject => Ok(sim.digests().to_vec()),
            Err(e) => Err(e),
        }
    };
    let skew = fault.is_some_and(|p| p.armed_at("invariant", 0));
    let a = digests_of(skew)?;
    let b = digests_of(false)?;
    let n = a.len().min(b.len());
    let first_divergence = (0..n).find(|&i| a[i] != b[i]).map(|i| ReplayDivergence {
        committed: a[i].committed,
        cycle_a: a[i].cycle,
        cycle_b: b[i].cycle,
        digest_a: a[i].digest,
        digest_b: b[i].digest,
    });
    Ok(ReplayReport {
        workload: spec.name.clone(),
        intervals_compared: n,
        first_divergence,
    })
}

/// Per-workload IPCs from a result set.
pub fn ipcs(results: &[RunResult]) -> Vec<f64> {
    results.iter().map(|r| r.stats.ipc()).collect()
}

/// Per-workload speedups `new/base − 1` in percent, paired by suite order.
///
/// # Panics
///
/// Panics if the result sets differ in length or workload order.
pub fn speedups_pct(base: &[RunResult], new: &[RunResult]) -> Vec<f64> {
    assert_eq!(base.len(), new.len());
    base.iter()
        .zip(new)
        .map(|(b, n)| {
            assert_eq!(b.workload, n.workload, "result sets must align");
            (n.stats.ipc() / b.stats.ipc() - 1.0) * 100.0
        })
        .collect()
}

/// Pairs two (possibly degraded) result sets by workload name, in `base`
/// order, dropping workloads present in only one set. Duplicate names
/// pair positionally (first unmatched `new` occurrence wins), matching
/// the suite runner's slot semantics. The returned sets satisfy
/// [`speedups_pct`]'s alignment requirement by construction.
pub fn align_by_workload(
    base: &[RunResult],
    new: &[RunResult],
) -> (Vec<RunResult>, Vec<RunResult>) {
    let mut taken = vec![false; new.len()];
    let mut b_out = Vec::new();
    let mut n_out = Vec::new();
    for b in base {
        let hit = new
            .iter()
            .enumerate()
            .find(|(j, n)| !taken[*j] && n.workload == b.workload);
        if let Some((j, n)) = hit {
            taken[j] = true;
            b_out.push(b.clone());
            n_out.push(n.clone());
        }
    }
    (b_out, n_out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ucp_workloads::WorkloadSpec;

    fn suite_ok(suite: &[WorkloadSpec], cfg: &SimConfig, w: u64, m: u64) -> Vec<RunResult> {
        run_suite(suite, cfg, w, m).expect("suite run failed")
    }

    #[test]
    fn run_suite_preserves_order_and_determinism() {
        let suite = vec![WorkloadSpec::tiny("a", 1), WorkloadSpec::tiny("b", 2)];
        let cfg = SimConfig::baseline();
        let r1 = suite_ok(&suite, &cfg, 5_000, 20_000);
        let r2 = suite_ok(&suite, &cfg, 5_000, 20_000);
        assert_eq!(r1[0].workload, "a");
        assert_eq!(r1[1].workload, "b");
        assert_eq!(r1[0].stats.cycles, r2[0].stats.cycles, "deterministic");
        assert!((20_000..20_016).contains(&r1[1].stats.instructions));
    }

    #[test]
    fn run_suite_handles_duplicate_names() {
        // Same name, different seeds: slot indexing must not key on names.
        let suite = vec![
            WorkloadSpec::tiny("dup", 1),
            WorkloadSpec::tiny("dup", 2),
            WorkloadSpec::tiny("dup", 3),
            WorkloadSpec::tiny("other", 4),
        ];
        let cfg = SimConfig::baseline();
        let r = suite_ok(&suite, &cfg, 5_000, 20_000);
        assert_eq!(r.len(), 4);
        assert_eq!(r[3].workload, "other");
        // Each slot must hold its own seed's run: seeds 1..3 diverge.
        let solo: Vec<u64> = suite
            .iter()
            .map(|s| Simulator::run_spec(s, &cfg, 5_000, 20_000).cycles)
            .collect();
        for (got, want) in r.iter().zip(&solo) {
            assert_eq!(got.stats.cycles, *want, "slot matched to wrong workload");
        }
    }

    #[test]
    fn run_suite_results_carry_telemetry() {
        let suite = vec![WorkloadSpec::tiny("a", 1)];
        let r = suite_ok(&suite, &SimConfig::baseline(), 5_000, 20_000);
        let snap = &r[0].telemetry;
        assert!(!snap.is_empty(), "measurement window should tick counters");
        assert!(snap.counters.contains_key("frontend.uopc.hits"));
        // Cycle accounting rides in the same window delta and must tile
        // the measured cycles exactly.
        let b = ucp_telemetry::AccountingBreakdown::from_snapshot(snap);
        b.verify().expect("accounting invariant");
        assert_eq!(b.total, r[0].stats.cycles);
        // Default sampling is on: at least the final partial interval.
        assert!(!r[0].intervals.is_empty());
        let sampled: u64 = r[0].intervals.iter().map(|iv| iv.cycles()).sum();
        assert_eq!(sampled, r[0].stats.cycles, "intervals tile the window");
    }

    #[test]
    fn legacy_results_deserialize_without_telemetry() {
        // A cache entry written before RunResult.telemetry existed.
        let stats = SimStats::default();
        let mut v = serde_json::to_value(&RunResult {
            workload: "w".into(),
            stats,
            telemetry: RegistrySnapshot::default(),
            intervals: Vec::new(),
            digests: Vec::new(),
        })
        .unwrap();
        if let serde_json::Value::Map(entries) = &mut v {
            entries.retain(|(k, _)| k != "telemetry" && k != "intervals" && k != "digests");
        }
        let back: RunResult = serde_json::from_value(v).unwrap();
        assert!(back.telemetry.is_empty());
        assert!(back.intervals.is_empty());
    }

    #[test]
    fn speedups_align_by_name() {
        let suite = vec![WorkloadSpec::tiny("a", 3)];
        let base = suite_ok(&suite, &SimConfig::no_uop_cache(), 5_000, 20_000);
        let with = suite_ok(&suite, &SimConfig::baseline(), 5_000, 20_000);
        let s = speedups_pct(&base, &with);
        assert_eq!(s.len(), 1);
    }

    fn fake_result(name: &str, cycles: u64) -> RunResult {
        RunResult {
            workload: name.into(),
            stats: SimStats {
                cycles,
                instructions: cycles,
                ..Default::default()
            },
            telemetry: RegistrySnapshot::default(),
            intervals: Vec::new(),
            digests: Vec::new(),
        }
    }

    #[test]
    fn align_by_workload_drops_unmatched_and_handles_dups() {
        let base = vec![
            fake_result("a", 1),
            fake_result("b", 2),
            fake_result("b", 3),
        ];
        let new = vec![
            fake_result("b", 10),
            fake_result("c", 11),
            fake_result("b", 12),
        ];
        let (b, n) = align_by_workload(&base, &new);
        assert_eq!(b.len(), 2, "only the two `b`s pair");
        assert_eq!((b[0].stats.cycles, n[0].stats.cycles), (2, 10));
        assert_eq!((b[1].stats.cycles, n[1].stats.cycles), (3, 12));
        // The aligned sets satisfy speedups_pct's precondition.
        let _ = speedups_pct(&b, &n);
    }

    #[test]
    fn injected_panic_degrades_not_kills() {
        let suite = vec![WorkloadSpec::tiny("a", 1), WorkloadSpec::tiny("b", 2)];
        let opts = SuiteOptions {
            max_attempts: 2,
            fault: Some(Arc::new(FaultPlan::parse("panic:2").unwrap())),
            ..Default::default()
        };
        let out =
            run_suite_outcome(&suite, &SimConfig::baseline(), 5_000, 20_000, &opts, None).unwrap();
        assert_eq!(out.completed(), 1);
        assert!(!out.is_complete());
        let fails = out.failures();
        assert_eq!(fails.len(), 1);
        assert_eq!(fails[0].0, 1, "workload 2 (index 1) is the victim");
        assert_eq!(fails[0].1.kind(), "workload-panic");
        assert!(fails[0].1.to_string().contains("`b`"));
        assert_eq!(
            out.outcomes[1].attempts, 2,
            "panic is retryable; both spent"
        );
        assert!(out.into_results().is_err());
    }

    #[test]
    fn transient_panic_recovers_on_retry() {
        let suite = vec![WorkloadSpec::tiny("a", 1)];
        let opts = SuiteOptions {
            max_attempts: 3,
            fault: Some(Arc::new(FaultPlan::parse("panic:1:1").unwrap())),
            ..Default::default()
        };
        let out =
            run_suite_outcome(&suite, &SimConfig::baseline(), 5_000, 20_000, &opts, None).unwrap();
        assert!(out.is_complete());
        assert_eq!(out.outcomes[0].attempts, 2, "one failure, one success");
    }

    #[test]
    fn injected_hang_is_caught_by_watchdog() {
        let suite = vec![WorkloadSpec::tiny("a", 1)];
        let opts = SuiteOptions {
            max_attempts: 1,
            fault: Some(Arc::new(FaultPlan::parse("hang:1").unwrap())),
            watchdog: Some(Some(2_000)),
            ..Default::default()
        };
        let out =
            run_suite_outcome(&suite, &SimConfig::baseline(), 5_000, 20_000, &opts, None).unwrap();
        let fails = out.failures();
        assert_eq!(fails.len(), 1);
        assert_eq!(fails[0].1.kind(), "hang");
        let snap = fails[0].1.snapshot().expect("hang carries a snapshot");
        assert_eq!(snap.committed, 0, "hang injected from cycle zero");
    }

    #[test]
    fn prefilled_slots_resume_without_resimulating() {
        let suite = vec![WorkloadSpec::tiny("a", 1), WorkloadSpec::tiny("b", 2)];
        // Slot 0 prefilled with a sentinel: if the runner re-simulated it,
        // the fake cycles value would be overwritten.
        let opts = SuiteOptions {
            prefilled: vec![Some(fake_result("a", 777)), None],
            ..Default::default()
        };
        let persisted = Mutex::new(Vec::new());
        let persist = |i: usize, _r: &RunResult| {
            persisted.lock().unwrap().push(i);
        };
        let out = run_suite_outcome(
            &suite,
            &SimConfig::baseline(),
            5_000,
            20_000,
            &opts,
            Some(&persist),
        )
        .unwrap();
        assert!(out.is_complete());
        assert_eq!(out.outcomes[0].attempts, 0, "resumed, not re-run");
        let r = out.into_results().unwrap();
        assert_eq!(r[0].stats.cycles, 777, "prefilled result kept verbatim");
        assert!(r[1].stats.cycles > 0);
        assert_eq!(
            *persisted.lock().unwrap(),
            vec![1],
            "only fresh work persisted"
        );
    }

    #[test]
    fn run_lengths_env_override() {
        // No env set in tests: defaults scale.
        let (w, m) = run_lengths(0.5);
        assert_eq!(w, DEFAULT_WARMUP / 2);
        assert_eq!(m, DEFAULT_MEASURE / 2);
    }
}
