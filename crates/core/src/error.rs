//! Structured simulation errors and failure diagnostics.
//!
//! Long suite runs (hours at the `full` profile) must survive partial
//! failure: one panicking workload, one livelocked pipeline or one
//! corrupted cache entry must degrade the run, not abort it. Every
//! fallible layer therefore reports a [`SimError`] instead of panicking,
//! and the pipeline-level failures ([`SimError::Hang`],
//! [`SimError::InvariantViolation`]) carry a [`DiagSnapshot`] of the
//! machine state at the point of failure so a degraded report is still
//! actionable.

use serde::{Deserialize, Serialize};
use std::fmt;
use ucp_telemetry::AccountingBreakdown;

/// Default hang-watchdog window: cycles without a single retired
/// instruction before the run is declared hung (`UCP_WATCHDOG`
/// overrides; `0`/`off` disables the watchdog entirely).
pub const DEFAULT_WATCHDOG_CYCLES: u64 = 500_000;

/// Reads `UCP_WATCHDOG`: `Ok(None)` disables the watchdog (`0`/`off`),
/// otherwise the no-retirement window in cycles (default
/// [`DEFAULT_WATCHDOG_CYCLES`]).
///
/// # Errors
///
/// Unparseable values are a hard configuration error, consistent with
/// `UCP_INTERVAL` and `UCP_FIG_PROFILE`.
pub fn watchdog_from_env() -> Result<Option<u64>, String> {
    match std::env::var("UCP_WATCHDOG") {
        Err(_) => Ok(Some(DEFAULT_WATCHDOG_CYCLES)),
        Ok(s) => {
            let s = s.trim().to_ascii_lowercase();
            if s.is_empty() {
                Ok(Some(DEFAULT_WATCHDOG_CYCLES))
            } else if s == "off" {
                Ok(None)
            } else {
                match s.parse::<u64>() {
                    Ok(0) => Ok(None),
                    Ok(n) => Ok(Some(n)),
                    Err(_) => Err(format!(
                        "UCP_WATCHDOG=`{s}` is not a cycle count; \
                         expected an integer, `0`, or `off`"
                    )),
                }
            }
        }
    }
}

/// Machine state captured at the point of a simulation failure. Attached
/// to [`SimError::Hang`] and [`SimError::InvariantViolation`] so degraded
/// suite reports can say *where* a workload died, not just that it did.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct DiagSnapshot {
    /// Machine cycle at capture time.
    pub cycle: u64,
    /// Instructions committed so far (whole run, not the window).
    pub committed: u64,
    /// Cycle of the most recent retirement (== `cycle` unless hung).
    pub last_commit_cycle: u64,
    /// PC of the last retired instruction (`None`: nothing retired yet).
    pub last_retired_pc: Option<u64>,
    /// Address-generation PC — on a hang, where fetch is stuck.
    pub agen_pc: u64,
    /// Whether address generation is drained (no-target indirect/return).
    pub agen_dead: bool,
    /// Whether an unresolved misprediction is pending.
    pub pending_mispredict: bool,
    /// FTQ occupancy.
    pub ftq_depth: usize,
    /// µ-op queue occupancy.
    pub uopq_depth: usize,
    /// Backend (ROB) occupancy.
    pub rob_occupancy: usize,
    /// Cycle-accounting breakdown over the whole run so far.
    pub accounting: AccountingBreakdown,
    /// FNV-1a digest of the full serialized machine state at capture time
    /// (0 in reports written before checkpointing existed).
    #[serde(default)]
    pub state_digest: u64,
}

impl fmt::Display for DiagSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let pc = match self.last_retired_pc {
            Some(pc) => format!("{pc:#x}"),
            None => "<none>".to_string(),
        };
        write!(
            f,
            "cycle {} committed {} last_retired_pc {} (at cycle {}) \
             agen_pc {:#x}{} ftq {} uopq {} rob {}",
            self.cycle,
            self.committed,
            pc,
            self.last_commit_cycle,
            self.agen_pc,
            if self.agen_dead { " (drained)" } else { "" },
            self.ftq_depth,
            self.uopq_depth,
            self.rob_occupancy,
        )?;
        if self.pending_mispredict {
            write!(f, " pending-mispredict")?;
        }
        if self.state_digest != 0 {
            write!(f, " digest {:#018x}", self.state_digest)?;
        }
        Ok(())
    }
}

/// Every way a simulation (or the harness around it) can fail. The suite
/// runner treats [`Hang`](SimError::Hang) and
/// [`WorkloadPanic`](SimError::WorkloadPanic) as potentially transient
/// (bounded retry); everything else is deterministic and fails fast.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub enum SimError {
    /// The hang watchdog saw no retirement for `window` cycles.
    Hang {
        /// Workload name (empty when raised outside a suite run).
        workload: String,
        /// The watchdog window that expired, in cycles.
        window: u64,
        /// Machine state at expiry — `agen_pc`/`last_retired_pc` name the
        /// stuck location.
        snapshot: Box<DiagSnapshot>,
    },
    /// A model invariant failed (e.g. cycle accounting no longer tiles
    /// the measured cycles). Always a simulator bug, never a workload
    /// property — but one bad workload must not kill a 30-workload suite.
    InvariantViolation {
        /// Workload name (empty when raised outside a suite run).
        workload: String,
        /// What was violated, human-readable.
        detail: String,
        /// Machine state at the violation.
        snapshot: Box<DiagSnapshot>,
    },
    /// Malformed configuration — bad environment knobs, inconsistent
    /// suite setup. Detected before simulating anything.
    BadConfig {
        /// What was wrong, including the accepted values.
        detail: String,
    },
    /// A workload's simulation panicked and was caught at the isolation
    /// boundary.
    WorkloadPanic {
        /// Workload name.
        workload: String,
        /// The panic payload, stringified.
        payload: String,
    },
    /// An I/O failure in the harness (result cache, report files).
    Io {
        /// The path involved.
        path: String,
        /// The underlying error, stringified.
        detail: String,
    },
}

impl SimError {
    /// A short stable tag for matching in logs and CI greps.
    pub fn kind(&self) -> &'static str {
        match self {
            SimError::Hang { .. } => "hang",
            SimError::InvariantViolation { .. } => "invariant-violation",
            SimError::BadConfig { .. } => "bad-config",
            SimError::WorkloadPanic { .. } => "workload-panic",
            SimError::Io { .. } => "io",
        }
    }

    /// Whether the suite runner should retry this failure. Hangs and
    /// panics can be transient (seed-sensitive corner, injected fault);
    /// configuration, invariant and I/O failures are deterministic.
    pub fn is_retryable(&self) -> bool {
        matches!(self, SimError::Hang { .. } | SimError::WorkloadPanic { .. })
    }

    /// Stamps the workload name onto errors raised below the suite layer
    /// (where the name is unknown).
    #[must_use]
    pub fn for_workload(mut self, name: &str) -> Self {
        match &mut self {
            SimError::Hang { workload, .. }
            | SimError::InvariantViolation { workload, .. }
            | SimError::WorkloadPanic { workload, .. } => {
                if workload.is_empty() {
                    *workload = name.to_string();
                }
            }
            SimError::BadConfig { .. } | SimError::Io { .. } => {}
        }
        self
    }

    /// The diagnostic snapshot, when this error carries one.
    pub fn snapshot(&self) -> Option<&DiagSnapshot> {
        match self {
            SimError::Hang { snapshot, .. } | SimError::InvariantViolation { snapshot, .. } => {
                Some(snapshot)
            }
            _ => None,
        }
    }
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Hang {
                workload,
                window,
                snapshot,
            } => {
                write!(
                    f,
                    "hang: no retirement for {window} cycles{}; {snapshot}",
                    ctx(workload)
                )
            }
            SimError::InvariantViolation {
                workload,
                detail,
                snapshot,
            } => {
                write!(
                    f,
                    "invariant violation{}: {detail}; {snapshot}",
                    ctx(workload)
                )
            }
            SimError::BadConfig { detail } => write!(f, "bad configuration: {detail}"),
            SimError::WorkloadPanic { workload, payload } => {
                write!(f, "workload panic{}: {payload}", ctx(workload))
            }
            SimError::Io { path, detail } => write!(f, "io error at {path}: {detail}"),
        }
    }
}

fn ctx(workload: &str) -> String {
    if workload.is_empty() {
        String::new()
    } else {
        format!(" in workload `{workload}`")
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_stuck_pc_on_hang() {
        let e = SimError::Hang {
            workload: "srv0".into(),
            window: 500_000,
            snapshot: Box::new(DiagSnapshot {
                cycle: 123,
                last_retired_pc: Some(0x40a0),
                agen_pc: 0x5000,
                ..Default::default()
            }),
        };
        let s = e.to_string();
        assert!(s.contains("srv0"), "{s}");
        assert!(s.contains("0x40a0"), "{s}");
        assert!(s.contains("0x5000"), "{s}");
        assert_eq!(e.kind(), "hang");
        assert!(e.is_retryable());
        assert!(e.snapshot().is_some());
    }

    #[test]
    fn for_workload_stamps_only_empty_names() {
        let e = SimError::WorkloadPanic {
            workload: String::new(),
            payload: "boom".into(),
        }
        .for_workload("a");
        assert!(e.to_string().contains("`a`"));
        let e = e.for_workload("b");
        assert!(e.to_string().contains("`a`"), "existing name kept");
        assert!(!SimError::BadConfig { detail: "x".into() }.is_retryable());
    }

    #[test]
    fn sim_error_round_trips_through_serde() {
        let e = SimError::InvariantViolation {
            workload: "w".into(),
            detail: "sum != total".into(),
            snapshot: Box::new(DiagSnapshot {
                cycle: 9,
                committed: 4,
                ..Default::default()
            }),
        };
        let text = serde_json::to_string(&e).unwrap();
        let back: SimError = serde_json::from_str(&text).unwrap();
        assert_eq!(back.kind(), "invariant-violation");
        assert_eq!(back.snapshot().unwrap().cycle, 9);
    }

    #[test]
    fn watchdog_env_parses_strictly() {
        // Env mutation: keep every UCP_WATCHDOG case in this one test.
        std::env::remove_var("UCP_WATCHDOG");
        assert_eq!(watchdog_from_env().unwrap(), Some(DEFAULT_WATCHDOG_CYCLES));
        std::env::set_var("UCP_WATCHDOG", "25000");
        assert_eq!(watchdog_from_env().unwrap(), Some(25_000));
        std::env::set_var("UCP_WATCHDOG", "off");
        assert_eq!(watchdog_from_env().unwrap(), None);
        std::env::set_var("UCP_WATCHDOG", "0");
        assert_eq!(watchdog_from_env().unwrap(), None);
        std::env::set_var("UCP_WATCHDOG", "soon");
        assert!(watchdog_from_env().is_err());
        std::env::remove_var("UCP_WATCHDOG");
    }
}
