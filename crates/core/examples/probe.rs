//! Calibration probe: prints the key paper metrics (IPC, µ-op cache hit
//! rate, switch PKI, MPKI, UCP engine counters) for a cross-section of the
//! suite under the no-µ-op-cache, baseline and UCP configurations.
//!
//! ```text
//! cargo run --release -p ucp-core --example probe
//! ```

use ucp_core::{SimConfig, Simulator};
use ucp_workloads::suite;

fn main() {
    let names = ["srv00", "srv05", "srv10", "int02", "fp00", "crypto01"];
    let (w, m) = (1_000_000u64, 4_000_000u64);
    println!(
        "{:<9} {:>6} {:>6} {:>6} {:>7} {:>7} {:>6} {:>6} {:>7} {:>7}",
        "wl", "noUC", "base", "ucp", "hit%", "swPKI", "mpki", "l1i%", "d.base%", "d.ucp%"
    );
    for n in names {
        let spec = suite::by_name(n).unwrap();
        let no_uc = Simulator::run_spec(&spec, &SimConfig::no_uop_cache(), w, m);
        let base = Simulator::run_spec(&spec, &SimConfig::baseline(), w, m);
        let ucp = Simulator::run_spec(&spec, &SimConfig::ucp(), w, m);
        println!(
            "{:<9} {:>6.3} {:>6.3} {:>6.3} {:>7.1} {:>7.2} {:>6.2} {:>6.2} {:>7.2} {:>7.2}",
            n,
            no_uc.ipc(),
            base.ipc(),
            ucp.ipc(),
            base.uop_hit_rate_pct(),
            base.switch_pki(),
            base.cond_mpki(),
            base.l1i_miss_rate_pct(),
            (base.ipc() / no_uc.ipc() - 1.0) * 100.0,
            (ucp.ipc() / base.ipc() - 1.0) * 100.0
        );
        eprintln!("  ucp: walks={} inserted={} timely={} late={} acc={:.1}% lines/walk={:.1} h2p cov={:.1} acc={:.1}",
            ucp.ucp.walks_started, ucp.ucp.entries_inserted, ucp.ucp.timely_used, ucp.ucp.late_used,
            ucp.ucp.prefetch_accuracy_pct(),
            ucp.ucp.lines_prefetched as f64 / ucp.ucp.walks_started.max(1) as f64,
            ucp.h2p_ucp.coverage_pct(), ucp.h2p_ucp.accuracy_pct());
        eprintln!(
            "  stop: thr={} btbmiss={} ind={} nobr={} preempt={} filt={} conflicts={}",
            ucp.ucp.stopped_threshold,
            ucp.ucp.stopped_btb_miss,
            ucp.ucp.stopped_indirect,
            ucp.ucp.stopped_no_branch,
            ucp.ucp.preempted,
            ucp.ucp.filtered_present,
            ucp.ucp.btb_conflicts
        );
    }
}
