//! The µ-op cache: decoded-instruction storage with the paper's entry
//! geometry and termination semantics.
//!
//! Entries cover up to 8 µ-ops inside one 32 B window and are keyed by
//! their exact *start address*: fetch resumes at arbitrary instruction
//! boundaries (taken-branch targets), and a window may hold several entries
//! with different starts or branch splits — the paper's "a new entry that
//! covers the same 32B region is started … in another way of the same set".
//! Entry *construction* rules (terminate on predicted-taken branch, window
//! boundary, 8 µ-ops, >2 branches) are enforced by the pipeline's entry
//! builder; this module stores, replaces and finds entries.

use serde::{Deserialize, Serialize};
use sim_isa::Addr;
use ucp_telemetry::{Category, Counter, Telemetry, Tracer};

/// µ-op cache geometry.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct UopCacheConfig {
    /// Number of sets.
    pub sets: usize,
    /// Associativity.
    pub ways: usize,
    /// Max µ-ops per entry.
    pub uops_per_entry: usize,
}

impl UopCacheConfig {
    /// Table II baseline: 4Kops = 64 sets × 8 ways × 8 µ-ops.
    pub fn kops_4() -> Self {
        UopCacheConfig {
            sets: 64,
            ways: 8,
            uops_per_entry: 8,
        }
    }

    /// A scaled configuration holding `kops × 1024` µ-ops (ways and entry
    /// size fixed, sets scaled) — the Fig. 4 size sweep.
    ///
    /// # Panics
    ///
    /// Panics unless `kops` is a power of two ≥ 4.
    pub fn kops(kops: usize) -> Self {
        assert!(kops >= 4 && kops.is_power_of_two());
        UopCacheConfig {
            sets: 16 * kops,
            ways: 8,
            uops_per_entry: 8,
        }
    }

    /// Total µ-op capacity.
    pub fn capacity_uops(&self) -> usize {
        self.sets * self.ways * self.uops_per_entry
    }

    /// Storage in bits: per entry, `uops_per_entry` 32-bit µ-ops + tag(20)
    ///   + start offset(3) + count(4) + two branch-target immediates (2×32)
    ///   + valid/LRU/meta(8).
    pub fn storage_bits(&self) -> u64 {
        let per_entry = self.uops_per_entry as u64 * 32 + 20 + 3 + 4 + 64 + 8;
        (self.sets * self.ways) as u64 * per_entry
    }
}

/// Why an entry ended (recorded for diagnostics and tests).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum EntryEnd {
    /// Ended at a predicted-taken branch.
    TakenBranch,
    /// Reached the 32 B window boundary.
    WindowBoundary,
    /// Hit the µ-op limit.
    UopLimit,
    /// Would have needed a third branch-target slot.
    BranchSlots,
}

/// A built entry handed to [`UopCache::insert`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct UopEntrySpec {
    /// First instruction address covered.
    pub start: Addr,
    /// Number of µ-ops (1..=8).
    pub num_uops: u8,
    /// Why the builder terminated the entry.
    pub end: EntryEnd,
    /// Entry was filled by UCP alternate-path prefetching.
    pub prefetched: bool,
    /// UCP prefetch instance id (trigger H2P occurrence), 0 for demand.
    pub trigger: u64,
}

/// Result of a hit.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct UopHit {
    /// µ-ops supplied by the entry.
    pub num_uops: u8,
    /// This hit is the first demand use of a UCP-prefetched entry.
    pub first_prefetch_use: bool,
    /// The prefetch instance that created the entry (0 = demand fill).
    pub trigger: u64,
}

/// An entry displaced by [`UopCache::insert`] (for prefetch-accuracy
/// accounting).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Evicted {
    /// The displaced entry's start address.
    pub start: Addr,
    /// It had been filled by a prefetch.
    pub prefetched: bool,
    /// It was demanded at least once before eviction.
    pub used: bool,
    /// Its prefetch instance id.
    pub trigger: u64,
}

#[derive(Clone, Copy, Debug)]
struct Slot {
    valid: bool,
    start: Addr,
    num_uops: u8,
    lru: u64,
    prefetched: bool,
    used: bool,
    trigger: u64,
}

impl Default for Slot {
    fn default() -> Self {
        Slot {
            valid: false,
            start: Addr::NULL,
            num_uops: 0,
            lru: 0,
            prefetched: false,
            used: false,
            trigger: 0,
        }
    }
}

/// Aggregate µ-op cache statistics.
#[derive(Clone, Copy, Debug, Default, Serialize)]
pub struct UopCacheStats {
    /// Demand lookups.
    pub lookups: u64,
    /// Demand hits.
    pub hits: u64,
    /// Entries inserted by the demand (build) path.
    pub demand_fills: u64,
    /// Entries inserted by UCP prefetching.
    pub prefetch_fills: u64,
    /// Prefetched entries evicted without ever being used.
    pub prefetch_evicted_unused: u64,
}

/// Telemetry handles for the `frontend.uopc.*` namespace; detached (and
/// therefore unobservable but still branch-free) until
/// [`UopCache::attach_telemetry`] binds them.
#[derive(Clone, Debug, Default)]
struct UopcTelemetry {
    tracer: Tracer,
    hits: Counter,
    misses: Counter,
    demand_fills: Counter,
    prefetch_fills: Counter,
    evictions: Counter,
}

impl UopcTelemetry {
    fn bound_to(t: &Telemetry) -> Self {
        UopcTelemetry {
            tracer: t.tracer.clone(),
            hits: t.registry.counter("frontend.uopc.hits"),
            misses: t.registry.counter("frontend.uopc.misses"),
            demand_fills: t.registry.counter("frontend.uopc.demand_fills"),
            prefetch_fills: t.registry.counter("frontend.uopc.prefetch_fills"),
            evictions: t.registry.counter("frontend.uopc.evictions"),
        }
    }
}

/// The µ-op cache.
#[derive(Clone, Debug)]
pub struct UopCache {
    cfg: UopCacheConfig,
    slots: Vec<Slot>,
    stamp: u64,
    stats: UopCacheStats,
    tele: UopcTelemetry,
}

impl UopCache {
    /// Creates an empty µ-op cache.
    ///
    /// # Panics
    ///
    /// Panics if sets is not a power of two.
    pub fn new(cfg: UopCacheConfig) -> Self {
        assert!(cfg.sets.is_power_of_two() && cfg.ways > 0);
        UopCache {
            slots: vec![Slot::default(); cfg.sets * cfg.ways],
            stamp: 0,
            stats: UopCacheStats::default(),
            tele: UopcTelemetry::default(),
            cfg,
        }
    }

    /// Binds the `frontend.uopc.*` counters and the `UopCache` trace
    /// category to `t`'s registry and tracer.
    pub fn attach_telemetry(&mut self, t: &Telemetry) {
        self.tele = UopcTelemetry::bound_to(t);
    }

    /// The geometry.
    pub fn config(&self) -> &UopCacheConfig {
        &self.cfg
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &UopCacheStats {
        &self.stats
    }

    #[inline]
    fn set_of(&self, addr: Addr) -> usize {
        ((addr.raw() >> 5) as usize) & (self.cfg.sets - 1)
    }

    /// The tag-array bank (even/odd set interleave) an access uses — UCP
    /// shares tag-check bandwidth between demand and alternate paths by
    /// banking (§IV-D).
    #[inline]
    pub fn bank_of(&self, addr: Addr) -> usize {
        self.set_of(addr) & 1
    }

    /// Demand lookup for an entry starting exactly at `start`.
    pub fn lookup(&mut self, start: Addr) -> Option<UopHit> {
        self.stats.lookups += 1;
        self.stamp += 1;
        let set = self.set_of(start);
        let base = set * self.cfg.ways;
        for s in &mut self.slots[base..base + self.cfg.ways] {
            if s.valid && s.start == start {
                s.lru = self.stamp;
                let first = s.prefetched && !s.used;
                s.used = true;
                self.stats.hits += 1;
                self.tele.hits.inc();
                return Some(UopHit {
                    num_uops: s.num_uops,
                    first_prefetch_use: first,
                    trigger: s.trigger,
                });
            }
        }
        self.tele.misses.inc();
        None
    }

    /// Presence check without statistics or LRU effects (the UCP tag check
    /// that filters already-cached alternate-path entries).
    pub fn probe(&self, start: Addr) -> bool {
        let set = self.set_of(start);
        let base = set * self.cfg.ways;
        self.slots[base..base + self.cfg.ways]
            .iter()
            .any(|s| s.valid && s.start == start)
    }

    /// Inserts a built entry; returns the displaced entry, if any.
    pub fn insert(&mut self, spec: UopEntrySpec) -> Option<Evicted> {
        debug_assert!(spec.num_uops >= 1 && spec.num_uops as usize <= self.cfg.uops_per_entry);
        self.stamp += 1;
        let set = self.set_of(spec.start);
        let base = set * self.cfg.ways;
        if spec.prefetched {
            self.stats.prefetch_fills += 1;
            self.tele.prefetch_fills.inc();
        } else {
            self.stats.demand_fills += 1;
            self.tele.demand_fills.inc();
        }
        self.tele.tracer.emit(Category::UopCache, "insert", || {
            format!(
                "start={:#x} n={} prefetched={} trigger={}",
                spec.start.raw(),
                spec.num_uops,
                spec.prefetched,
                spec.trigger
            )
        });
        // Replace an identical-start entry in place.
        if let Some(s) = self.slots[base..base + self.cfg.ways]
            .iter_mut()
            .find(|s| s.valid && s.start == spec.start)
        {
            s.num_uops = spec.num_uops;
            s.lru = self.stamp;
            // A demand rebuild clears prefetch attribution.
            if !spec.prefetched {
                s.prefetched = false;
            }
            return None;
        }
        let victim = self.slots[base..base + self.cfg.ways]
            .iter_mut()
            .min_by_key(|s| if s.valid { s.lru } else { 0 })
            .expect("ways nonempty");
        let evicted = victim.valid.then_some(Evicted {
            start: victim.start,
            prefetched: victim.prefetched,
            used: victim.used,
            trigger: victim.trigger,
        });
        if let Some(e) = &evicted {
            self.tele.evictions.inc();
            if e.prefetched && !e.used {
                self.stats.prefetch_evicted_unused += 1;
            }
            self.tele.tracer.emit(Category::UopCache, "evict", || {
                format!(
                    "start={:#x} prefetched={} used={}",
                    e.start.raw(),
                    e.prefetched,
                    e.used
                )
            });
        }
        *victim = Slot {
            valid: true,
            start: spec.start,
            num_uops: spec.num_uops,
            lru: self.stamp,
            prefetched: spec.prefetched,
            used: false,
            trigger: spec.trigger,
        };
        evicted
    }

    /// Demand hit rate so far.
    pub fn hit_rate(&self) -> f64 {
        if self.stats.lookups == 0 {
            1.0
        } else {
            self.stats.hits as f64 / self.stats.lookups as f64
        }
    }

    /// Number of valid entries.
    pub fn occupancy(&self) -> usize {
        self.slots.iter().filter(|s| s.valid).count()
    }

    /// Serializes the mutable state (slots, LRU stamp, statistics).
    /// Telemetry handles are rebound via [`UopCache::attach_telemetry`],
    /// not checkpointed.
    pub fn save_state(&self, w: &mut sim_isa::StateWriter) {
        w.put_usize(self.slots.len());
        for s in &self.slots {
            w.put_bool(s.valid);
            w.put_addr(s.start);
            w.put_u8(s.num_uops);
            w.put_u64(s.lru);
            w.put_bool(s.prefetched);
            w.put_bool(s.used);
            w.put_u64(s.trigger);
        }
        w.put_u64(self.stamp);
        w.put_u64(self.stats.lookups);
        w.put_u64(self.stats.hits);
        w.put_u64(self.stats.demand_fills);
        w.put_u64(self.stats.prefetch_fills);
        w.put_u64(self.stats.prefetch_evicted_unused);
    }

    /// Restores state written by [`UopCache::save_state`].
    pub fn restore_state(&mut self, r: &mut sim_isa::StateReader) {
        let n = r.get_usize();
        assert_eq!(n, self.slots.len(), "uop-cache geometry mismatch");
        for s in &mut self.slots {
            s.valid = r.get_bool();
            s.start = r.get_addr();
            s.num_uops = r.get_u8();
            s.lru = r.get_u64();
            s.prefetched = r.get_bool();
            s.used = r.get_bool();
            s.trigger = r.get_u64();
        }
        self.stamp = r.get_u64();
        self.stats.lookups = r.get_u64();
        self.stats.hits = r.get_u64();
        self.stats.demand_fills = r.get_u64();
        self.stats.prefetch_fills = r.get_u64();
        self.stats.prefetch_evicted_unused = r.get_u64();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(start: u64, n: u8) -> UopEntrySpec {
        UopEntrySpec {
            start: Addr::new(start),
            num_uops: n,
            end: EntryEnd::WindowBoundary,
            prefetched: false,
            trigger: 0,
        }
    }

    #[test]
    fn config_capacity_matches_table_ii() {
        let c = UopCacheConfig::kops_4();
        assert_eq!(c.capacity_uops(), 4096);
        assert_eq!(UopCacheConfig::kops(4), c);
        assert_eq!(UopCacheConfig::kops(64).capacity_uops(), 64 * 1024);
    }

    #[test]
    fn exact_start_keying() {
        let mut u = UopCache::new(UopCacheConfig::kops_4());
        u.insert(spec(0x1000, 8));
        assert!(u.lookup(Addr::new(0x1000)).is_some());
        assert!(
            u.lookup(Addr::new(0x1004)).is_none(),
            "mid-entry starts are distinct entries (alias ways)"
        );
    }

    #[test]
    fn same_window_different_starts_coexist() {
        let mut u = UopCache::new(UopCacheConfig::kops_4());
        u.insert(spec(0x1000, 8));
        u.insert(spec(0x1010, 4));
        assert!(u.probe(Addr::new(0x1000)));
        assert!(u.probe(Addr::new(0x1010)));
    }

    #[test]
    fn lru_eviction_within_set() {
        let cfg = UopCacheConfig {
            sets: 2,
            ways: 2,
            uops_per_entry: 8,
        };
        let mut u = UopCache::new(cfg);
        // Set index from bit 5: same set = window addresses 128 B apart.
        u.insert(spec(0x000, 8));
        u.insert(spec(0x080, 8));
        let _ = u.lookup(Addr::new(0x000));
        let ev = u.insert(spec(0x100, 8)).expect("must evict");
        assert_eq!(ev.start, Addr::new(0x080));
    }

    #[test]
    fn prefetch_attribution_and_first_use() {
        let mut u = UopCache::new(UopCacheConfig::kops_4());
        u.insert(UopEntrySpec {
            prefetched: true,
            trigger: 42,
            ..spec(0x2000, 6)
        });
        assert_eq!(u.stats().prefetch_fills, 1);
        let h = u.lookup(Addr::new(0x2000)).unwrap();
        assert!(h.first_prefetch_use);
        assert_eq!(h.trigger, 42);
        let h2 = u.lookup(Addr::new(0x2000)).unwrap();
        assert!(!h2.first_prefetch_use, "only the first use counts");
    }

    #[test]
    fn unused_prefetch_eviction_counted() {
        let cfg = UopCacheConfig {
            sets: 1,
            ways: 1,
            uops_per_entry: 8,
        };
        let mut u = UopCache::new(cfg);
        u.insert(UopEntrySpec {
            prefetched: true,
            trigger: 7,
            ..spec(0x000, 8)
        });
        u.insert(spec(0x020, 8)); // evicts the unused prefetch
        assert_eq!(u.stats().prefetch_evicted_unused, 1);
    }

    #[test]
    fn duplicate_insert_updates_in_place() {
        let mut u = UopCache::new(UopCacheConfig::kops_4());
        u.insert(spec(0x3000, 4));
        u.insert(spec(0x3000, 8));
        assert_eq!(u.occupancy(), 1);
        assert_eq!(u.lookup(Addr::new(0x3000)).unwrap().num_uops, 8);
    }

    #[test]
    fn banks_split_by_set_parity() {
        let u = UopCache::new(UopCacheConfig::kops_4());
        assert_ne!(u.bank_of(Addr::new(0x00)), u.bank_of(Addr::new(0x20)));
        assert_eq!(u.bank_of(Addr::new(0x00)), u.bank_of(Addr::new(0x40)));
    }

    #[test]
    fn hit_rate_math() {
        let mut u = UopCache::new(UopCacheConfig::kops_4());
        u.insert(spec(0x100, 8));
        let _ = u.lookup(Addr::new(0x100));
        let _ = u.lookup(Addr::new(0x140));
        assert!((u.hit_rate() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn telemetry_mirrors_fill_and_eviction_stats() {
        let t = Telemetry::with_trace("uopc", 16);
        let cfg = UopCacheConfig {
            sets: 1,
            ways: 1,
            uops_per_entry: 8,
        };
        let mut u = UopCache::new(cfg);
        u.attach_telemetry(&t);
        u.insert(UopEntrySpec {
            prefetched: true,
            trigger: 3,
            ..spec(0x000, 8)
        });
        u.insert(spec(0x020, 8)); // evicts the prefetch
        let _ = u.lookup(Addr::new(0x020));
        let _ = u.lookup(Addr::new(0x040));
        let snap = t.registry.snapshot();
        assert_eq!(snap.counters["frontend.uopc.prefetch_fills"], 1);
        assert_eq!(snap.counters["frontend.uopc.demand_fills"], 1);
        assert_eq!(snap.counters["frontend.uopc.evictions"], 1);
        assert_eq!(snap.counters["frontend.uopc.hits"], 1);
        assert_eq!(snap.counters["frontend.uopc.misses"], 1);
        let names: Vec<&str> = t.tracer.events().iter().map(|e| e.name).collect();
        assert_eq!(names, vec!["insert", "insert", "evict"]);
    }

    #[test]
    fn storage_is_tens_of_kb() {
        let kb = UopCacheConfig::kops_4().storage_bits() / 8192;
        assert!(
            (15..30).contains(&kb),
            "4Kops µ-op cache ≈ 22 KB of storage, got {kb}"
        );
    }
}
