//! Bounded FIFO queues: FTQ, Alt-FTQ, decode and dispatch buffers all share
//! this shape.

use std::collections::VecDeque;

/// A bounded FIFO. Pushing into a full queue is rejected (backpressure),
/// which is exactly how the paper's frontend queues throttle upstream
/// stages.
#[derive(Clone, Debug)]
pub struct BoundedQueue<T> {
    q: VecDeque<T>,
    cap: usize,
}

impl<T> BoundedQueue<T> {
    /// Creates an empty queue with room for `cap` items.
    ///
    /// # Panics
    ///
    /// Panics if `cap` is zero.
    pub fn new(cap: usize) -> Self {
        assert!(cap > 0, "queue capacity must be nonzero");
        BoundedQueue {
            q: VecDeque::with_capacity(cap),
            cap,
        }
    }

    /// Capacity.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Current occupancy.
    pub fn len(&self) -> usize {
        self.q.len()
    }

    /// `true` if empty.
    pub fn is_empty(&self) -> bool {
        self.q.is_empty()
    }

    /// `true` if no more items fit.
    pub fn is_full(&self) -> bool {
        self.q.len() >= self.cap
    }

    /// Free slots.
    pub fn free(&self) -> usize {
        self.cap - self.q.len()
    }

    /// Pushes an item; returns it back if the queue is full.
    pub fn push(&mut self, item: T) -> Result<(), T> {
        if self.is_full() {
            Err(item)
        } else {
            self.q.push_back(item);
            Ok(())
        }
    }

    /// Pops the oldest item.
    pub fn pop(&mut self) -> Option<T> {
        self.q.pop_front()
    }

    /// The oldest item, if any.
    pub fn front(&self) -> Option<&T> {
        self.q.front()
    }

    /// Mutable access to the oldest item.
    pub fn front_mut(&mut self) -> Option<&mut T> {
        self.q.front_mut()
    }

    /// Drops everything (pipeline flush).
    pub fn clear(&mut self) {
        self.q.clear();
    }

    /// Iterates oldest → youngest.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.q.iter()
    }

    /// The `i`-th oldest item, if present.
    pub fn get(&self, i: usize) -> Option<&T> {
        self.q.get(i)
    }

    /// Mutable access to the `i`-th oldest item.
    pub fn get_mut(&mut self, i: usize) -> Option<&mut T> {
        self.q.get_mut(i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order() {
        let mut q = BoundedQueue::new(3);
        q.push(1).unwrap();
        q.push(2).unwrap();
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn full_queue_rejects() {
        let mut q = BoundedQueue::new(2);
        q.push(1).unwrap();
        q.push(2).unwrap();
        assert!(q.is_full());
        assert_eq!(q.push(3), Err(3));
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn clear_empties() {
        let mut q = BoundedQueue::new(2);
        q.push('a').unwrap();
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.free(), 2);
    }

    #[test]
    fn front_views() {
        let mut q = BoundedQueue::new(2);
        q.push(10).unwrap();
        assert_eq!(q.front(), Some(&10));
        *q.front_mut().unwrap() = 11;
        assert_eq!(q.pop(), Some(11));
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_capacity_rejected() {
        let _: BoundedQueue<u8> = BoundedQueue::new(0);
    }
}
