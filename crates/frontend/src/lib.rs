//! Frontend structures for the UCP reproduction: the banked BTB, the
//! return-address stack, bounded frontend queues (FTQ/Alt-FTQ/decode
//! buffers) and the µ-op cache.
//!
//! These are the hardware structures of the paper's Fig. 1 and Fig. 8; the
//! cycle-level control logic that drives them (stream/build modes, FDP
//! address generation, UCP's alternate walker) lives in `ucp-core`.
//!
//! # Examples
//!
//! ```
//! use ucp_frontend::{UopCache, UopCacheConfig, UopEntrySpec, EntryEnd};
//! use sim_isa::Addr;
//!
//! let mut uc = UopCache::new(UopCacheConfig::kops_4());
//! uc.insert(UopEntrySpec {
//!     start: Addr::new(0x1_0000),
//!     num_uops: 8,
//!     end: EntryEnd::WindowBoundary,
//!     prefetched: false,
//!     trigger: 0,
//! });
//! assert!(uc.lookup(Addr::new(0x1_0000)).is_some());
//! ```

pub mod btb;
pub mod queue;
pub mod ras;
pub mod uop_cache;

pub use btb::{Btb, BtbConfig, BtbEntry};
pub use queue::BoundedQueue;
pub use ras::{Ras, RasCheckpoint};
pub use uop_cache::{
    EntryEnd, Evicted, UopCache, UopCacheConfig, UopCacheStats, UopEntrySpec, UopHit,
};
