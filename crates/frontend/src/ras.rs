//! Return address stack, with checkpointing and the Alt-RAS copy
//! operation UCP needs when an alternate path starts (§IV-C).

use sim_isa::Addr;

/// A circular return-address stack.
///
/// Overflow wraps (oldest entries are silently overwritten); underflow
/// returns `None`. Checkpoints capture the stack pointer and the top entry,
/// which repairs the common single-call/return speculation case.
#[derive(Clone, Debug)]
pub struct Ras {
    entries: Vec<Addr>,
    /// Index one past the top (number of pushes mod capacity semantics).
    sp: usize,
    depth: usize,
}

/// A RAS checkpoint (pointer + top entry).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RasCheckpoint {
    sp: usize,
    depth: usize,
    top: Addr,
}

impl Ras {
    /// Creates an empty RAS with `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0);
        Ras {
            entries: vec![Addr::NULL; capacity],
            sp: 0,
            depth: 0,
        }
    }

    /// Number of live entries (≤ capacity).
    pub fn depth(&self) -> usize {
        self.depth.min(self.entries.len())
    }

    /// Capacity.
    pub fn capacity(&self) -> usize {
        self.entries.len()
    }

    /// Pushes a return address (a call was fetched).
    pub fn push(&mut self, ra: Addr) {
        self.entries[self.sp] = ra;
        self.sp = (self.sp + 1) % self.entries.len();
        self.depth = (self.depth + 1).min(self.entries.len());
    }

    /// Pops the predicted return address (a return was fetched).
    pub fn pop(&mut self) -> Option<Addr> {
        if self.depth == 0 {
            return None;
        }
        self.sp = (self.sp + self.entries.len() - 1) % self.entries.len();
        self.depth -= 1;
        Some(self.entries[self.sp])
    }

    /// The address a `pop` would return, without popping.
    pub fn peek(&self) -> Option<Addr> {
        if self.depth == 0 {
            return None;
        }
        let i = (self.sp + self.entries.len() - 1) % self.entries.len();
        Some(self.entries[i])
    }

    /// Captures a checkpoint.
    pub fn checkpoint(&self) -> RasCheckpoint {
        RasCheckpoint {
            sp: self.sp,
            depth: self.depth,
            top: self.peek().unwrap_or(Addr::NULL),
        }
    }

    /// Restores a checkpoint (repairs the top entry).
    pub fn restore(&mut self, cp: &RasCheckpoint) {
        self.sp = cp.sp;
        self.depth = cp.depth;
        if cp.depth > 0 {
            let i = (self.sp + self.entries.len() - 1) % self.entries.len();
            self.entries[i] = cp.top;
        }
    }

    /// Replaces this RAS's contents with the top of `other` (the paper's
    /// "main RAS is copied into the Alt-RAS when alternate path UCP
    /// starts"). Keeps at most `self.capacity()` youngest entries.
    pub fn copy_from(&mut self, other: &Ras) {
        let take = other.depth().min(self.capacity());
        // Walk the youngest `take` entries of `other`, oldest-first.
        let mut addrs = Vec::with_capacity(take);
        let mut idx = other.sp;
        for _ in 0..take {
            idx = (idx + other.entries.len() - 1) % other.entries.len();
            addrs.push(other.entries[idx]);
        }
        addrs.reverse();
        self.sp = 0;
        self.depth = 0;
        for a in addrs {
            self.push(a);
        }
    }

    /// Storage in bits (32-bit compressed return addresses).
    pub fn storage_bits(&self) -> u64 {
        self.entries.len() as u64 * 32
    }

    /// Serializes the full stack contents and pointers.
    pub fn save_state(&self, w: &mut sim_isa::StateWriter) {
        w.put_usize(self.entries.len());
        for &a in &self.entries {
            w.put_addr(a);
        }
        w.put_usize(self.sp);
        w.put_usize(self.depth);
    }

    /// Restores state written by [`Ras::save_state`].
    pub fn restore_state(&mut self, r: &mut sim_isa::StateReader) {
        let n = r.get_usize();
        assert_eq!(n, self.entries.len(), "RAS capacity mismatch");
        for a in &mut self.entries {
            *a = r.get_addr();
        }
        self.sp = r.get_usize();
        self.depth = r.get_usize();
    }
}

impl RasCheckpoint {
    /// Serializes a checkpoint held by an in-flight branch record.
    pub fn save_state(&self, w: &mut sim_isa::StateWriter) {
        w.put_usize(self.sp);
        w.put_usize(self.depth);
        w.put_addr(self.top);
    }

    /// Decodes a checkpoint written by [`RasCheckpoint::save_state`].
    pub fn load_state(r: &mut sim_isa::StateReader) -> Self {
        RasCheckpoint {
            sp: r.get_usize(),
            depth: r.get_usize(),
            top: r.get_addr(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_pop_lifo() {
        let mut r = Ras::new(4);
        r.push(Addr::new(0x10));
        r.push(Addr::new(0x20));
        assert_eq!(r.pop(), Some(Addr::new(0x20)));
        assert_eq!(r.pop(), Some(Addr::new(0x10)));
        assert_eq!(r.pop(), None);
    }

    #[test]
    fn overflow_wraps_keeping_youngest() {
        let mut r = Ras::new(2);
        r.push(Addr::new(0x10));
        r.push(Addr::new(0x20));
        r.push(Addr::new(0x30)); // overwrites 0x10
        assert_eq!(r.pop(), Some(Addr::new(0x30)));
        assert_eq!(r.pop(), Some(Addr::new(0x20)));
        assert_eq!(r.pop(), None, "oldest was lost to wrap");
    }

    #[test]
    fn checkpoint_restores_simple_speculation() {
        let mut r = Ras::new(8);
        r.push(Addr::new(0x10));
        r.push(Addr::new(0x20));
        let cp = r.checkpoint();
        // Speculative: pop a return, push a call.
        let _ = r.pop();
        r.push(Addr::new(0x99));
        r.restore(&cp);
        assert_eq!(r.peek(), Some(Addr::new(0x20)));
        assert_eq!(r.depth(), 2);
    }

    #[test]
    fn copy_from_truncates_to_capacity() {
        let mut main = Ras::new(8);
        for i in 0..6 {
            main.push(Addr::new(0x100 + i * 0x10));
        }
        let mut alt = Ras::new(4);
        alt.copy_from(&main);
        assert_eq!(alt.depth(), 4);
        // Youngest four, LIFO order preserved.
        assert_eq!(alt.pop(), Some(Addr::new(0x150)));
        assert_eq!(alt.pop(), Some(Addr::new(0x140)));
        assert_eq!(alt.pop(), Some(Addr::new(0x130)));
        assert_eq!(alt.pop(), Some(Addr::new(0x120)));
    }

    #[test]
    fn peek_does_not_pop() {
        let mut r = Ras::new(4);
        r.push(Addr::new(0x44));
        assert_eq!(r.peek(), Some(Addr::new(0x44)));
        assert_eq!(r.depth(), 1);
    }

    #[test]
    fn sixteen_entry_alt_ras_is_64_bytes() {
        // §IV-F: 16-entry Alt-RAS ≈ 0.06 KB.
        assert_eq!(Ras::new(16).storage_bits() / 8, 64);
    }
}
