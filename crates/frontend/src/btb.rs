//! Banked instruction BTB (branch target buffer).
//!
//! Table II: 64K-entry, 16-bank instruction BTB with LRU. UCP (§IV-C)
//! doubles the banks to 32 and shares them between the predicted and
//! alternate paths; conflicts are arbitrated by the pipeline using
//! [`Btb::bank_of`] and a 3-bit alternate-delay counter.

use serde::{Deserialize, Serialize};
use sim_isa::{Addr, BranchClass};

/// BTB geometry.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct BtbConfig {
    /// Total entries (sets × ways).
    pub total_entries: usize,
    /// Associativity.
    pub ways: usize,
    /// Number of banks (address-interleaved).
    pub banks: usize,
}

impl BtbConfig {
    /// Table II baseline: 64K entries, 4-way, 16 banks.
    pub fn baseline() -> Self {
        BtbConfig {
            total_entries: 64 * 1024,
            ways: 4,
            banks: 16,
        }
    }

    /// UCP configuration: same capacity, 32 banks (§IV-C).
    pub fn ucp_32_banks() -> Self {
        BtbConfig {
            total_entries: 64 * 1024,
            ways: 4,
            banks: 32,
        }
    }
}

/// One BTB entry as returned by a lookup.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BtbEntry {
    /// Predicted target (last seen taken target for conditionals).
    pub target: Addr,
    /// Branch class recorded at insertion.
    pub class: BranchClass,
}

#[derive(Clone, Copy, Debug)]
struct Slot {
    valid: bool,
    tag: u32,
    target: Addr,
    class: BranchClass,
    lru: u64,
}

impl Default for Slot {
    fn default() -> Self {
        Slot {
            valid: false,
            tag: 0,
            target: Addr::NULL,
            class: BranchClass::CondDirect,
            lru: 0,
        }
    }
}

/// A set-associative, banked BTB.
#[derive(Clone, Debug)]
pub struct Btb {
    cfg: BtbConfig,
    sets: usize,
    slots: Vec<Slot>,
    stamp: u64,
    lookups: u64,
    hits: u64,
}

impl Btb {
    /// Creates an empty BTB.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is not a power-of-two set count or banks is 0.
    pub fn new(cfg: BtbConfig) -> Self {
        assert!(cfg.ways > 0 && cfg.banks > 0);
        assert_eq!(cfg.total_entries % cfg.ways, 0);
        let sets = cfg.total_entries / cfg.ways;
        assert!(sets.is_power_of_two(), "BTB sets must be a power of two");
        Btb {
            sets,
            slots: vec![Slot::default(); cfg.total_entries],
            stamp: 0,
            lookups: 0,
            hits: 0,
            cfg,
        }
    }

    /// The geometry.
    pub fn config(&self) -> &BtbConfig {
        &self.cfg
    }

    #[inline]
    fn set_of(&self, pc: Addr) -> usize {
        ((pc.raw() >> 2) as usize) & (self.sets - 1)
    }

    #[inline]
    fn tag_of(&self, pc: Addr) -> u32 {
        (((pc.raw() >> 2) >> self.sets.trailing_zeros()) & 0xffff) as u32
    }

    /// The bank an access to `pc` uses (for conflict modelling).
    #[inline]
    pub fn bank_of(&self, pc: Addr) -> usize {
        ((pc.raw() >> 2) as usize) % self.cfg.banks
    }

    /// Looks up `pc`, updating LRU and statistics.
    pub fn lookup(&mut self, pc: Addr) -> Option<BtbEntry> {
        self.lookups += 1;
        self.stamp += 1;
        let set = self.set_of(pc);
        let tag = self.tag_of(pc);
        let base = set * self.cfg.ways;
        for s in &mut self.slots[base..base + self.cfg.ways] {
            if s.valid && s.tag == tag {
                s.lru = self.stamp;
                self.hits += 1;
                return Some(BtbEntry {
                    target: s.target,
                    class: s.class,
                });
            }
        }
        None
    }

    /// Presence/content check without LRU or statistics effects.
    pub fn probe(&self, pc: Addr) -> Option<BtbEntry> {
        let set = self.set_of(pc);
        let tag = self.tag_of(pc);
        let base = set * self.cfg.ways;
        self.slots[base..base + self.cfg.ways]
            .iter()
            .find(|s| s.valid && s.tag == tag)
            .map(|s| BtbEntry {
                target: s.target,
                class: s.class,
            })
    }

    /// Inserts or updates the entry for the branch at `pc`.
    pub fn insert(&mut self, pc: Addr, target: Addr, class: BranchClass) {
        self.stamp += 1;
        let set = self.set_of(pc);
        let tag = self.tag_of(pc);
        let base = set * self.cfg.ways;
        // Update in place on a tag match.
        if let Some(s) = self.slots[base..base + self.cfg.ways]
            .iter_mut()
            .find(|s| s.valid && s.tag == tag)
        {
            s.target = target;
            s.class = class;
            s.lru = self.stamp;
            return;
        }
        let victim = self.slots[base..base + self.cfg.ways]
            .iter_mut()
            .min_by_key(|s| if s.valid { s.lru } else { 0 })
            .expect("ways nonempty");
        *victim = Slot {
            valid: true,
            tag,
            target,
            class,
            lru: self.stamp,
        };
    }

    /// Demand hit rate so far.
    pub fn hit_rate(&self) -> f64 {
        if self.lookups == 0 {
            1.0
        } else {
            self.hits as f64 / self.lookups as f64
        }
    }

    /// Storage in bits: tag(16) + target(32, compressed) + class(3) +
    /// valid(1) + LRU(2) per entry.
    pub fn storage_bits(&self) -> u64 {
        self.cfg.total_entries as u64 * 54
    }

    /// Serializes the mutable state (slots, LRU stamp, hit statistics).
    pub fn save_state(&self, w: &mut sim_isa::StateWriter) {
        w.put_usize(self.slots.len());
        for s in &self.slots {
            w.put_bool(s.valid);
            w.put_u32(s.tag);
            w.put_addr(s.target);
            w.put_u8(s.class.code());
            w.put_u64(s.lru);
        }
        w.put_u64(self.stamp);
        w.put_u64(self.lookups);
        w.put_u64(self.hits);
    }

    /// Restores state written by [`Btb::save_state`].
    pub fn restore_state(&mut self, r: &mut sim_isa::StateReader) {
        let n = r.get_usize();
        assert_eq!(n, self.slots.len(), "BTB geometry mismatch");
        for s in &mut self.slots {
            s.valid = r.get_bool();
            s.tag = r.get_u32();
            s.target = r.get_addr();
            s.class = BranchClass::from_code(r.get_u8());
            s.lru = r.get_u64();
        }
        self.stamp = r.get_u64();
        self.lookups = r.get_u64();
        self.hits = r.get_u64();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Btb {
        Btb::new(BtbConfig {
            total_entries: 64,
            ways: 4,
            banks: 8,
        })
    }

    #[test]
    fn insert_then_lookup() {
        let mut b = small();
        let pc = Addr::new(0x1000);
        assert_eq!(b.lookup(pc), None);
        b.insert(pc, Addr::new(0x2000), BranchClass::CondDirect);
        assert_eq!(
            b.lookup(pc),
            Some(BtbEntry {
                target: Addr::new(0x2000),
                class: BranchClass::CondDirect
            })
        );
    }

    #[test]
    fn update_in_place_changes_target() {
        let mut b = small();
        let pc = Addr::new(0x1000);
        b.insert(pc, Addr::new(0x2000), BranchClass::IndirectJump);
        b.insert(pc, Addr::new(0x3000), BranchClass::IndirectJump);
        assert_eq!(b.probe(pc).unwrap().target, Addr::new(0x3000));
    }

    #[test]
    fn lru_within_set() {
        let mut b = small();
        // 16 sets; same set = pcs 4 instructions apart × 16 sets.
        let pcs: Vec<Addr> = (0..5).map(|i| Addr::new(0x1000 + i * 16 * 4)).collect();
        for &pc in &pcs[..4] {
            b.insert(pc, Addr::new(0x9000), BranchClass::UncondDirect);
        }
        let _ = b.lookup(pcs[0]); // refresh oldest
        b.insert(pcs[4], Addr::new(0x9000), BranchClass::UncondDirect);
        assert!(b.probe(pcs[0]).is_some(), "recently used survives");
        assert!(b.probe(pcs[1]).is_none(), "LRU victim evicted");
    }

    #[test]
    fn banks_interleave_by_pc() {
        let b = small();
        assert_ne!(b.bank_of(Addr::new(0x1000)), b.bank_of(Addr::new(0x1004)));
        assert_eq!(
            b.bank_of(Addr::new(0x1000)),
            b.bank_of(Addr::new(0x1000 + 8 * 4))
        );
    }

    #[test]
    fn hit_rate_tracks() {
        let mut b = small();
        b.insert(Addr::new(0x40), Addr::new(0x80), BranchClass::Call);
        let _ = b.lookup(Addr::new(0x40));
        let _ = b.lookup(Addr::new(0x44));
        assert!((b.hit_rate() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn baseline_storage_is_hundreds_of_kb() {
        let b = Btb::new(BtbConfig::baseline());
        let kb = b.storage_bits() / 8192;
        assert!((300..600).contains(&kb), "got {kb} KB");
    }
}
