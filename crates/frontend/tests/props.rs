//! Property-based tests for the frontend structures: queue FIFO/model
//! equivalence, RAS LIFO semantics under wrap, BTB consistency, and µ-op
//! cache capacity/LRU invariants.

use proptest::prelude::*;
use sim_isa::{Addr, BranchClass};
use ucp_frontend::{
    BoundedQueue, Btb, BtbConfig, EntryEnd, Ras, UopCache, UopCacheConfig, UopEntrySpec,
};

proptest! {
    /// BoundedQueue behaves exactly like a capacity-limited VecDeque model.
    #[test]
    fn queue_matches_model(ops in proptest::collection::vec((any::<bool>(), 0u8..255), 1..300)) {
        let mut q: BoundedQueue<u8> = BoundedQueue::new(5);
        let mut model: std::collections::VecDeque<u8> = Default::default();
        for &(push, v) in &ops {
            if push {
                let r = q.push(v);
                if model.len() < 5 {
                    prop_assert!(r.is_ok());
                    model.push_back(v);
                } else {
                    prop_assert_eq!(r, Err(v));
                }
            } else {
                prop_assert_eq!(q.pop(), model.pop_front());
            }
            prop_assert_eq!(q.len(), model.len());
            prop_assert_eq!(q.front(), model.front());
            prop_assert_eq!(q.is_full(), model.len() == 5);
        }
    }

    /// RAS is LIFO for the youngest `capacity` entries regardless of the
    /// push/pop interleaving.
    #[test]
    fn ras_is_lifo_within_capacity(ops in proptest::collection::vec((any::<bool>(), 1u64..1000), 1..200)) {
        let mut ras = Ras::new(8);
        let mut model: Vec<Addr> = Vec::new();
        for &(push, v) in &ops {
            if push {
                let a = Addr::new(v * 4);
                ras.push(a);
                model.push(a);
                if model.len() > 8 {
                    model.remove(0); // wrap drops the oldest
                }
            } else {
                prop_assert_eq!(ras.pop(), model.pop());
            }
            prop_assert_eq!(ras.depth(), model.len());
            prop_assert_eq!(ras.peek(), model.last().copied());
        }
    }

    /// BTB: after inserting a branch, probing returns exactly what was
    /// inserted (most recent wins), and lookups never invent entries.
    #[test]
    fn btb_probe_returns_last_insert(
        inserts in proptest::collection::vec((0u64..64, 1u64..1024), 1..100),
    ) {
        let mut btb = Btb::new(BtbConfig { total_entries: 256, ways: 4, banks: 4 });
        let mut last: std::collections::HashMap<u64, Addr> = Default::default();
        for &(pc_i, tgt) in &inserts {
            let pc = Addr::new(0x1000 + pc_i * 4);
            let target = Addr::new(tgt * 4);
            btb.insert(pc, target, BranchClass::CondDirect);
            last.insert(pc.raw(), target);
            // Just-inserted entry must be visible with the right target.
            let e = btb.probe(pc);
            prop_assert!(e.is_some());
            prop_assert_eq!(e.unwrap().target, target);
        }
        // Any surviving entry must carry its most recent target.
        for (&pc, &target) in &last {
            if let Some(e) = btb.probe(Addr::new(pc)) {
                prop_assert_eq!(e.target, target, "stale target for {:#x}", pc);
            }
        }
    }

    /// µ-op cache: occupancy bounded, duplicate inserts update in place,
    /// and hit statistics balance.
    #[test]
    fn uop_cache_invariants(
        ops in proptest::collection::vec((0u64..256, 1u8..9, any::<bool>()), 1..200),
    ) {
        let cfg = UopCacheConfig { sets: 8, ways: 2, uops_per_entry: 8 };
        let cap = cfg.sets * cfg.ways;
        let mut uc = UopCache::new(cfg);
        let mut lookups = 0u64;
        for &(slot, n, is_lookup) in &ops {
            let start = Addr::new(0x4000 + slot * 4);
            if is_lookup {
                let _ = uc.lookup(start);
                lookups += 1;
            } else {
                uc.insert(UopEntrySpec {
                    start,
                    num_uops: n,
                    end: EntryEnd::WindowBoundary,
                    prefetched: false,
                    trigger: 0,
                });
                prop_assert!(uc.probe(start));
            }
            prop_assert!(uc.occupancy() <= cap);
        }
        prop_assert_eq!(uc.stats().lookups, lookups);
        prop_assert!(uc.stats().hits <= lookups);
    }

    /// Banks partition addresses deterministically.
    #[test]
    fn uop_banks_are_stable(addr in 0u64..1_000_000) {
        let uc = UopCache::new(UopCacheConfig::kops_4());
        let a = Addr::new(addr * 4);
        prop_assert_eq!(uc.bank_of(a), uc.bank_of(a));
        prop_assert!(uc.bank_of(a) < 2);
    }
}
